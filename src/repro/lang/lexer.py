"""Tokenizer for the mini-C loop language.

The language covers exactly what the simdizer accepts (paper
Section 4.1): array declarations with optional alignment attributes,
runtime scalar declarations, and one innermost normalized loop of
stride-one assignments.  See :mod:`repro.lang.parser` for the grammar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexError

KEYWORDS = {
    "for", "align", "min", "max", "avg", "sadd", "ssub",
    "char", "short", "int", "unsigned",
    "int8_t", "int16_t", "int32_t", "uint8_t", "uint16_t", "uint32_t",
}

SYMBOLS = (
    "++", "+=", "*=", "&=", "|=", "^=", "<=", "==", "<",
    "+", "-", "*", "&", "|", "^",
    "(", ")", "[", "]", "{", "}", ";", ",", "=", "?",
)


@dataclass(frozen=True)
class Token:
    kind: str   # "ident", "number", "keyword", or the symbol itself
    text: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.text!r}"


def tokenize(source: str) -> list[Token]:
    """Split source into tokens, raising :class:`LexError` on bad input."""
    tokens: list[Token] = []
    line, col = 1, 1
    k = 0
    n = len(source)
    while k < n:
        ch = source[k]
        if ch == "\n":
            line += 1
            col = 1
            k += 1
            continue
        if ch in " \t\r":
            k += 1
            col += 1
            continue
        if source.startswith("//", k):
            while k < n and source[k] != "\n":
                k += 1
            continue
        if source.startswith("/*", k):
            end = source.find("*/", k + 2)
            if end < 0:
                raise LexError("unterminated block comment", line, col)
            skipped = source[k:end + 2]
            line += skipped.count("\n")
            col = 1 if "\n" in skipped else col + len(skipped)
            k = end + 2
            continue
        if ch.isdigit():
            start = k
            while k < n and source[k].isdigit():
                k += 1
            text = source[start:k]
            tokens.append(Token("number", text, line, col))
            col += len(text)
            continue
        if ch.isalpha() or ch == "_":
            start = k
            while k < n and (source[k].isalnum() or source[k] == "_"):
                k += 1
            text = source[start:k]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += len(text)
            continue
        for sym in SYMBOLS:
            if source.startswith(sym, k):
                tokens.append(Token(sym, sym, line, col))
                k += len(sym)
                col += len(sym)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens
