"""Recursive-descent parser for the mini-C loop language.

Grammar (EBNF)::

    program   := decl* forloop
    decl      := type ident "[" number "]" ["align" (number | "?")] ";"
               | type ident ";"
    type      := "char" | "short" | "int" | "unsigned" type
               | "int8_t" | … | "uint32_t"
    forloop   := "for" "(" ident "=" number ";" ident "<" bound ";"
                 step ")" "{" assign+ "}"
    step      := ident "++" | ident "+=" number
    bound     := number | ident
    assign    := subscript "=" expr ";"
    subscript := ident "[" ident [("+"|"-") number] "]"
               | ident "[" number "]"          (constant index, offset only)
    expr      := term (("+"|"-"|"&"|"|"|"^") term)*
    term      := factor ("*" factor)*
    factor    := subscript | number | ident | "(" expr ")"
               | ("min"|"max"|"avg") "(" expr "," expr ")"

Semantic restrictions (the paper's Section 4.1 loop-shape assumptions)
are enforced afterwards by :mod:`repro.lang.sema`.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.astnodes import (
    AAssign,
    AReduce,
    ABin,
    ADecl,
    AExpr,
    AForLoop,
    AIndex,
    AName,
    ANumber,
    AProgram,
    SDecl,
)
from repro.lang.lexer import Token, tokenize

_TYPE_TOKENS = {
    "char", "short", "int",
    "int8_t", "int16_t", "int32_t", "uint8_t", "uint16_t", "uint32_t",
}
_ADD_OPS = {"+", "-", "&", "|", "^"}


class Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ---------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _expect(self, kind: str, what: str | None = None) -> Token:
        tok = self._peek()
        if tok.kind != kind and tok.text != kind:
            raise ParseError(
                f"expected {what or kind!r}, found {tok.text or 'end of input'!r}",
                tok.line, tok.col,
            )
        return self._next()

    def _at(self, kind: str) -> bool:
        tok = self._peek()
        return tok.kind == kind or tok.text == kind

    # -- grammar ----------------------------------------------------------

    def parse_program(self) -> AProgram:
        program = AProgram()
        while self._at("keyword") and self._peek().text in _TYPE_TOKENS | {"unsigned"}:
            self._parse_decl(program)
        loop = self._parse_for()
        program.loop = loop
        tok = self._peek()
        if tok.kind != "eof":
            raise ParseError(f"trailing input after loop: {tok.text!r}", tok.line, tok.col)
        return program

    def _parse_type(self) -> str:
        tok = self._next()
        if tok.text == "unsigned":
            base = self._expect("keyword", "a type after 'unsigned'")
            if base.text not in ("char", "short", "int"):
                raise ParseError(f"bad type 'unsigned {base.text}'", base.line, base.col)
            return f"unsigned {base.text}"
        if tok.text not in _TYPE_TOKENS:
            raise ParseError(f"expected a type, found {tok.text!r}", tok.line, tok.col)
        return {
            "int8_t": "int8", "int16_t": "int16", "int32_t": "int32",
            "uint8_t": "uint8", "uint16_t": "uint16", "uint32_t": "uint32",
        }.get(tok.text, tok.text)

    def _parse_decl(self, program: AProgram) -> None:
        type_name = self._parse_type()
        name = self._expect("ident", "a declared name")
        if self._at("["):
            self._next()
            length = int(self._expect("number", "an array length").text)
            self._expect("]")
            align: int | None = 0
            if self._at("align"):
                self._next()
                if self._at("?"):
                    self._next()
                    align = None
                else:
                    align = int(self._expect("number", "an alignment").text)
            self._expect(";")
            program.arrays.append(ADecl(type_name, name.text, length, align, name.line))
        else:
            self._expect(";")
            program.scalars.append(SDecl(type_name, name.text, name.line))

    def _parse_for(self) -> AForLoop:
        start = self._expect("for")
        self._expect("(")
        index_var = self._expect("ident", "the loop variable").text
        self._expect("=")
        zero = self._expect("number", "the lower bound 0")
        if int(zero.text) != 0:
            raise ParseError("loops must be normalized: lower bound 0", zero.line, zero.col)
        self._expect(";")
        var2 = self._expect("ident", "the loop variable")
        if var2.text != index_var:
            raise ParseError(f"condition tests {var2.text!r}, loop variable is "
                             f"{index_var!r}", var2.line, var2.col)
        self._expect("<")
        bound_tok = self._next()
        bound: int | str
        if bound_tok.kind == "number":
            bound = int(bound_tok.text)
        elif bound_tok.kind == "ident":
            bound = bound_tok.text
        else:
            raise ParseError("loop bound must be a number or a scalar name",
                             bound_tok.line, bound_tok.col)
        self._expect(";")
        var3 = self._expect("ident", "the loop variable")
        if var3.text != index_var:
            raise ParseError(f"step updates {var3.text!r}, loop variable is "
                             f"{index_var!r}", var3.line, var3.col)
        if self._at("++"):
            self._next()
        elif self._at("+="):
            self._next()
            one = self._expect("number", "a step of 1")
            if int(one.text) != 1:
                raise ParseError("only stride-one loops are simdizable",
                                 one.line, one.col)
        else:
            tok = self._peek()
            raise ParseError("expected '++' or '+= 1'", tok.line, tok.col)
        self._expect(")")
        self._expect("{")
        body: list[AAssign | AReduce] = []
        while not self._at("}"):
            body.append(self._parse_assign(index_var))
        self._expect("}")
        if not body:
            raise ParseError("loop body is empty", start.line, start.col)
        return AForLoop(index_var, bound, tuple(body), start.line)

    _REDUCE_OPS = {"+=": "+", "*=": "*", "&=": "&", "|=": "|", "^=": "^"}

    def _parse_assign(self, index_var: str) -> "AAssign | AReduce":
        # A fixed-index target (``out[3]``) introduces a reduction.
        name_tok = self._peek()
        target = self._parse_subscript(index_var, allow_fixed=True)
        if isinstance(target, tuple):
            array, index = target
            op_tok = self._next()
            op = self._REDUCE_OPS.get(op_tok.text)
            if op is None:
                raise ParseError(
                    "a fixed-index target must be a reduction "
                    "(out[k] += / *= / &= / |= / ^= expr)",
                    op_tok.line, op_tok.col)
            expr = self._parse_expr(index_var)
            self._expect(";")
            return AReduce(array, index, op, expr, name_tok.line)
        eq_tok = self._peek()
        if eq_tok.text in self._REDUCE_OPS:
            raise ParseError(
                "reductions need a fixed-index target (out[k] += expr); "
                "stride-one targets use plain assignment",
                eq_tok.line, eq_tok.col)
        eq = self._expect("=")
        expr = self._parse_expr(index_var)
        self._expect(";")
        return AAssign(target, expr, eq.line)

    def _parse_subscript(self, index_var: str, allow_fixed: bool = False):
        """Parse ``a[i + c]`` into an :class:`AIndex`, or — when
        ``allow_fixed`` — ``a[3]`` into an ``(array, index)`` pair."""
        name = self._expect("ident", "an array name")
        self._expect("[")
        tok = self._peek()
        if tok.kind == "ident":
            self._next()
            if tok.text != index_var:
                raise ParseError(
                    f"subscript variable {tok.text!r} is not the loop "
                    f"variable {index_var!r}", tok.line, tok.col)
            offset = 0
            if self._at("+") or self._at("-"):
                sign = -1 if self._next().text == "-" else 1
                offset = sign * int(self._expect("number", "a constant offset").text)
        elif tok.kind == "number" and allow_fixed:
            self._next()
            if not self._at("]"):
                raise ParseError("subscripts must be stride-one: a[i + c]",
                                 tok.line, tok.col)
            self._next()
            return (name.text, int(tok.text))
        else:
            raise ParseError("subscripts must be stride-one: a[i + c]",
                             tok.line, tok.col)
        self._expect("]")
        return AIndex(name.text, index_var, offset, name.line)

    def _parse_expr(self, index_var: str) -> AExpr:
        expr = self._parse_term(index_var)
        while self._peek().text in _ADD_OPS:
            op = self._next()
            right = self._parse_term(index_var)
            expr = ABin(op.text, expr, right, op.line)
        return expr

    def _parse_term(self, index_var: str) -> AExpr:
        expr = self._parse_factor(index_var)
        while self._at("*"):
            op = self._next()
            right = self._parse_factor(index_var)
            expr = ABin("*", expr, right, op.line)
        return expr

    def _parse_factor(self, index_var: str) -> AExpr:
        tok = self._peek()
        if tok.kind == "number":
            self._next()
            return ANumber(int(tok.text), tok.line)
        if tok.text in ("min", "max", "avg", "sadd", "ssub"):
            self._next()
            self._expect("(")
            left = self._parse_expr(index_var)
            self._expect(",")
            right = self._parse_expr(index_var)
            self._expect(")")
            return ABin(tok.text, left, right, tok.line)
        if tok.text == "(":
            self._next()
            expr = self._parse_expr(index_var)
            self._expect(")")
            return expr
        if tok.kind == "ident":
            if self._tokens[self._pos + 1].text == "[":
                return self._parse_subscript(index_var)
            self._next()
            return AName(tok.text, tok.line)
        raise ParseError(f"unexpected token {tok.text!r} in expression",
                         tok.line, tok.col)


def parse(source: str) -> AProgram:
    """Parse mini-C source into an (unchecked) AST."""
    return Parser(tokenize(source)).parse_program()
