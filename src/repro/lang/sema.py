"""Semantic analysis: mini-C AST → validated loop IR.

Enforces the paper's Section 4.1 simdizability assumptions with
source-located diagnostics:

* every memory reference is a stride-one subscript of the loop
  variable (the parser guarantees the shape; sema checks declarations);
* the loop variable appears only in address computation (no bare uses
  of it as a value);
* all references share one element length — no data conversions;
* array base alignments are natural (multiples of the element size);
* the loop bound is a constant or a declared runtime scalar;
* stored arrays are disjoint from loaded arrays (no loop-carried
  dependences reach the simdizer).
"""

from __future__ import annotations

from repro.errors import SemanticError
from repro.ir.expr import ArrayDecl, BinOp, Const, Expr, Loop, LoopIndex, Reduction, Ref, ScalarVar, Statement
from repro.ir.types import op_by_name, type_by_name
from repro.lang.astnodes import (
    AAssign,
    AReduce,
    ABin,
    AExpr,
    AForLoop,
    AIndex,
    AName,
    ANumber,
    AProgram,
)

_OP_NAMES = {
    "+": "add", "-": "sub", "*": "mul", "&": "and", "|": "or", "^": "xor",
    "min": "min", "max": "max", "avg": "avg", "sadd": "sadd",
    "ssub": "ssub",
}


class Analyzer:
    def __init__(self, program: AProgram):
        self._program = program
        self._arrays: dict[str, ArrayDecl] = {}
        self._scalars: dict[str, str] = {}

    def analyze(self, name: str = "loop") -> Loop:
        self._declare()
        loop_ast = self._program.loop
        if loop_ast is None:
            raise SemanticError("source contains no loop")
        bound = self._check_bound(loop_ast)
        statements = [self._check_assign(a, loop_ast) for a in loop_ast.body]
        self._check_uniform_types(statements, loop_ast)
        try:
            return Loop(
                upper=bound,
                statements=statements,
                index=loop_ast.index_var,
                name=name,
                scalar_vars=tuple(self._scalars),
            )
        except Exception as exc:  # IR-level validation with source context
            raise SemanticError(str(exc), loop_ast.line) from exc

    # -- declarations ------------------------------------------------------

    def _declare(self) -> None:
        for decl in self._program.arrays:
            if decl.name in self._arrays or decl.name in self._scalars:
                raise SemanticError(f"{decl.name!r} declared twice", decl.line)
            dtype = type_by_name(decl.type_name)
            if decl.align is not None and decl.align % dtype.size:
                raise SemanticError(
                    f"array {decl.name!r}: alignment {decl.align} is not a "
                    f"multiple of the element size {dtype.size} (arrays must "
                    "be naturally aligned)", decl.line)
            self._arrays[decl.name] = ArrayDecl(decl.name, dtype, decl.length, decl.align)
        for decl in self._program.scalars:
            if decl.name in self._arrays or decl.name in self._scalars:
                raise SemanticError(f"{decl.name!r} declared twice", decl.line)
            self._scalars[decl.name] = decl.type_name

    def _check_bound(self, loop: AForLoop) -> int | str:
        if isinstance(loop.bound, int):
            if loop.bound <= 0:
                raise SemanticError("loop bound must be positive", loop.line)
            return loop.bound
        if loop.bound not in self._scalars:
            raise SemanticError(
                f"loop bound {loop.bound!r} is not a declared scalar", loop.line)
        return loop.bound

    # -- statements and expressions -----------------------------------------

    def _check_assign(self, assign, loop: AForLoop):
        if isinstance(assign, AReduce):
            decl = self._arrays.get(assign.array)
            if decl is None:
                raise SemanticError(
                    f"{assign.array!r} is not a declared array", assign.line)
            op = op_by_name(_OP_NAMES[assign.op])
            expr = self._check_expr(assign.expr, loop)
            return Reduction(Ref(decl, assign.index), op, expr)
        target = self._check_ref(assign.target, loop)
        expr = self._check_expr(assign.expr, loop)
        return Statement(target, expr)

    def _check_ref(self, node: AIndex, loop: AForLoop) -> Ref:
        decl = self._arrays.get(node.array)
        if decl is None:
            raise SemanticError(f"{node.array!r} is not a declared array", node.line)
        if node.index_var != loop.index_var:
            raise SemanticError(
                f"subscript uses {node.index_var!r}, loop variable is "
                f"{loop.index_var!r}", node.line)
        return Ref(decl, node.offset)

    def _check_expr(self, node: AExpr, loop: AForLoop) -> Expr:
        if isinstance(node, AIndex):
            return self._check_ref(node, loop)
        if isinstance(node, ANumber):
            return Const(node.value)
        if isinstance(node, AName):
            if node.name == loop.index_var:
                # Extension beyond Section 4.1: the counter as a value
                # vectorizes into an iota register stream.
                return LoopIndex()
            if node.name in self._arrays:
                raise SemanticError(
                    f"array {node.name!r} used without a subscript", node.line)
            if node.name not in self._scalars:
                raise SemanticError(f"undeclared scalar {node.name!r}", node.line)
            return ScalarVar(node.name)
        if isinstance(node, ABin):
            op = op_by_name(_OP_NAMES[node.op])
            return BinOp(op, self._check_expr(node.left, loop),
                         self._check_expr(node.right, loop))
        raise SemanticError(f"unsupported expression {node!r}")

    def _check_uniform_types(self, statements: list[Statement], loop: AForLoop) -> None:
        dtypes = {
            ref.array.dtype
            for stmt in statements
            for ref in stmt.refs() + [stmt.target]
        }
        if len(dtypes) > 1:
            names = sorted(t.name for t in dtypes)
            raise SemanticError(
                f"mixed element types {names}: all references must have one "
                "data length (no conversions, Section 4.1)", loop.line)


def analyze(program: AProgram, name: str = "loop") -> Loop:
    """Check an AST and build the loop IR."""
    return Analyzer(program).analyze(name)
