"""AST for the mini-C loop language (pre-semantic-analysis)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ADecl:
    """``int a[1024] align 4;`` — alignment in bytes, ``None`` = ``align ?``
    (runtime), omitted = 0 (vector-aligned base)."""

    type_name: str
    name: str
    length: int
    align: int | None
    line: int


@dataclass(frozen=True)
class SDecl:
    """``int n;`` — a runtime scalar (loop bound or invariant operand)."""

    type_name: str
    name: str
    line: int


class AExpr:
    """Base class of source expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class AIndex(AExpr):
    """``a[i + 3]`` — subscript of the loop variable plus a constant."""

    array: str
    index_var: str
    offset: int
    line: int


@dataclass(frozen=True)
class ANumber(AExpr):
    value: int
    line: int


@dataclass(frozen=True)
class AName(AExpr):
    """A bare identifier operand (must resolve to a runtime scalar)."""

    name: str
    line: int


@dataclass(frozen=True)
class ABin(AExpr):
    op: str  # "+", "-", "*", "&", "|", "^", "min", "max", "avg"
    left: AExpr
    right: AExpr
    line: int


@dataclass(frozen=True)
class AAssign:
    target: AIndex
    expr: AExpr
    line: int


@dataclass(frozen=True)
class AReduce:
    """``out[3] += expr;`` — a fixed-index reduction statement."""

    array: str
    index: int
    op: str  # "+", "*", "&", "|", "^"
    expr: AExpr
    line: int


@dataclass(frozen=True)
class AForLoop:
    index_var: str
    bound: "int | str"
    body: "tuple[AAssign | AReduce, ...]"
    line: int


@dataclass
class AProgram:
    arrays: list[ADecl] = field(default_factory=list)
    scalars: list[SDecl] = field(default_factory=list)
    loop: AForLoop | None = None
