"""Mini-C frontend for the simdizer."""

from repro.lang.frontend import compile_source, simdize_source
from repro.lang.lexer import Token, tokenize
from repro.lang.parser import parse
from repro.lang.sema import analyze

__all__ = ["compile_source", "simdize_source", "Token", "tokenize", "parse", "analyze"]
