"""One-call frontend: mini-C source → loop IR (→ simdized program)."""

from __future__ import annotations

from repro.ir.expr import Loop
from repro.lang.parser import parse
from repro.lang.sema import analyze
from repro.simdize.driver import SimdizeResult, simdize
from repro.simdize.options import SimdOptions


def compile_source(source: str, name: str = "loop") -> Loop:
    """Parse and semantically check mini-C source into loop IR."""
    return analyze(parse(source), name)


def simdize_source(
    source: str,
    V: int = 16,
    options: SimdOptions | None = None,
    name: str = "loop",
) -> SimdizeResult:
    """Compile mini-C source and simdize it in one step."""
    return simdize(compile_source(source, name), V, options)
