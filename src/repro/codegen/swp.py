"""Software-pipelined expression generation (paper Figure 10).

A stream shift combines two adjacent registers of its source stream:
``first`` (smaller iteration) and ``second`` (larger iteration).  The
pipelined generator computes only ``second`` inside the steady-state
loop, holds it in a loop-carried register, and turns this iteration's
``second`` into the next iteration's ``first`` with a bottom-of-loop
copy — so data of a static stream is loaded exactly once in steady
state (the paper's no-reload guarantee).  The copies themselves are
later removed by the unroll pass's register rotation, as the paper
removes them by unrolling plus forward propagation.

The paper spills ``first``/``second`` through stack locals ``old`` and
``new``; we keep them in virtual vector registers, which is what the
register allocator of the real back end achieves anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen.context import CodegenCtx
from repro.codegen.exprgen import gen_expr, gen_splat, plan_shift, _fold_op
from repro.errors import CodegenError
from repro.reorg.graph import RIota, RLoad, RNode, ROp, RShiftStream, RSplat
from repro.vir.vexpr import Addr, VExpr, VIotaE, VLoadE, VRegE, VShiftPairE
from repro.vir.vstmt import SetV, VStmt


@dataclass
class SwpPieces:
    """Statements produced around a pipelined expression.

    ``init`` runs once, in a prologue section executed with the loop
    counter at the steady-state lower bound; ``body`` and ``bottom``
    run every steady-state iteration (``bottom`` holds the carried
    copies).
    """

    init: list[VStmt] = field(default_factory=list)
    body: list[VStmt] = field(default_factory=list)
    bottom: list[VStmt] = field(default_factory=list)
    #: (shift node, displacement) -> shared vshiftpair result, so equal
    #: shifts across statements reuse one carried register pair.
    cache: dict[object, VExpr] = field(default_factory=dict)


def gen_expr_sp(
    ctx: CodegenCtx, node: RNode, disp: int, residue: int, pieces: SwpPieces
) -> VExpr:
    """Software-pipelined ``GenSimdExprSP`` (Figure 10)."""
    if isinstance(node, RLoad):
        return VLoadE(Addr(node.ref.array.name, node.ref.offset + disp))
    if isinstance(node, RSplat):
        return gen_splat(ctx, node)
    if isinstance(node, RIota):
        return VIotaE(disp, ctx.loop.dtype)
    if isinstance(node, ROp):
        inputs = [gen_expr_sp(ctx, child, disp, residue, pieces) for child in node.inputs]
        return _fold_op(node, inputs)
    if isinstance(node, RShiftStream):
        return gen_shift_stream_sp(ctx, node, disp, residue, pieces)
    raise CodegenError(f"unknown graph node {type(node).__name__}")


def gen_shift_stream_sp(
    ctx: CodegenCtx, node: RShiftStream, disp: int, residue: int, pieces: SwpPieces
) -> VExpr:
    """Pipelined stream shift: carry ``second`` to the next iteration.

    Identical (structurally equal) shifts at the same displacement —
    e.g. the same array reference appearing in several statements —
    share one carried register pair, so their stream is loaded once.
    """
    plan = plan_shift(ctx, node, residue)
    if plan is None:
        return gen_expr_sp(ctx, node.src, disp, residue, pieces)

    cache_key = (node, disp)
    cached = pieces.cache.get(cache_key)
    if cached is not None:
        return cached

    first_disp = disp + plan.k0 * ctx.B
    second_disp = first_disp + ctx.B

    old = ctx.fresh("vold")
    new = ctx.fresh("vnew")
    # first: precomputed non-pipelined, stored to `old` in the prologue
    # (Figure 10 lines 12/15/17).
    first = gen_expr(ctx, node.src, first_disp, residue)
    pieces.init.append(SetV(old, first))
    # second: computed pipelined inside the loop, stored to `new`
    # (lines 13/16/18).
    second = gen_expr_sp(ctx, node.src, second_disp, residue, pieces)
    pieces.body.append(SetV(new, second))
    # copy `new` to `old` at the bottom of the loop (line 19).
    pieces.bottom.append(SetV(old, VRegE(new)))
    result = VShiftPairE(VRegE(old), VRegE(new), plan.amount)
    pieces.cache[cache_key] = result
    return result
