"""SIMD code generation: graph -> vector program."""

from repro.codegen.context import CodegenCtx
from repro.codegen.exprgen import ShiftPlan, gen_expr, gen_shift_stream, plan_shift
from repro.codegen.loopgen import GenOptions, generate_program
from repro.codegen.swp import SwpPieces, gen_expr_sp

__all__ = [
    "CodegenCtx", "ShiftPlan", "gen_expr", "gen_shift_stream", "plan_shift",
    "GenOptions", "generate_program", "SwpPieces", "gen_expr_sp",
]
