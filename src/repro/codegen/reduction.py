"""SIMD code generation for reduction loops (extension).

Vectorizing ``out[k] op= expr(i)`` splits the accumulation into ``B``
independent lane accumulators and reassociates:

* **preheader** — each statement's accumulator register is initialised
  to a splat of the op's identity element;
* **steady state** — every operand stream of ``expr`` is shifted to
  offset 0 (the zero-shift policy), so the block register at counter
  ``i`` covers exactly original iterations ``[i, i+B)``; the body does
  ``vacc = vop(vacc, block)``.  The loop runs ``i = 0 .. ub − ub%B``
  with no prologue (there is no store alignment to block on) and no
  trip-count guard (an empty steady loop is fine);
* **tail** — the remaining ``ub mod B`` iterations accumulate one more
  block whose out-of-range lanes are masked to the identity with a
  ``vsplice``;
* **finalisation** — the accumulator is folded horizontally with
  ``log2(B)`` shift-and-op steps (every lane then holds the total),
  combined with the memory's prior value, and spliced into the target
  element's lane so neighbouring bytes are preserved.

Reassociating the accumulation order is bit-exact for the permitted
ops because lane arithmetic is modular (add/mul) or order-insensitive
(min/max/and/or/xor).

Stream reuse (SP) and the vector-IR passes apply to the operand
streams exactly as for regular loops.
"""

from __future__ import annotations

from repro.codegen.context import CodegenCtx
from repro.codegen.exprgen import gen_expr
from repro.codegen.swp import SwpPieces, gen_expr_sp
from repro.errors import CodegenError
from repro.ir.expr import Loop, Reduction
from repro.ir.types import op_identity
from repro.reorg.graph import LoopGraph
from repro.reorg.validate import validate_graph
from repro.vir.program import SteadyLoop, VProgram
from repro.vir.vexpr import (
    Addr,
    SConst,
    SExpr,
    SVar,
    VBinE,
    VExpr,
    VLoadE,
    VRegE,
    VShiftPairE,
    VSpliceE,
    VSplatE,
    s_bin,
    s_mod,
    s_mul,
    s_sub,
)
from repro.vir.vstmt import Section, SetV, VStoreS


def generate_reduction_program(graph: LoopGraph, software_pipeline: bool) -> VProgram:
    """Lower a validated all-reduction loop graph to a vector program.

    The graph's statement sources must already be shifted to offset 0
    (the driver applies the zero policy against a virtual aligned
    store); each statement's :class:`~repro.ir.expr.Reduction` carries
    the accumulator op and target.
    """
    validate_graph(graph)
    loop = graph.loop
    V = graph.V
    ctx = CodegenCtx(loop, V)
    B, D = ctx.B, ctx.D
    trip = SConst(loop.upper) if isinstance(loop.upper, int) else SVar(loop.upper)

    program = VProgram(source=loop, V=V)
    program.steady_residue = 0

    rem = s_mod(trip, SConst(B))
    steady_ub = s_sub(trip, rem)

    pieces = SwpPieces()
    body: list = []
    finals: list[Section] = []
    tails: list[Section] = []

    for sg in graph.statements:
        stmt = loop.statements[sg.statement_index]
        if not isinstance(stmt, Reduction):
            raise CodegenError("generate_reduction_program needs an all-reduction loop")
        identity = op_identity(stmt.op, loop.dtype)
        acc = f"vacc{sg.statement_index}"
        program.preheader.append(SetV(acc, VSplatE(SConst(identity), loop.dtype)))

        if software_pipeline:
            block = gen_expr_sp(ctx, sg.store.src, 0, 0, pieces)
            body.extend(pieces.body)
            pieces.body = []
        else:
            block = gen_expr(ctx, sg.store.src, 0, 0)
        body.append(SetV(acc, VBinE(stmt.op, VRegE(acc), block, loop.dtype)))

        tails.append(_tail_section(ctx, sg, stmt, acc, rem, steady_ub, identity))
        finals.append(_finalize_section(ctx, stmt, acc))

    if pieces.init:
        program.prologue.append(Section("swp_init", stmts=pieces.init, i_expr=SConst(0)))

    program.steady = SteadyLoop(lb=SConst(0), ub=steady_ub, step=B,
                                body=body, bottom=pieces.bottom)
    program.epilogue = [t for t in tails if t is not None] + finals
    program.preheader = ctx.preheader + program.preheader
    return program


def _tail_section(ctx, sg, stmt: Reduction, acc: str, rem: SExpr,
                  steady_ub: SExpr, identity: int) -> Section | None:
    """Accumulate the last partial block with identity-masked lanes."""
    V, D = ctx.V, ctx.D
    cond = s_bin("gt", rem, SConst(0))
    if isinstance(cond, SConst) and cond.value == 0:
        return None
    block = gen_expr(ctx, sg.store.src, 0, 0)
    keep_bytes = s_mul(rem, SConst(D))
    masked = VSpliceE(block, VSplatE(SConst(identity), ctx.loop.dtype), keep_bytes)
    if isinstance(keep_bytes, SConst):
        masked = VSpliceE(block, VSplatE(SConst(identity), ctx.loop.dtype),
                          keep_bytes.value)
    update = SetV(acc, VBinE(stmt.op, VRegE(acc), masked, ctx.loop.dtype))
    return Section(
        f"reduce_tail_s{sg.statement_index}",
        stmts=[update],
        i_expr=steady_ub,
        cond=None if isinstance(cond, SConst) else cond,
    )


def _finalize_section(ctx: CodegenCtx, stmt: Reduction, acc: str) -> Section:
    """Horizontal fold + combine with memory + lane-preserving store."""
    V, D = ctx.V, ctx.D
    loop: Loop = ctx.loop
    dtype = loop.dtype

    stmts: list = []
    folded: VExpr = VRegE(acc)
    width = V // 2
    step = 0
    while width >= D:
        reg = ctx.fresh(f"vfold{stmt.target.array.name}_")
        stmts.append(SetV(reg, VBinE(stmt.op, folded,
                                     VShiftPairE(folded, folded, width), dtype)))
        folded = VRegE(reg)
        width //= 2
        step += 1

    # Combine with the value already in memory, then splice the single
    # target lane back, preserving every neighbouring byte.
    addr = Addr(stmt.target.array.name, stmt.target.offset)
    lane_offset = ctx.offset_sexpr(_target_offset(stmt, V))
    old = VLoadE(addr)
    combined = VBinE(stmt.op, folded, old, dtype)
    if isinstance(lane_offset, SConst):
        o = lane_offset.value
        inner = VSpliceE(combined, old, o + D)
        outer = VSpliceE(old, inner, o)
    else:
        from repro.vir.vexpr import s_add

        inner = VSpliceE(combined, old, s_add(lane_offset, SConst(D)))
        outer = VSpliceE(old, inner, lane_offset)
    stmts.append(VStoreS(addr, outer))
    return Section(
        f"reduce_final_{stmt.target.array.name}",
        stmts=stmts,
        i_expr=SConst(0),
    )


def _target_offset(stmt: Reduction, V: int):
    from repro.align.analysis import ref_offset

    return ref_offset(stmt.target, V)
