"""Shared state of a code-generation run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.align.offsets import KnownOffset, Offset, RuntimeOffset
from repro.errors import CodegenError
from repro.ir.expr import Loop
from repro.vir.vexpr import SBase, SConst, SExpr, SReg, s_add, s_and
from repro.vir.vstmt import SetS, VStmt


@dataclass
class CodegenCtx:
    """Name generation, hoisting, and machine parameters for one codegen run.

    Runtime quantities that are loop-invariant — stream offsets computed
    by "anding memory addresses with literal V−1" (paper Section 3.3),
    shift amounts, splice points — are *hoisted*: defined once in the
    program preheader and referenced through scalar registers
    everywhere else, the way the real compiler keeps them in registers.
    """

    loop: Loop
    V: int
    preheader: list[VStmt] = field(default_factory=list)
    _counters: dict[str, int] = field(default_factory=dict)
    _hoisted: dict[object, SReg] = field(default_factory=dict)

    @property
    def D(self) -> int:
        return self.loop.dtype.size

    @property
    def B(self) -> int:
        return self.V // self.D

    def fresh(self, prefix: str) -> str:
        """A new unique register name with the given prefix."""
        n = self._counters.get(prefix, 0)
        self._counters[prefix] = n + 1
        return f"{prefix}{n}"

    def hoist(self, key: object, prefix: str, expr: SExpr) -> SExpr:
        """Define ``expr`` once in the preheader; return the register.

        Compile-time constants are returned as-is (nothing to hoist).
        Repeated hoists of the same ``key`` share one register.
        """
        if isinstance(expr, SConst):
            return expr
        if key in self._hoisted:
            return self._hoisted[key]
        reg = SReg(self.fresh(prefix))
        self.preheader.append(SetS(reg.name, expr))
        self._hoisted[key] = reg
        return reg

    def offset_sexpr(self, offset: Offset) -> SExpr:
        """A scalar expression (hoisted if runtime) for a stream offset.

        A :class:`RuntimeOffset` is fully determined by its key: for any
        reference ``arr[i+c]`` with ``c ≡ residue (mod B)``, the offset
        is ``(base(arr) + residue*D) mod V`` because congruent element
        offsets differ by whole vectors.
        """
        if isinstance(offset, KnownOffset):
            return SConst(offset.value % self.V)
        if isinstance(offset, RuntimeOffset):
            raw = s_and(
                s_add(SBase(offset.array), SConst(offset.residue * self.D)),
                SConst(self.V - 1),
            )
            return self.hoist(("off", offset.array, offset.residue), "off_", raw)
        raise CodegenError(f"cannot materialize offset {offset}")
