"""Local common-subexpression elimination and invariant hoisting.

Two redundancy eliminations on the steady-state body:

* **loop-invariant hoisting** — pure vector subexpressions that do not
  depend on the loop counter (splats of constants or runtime scalars,
  and arithmetic over them) are computed once in the preheader;
* **CSE** — pure subexpressions occurring more than once in the body
  (typically identical truncating loads after memory normalization,
  and identical shift expressions across statements) are computed once
  into a temporary register.

Only *pure* expressions (no register references) participate: a
register may be redefined between two structurally equal reads, so
merging impure expressions would need dataflow reasoning that local
value numbering does not provide.  Prologue and epilogue sections get
the same treatment independently (they execute at different loop
counter values, so sharing across sections would be wrong).
"""

from __future__ import annotations

from collections import Counter

from repro.vir.program import VProgram
from repro.vir.vexpr import (
    VBinE,
    VExpr,
    VIotaE,
    VLoadE,
    VRegE,
    VShiftPairE,
    VSpliceE,
    VSplatE,
    is_pure,
    walk,
)
from repro.vir.vstmt import Section, SetV, VStmt, VStoreS

_cse_counter = 0


def _fresh(prefix: str) -> str:
    global _cse_counter
    _cse_counter += 1
    return f"{prefix}{_cse_counter}"


def eliminate_common_subexprs(program: VProgram) -> VProgram:
    """Hoist invariants to the preheader; CSE the body and each section."""
    if program.steady is not None:
        hoisted = _hoist_invariants(program, program.steady.body)
        program.steady.body = hoisted
        program.steady.body = _cse_stmts(program.steady.body, "vcse_")
    for sec in program.prologue + program.epilogue:
        sec.stmts = _cse_stmts(sec.stmts, f"vcse_{sec.label}_")
    return program


# ---------------------------------------------------------------------------
# Invariant hoisting
# ---------------------------------------------------------------------------

def _is_invariant(expr: VExpr) -> bool:
    """Pure and independent of the loop counter (no memory access)."""
    if isinstance(expr, (VLoadE, VIotaE)):
        return False
    if isinstance(expr, VRegE):
        return False
    if isinstance(expr, VSplatE):
        return True
    if isinstance(expr, (VBinE, VShiftPairE, VSpliceE)):
        return all(_is_invariant(c) for c in expr.children())
    return False


def _hoist_invariants(program: VProgram, stmts: list[VStmt]) -> list[VStmt]:
    mapping: dict[VExpr, VRegE] = {}

    def rewrite(expr: VExpr) -> VExpr:
        if _is_invariant(expr) and not isinstance(expr, VRegE):
            if expr not in mapping:
                reg = _fresh("vinv")
                program.preheader.append(SetV(reg, expr))
                mapping[expr] = VRegE(reg)
            return mapping[expr]
        return _rebuild(expr, rewrite)

    return _rewrite_stmts(stmts, rewrite)


# ---------------------------------------------------------------------------
# CSE proper
# ---------------------------------------------------------------------------

def _cse_stmts(stmts: list[VStmt], prefix: str) -> list[VStmt]:
    counts: Counter[VExpr] = Counter()
    for stmt in stmts:
        expr = _stmt_expr(stmt)
        if expr is not None:
            for node in walk(expr):
                if is_pure(node) and _worthwhile(node):
                    counts[node] += 1

    defined: dict[VExpr, VRegE] = {}
    out: list[VStmt] = []

    def rewrite(expr: VExpr) -> VExpr:
        if expr in defined:
            return defined[expr]
        if is_pure(expr) and _worthwhile(expr) and counts[expr] >= 2:
            reg = _fresh(prefix)
            out.append(SetV(reg, _rebuild(expr, rewrite)))
            defined[expr] = VRegE(reg)
            return defined[expr]
        return _rebuild(expr, rewrite)

    for stmt in stmts:
        if isinstance(stmt, SetV) and not stmt.is_copy:
            out.append(SetV(stmt.reg, rewrite(stmt.expr)))
        elif isinstance(stmt, VStoreS):
            out.append(VStoreS(stmt.addr, rewrite(stmt.src)))
        else:
            out.append(stmt)
    return out


def _worthwhile(expr: VExpr) -> bool:
    """Is factoring this expression into a register a saving?"""
    return not isinstance(expr, VRegE)


def _stmt_expr(stmt: VStmt) -> VExpr | None:
    if isinstance(stmt, SetV):
        return stmt.expr
    if isinstance(stmt, VStoreS):
        return stmt.src
    return None


def _rebuild(expr: VExpr, rewrite) -> VExpr:
    if isinstance(expr, VBinE):
        return VBinE(expr.op, rewrite(expr.a), rewrite(expr.b), expr.dtype)
    if isinstance(expr, VShiftPairE):
        return VShiftPairE(rewrite(expr.a), rewrite(expr.b), expr.shift)
    if isinstance(expr, VSpliceE):
        return VSpliceE(rewrite(expr.a), rewrite(expr.b), expr.point)
    return expr


def _rewrite_stmts(stmts: list[VStmt], rewrite) -> list[VStmt]:
    out: list[VStmt] = []
    for stmt in stmts:
        if isinstance(stmt, SetV) and not stmt.is_copy:
            out.append(SetV(stmt.reg, rewrite(stmt.expr)))
        elif isinstance(stmt, VStoreS):
            out.append(VStoreS(stmt.addr, rewrite(stmt.src)))
        else:
            out.append(stmt)
    return out
