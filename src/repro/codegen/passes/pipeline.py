"""Pass manager: applies the enabled vector-IR passes in order."""

from __future__ import annotations

from repro.vir.program import VProgram


def run_passes(program: VProgram, options) -> VProgram:
    """Run the optimization pipeline selected by ``options``.

    Order matters: memory normalization first (it makes more loads
    structurally equal), then predictive commoning (cross-iteration
    reuse; needs pure expressions, so it precedes CSE), then local CSE,
    then unrolling (which also rotates away the loop-carried copies),
    then dead-code elimination.
    """
    if program.steady is None:
        return program
    from repro.codegen.passes import memnorm, cse, commoning, unroll, dce

    if options.memnorm:
        program = memnorm.normalize_memory(program)
    if options.predictive_commoning:
        # Before CSE: commoning matches *pure* displacement siblings,
        # which CSE's temporaries would hide.
        program = commoning.predictive_commoning(program)
    if options.cse:
        program = cse.eliminate_common_subexprs(program)
    if options.unroll > 1:
        program = unroll.unroll_steady(program, options.unroll)
    program = dce.eliminate_dead_code(program)
    return program
