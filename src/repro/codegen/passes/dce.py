"""Dead-code elimination for vector programs.

Removes ``SetV``/``SetS`` definitions whose registers are never read
anywhere in the program.  Runs to a fixpoint (removing a dead use-site
can make its operands dead too).  Deliberately conservative: a register
read anywhere — any section, the steady body, bottom copies, or scalar
positions (shift amounts, splice points, bounds, conditions) — is live.
"""

from __future__ import annotations

from repro.vir.program import VProgram
from repro.vir.vexpr import SBin, SExpr, SReg, VExpr, VRegE, VShiftPairE, VSpliceE, VSplatE, walk
from repro.vir.vstmt import SetS, SetV, VStmt, VStoreS


def eliminate_dead_code(program: VProgram) -> VProgram:
    while _sweep(program):
        pass
    return program


def _sweep(program: VProgram) -> bool:
    used_v: set[str] = set()
    used_s: set[str] = set()

    def scan_s(expr: SExpr | int | None) -> None:
        if expr is None or isinstance(expr, int):
            return
        if isinstance(expr, SReg):
            used_s.add(expr.name)
        elif isinstance(expr, SBin):
            scan_s(expr.left)
            scan_s(expr.right)

    def scan_v(expr: VExpr) -> None:
        for node in walk(expr):
            if isinstance(node, VRegE):
                used_v.add(node.name)
            elif isinstance(node, VShiftPairE):
                scan_s(node.shift)
            elif isinstance(node, VSpliceE):
                scan_s(node.point)
            elif isinstance(node, VSplatE):
                scan_s(node.operand)

    def scan_stmts(stmts: list[VStmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, SetS):
                scan_s(stmt.expr)
            elif isinstance(stmt, SetV):
                scan_v(stmt.expr)
            elif isinstance(stmt, VStoreS):
                scan_v(stmt.src)

    scan_stmts(program.preheader)
    for sec in program.prologue + program.epilogue:
        scan_s(sec.i_expr)
        scan_s(sec.cond)
        scan_stmts(sec.stmts)
    if program.steady is not None:
        scan_s(program.steady.lb)
        scan_s(program.steady.ub)
        scan_stmts(program.steady.body)
        scan_stmts(program.steady.bottom)

    removed = False

    def prune(stmts: list[VStmt]) -> list[VStmt]:
        nonlocal removed
        kept: list[VStmt] = []
        for stmt in stmts:
            if isinstance(stmt, SetV) and stmt.reg not in used_v:
                removed = True
                continue
            if isinstance(stmt, SetS) and stmt.reg not in used_s:
                removed = True
                continue
            kept.append(stmt)
        return kept

    program.preheader = prune(program.preheader)
    for sec in program.prologue + program.epilogue:
        sec.stmts = prune(sec.stmts)
    if program.steady is not None:
        program.steady.body = prune(program.steady.body)
        program.steady.bottom = prune(program.steady.bottom)
    program.prologue = [s for s in program.prologue if s.stmts]
    program.epilogue = [s for s in program.epilogue if s.stmts]
    return removed
