"""Steady-loop unrolling with register rotation.

The paper removes the software-pipelining copy operations "by unrolling
the loop twice and forward propagating the copy".  This pass implements
the general form: unroll the steady loop by a factor ``U``, symbolically
forward-propagating the bottom-of-loop copies through the unrolled
instances and renaming so that each loop-carried register's final value
is produced directly into that register whenever safe.  For the
software-pipelined ``old``/``new`` pairs any even factor eliminates
every copy; longer predictive-commoning rotation chains keep at most
``chain_length − 1`` residual copies per ``U`` iterations.

Iterations that do not fill a whole unrolled step run in conditional
fix-up sections between the loop and the epilogue (using the original,
non-unrolled body so the carried state stays in the canonical
registers).
"""

from __future__ import annotations

from repro.errors import CodegenError
from repro.vir.program import VProgram
from repro.vir.vexpr import (
    SConst,
    SExpr,
    VBinE,
    VExpr,
    VIotaE,
    VLoadE,
    VRegE,
    VShiftPairE,
    VSpliceE,
    s_add,
    s_bin,
    s_div,
    s_mod,
    s_mul,
    s_sub,
)
from repro.vir.vstmt import Section, SetV, VStmt, VStoreS


def unroll_steady(program: VProgram, factor: int) -> VProgram:
    """Unroll the steady loop by ``factor`` (> 1)."""
    if factor <= 1:
        return program
    steady = program.steady
    if steady is None:
        return program
    if any(not isinstance(s, (SetV, VStoreS)) for s in steady.body + steady.bottom):
        raise CodegenError("unroll expects a body of vector defs and stores")
    for stmt in steady.bottom:
        if not (isinstance(stmt, SetV) and stmt.is_copy):
            raise CodegenError("unroll expects only register copies at the bottom")

    B = steady.step
    carried = _carried_regs(steady.body, steady.bottom)
    original_body = list(steady.body)
    original_bottom = list(steady.bottom)

    new_body, final_env, last_original_read = _expand(
        steady.body, steady.bottom, factor, B
    )
    new_body, residual = _finalize_carried(new_body, final_env, carried, last_original_read)

    # Bounds: the unrolled loop runs floor(N / U) steps of U iterations.
    n_iter = _iter_count(steady.lb, steady.ub, B)
    full = s_sub(n_iter, s_mod(n_iter, SConst(factor)))
    new_ub = s_add(steady.lb, s_mul(full, SConst(B)))

    # Fix-up sections for the N mod U leftover iterations.
    leftover = s_mod(n_iter, SConst(factor))
    fixups: list[Section] = []
    for j in range(factor - 1):
        cond = s_bin("gt", leftover, SConst(j))
        if isinstance(cond, SConst) and cond.value == 0:
            continue
        i_expr = s_add(steady.lb, s_mul(s_add(full, SConst(j)), SConst(B)))
        fixups.append(
            Section(
                f"unroll_fixup_{j}",
                stmts=list(original_body) + list(original_bottom),
                i_expr=i_expr,
                cond=None if isinstance(cond, SConst) else cond,
            )
        )

    steady.body = new_body
    steady.bottom = residual
    steady.ub = new_ub
    steady.step = B * factor
    program.epilogue = fixups + program.epilogue
    program.unroll = factor
    return program


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _iter_count(lb: SExpr, ub: SExpr, step: int) -> SExpr:
    """``max(0, ceil((ub - lb) / step))`` as a folding scalar expression."""
    span = s_sub(ub, lb)
    raw = s_div(s_add(span, SConst(step - 1)), SConst(step))
    return s_bin("max", raw, SConst(0))


def _carried_regs(body: list[VStmt], bottom: list[VStmt]) -> set[str]:
    """Registers read before being (re)defined across one iteration."""
    defined: set[str] = set()
    carried: set[str] = set()
    for stmt in body + bottom:
        expr = stmt.expr if isinstance(stmt, SetV) else stmt.src  # type: ignore[union-attr]
        for name in _reg_reads(expr):
            if name not in defined:
                carried.add(name)
        if isinstance(stmt, SetV):
            defined.add(stmt.reg)
    return carried


def _reg_reads(expr: VExpr) -> list[str]:
    if isinstance(expr, VRegE):
        return [expr.name]
    out: list[str] = []
    for child in expr.children():
        out.extend(_reg_reads(child))
    return out


def _subst(expr: VExpr, delta: int, env: dict[str, VExpr]) -> VExpr:
    """Displace addresses by ``delta`` elements and resolve register reads."""
    if isinstance(expr, VLoadE):
        return VLoadE(expr.addr.displaced(delta))
    if isinstance(expr, VIotaE):
        return VIotaE(expr.bias + delta, expr.dtype)
    if isinstance(expr, VRegE):
        return env.get(expr.name, expr)
    if isinstance(expr, VBinE):
        return VBinE(expr.op, _subst(expr.a, delta, env), _subst(expr.b, delta, env), expr.dtype)
    if isinstance(expr, VShiftPairE):
        return VShiftPairE(_subst(expr.a, delta, env), _subst(expr.b, delta, env), expr.shift)
    if isinstance(expr, VSpliceE):
        return VSpliceE(_subst(expr.a, delta, env), _subst(expr.b, delta, env), expr.point)
    return expr


def _expand(
    body: list[VStmt], bottom: list[VStmt], factor: int, B: int
) -> tuple[list[VStmt], dict[str, VExpr], dict[str, int]]:
    """Emit ``factor`` renamed instances, propagating bottom copies.

    Returns the new statement list, the final value of every register
    name (as an operand), and — for safety analysis — the position of
    the last read of each *original* (unversioned) register name.
    """
    env: dict[str, VExpr] = {}
    out: list[VStmt] = []
    last_original_read: dict[str, int] = {}

    def note_reads(expr: VExpr) -> None:
        for name in _reg_reads(expr):
            last_original_read[name] = len(out)

    for u in range(factor):
        delta = u * B
        for stmt in body:
            if isinstance(stmt, SetV):
                rhs = _subst(stmt.expr, delta, env)
                note_reads(rhs)
                versioned = f"{stmt.reg}.u{u}"
                out.append(SetV(versioned, rhs))
                env[stmt.reg] = VRegE(versioned)
            elif isinstance(stmt, VStoreS):
                rhs = _subst(stmt.src, delta, env)
                note_reads(rhs)
                out.append(VStoreS(stmt.addr.displaced(delta), rhs))
        for stmt in bottom:
            assert isinstance(stmt, SetV) and isinstance(stmt.expr, VRegE)
            env[stmt.reg] = env.get(stmt.expr.name, VRegE(stmt.expr.name))
    return out, env, last_original_read


def _finalize_carried(
    body: list[VStmt],
    env: dict[str, VExpr],
    carried: set[str],
    last_original_read: dict[str, int],
) -> tuple[list[VStmt], list[VStmt]]:
    """Rename final defs back to carried registers, or emit residual copies.

    Renaming a versioned definition to the carried name is safe only if
    every read of the carried register's *incoming* value happens before
    that definition (otherwise the redefined value would be observed too
    early), and no other carried register claims the same definition.
    """
    def_pos = {s.reg: k for k, s in enumerate(body) if isinstance(s, SetV)}
    rename: dict[str, str] = {}
    residual: list[VStmt] = []
    claimed: set[str] = set()

    for reg in sorted(carried):
        final = env.get(reg)
        if final is None or (isinstance(final, VRegE) and final.name == reg):
            continue
        assert isinstance(final, VRegE)
        source = final.name
        pos = def_pos.get(source)
        safe = (
            pos is not None
            and source not in claimed
            and last_original_read.get(reg, -1) < pos
        )
        if safe:
            rename[source] = reg
            claimed.add(source)
        else:
            residual.append(SetV(reg, VRegE(source)))

    if not rename:
        return body, residual

    def rn_expr(expr: VExpr) -> VExpr:
        if isinstance(expr, VRegE):
            return VRegE(rename.get(expr.name, expr.name))
        if isinstance(expr, VBinE):
            return VBinE(expr.op, rn_expr(expr.a), rn_expr(expr.b), expr.dtype)
        if isinstance(expr, VShiftPairE):
            return VShiftPairE(rn_expr(expr.a), rn_expr(expr.b), expr.shift)
        if isinstance(expr, VSpliceE):
            return VSpliceE(rn_expr(expr.a), rn_expr(expr.b), expr.point)
        return expr

    renamed_body: list[VStmt] = []
    for stmt in body:
        if isinstance(stmt, SetV):
            renamed_body.append(SetV(rename.get(stmt.reg, stmt.reg), rn_expr(stmt.expr)))
        else:
            assert isinstance(stmt, VStoreS)
            renamed_body.append(VStoreS(stmt.addr, rn_expr(stmt.src)))
    residual = [SetV(s.reg, rn_expr(s.expr)) for s in residual]  # type: ignore[arg-type]
    return renamed_body, residual
