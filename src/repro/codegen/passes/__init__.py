"""Vector-IR optimization passes."""

from repro.codegen.passes.pipeline import run_passes

__all__ = ["run_passes"]
