"""Predictive commoning (paper Section 5.2/5.5, *PC*).

Predictive commoning is TPO's general optimization "exploiting the
reuse among consecutive loop iterations": when the steady body
computes both a value and its next-iteration sibling (the expression
with ``i -> i + B`` substituted — which is exactly what the
stream-shift lowering of Figure 7 emits as *curr*/*next* register
pairs), the earlier value is carried across iterations in a register
instead of being recomputed.  The result matches the hand-crafted
software-pipelined generator (Figure 10): data of a static misaligned
stream is loaded once per steady iteration.

Implementation: repeatedly find the largest *displacement chain*
``e_0, e_1 = e_0[i+B], …, e_m`` of pure subexpressions all present in
the body; keep carried registers ``r_0..r_m``; compute only ``e_m``
each iteration; initialise ``r_0..r_{m-1}`` in a prologue section at
the steady lower bound; rotate ``r_k <- r_{k+1}`` at the bottom of the
loop (the copies are later removed by unrolling, as in the paper).
"""

from __future__ import annotations

from collections import Counter

from repro.vir.program import VProgram
from repro.vir.vexpr import (
    VBinE,
    VExpr,
    VIotaE,
    VLoadE,
    VRegE,
    VShiftPairE,
    VSpliceE,
    displace,
    is_pure,
    walk,
)
from repro.vir.vstmt import Section, SetV, VStmt, VStoreS

_pc_counter = 0


def _fresh(prefix: str) -> str:
    global _pc_counter
    _pc_counter += 1
    return f"{prefix}{_pc_counter}"


def predictive_commoning(program: VProgram, max_rounds: int = 64) -> VProgram:
    """Carry next-iteration values across the steady loop in registers."""
    steady = program.steady
    if steady is None:
        return program

    init_stmts: list[VStmt] = []
    for _ in range(max_rounds):
        chain = _best_chain(steady.body, program.B)
        if chain is None:
            break
        _apply_chain(program, chain, init_stmts)

    if init_stmts:
        program.prologue.append(
            Section("pc_init", stmts=init_stmts, i_expr=steady.lb)
        )
    return program


# ---------------------------------------------------------------------------
# Chain discovery
# ---------------------------------------------------------------------------

def _candidates(body: list[VStmt]) -> Counter:
    """All pure, memory-dependent subexpressions of the body."""
    found: Counter[VExpr] = Counter()
    for stmt in body:
        expr = _stmt_expr(stmt)
        if expr is None:
            continue
        for node in walk(expr):
            if is_pure(node) and _depends_on_i(node):
                found[node] += 1
    return found


def _depends_on_i(expr: VExpr) -> bool:
    return any(isinstance(n, (VLoadE, VIotaE)) for n in walk(expr))


def _best_chain(body: list[VStmt], B: int) -> list[VExpr] | None:
    """The most profitable displacement chain, or ``None`` when done.

    Profit favours longer chains of larger expressions: each chain link
    saves one recomputation of the whole subexpression per iteration.
    """
    present = _candidates(body)
    chains: list[list[VExpr]] = []
    for expr in present:
        if displace(expr, -B) in present:
            continue  # not a chain head
        succ = displace(expr, B)
        if succ not in present:
            continue
        chain = [expr]
        while succ in present:
            chain.append(succ)
            succ = displace(succ, B)
        chains.append(chain)
    if not chains:
        return None

    def profit(chain: list[VExpr]) -> tuple[int, int]:
        size = sum(1 for _ in walk(chain[0]))
        return ((len(chain) - 1) * size, size)

    return max(chains, key=profit)


# ---------------------------------------------------------------------------
# Chain application
# ---------------------------------------------------------------------------

def _apply_chain(program: VProgram, chain: list[VExpr], init_stmts: list[VStmt]) -> None:
    steady = program.steady
    m = len(chain) - 1
    regs = [_fresh("vpc") for _ in chain]
    replacement = {chain[k]: VRegE(regs[k]) for k in range(len(chain))}

    def rewrite(expr: VExpr) -> VExpr:
        if expr in replacement:
            return replacement[expr]
        if isinstance(expr, VBinE):
            return VBinE(expr.op, rewrite(expr.a), rewrite(expr.b), expr.dtype)
        if isinstance(expr, VShiftPairE):
            return VShiftPairE(rewrite(expr.a), rewrite(expr.b), expr.shift)
        if isinstance(expr, VSpliceE):
            return VSpliceE(rewrite(expr.a), rewrite(expr.b), expr.point)
        return expr

    new_body: list[VStmt] = [SetV(regs[m], chain[m])]
    for stmt in steady.body:
        if isinstance(stmt, SetV) and not stmt.is_copy:
            new_body.append(SetV(stmt.reg, rewrite(stmt.expr)))
        elif isinstance(stmt, VStoreS):
            new_body.append(VStoreS(stmt.addr, rewrite(stmt.src)))
        else:
            new_body.append(stmt)
    steady.body = new_body

    # Initialise the carried values for the first steady iteration.
    for k in range(m):
        init_stmts.append(SetV(regs[k], chain[k]))
    # Rotate at the bottom: ascending order reads each register before
    # it is overwritten.
    for k in range(m):
        steady.bottom.append(SetV(regs[k], VRegE(regs[k + 1])))


def _stmt_expr(stmt: VStmt) -> VExpr | None:
    if isinstance(stmt, SetV) and not stmt.is_copy:
        return stmt.expr
    if isinstance(stmt, VStoreS):
        return stmt.src
    return None
