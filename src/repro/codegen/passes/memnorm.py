"""Memory normalization (paper Section 5.5, *MemNorm*).

"Addresses used in vector memory operations are normalized to their
lower 16-byte aligned memory locations to facilitate traditional
redundancy elimination."

A truncating vector load at ``base + (i + e)·D`` reads the same aligned
vector as the load at ``base + (i + e − lane)·D`` where ``lane`` is the
element's position within its vector.  Rewriting every load to the
normalized (lane-0) form is semantically a no-op on this hardware but
makes loads that hit the same vector *structurally equal*, so the CSE
pass merges them — e.g. ``a[i]`` and ``a[i+1]`` when both fall in one
16-byte line.

The lane is compile-time computable only when the array's base
alignment is declared and the section's loop-counter residue modulo
``B`` is known; other loads are left untouched.
"""

from __future__ import annotations

from repro.ir.expr import ArrayDecl
from repro.vir.program import VProgram
from repro.vir.vexpr import SConst, VBinE, VExpr, VLoadE, VShiftPairE, VSpliceE, Addr
from repro.vir.vstmt import SetV, VStmt, VStoreS


def normalize_memory(program: VProgram) -> VProgram:
    arrays = {arr.name: arr for arr in program.source.arrays()}
    B = program.B

    if program.steady is not None:
        residue = program.steady_residue
        program.steady.body = _normalize_stmts(program.steady.body, arrays, B, residue)
    for sec in program.prologue + program.epilogue:
        if isinstance(sec.i_expr, SConst):
            residue = sec.i_expr.value % B
            sec.stmts = _normalize_stmts(sec.stmts, arrays, B, residue)
    return program


def _normalize_stmts(
    stmts: list[VStmt], arrays: dict[str, ArrayDecl], B: int, residue: int
) -> list[VStmt]:
    def norm_addr(addr: Addr) -> Addr:
        decl = arrays.get(addr.array)
        if decl is None or decl.align is None:
            return addr
        lane = (decl.align // decl.dtype.size + addr.elem + residue) % B
        return Addr(addr.array, addr.elem - lane)

    def rewrite(expr: VExpr) -> VExpr:
        if isinstance(expr, VLoadE):
            return VLoadE(norm_addr(expr.addr))
        if isinstance(expr, VBinE):
            return VBinE(expr.op, rewrite(expr.a), rewrite(expr.b), expr.dtype)
        if isinstance(expr, VShiftPairE):
            return VShiftPairE(rewrite(expr.a), rewrite(expr.b), expr.shift)
        if isinstance(expr, VSpliceE):
            return VSpliceE(rewrite(expr.a), rewrite(expr.b), expr.point)
        return expr

    out: list[VStmt] = []
    for stmt in stmts:
        if isinstance(stmt, SetV) and not stmt.is_copy:
            out.append(SetV(stmt.reg, rewrite(stmt.expr)))
        elif isinstance(stmt, VStoreS):
            # Store addresses keep their natural form; stores are unique
            # per statement so normalization buys no redundancy there.
            out.append(VStoreS(stmt.addr, rewrite(stmt.src)))
        else:
            out.append(stmt)
    return out
