"""Expression code generation: the paper's ``GenSimdExpr`` (Figure 7).

The generator lowers reorganization-graph nodes to vector-IR
expressions.  The interesting case is ``vshiftstream``, which is
realized as a ``vshiftpair`` of two *adjacent registers* of the source
stream — the paper's current/next pair for left shifts and
previous/current pair for right shifts.

One generalization over the paper's Figure 7 pseudocode is needed for
full correctness: *which* two adjacent registers are combined depends
on the residue of the loop counter modulo the blocking factor.  The
paper's prev/curr / curr/next choice is exact when the counter is a
multiple of ``B`` (the multi-statement scheme, ``LB = B``), but the
single-statement scheme starts the steady loop at ``LB = (V − P)/D``
which is generally *not* ≡ 0 (mod B), shifting every stream's
effective byte offset by ``(LB·D) mod V``.  We therefore compute a
register-pair index ``k0`` and emit

    vshiftpair(gen(i + k0·B), gen(i + (k0+1)·B), (From − To) mod V)

with (all arithmetic in bytes, ``ρ = ((i mod B)·D) mod V`` the
section's counter residue, ``δ = From − To``):

    k0 = ⌊((From + ρ) mod V − δ) / V⌋ + ⌊δ / V⌋  ∈  {−1, 0}

which reduces to the paper's rule for ``ρ = 0``.  Under runtime
alignments only the zero-shift policy is allowed and the general
scheme guarantees ``ρ = 0``: loads shift left with ``k0 = 0`` and
amount ``From``; stores shift right with ``k0 = −1`` and amount
``V − To`` (which degenerates to selecting the current register when
``To == 0`` — see ``DESIGN.md`` §4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.offsets import KnownOffset, RuntimeOffset
from repro.errors import CodegenError
from repro.ir.expr import Const, ScalarVar
from repro.codegen.context import CodegenCtx
from repro.reorg.graph import RIota, RLoad, RNode, ROp, RShiftStream, RSplat
from repro.vir.vexpr import (
    Addr,
    SConst,
    SExpr,
    SVar,
    VBinE,
    VExpr,
    VIotaE,
    VLoadE,
    VShiftPairE,
    VSplatE,
    s_sub,
)


@dataclass(frozen=True)
class ShiftPlan:
    """Compile-time decision for one stream shift.

    The ``vshiftpair`` combines the source stream's registers at
    displacements ``k0·B`` and ``(k0+1)·B``; ``amount`` is the byte
    count, an int or a hoisted scalar register.  ``None`` as a plan
    means the shift is a compile-time no-op.
    """

    k0: int
    amount: int | SExpr


def plan_shift(ctx: CodegenCtx, node: RShiftStream, residue: int) -> ShiftPlan | None:
    """Decide register pair and amount for a ``vshiftstream`` node.

    ``residue`` is the loop-counter residue (in elements, mod B) of the
    program point the generated code will execute at.
    """
    V = ctx.V
    rho = (residue % ctx.B) * ctx.D
    src_off = node.src.offset(V)
    to = node.to

    if isinstance(src_off, KnownOffset) and isinstance(to, KnownOffset):
        if src_off.value == to.value:
            return None
        delta = src_off.value - to.value  # in (-V, V), nonzero
        amount = delta % V
        r = (src_off.value + rho) % V
        k0 = (r - delta) // V + (delta // V)
        return ShiftPlan(k0, amount)

    if rho != 0:
        raise CodegenError(
            "runtime stream shifts require a counter residue of 0 "
            "(the general bounds scheme)"
        )

    if isinstance(src_off, RuntimeOffset) and to == KnownOffset(0):
        # Misaligned load shifted to zero: left shift of the
        # current/next pair by the runtime offset itself.
        return ShiftPlan(0, ctx.offset_sexpr(src_off))

    if src_off == KnownOffset(0) and isinstance(to, RuntimeOffset):
        # Stream shifted from zero to the store's runtime alignment:
        # right shift of the previous/current pair by V - To.
        to_expr = ctx.offset_sexpr(to)
        amount = ctx.hoist(("rsh", to.array, to.residue), "sh_",
                           s_sub(SConst(V), to_expr))
        return ShiftPlan(-1, amount)

    raise CodegenError(
        f"cannot determine shift operands from {src_off} to {to} at compile "
        "time; runtime alignments require the zero-shift policy (Section 4.4)"
    )


def gen_expr(ctx: CodegenCtx, node: RNode, disp: int = 0, residue: int = 0) -> VExpr:
    """Non-pipelined ``GenSimdExpr``: lower ``node`` displaced by ``disp``
    elements (``disp = k*B`` realizes the paper's ``i -> i + kB``) for a
    program point whose counter is ≡ ``residue`` (mod B)."""
    if isinstance(node, RLoad):
        return VLoadE(Addr(node.ref.array.name, node.ref.offset + disp))
    if isinstance(node, RSplat):
        return gen_splat(ctx, node)
    if isinstance(node, RIota):
        return VIotaE(disp, ctx.loop.dtype)
    if isinstance(node, ROp):
        inputs = [gen_expr(ctx, child, disp, residue) for child in node.inputs]
        return _fold_op(node, inputs)
    if isinstance(node, RShiftStream):
        return gen_shift_stream(ctx, node, disp, residue)
    raise CodegenError(f"unknown graph node {type(node).__name__}")


def gen_splat(ctx: CodegenCtx, node: RSplat) -> VExpr:
    if isinstance(node.operand, Const):
        operand: SExpr = SConst(ctx.loop.dtype.wrap(node.operand.value))
    elif isinstance(node.operand, ScalarVar):
        operand = SVar(node.operand.name)
    else:
        raise CodegenError(f"bad splat operand {node.operand}")
    return VSplatE(operand, ctx.loop.dtype)


def gen_shift_stream(ctx: CodegenCtx, node: RShiftStream, disp: int, residue: int) -> VExpr:
    """Lower a stream shift by combining two adjacent stream registers."""
    plan = plan_shift(ctx, node, residue)
    if plan is None:
        return gen_expr(ctx, node.src, disp, residue)
    lo = gen_expr(ctx, node.src, disp + plan.k0 * ctx.B, residue)
    hi = gen_expr(ctx, node.src, disp + (plan.k0 + 1) * ctx.B, residue)
    return VShiftPairE(lo, hi, plan.amount)


def _fold_op(node: ROp, inputs: list[VExpr]) -> VExpr:
    """Combine n-ary graph inputs into binary vector arithmetic."""
    if not inputs:
        raise CodegenError(f"operation {node} has no inputs")
    result = inputs[0]
    for operand in inputs[1:]:
        result = VBinE(node.op, result, operand, node.dtype)
    return result
