"""Loop-level SIMD code generation (paper Sections 4.2–4.5).

Assembles the complete vector program from a validated reorganization
graph:

* a **prologue** per statement — the peeled first simdized iteration,
  storing a partial vector by splicing the new values into the previous
  memory contents from the store alignment onward (Figure 9,
  ``GenSimdStmt-Prologue``);
* the **steady-state loop**, stepping by the blocking factor ``B``;
* an **epilogue** per statement storing the left-over tail, up to one
  full vector plus one partial vector (Sections 4.2–4.4);
* software-pipelining **initialisation** when requested (Figure 10).

Two bounds schemes are implemented:

* ``single`` — the single-statement scheme with compile-time alignments
  and trip count: ``LB = (V − ProSplice)/D`` (eq. 10),
  ``UB = ub − ⌊EpiSplice/D⌋`` (eq. 11);
* ``general`` — the multi-statement/runtime scheme: ``LB = B``
  (eq. 12), ``UB = ub − B + 1`` (eq. 15), relying on the truncation
  effect of vector memory addressing, with per-statement left-over
  ``EpiLeftOver = ProSplice + (ub mod B)·D`` (eq. 16) stored by the
  epilogue as one conditional full vector plus one conditional partial
  vector.

Loops whose (runtime) trip count is not greater than ``3B`` take the
guarded scalar fallback, exactly as Section 4.4 prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.offsets import KnownOffset
from repro.codegen.context import CodegenCtx
from repro.codegen.exprgen import gen_expr
from repro.codegen.swp import SwpPieces, gen_expr_sp
from repro.errors import CodegenError
from repro.ir.expr import Loop
from repro.reorg.graph import LoopGraph, StatementGraph
from repro.reorg.validate import validate_graph
from repro.vir.program import SteadyLoop, VProgram
from repro.vir.vexpr import (
    Addr,
    SConst,
    SExpr,
    SVar,
    VExpr,
    VLoadE,
    VSpliceE,
    s_add,
    s_bin,
    s_mod,
    s_mul,
    s_sub,
)
from repro.vir.vstmt import Section, VStoreS


@dataclass
class GenOptions:
    """Code-generation options (a subset of the driver's SimdOptions)."""

    software_pipeline: bool = False
    bounds_scheme: str = "auto"  # "auto" | "single" | "general"


def generate_program(graph: LoopGraph, options: GenOptions | None = None) -> VProgram:
    """Lower a validated reorganization graph to a vector program."""
    options = options or GenOptions()
    validate_graph(graph)
    loop = graph.loop
    V = graph.V
    ctx = CodegenCtx(loop, V)
    B, D = ctx.B, ctx.D

    scheme = _pick_scheme(graph, options)
    trip_expr = _trip_sexpr(loop)

    # Small or unknown trip counts: the vector path needs ub > 3B
    # (prologue + at least one steady iteration + epilogue).
    if isinstance(loop.upper, int) and loop.upper <= 3 * B:
        return VProgram(source=loop, V=V, guard_min_trip=loop.upper)

    program = VProgram(source=loop, V=V)
    program.guard_min_trip = 3 * B if loop.runtime_upper else None

    if scheme == "single":
        sg = graph.statements[0]
        P = _known_store_offset(sg, V)
        lb_val = (V - P) // D if P else B
        epi_splice = (P + loop.upper * D) % V
        ub_val = loop.upper - epi_splice // D
        lb: SExpr = SConst(lb_val)
        ub: SExpr = SConst(ub_val)
        program.steady_residue = lb_val % B
    else:
        lb = SConst(B)
        ub = s_sub(trip_expr, SConst(B - 1))
        program.steady_residue = 0

    residue = program.steady_residue
    pieces = SwpPieces()
    body: list = []
    for sg in graph.statements:
        store_addr = Addr(sg.store.ref.array.name, sg.store.ref.offset)
        if options.software_pipeline:
            expr = gen_expr_sp(ctx, sg.store.src, 0, residue, pieces)
            body.extend(pieces.body)
            pieces.body = []
        else:
            expr = gen_expr(ctx, sg.store.src, 0, residue)
        body.append(VStoreS(store_addr, expr))

        program.prologue.append(_prologue_section(ctx, sg))
        if scheme == "single":
            program.epilogue.extend(
                _single_epilogue_sections(ctx, sg, ub, epi_splice, residue)
            )
        else:
            program.epilogue.extend(
                _general_epilogue_sections(ctx, sg, trip_expr)
            )

    if pieces.init:
        program.prologue.append(
            Section("swp_init", stmts=pieces.init, i_expr=lb)
        )

    program.steady = SteadyLoop(lb=lb, ub=ub, step=B, body=body, bottom=pieces.bottom)
    program.preheader = ctx.preheader
    return program


# ---------------------------------------------------------------------------
# Scheme selection and shared helpers
# ---------------------------------------------------------------------------

def _pick_scheme(graph: LoopGraph, options: GenOptions) -> str:
    loop = graph.loop
    single_ok = (
        len(graph.statements) == 1
        and not loop.runtime_upper
        and isinstance(graph.statements[0].store.offset(graph.V), KnownOffset)
    )
    if options.bounds_scheme == "single":
        if not single_ok:
            raise CodegenError(
                "single-statement bounds need one statement with compile-time "
                "store alignment and trip count"
            )
        return "single"
    if options.bounds_scheme == "general":
        return "general"
    if options.bounds_scheme == "auto":
        return "single" if single_ok else "general"
    raise CodegenError(f"unknown bounds scheme {options.bounds_scheme!r}")


def _trip_sexpr(loop: Loop) -> SExpr:
    return SConst(loop.upper) if isinstance(loop.upper, int) else SVar(loop.upper)


def _known_store_offset(sg: StatementGraph, V: int) -> int:
    off = sg.store.offset(V)
    if not isinstance(off, KnownOffset):
        raise CodegenError("store alignment is not a compile-time constant")
    return off.value % V


def _store_splice_point(ctx: CodegenCtx, sg: StatementGraph) -> SExpr:
    """ProSplice: the store stream's alignment (paper eq. 8)."""
    return ctx.offset_sexpr(sg.store.offset(ctx.V))


# ---------------------------------------------------------------------------
# Prologue / epilogue section builders
# ---------------------------------------------------------------------------

def _prologue_section(ctx: CodegenCtx, sg: StatementGraph) -> Section:
    """Peeled first simdized iteration with a partial store (Figure 9)."""
    ref = sg.store.ref
    addr = Addr(ref.array.name, ref.offset)
    new = gen_expr(ctx, sg.store.src, 0, residue=0)
    point = _store_splice_point(ctx, sg)
    spliced = _splice_old_new(addr, new, point, old_first=True)
    return Section(
        f"prologue_s{sg.statement_index}",
        stmts=[VStoreS(addr, spliced)],
        i_expr=SConst(0),
    )


def _splice_old_new(addr: Addr, new: VExpr, point: SExpr, old_first: bool) -> VExpr:
    """``vsplice`` of previous memory contents with newly computed values.

    ``old_first=True`` keeps the *old* bytes before the splice point
    (prologue); ``False`` keeps the *new* bytes first (epilogue).
    A compile-time degenerate splice collapses to the surviving side.
    """
    old = VLoadE(addr)
    if isinstance(point, SConst) and point.value == 0:
        return new if old_first else old
    a, b = (old, new) if old_first else (new, old)
    if isinstance(point, SConst):
        return VSpliceE(a, b, point.value)
    return VSpliceE(a, b, point)


def _single_epilogue_sections(
    ctx: CodegenCtx, sg: StatementGraph, ub: SExpr, epi_splice: int, residue: int
) -> list[Section]:
    """Single-statement epilogue: one partial store at ``i = UB`` (eq. 9/11).

    ``UB ≡ LB (mod B)``, so the epilogue inherits the steady residue.
    """
    if epi_splice == 0:
        return []
    ref = sg.store.ref
    addr = Addr(ref.array.name, ref.offset)
    new = gen_expr(ctx, sg.store.src, 0, residue)
    spliced = _splice_old_new(addr, new, SConst(epi_splice), old_first=False)
    return [
        Section(
            f"epilogue_s{sg.statement_index}",
            stmts=[VStoreS(addr, spliced)],
            i_expr=ub,
        )
    ]


def _general_epilogue_sections(
    ctx: CodegenCtx, sg: StatementGraph, trip: SExpr
) -> list[Section]:
    """Multi-statement/runtime epilogue (Section 4.3).

    After the steady loop the statement still owes
    ``EpiLeftOver = ProSplice + (ub mod B)·D`` bytes (eq. 16), which is
    always below ``2V``: a conditional full vector store followed by a
    conditional partial store.
    """
    V, B, D = ctx.V, ctx.B, ctx.D
    ref = sg.store.ref
    addr = Addr(ref.array.name, ref.offset)
    pro_splice = _store_splice_point(ctx, sg)
    left_over = s_add(pro_splice, s_mul(s_mod(trip, SConst(B)), SConst(D)))
    i_full = s_sub(trip, s_mod(trip, SConst(B)))
    has_full = s_bin("ge", left_over, SConst(V))
    partial_point = s_mod(left_over, SConst(V))
    i_partial = s_add(i_full, s_mul(SConst(B), has_full))

    sections: list[Section] = []

    full_new = gen_expr(ctx, sg.store.src, 0, residue=0)
    full_sec = Section(
        f"epilogue_full_s{sg.statement_index}",
        stmts=[VStoreS(addr, full_new)],
        i_expr=i_full,
        cond=None if _is_true(has_full) else has_full,
    )
    if not _is_false(has_full):
        sections.append(full_sec)

    part_cond = s_bin("gt", partial_point, SConst(0))
    part_new = gen_expr(ctx, sg.store.src, 0, residue=0)
    spliced = _splice_old_new(addr, part_new, partial_point, old_first=False)
    part_sec = Section(
        f"epilogue_part_s{sg.statement_index}",
        stmts=[VStoreS(addr, spliced)],
        i_expr=i_partial,
        cond=None if _is_true(part_cond) else part_cond,
    )
    if not _is_false(part_cond):
        sections.append(part_sec)
    return sections


def _is_true(expr: SExpr) -> bool:
    return isinstance(expr, SConst) and expr.value != 0


def _is_false(expr: SExpr) -> bool:
    return isinstance(expr, SConst) and expr.value == 0
