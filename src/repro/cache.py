"""Cross-process disk cache for compiled artifacts.

The bench runner memoizes :func:`~repro.simdize.driver.simdize` results
per process and the jit engine memoizes compiled kernels per process —
but ``measure_many`` fans work out over a ``ProcessPoolExecutor``, and
repeated CLI invocations are separate processes, so identical lowering
work is redone everywhere.  This module gives those memos a shared
disk tier: a content-addressed pickle store under ``~/.cache/repro``
(overridable with ``REPRO_CACHE_DIR`` or ``--cache-dir``).

Design rules:

* **Versioned keys.** Every key embeds the package version plus a
  per-artifact schema version (see :data:`CACHE_SCHEMA_VERSION` and the
  artifact modules), so entries written by older code are simply never
  hit — a stale code version means a recompute, not a wrong answer.
* **Silent misses.** Any I/O or unpickling failure — missing file,
  truncated write, corrupted or hostile bytes, unwritable directory —
  degrades to a cache miss.  The cache can only make runs faster,
  never make them fail.
* **Quarantined corruption.** An entry that fails to unpickle is
  renamed to ``*.corrupt`` (bounded count, oldest dropped) instead of
  being silently re-missed forever: the bad bytes stay available for
  diagnosis, the key's slot is freed so the next ``put`` repairs it,
  and ``stats()`` counts ``corrupt_quarantined``.
* **Unwritable degradation.** When writes keep failing (read-only
  directory, wrong owner, full disk), the disk tier turns itself off
  after :data:`WRITE_FAILURE_LIMIT` consecutive failures with a single
  recorded warning; reads keep working and the in-process memos carry
  on alone.  Nothing ever raises.
* **Atomic writes.** Entries are written to a temp file and renamed,
  so concurrent ``measure_many`` workers sharing one directory never
  observe half-written pickles.
* **Self-checking entries.** Each entry stores ``(key, value)`` and a
  ``get`` whose stored key differs (hash collision, foreign file) is a
  miss.
* **Bounded size.** The store holds at most ``max_bytes`` of entries
  (``REPRO_CACHE_MAX_BYTES``, default 1 GiB, ``0`` = unlimited);
  every ``put`` that crosses the budget evicts least-recently-*used*
  entries first — a ``get`` hit touches the file's mtime — so long
  sweep campaigns cannot grow the cache without limit and the hot
  working set survives.
* **Sibling artifacts.** A key may carry raw byte artifacts next to
  its pickle entry (``put_artifact`` / ``artifact_path``) — the native
  tier stores a kernel's ``.c`` source and compiled ``.so`` this way.
  Artifacts share the entry's digest stem, count toward the size
  budget, are touched and evicted *as a unit* with their pickle, and
  quarantine to ``<name>.<suffix>.corrupt`` like any other corruption.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import tempfile
import warnings
from pathlib import Path

from repro import faults

#: Bump when the on-disk entry layout itself changes.
CACHE_SCHEMA_VERSION = 1

#: Most ``*.corrupt`` quarantine files kept around for diagnosis.
QUARANTINE_MAX = 32

#: Consecutive ``put`` failures before the disk tier disables itself.
WRITE_FAILURE_LIMIT = 3

#: Default size budget for the disk tier when neither the constructor
#: nor ``REPRO_CACHE_MAX_BYTES`` says otherwise.
DEFAULT_CACHE_MAX_BYTES = 1 << 30  # 1 GiB


def _env_max_bytes() -> int:
    """The size budget from ``REPRO_CACHE_MAX_BYTES`` (0 = unlimited)."""
    env = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if env is None:
        return DEFAULT_CACHE_MAX_BYTES
    try:
        value = int(env)
    except ValueError:
        return DEFAULT_CACHE_MAX_BYTES
    return max(0, value)


class DiskCache:
    """A content-addressed pickle store with never-fail semantics."""

    def __init__(self, root: str | Path, max_bytes: int | None = None):
        self.root = Path(root)
        self.max_bytes = _env_max_bytes() if max_bytes is None else max_bytes
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.errors = 0
        self.evictions = 0
        self.corrupt_quarantined = 0
        self.write_failures = 0
        self.disabled = False

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.root / digest[:2] / f"{digest}.pkl"

    def _siblings(self, path: Path) -> list[Path]:
        """Every live file sharing ``path``'s digest stem (path included)."""
        group = [path] if path.exists() else []
        try:
            for sibling in path.parent.glob(path.stem + ".*"):
                if sibling == path or sibling.name.endswith((".tmp", ".corrupt")):
                    continue
                group.append(sibling)
        except OSError:
            pass
        return group

    def get(self, key: str):
        """The cached value for ``key``, or None (silently) on any miss."""
        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        data = faults.mangle("cache", data)
        try:
            stored_key, value = pickle.loads(data)
            if stored_key != key:
                raise ValueError("key mismatch")
        except Exception:
            # Corrupted, truncated, or foreign entry: a miss, not a
            # crash — but quarantine the bytes so the slot frees up and
            # the corruption stays diagnosable instead of re-missing on
            # every lookup forever.
            self.errors += 1
            self.misses += 1
            self._quarantine(path)
            return None
        self._touch(path)
        self.hits += 1
        return value

    def _touch(self, path: Path) -> None:
        # Touch for LRU recency: eviction takes oldest group mtime
        # first, and an entry's sibling artifacts age with it.
        for member in self._siblings(path):
            try:
                os.utime(member)
            except OSError:
                pass

    def _quarantine(self, path: Path) -> None:
        """Move a corrupted entry aside as ``*.corrupt`` (best-effort).

        The population of quarantine files is bounded: past
        :data:`QUARANTINE_MAX` the corrupted entry is simply unlinked,
        so a corruption storm cannot grow the directory without limit.
        Pickle entries keep the historical ``<digest>.corrupt`` name;
        non-pickle artifacts append (``<digest>.so.corrupt``) so the
        failing artifact kind stays visible.
        """
        try:
            kept = sum(1 for _ in self.root.glob("??/*.corrupt"))
            if kept >= QUARANTINE_MAX:
                path.unlink()
            elif path.suffix == ".pkl":
                path.rename(path.with_suffix(".corrupt"))
            else:
                path.rename(path.with_suffix(path.suffix + ".corrupt"))
            self.corrupt_quarantined += 1
        except OSError:
            pass

    def quarantine_artifacts(self, key: str) -> None:
        """Quarantine ``key``'s whole entry group after a load failure.

        Used when a *loaded* artifact turns out bad (a ``.so`` that
        fails checksum or ``dlopen``): the pickle metadata and every
        sibling move aside together, so the next ``put`` repairs the
        slot instead of re-serving the same broken object forever.
        """
        for member in self._siblings(self._path(key)):
            self._quarantine(member)

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key``; failures are silently dropped.

        Persistent write failure (read-only directory, full disk)
        degrades the whole disk tier to read-only after
        :data:`WRITE_FAILURE_LIMIT` consecutive misfires, with one
        recorded warning — in-process memos keep the run correct.
        """
        if self.disabled:
            return
        path = self._path(key)
        tmp = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                pickle.dump((key, value), handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
            tmp = None
            self.puts += 1
            self.write_failures = 0
        except Exception:
            self.errors += 1
            self.write_failures += 1
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            if self.write_failures >= WRITE_FAILURE_LIMIT:
                self.disabled = True
                warnings.warn(
                    f"repro disk cache at {self.root} is unwritable after "
                    f"{self.write_failures} attempts; continuing with "
                    f"in-process caching only",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return
        self._evict_if_needed()

    # -- raw byte artifacts (native-tier .c / .so siblings) --------------

    def put_artifact(self, key: str, suffix: str, data: bytes) -> None:
        """Store raw bytes as ``<digest>{suffix}`` next to ``key``'s entry.

        Same never-fail discipline as :meth:`put`: atomic tmp+rename,
        silent drops, the write-failure counter shared with pickles so
        a dead disk disables the whole tier, and the size budget
        enforced over the *group* (entry plus artifacts).
        """
        if self.disabled:
            return
        path = self._path(key).with_suffix(suffix)
        tmp = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
            tmp = None
            self.puts += 1
            self.write_failures = 0
        except Exception:
            self.errors += 1
            self.write_failures += 1
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            if self.write_failures >= WRITE_FAILURE_LIMIT:
                self.disabled = True
                warnings.warn(
                    f"repro disk cache at {self.root} is unwritable after "
                    f"{self.write_failures} attempts; continuing with "
                    f"in-process caching only",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return
        self._evict_if_needed()

    def put_artifact_file(self, key: str, suffix: str, src: Path) -> None:
        """Store an existing file as ``key``'s ``suffix`` artifact.

        Copies ``src`` into place as a *distinct inode*.  The batched
        native pipeline compiles many signatures into one shared object
        and files that ``.so`` under *every* signature's entry group
        this way, keeping each group individually evictable.  A copy —
        never a hardlink — is deliberate: the source object is usually
        dlopen-mapped by the producing process, and a shared inode
        would let in-place corruption of a cache entry (tampering,
        partial writes) reach straight into live executable mappings.
        Same atomic tmp+rename and never-fail discipline as
        :meth:`put_artifact`.
        """
        if self.disabled:
            return
        path = self._path(key).with_suffix(suffix)
        tmp = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            os.close(fd)
            shutil.copyfile(src, tmp)
            os.replace(tmp, path)
            tmp = None
            self.puts += 1
            self.write_failures = 0
        except Exception:
            self.errors += 1
            self.write_failures += 1
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            if self.write_failures >= WRITE_FAILURE_LIMIT:
                self.disabled = True
                warnings.warn(
                    f"repro disk cache at {self.root} is unwritable after "
                    f"{self.write_failures} attempts; continuing with "
                    f"in-process caching only",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return
        self._evict_if_needed()

    def artifact_path(self, key: str, suffix: str) -> Path | None:
        """The on-disk path of ``key``'s ``suffix`` artifact, or None.

        Touches the whole entry group on a hit, like :meth:`get`, so
        an artifact read keeps its pickle sibling warm too.
        """
        path = self._path(key).with_suffix(suffix)
        try:
            if not path.is_file():
                return None
        except OSError:
            return None
        self._touch(self._path(key))
        return path

    def _evict_if_needed(self) -> None:
        """Drop least-recently-used entry *groups* until under ``max_bytes``.

        A group is every file sharing one digest stem — the pickle
        entry plus any sibling artifacts (``.c``/``.so``) — sized as a
        sum, aged by its most recent member, and unlinked as a unit so
        a surviving ``.so`` can never outlive the metadata that
        validates it.  Best-effort and never-fail like everything else
        here: entries racing with concurrent workers may vanish
        mid-scan (fine — the goal was deletion), and any other error
        simply leaves the cache over budget until the next ``put``.
        """
        if not self.max_bytes:
            return
        try:
            groups: dict[Path, list] = {}
            total = 0
            for path in self.root.glob("??/*"):
                if path.name.endswith((".tmp", ".corrupt")):
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                stem = path.parent / path.name.split(".", 1)[0]
                entry = groups.setdefault(stem, [0.0, 0, []])
                entry[0] = max(entry[0], stat.st_mtime)
                entry[1] += stat.st_size
                entry[2].append(path)
                total += stat.st_size
            if total <= self.max_bytes:
                return
            ordered = sorted(
                (mtime, size, members)
                for mtime, size, members in groups.values()
            )
            for _, size, members in ordered:
                removed = False
                for path in members:
                    try:
                        path.unlink()
                        removed = True
                    except OSError:
                        continue
                if not removed:
                    continue
                self.evictions += 1
                total -= size
                if total <= self.max_bytes:
                    break
        except Exception:
            self.errors += 1

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "errors": self.errors,
                "evictions": self.evictions,
                "corrupt_quarantined": self.corrupt_quarantined,
                "write_failures": self.write_failures,
                "disabled": int(self.disabled)}


# ---------------------------------------------------------------------------
# Process-global cache selection
# ---------------------------------------------------------------------------

_UNSET = object()
_cache: DiskCache | None | object = _UNSET


def default_cache_dir() -> Path | None:
    """The directory ``get_cache`` uses when none was set explicitly.

    ``REPRO_CACHE_DIR`` overrides the default of ``~/.cache/repro``;
    setting it to an empty string disables disk caching entirely.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env is not None:
        return Path(env) if env else None
    return Path.home() / ".cache" / "repro"


def get_cache() -> DiskCache | None:
    """The process-wide disk cache, or None when disk caching is off."""
    global _cache
    if _cache is _UNSET:
        root = default_cache_dir()
        _cache = DiskCache(root) if root is not None else None
    return _cache  # type: ignore[return-value]


def set_cache_dir(path: str | Path | None) -> None:
    """Point the process-wide cache at ``path`` (None disables it)."""
    global _cache
    _cache = DiskCache(path) if path is not None else None


def reset_cache_dir() -> None:
    """Forget any explicit choice; resolve the default again lazily."""
    global _cache
    _cache = _UNSET


def current_cache_dir() -> Path | None:
    """The directory the process-wide cache writes to (None when off)."""
    cache = get_cache()
    return cache.root if cache is not None else None
