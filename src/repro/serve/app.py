"""Simdization-as-a-service: the long-lived ``repro serve`` app.

One asyncio process turns the library into a service that amortizes
its warm state — the simdize memo, the jit kernel LRU, the native
``.so`` cache, the shared disk cache — across every request instead of
across one CLI invocation.  The request path is hardened in layers:

1. **Admission.**  At most ``max_inflight`` requests execute at once;
   at most ``max_queue`` more may wait.  Beyond that the server sheds
   load immediately with ``429`` + ``Retry-After`` instead of growing
   an unbounded queue.  A second, independent bound is the worker
   thread pool: CPU-bound work abandoned by a timed-out request keeps
   occupying its pool thread (threads cannot be cancelled), so the
   pool — not the abandoned request — backpressures later arrivals.
2. **Single-flight.**  Identical concurrent requests (and concurrent
   native warmups of one program signature) coalesce onto one task
   (:mod:`repro.serve.singleflight`): N twins, one simdize, one ``cc``.
3. **Micro-batching.**  Concurrent ``/verify`` requests whose programs
   share a signature class are collected for a few milliseconds and
   executed as ONE batched backend call
   (:func:`~repro.simdize.verify.verify_equivalence_batch`) — the same
   config-batch axis the sweep runners use.
4. **Deadlines.**  Every request carries a budget (``X-Repro-Deadline``
   header, default ``deadline``); exceeding it answers ``504``.
   Cancellation is memory-safe by construction: requests only ever
   mutate request-local ``Memory`` objects built from their own seed,
   and shared caches are touched from worker threads, which cancellation
   abandons but never interrupts — so no deadline can leave a
   half-mutated memory or a torn cache behind.
5. **Circuit breaker.**  The native tier's compile pipeline sits
   behind a :class:`~repro.serve.breaker.CircuitBreaker`; repeated
   compile failures or budget overruns trip it and requests degrade to
   jit-only serving — recorded in response metadata with the same
   structured shape as :class:`~repro.machine.backend.ResilientBackend`
   fallback records — until a half-open probe recovers.
6. **Graceful drain.**  SIGTERM/SIGINT stop the listener, let
   in-flight requests finish (bounded by ``drain_timeout``), flush a
   final stats line, and exit 0.

Fault injection: the ``serve`` phase of ``REPRO_FAULT`` is consumed
per request via :func:`repro.faults.decision` — ``reject`` sheds with
429 before admission, ``disconnect`` drops the connection without a
response, ``delay`` stalls inside the admission slot (driving deadline
and overload paths), ``raise`` answers 500.  ``/healthz`` and
``/stats`` bypass faults and admission so the service stays
observable while it degrades.
"""

from __future__ import annotations

import asyncio
import json
import random
import sys
import threading
import time
from collections import OrderedDict, defaultdict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import faults
from repro.errors import FaultInjected, ServeError, SimdalError
from repro.serve import http
from repro.serve.breaker import CircuitBreaker
from repro.serve.singleflight import SingleFlight

#: Figures /sweep can regenerate, mirroring ``repro bench``.
SWEEP_FIGURES = ("fig11", "fig12", "table1", "table2")

_SWEEP_CACHE_MAX = 32


def _env_float(name: str, default: float) -> float:
    raw = __import__("os").environ.get(name, "")
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return default


def _env_int(name: str, default: int) -> int:
    return int(_env_float(name, float(default)))


@dataclass
class ServeConfig:
    """Tunables for one server process (env defaults: ``REPRO_SERVE_*``)."""

    host: str = "127.0.0.1"
    port: int = 8787
    workers: int = 4              # executor threads (CPU-bound work)
    max_inflight: int = 8         # admission slots
    max_queue: int = 32           # waiters beyond which 429
    deadline: float = 30.0        # default per-request budget (seconds)
    compile_budget: float = 15.0  # breaker-guarded native warmup budget
    breaker_threshold: int = 3    # consecutive failures that trip it
    breaker_cooldown: float = 5.0
    batch_window: float = 0.005   # micro-batch collection window (s)
    drain_timeout: float = 30.0   # grace for in-flight work on SIGTERM

    @classmethod
    def from_env(cls) -> "ServeConfig":
        base = cls()
        return cls(
            host=base.host,
            port=_env_int("REPRO_SERVE_PORT", base.port),
            workers=_env_int("REPRO_SERVE_WORKERS", base.workers),
            max_inflight=_env_int("REPRO_SERVE_MAX_INFLIGHT",
                                  base.max_inflight),
            max_queue=_env_int("REPRO_SERVE_MAX_QUEUE", base.max_queue),
            deadline=_env_float("REPRO_SERVE_DEADLINE", base.deadline),
            compile_budget=_env_float("REPRO_SERVE_COMPILE_BUDGET",
                                      base.compile_budget),
            breaker_threshold=_env_int("REPRO_SERVE_BREAKER_THRESHOLD",
                                       base.breaker_threshold),
            breaker_cooldown=_env_float("REPRO_SERVE_BREAKER_COOLDOWN",
                                        base.breaker_cooldown),
            batch_window=_env_float("REPRO_SERVE_BATCH_WINDOW",
                                    base.batch_window),
            drain_timeout=_env_float("REPRO_SERVE_DRAIN_TIMEOUT",
                                     base.drain_timeout),
        )


@dataclass
class _VerifySpec:
    """Validated /verify (and /simdize) request parameters."""

    source: str
    name: str = "loop"
    V: int = 16
    seed: int = 0
    trip: int | None = None
    scalars: dict[str, int] = field(default_factory=dict)
    backend: str = "auto"
    scalar_backend: str = "auto"
    options: object = None  # SimdOptions


def _json_response(status: int, payload: dict,
                   extra: dict[str, str] | None = None):
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return status, body, "application/json", (extra or {})


class _MicroBatcher:
    """Collect compatible /verify jobs briefly, execute them as one
    batched backend call.

    Jobs are grouped by ``(signature class, backend, scalar_backend)``
    — the same class key the batched sweep mode uses, so everything in
    a group shares one compiled kernel.  The first job of a group arms
    a ``call_later(window)`` flush; each job resolves through its own
    future, so a job abandoned at its deadline never blocks (or
    corrupts) its batch-mates.
    """

    def __init__(self, app: "ServeApp", window: float):
        self._app = app
        self._window = window
        self._groups: dict[tuple, list] = {}

    def submit(self, group_key: tuple, item) -> asyncio.Future:
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        group = self._groups.get(group_key)
        if group is None:
            self._groups[group_key] = [(item, fut)]
            loop.call_later(self._window, self._flush, group_key)
        else:
            group.append((item, fut))
        return fut

    def _flush(self, group_key: tuple) -> None:
        group = self._groups.pop(group_key, None)
        if not group:
            return
        asyncio.ensure_future(self._run_group(group_key, group))

    async def _run_group(self, group_key: tuple, group) -> None:
        app = self._app
        _, backend, scalar_backend = group_key
        items = [item for item, _ in group]
        app.counters["batches"] += 1
        app.counters["batch_rows"] += len(items)
        try:
            reports = await app._offload(app._execute_batch, items, backend,
                                         scalar_backend)
        except Exception as exc:
            for _, fut in group:
                if not fut.done():
                    fut.set_exception(exc)
            return
        for (_, fut), report in zip(group, reports):
            if not fut.done():
                fut.set_result(report)

    def __len__(self) -> int:
        return sum(len(g) for g in self._groups.values())


class ServeApp:
    """The request-handling core, independent of any real socket.

    Tests drive it through :meth:`handle_connection` with in-memory
    stream pairs or through a real ``asyncio.start_server``; the CLI
    wraps it in :func:`serve_forever`.
    """

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig.from_env()
        self.breaker = CircuitBreaker(self.config.breaker_threshold,
                                      self.config.breaker_cooldown)
        self.flight = SingleFlight()
        self.batcher = _MicroBatcher(self, self.config.batch_window)
        self.counters: dict[str, int] = defaultdict(int)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.config.workers),
            thread_name_prefix="repro-serve")
        # Serializes the cache-mutating phases (simdize memo, native
        # warmup, whole sweeps) across worker threads; execution itself
        # runs concurrently on request-local memories.
        self._compile_lock = threading.Lock()
        self._sem = asyncio.Semaphore(self.config.max_inflight)
        self._inflight = 0
        self._waiting = 0
        self._threads_busy = 0
        self._draining = False
        self._drain_event: asyncio.Event | None = None
        self._connections: set[asyncio.Task] = set()
        self._sweep_cache: OrderedDict[tuple, bytes] = OrderedDict()
        self._started = time.monotonic()

    # -- plumbing -----------------------------------------------------

    def _log(self, message: str) -> None:
        print(f"serve: {message}", file=sys.stderr, flush=True)

    async def _offload(self, fn, *args):
        """Run ``fn`` on the worker pool, shielded from cancellation.

        A request abandoning the await (deadline) leaves the thread
        running to completion — threads cannot be interrupted — so the
        shared caches it touches are never torn; the done callback
        keeps the busy gauge honest and consumes the exception of
        abandoned futures.
        """
        loop = asyncio.get_running_loop()
        fut = loop.run_in_executor(self._pool, fn, *args)
        self._threads_busy += 1

        def _done(finished) -> None:
            self._threads_busy -= 1
            if not finished.cancelled():
                finished.exception()

        fut.add_done_callback(_done)
        return await asyncio.shield(fut)

    def request_drain(self) -> None:
        """Begin graceful shutdown (signal handlers call this)."""
        if not self._draining:
            self._draining = True
            self.counters["drains"] += 1
            self._log("drain requested; no longer accepting work")
        if self._drain_event is not None:
            self._drain_event.set()

    async def wait_idle(self, timeout: float) -> bool:
        """Wait for in-flight connections to finish; False on timeout."""
        deadline = time.monotonic() + timeout
        while self._connections or self._threads_busy:
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.01)
        return True

    def close(self) -> None:
        self._pool.shutdown(wait=False)

    # -- connection handling ------------------------------------------

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_one(reader, writer)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # Last resort: a handler bug must cost one response, never
            # the process.
            self.counters["unhandled_errors"] += 1
            self._log(f"unhandled handler error: {type(exc).__name__}: {exc}")
            self._try_write(writer, 500, {"error": "internal server error"})
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _try_write(self, writer, status: int, payload: dict) -> None:
        try:
            _, body, ctype, extra = _json_response(status, payload)
            writer.write(http.response_bytes(status, body, ctype, extra))
        except (ConnectionError, OSError):
            pass

    async def _serve_one(self, reader, writer) -> None:
        try:
            request = await asyncio.wait_for(http.read_request(reader), 10.0)
        except http.BadRequest as exc:
            self.counters["bad_requests"] += 1
            self._try_write(writer, exc.status, {"error": str(exc)})
            return
        except asyncio.TimeoutError:
            self.counters["bad_requests"] += 1
            self._try_write(writer, 408, {"error": "request header timeout"})
            return
        if request is None:
            return
        self.counters["requests_total"] += 1

        # Ops endpoints bypass faults and admission: the service stays
        # observable precisely when it is shedding or degrading.
        if request.path == "/healthz":
            status, body, ctype, extra = self._healthz()
        elif request.path == "/stats":
            status, body, ctype, extra = self._stats()
        else:
            kind = faults.decision("serve")
            if kind == "disconnect":
                self.counters["fault_disconnects"] += 1
                self._log("injected disconnect")
                return  # close without a response
            if kind == "reject":
                self.counters["rejected_429"] += 1
                self._log("injected reject: 429 shed")
                status, body, ctype, extra = _json_response(
                    429, {"error": "server busy (injected reject)",
                          "retry_after": 1},
                    {"Retry-After": "1"})
            else:
                status, body, ctype, extra = await self._admit(request, kind)
        self.counters[f"responses_{status}"] += 1
        try:
            writer.write(http.response_bytes(status, body, ctype, extra))
            await writer.drain()
        except (ConnectionError, OSError):
            self.counters["client_disconnects"] += 1

    async def _admit(self, request: http.Request, kind: str | None):
        """Admission control + deadline around the routed handler."""
        if self._draining:
            return _json_response(503, {"error": "server draining"},
                                  {"Retry-After": "1"})
        try:
            deadline = float(request.headers.get("x-repro-deadline",
                                                 self.config.deadline))
        except ValueError:
            return _json_response(400, {"error": "bad X-Repro-Deadline"})
        if deadline <= 0:
            return _json_response(400, {"error": "bad X-Repro-Deadline"})

        if (self._inflight >= self.config.max_inflight
                and self._waiting >= self.config.max_queue):
            self.counters["rejected_429"] += 1
            self._log(f"429 shed (inflight {self._inflight}, "
                      f"queue {self._waiting} full)")
            return _json_response(
                429, {"error": "server busy", "retry_after": 1},
                {"Retry-After": "1"})

        loop = asyncio.get_running_loop()
        started = loop.time()
        self._waiting += 1
        try:
            try:
                await asyncio.wait_for(self._sem.acquire(), deadline)
            except asyncio.TimeoutError:
                self.counters["deadline_timeouts"] += 1
                return _json_response(
                    504, {"error": "deadline exceeded waiting for a slot"})
        finally:
            self._waiting -= 1
        self._inflight += 1
        try:
            remaining = deadline - (loop.time() - started)
            if remaining <= 0:
                self.counters["deadline_timeouts"] += 1
                return _json_response(504, {"error": "deadline exceeded"})
            try:
                return await asyncio.wait_for(self._route(request, kind),
                                              remaining)
            except asyncio.TimeoutError:
                self.counters["deadline_timeouts"] += 1
                return _json_response(504, {"error": "deadline exceeded"})
        finally:
            self._inflight -= 1
            self._sem.release()

    async def _route(self, request: http.Request, kind: str | None):
        if kind == "delay":
            self.counters["fault_delays"] += 1
            await asyncio.sleep(faults.sleep_seconds())
        try:
            if kind == "raise":
                raise FaultInjected("serve")
            if request.path == "/simdize":
                if request.method != "POST":
                    return _json_response(405, {"error": "POST required"})
                return await self._coalesced("simdize", request.body,
                                             self._do_simdize)
            if request.path == "/verify":
                if request.method != "POST":
                    return _json_response(405, {"error": "POST required"})
                return await self._coalesced("verify", request.body,
                                             self._do_verify)
            if request.path == "/sweep":
                if request.method not in ("GET", "POST"):
                    return _json_response(405, {"error": "GET/POST required"})
                return await self._handle_sweep(request)
            return _json_response(404, {"error": f"no route {request.path}"})
        except FaultInjected as exc:
            self.counters["fault_raises"] += 1
            return _json_response(500, {"error": str(exc)})
        except ServeError as exc:
            return _json_response(400, {"error": str(exc)})
        except SimdalError as exc:
            # The client's program is at fault, not the server.
            return _json_response(
                400, {"error": f"{type(exc).__name__}: {exc}"})
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.counters["unhandled_errors"] += 1
            self._log(f"handler error: {type(exc).__name__}: {exc}")
            return _json_response(500, {"error": "internal server error"})

    async def _coalesced(self, endpoint: str, body: bytes, worker):
        """Single-flight identical POST bodies onto one shared task."""
        payload = self._parse_json(body)
        key = (endpoint, json.dumps(payload, sort_keys=True,
                                    separators=(",", ":")))
        task, _leader = self.flight.task_for(
            key, lambda: worker(payload))
        return await asyncio.shield(task)

    def _parse_json(self, body: bytes) -> dict:
        if not body:
            raise ServeError("empty request body (JSON object expected)")
        try:
            payload = json.loads(body)
        except ValueError as exc:
            raise ServeError(f"bad JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise ServeError("JSON body must be an object")
        return payload

    # -- request parsing ----------------------------------------------

    def _parse_spec(self, payload: dict) -> _VerifySpec:
        from repro.simdize.options import SimdOptions

        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ServeError("'source' (mini-C text) is required")
        unknown = set(payload) - {
            "source", "name", "V", "seed", "trip", "scalars", "backend",
            "scalar_backend", "policy", "reuse", "unroll", "reassoc",
        }
        if unknown:
            raise ServeError(f"unknown fields: {sorted(unknown)}")
        try:
            spec = _VerifySpec(
                source=source,
                name=str(payload.get("name", "loop")),
                V=int(payload.get("V", 16)),
                seed=int(payload.get("seed", 0)),
                trip=(None if payload.get("trip") is None
                      else int(payload["trip"])),
                scalars={str(k): int(v)
                         for k, v in (payload.get("scalars") or {}).items()},
                backend=str(payload.get("backend", "auto")),
                scalar_backend=str(payload.get("scalar_backend", "auto")),
            )
            spec.options = SimdOptions(
                policy=str(payload.get("policy", "auto")),
                reuse=str(payload.get("reuse", "sp")),
                unroll=int(payload.get("unroll", 1)),
                offset_reassoc=bool(payload.get("reassoc", False)),
            )
        except (TypeError, ValueError) as exc:
            raise ServeError(f"bad parameter: {exc}") from None
        from repro.machine.backend import (BACKEND_CHOICES,
                                           SCALAR_BACKEND_CHOICES)

        if spec.backend not in BACKEND_CHOICES:
            raise ServeError(f"unknown backend {spec.backend!r}")
        if spec.scalar_backend not in SCALAR_BACKEND_CHOICES:
            raise ServeError(f"unknown scalar backend {spec.scalar_backend!r}")
        return spec

    # -- /simdize -----------------------------------------------------

    async def _do_simdize(self, payload: dict):
        spec = self._parse_spec(payload)
        result, program_text = await self._offload(self._simdize_work, spec)
        return _json_response(200, {
            "policy": result.policy,
            "shift_count": result.shift_count,
            "program": program_text,
        })

    def _simdize_work(self, spec: _VerifySpec):
        from repro.bench.runner import _cached_simdize
        from repro.lang import compile_source
        from repro.vir.printer import format_program

        with self._compile_lock:
            loop_ir = compile_source(spec.source, name=spec.name)
            result = _cached_simdize(loop_ir, spec.V, spec.options)
        return result, format_program(result.program, altivec=True)

    # -- /verify ------------------------------------------------------

    async def _do_verify(self, payload: dict):
        spec = self._parse_spec(payload)
        result, class_key, item = await self._offload(self._verify_prepare,
                                                      spec)
        backend, degraded = await self._gate_native(spec.backend,
                                                    result.program)
        report = await asyncio.shield(self.batcher.submit(
            (class_key, backend, spec.scalar_backend), item))
        body = {
            "verified": True,
            "policy": result.policy,
            "shift_count": result.shift_count,
            "trip": report.trip,
            "scalar_ops": report.scalar_total,
            "vector_ops": report.vector_total,
            "scalar_opd": report.scalar_opd,
            "vector_opd": report.vector_opd,
            "speedup": report.speedup,
            "backend": backend,
            "used_fallback": report.used_fallback,
            # Structured degradation, innermost first: the resilient
            # chain's own record, the batch-level record, then the
            # serve-level circuit/budget record.
            "fallback": report.fallback,
            "batch_fallback": report.batch_fallback,
            "scalar_fallback": report.scalar_fallback,
            "degraded": degraded,
        }
        return _json_response(200, body)

    def _verify_prepare(self, spec: _VerifySpec):
        """Compile + simdize + build the request-local memory image.

        Seeding matches :func:`repro.run_and_verify` exactly, so a
        /verify response is byte-for-byte the CLI ``repro run`` result
        for the same source and seed.
        """
        from repro.bench.runner import _cached_simdize
        from repro.lang import compile_source
        from repro.machine.backend import numpy_available
        from repro.machine.scalar import RunBindings
        from repro.simdize.verify import fill_random, make_space

        with self._compile_lock:
            loop_ir = compile_source(spec.source, name=spec.name)
            result = _cached_simdize(loop_ir, spec.V, spec.options)
        rng = random.Random(spec.seed)
        space = make_space(loop_ir, spec.V, rng)
        mem = space.make_memory()
        fill_random(space, mem, rng)
        bindings = RunBindings(trip=spec.trip, scalars=spec.scalars)
        if numpy_available():
            from repro.machine.jit import _cached_signature

            class_key = _cached_signature(result.program)
        else:
            class_key = result.class_key()
        return result, class_key, (result.program, space, mem, bindings)

    def _execute_batch(self, items, backend: str, scalar_backend: str):
        from repro.simdize.verify import verify_equivalence_batch

        return verify_equivalence_batch(items, backend=backend,
                                        scalar_backend=scalar_backend)

    # -- the breaker-guarded native warmup ----------------------------

    async def _gate_native(self, backend: str, program):
        """Admit/degrade the native tier for one request.

        Returns ``(effective backend, degradation record | None)``.
        The warmup itself — one batched ``cc`` via ``precompile`` — is
        single-flighted per program signature, so concurrent requests
        for one signature cost one compiler invocation total.
        """
        from repro.machine.backend import numpy_available

        if backend != "native" or not numpy_available():
            # Without numpy there is no native tier to warm; execution
            # raises the same friendly needs-numpy error as the CLI.
            return backend, None
        if not self.breaker.allow():
            self.counters["degraded_native"] += 1
            self._log("circuit open: native tier suspended, serving jit")
            return "jit", {"tier": "jit", "phase": "compile",
                           "reason": "circuit open", "failed": ["native"]}
        key = ("warm", self._program_signature(program))
        task, _ = self.flight.task_for(
            key, lambda: self._offload(self._warm_native, program))
        try:
            await asyncio.wait_for(asyncio.shield(task),
                                   self.config.compile_budget)
        except asyncio.TimeoutError:
            self.breaker.failure()
            self.counters["degraded_native"] += 1
            self._log(f"native warmup exceeded compile budget "
                      f"({self.config.compile_budget:g}s); "
                      f"breaker {self.breaker.state}")
            return "jit", {"tier": "jit", "phase": "compile",
                           "reason": "compile budget exceeded",
                           "failed": ["native"]}
        except Exception as exc:
            self.breaker.failure()
            self.counters["degraded_native"] += 1
            self._log(f"native warmup failed ({exc}); "
                      f"breaker {self.breaker.state}")
            return "jit", {"tier": "jit", "phase": "compile",
                           "reason": str(exc), "failed": ["native"]}
        self.breaker.success()
        return "native", None

    def _program_signature(self, program) -> str:
        from repro.machine.backend import numpy_available

        if numpy_available():
            from repro.machine.jit import _cached_signature

            return _cached_signature(program)
        return repr(program.source.signature())

    def _warm_native(self, program) -> None:
        """Compile the program's native kernel ahead of execution.

        Raises on injected compile faults and on real (memoized) cc
        failures so the breaker sees them; a missing compiler or
        async-compile mode make this a cheap no-op and the resilient
        chain handles tier selection at execution time.
        """
        faults.fault("compile")
        from repro.machine import compilequeue, native

        with self._compile_lock:
            compilequeue.precompile([program])
            cc, identity = native._compiler_identity()
            if cc is not None:
                signature = self._program_signature(program)
                key = native._disk_key(signature, identity)
                reason = native._FAILED.get(key)
                if reason is not None:
                    raise ServeError(f"native compile failed: {reason}")

    # -- /sweep -------------------------------------------------------

    async def _handle_sweep(self, request: http.Request):
        params: dict = dict(request.query)
        if request.method == "POST" and request.body:
            body = self._parse_json(request.body)
            params.update(body)
        figure = str(params.get("figure", ""))
        if figure not in SWEEP_FIGURES:
            raise ServeError(
                f"'figure' must be one of {list(SWEEP_FIGURES)}")
        try:
            count = int(params.get("count", 10))
            trip = int(params.get("trip", 509))
        except (TypeError, ValueError) as exc:
            raise ServeError(f"bad parameter: {exc}") from None
        backend = str(params.get("backend", "auto"))
        sweep_mode = str(params.get("sweep_mode", "periter"))
        if count < 1 or trip < 1:
            raise ServeError("count and trip must be positive")

        cache_key = (figure, count, trip, backend, sweep_mode)
        cached = self._sweep_cache.get(cache_key)
        if cached is not None:
            self._sweep_cache.move_to_end(cache_key)
            self.counters["sweep_cache_hits"] += 1
            return 200, cached, "text/plain; charset=utf-8", {}
        self.counters["sweep_cache_misses"] += 1
        task, _ = self.flight.task_for(
            ("sweep",) + cache_key,
            lambda: self._offload(self._sweep_work, figure, count, trip,
                                  backend, sweep_mode))
        body = await asyncio.shield(task)
        if len(self._sweep_cache) >= _SWEEP_CACHE_MAX:
            self._sweep_cache.popitem(last=False)
        self._sweep_cache[cache_key] = body
        return 200, body, "text/plain; charset=utf-8", {}

    def _sweep_work(self, figure: str, count: int, trip: int,
                    backend: str, sweep_mode: str) -> bytes:
        """Regenerate one figure, byte-identical to the CLI.

        Same builders, same defaults, same ``RunPolicy()`` as
        ``repro bench`` — the response body is exactly what
        ``python -m repro bench <figure> --count N --trip-count T``
        prints, which is what CI's byte-parity ``cmp`` checks.
        """
        from repro.bench import figure11, figure12, table1, table2
        from repro.bench.runner import RunPolicy

        builders = {"fig11": figure11, "fig12": figure12,
                    "table1": table1, "table2": table2}
        with self._compile_lock:
            result = builders[figure](
                count=count, trip=trip, jobs=1, backend=backend,
                scalar_backend="auto", profile=None, sweep_mode=sweep_mode,
                run_policy=RunPolicy())
        return (result.format() + "\n").encode()

    # -- ops endpoints ------------------------------------------------

    def _healthz(self):
        healthy = not self._draining
        payload = {
            "status": "ok" if healthy else "draining",
            "breaker": self.breaker.state,
            "inflight": self._inflight,
            "waiting": self._waiting,
            "uptime_s": round(time.monotonic() - self._started, 3),
        }
        return _json_response(200 if healthy else 503, payload)

    def _stats(self):
        from repro.cache import get_cache

        try:
            from repro.machine import native
            native_stats = {k: v for k, v in native.STATS.items()
                            if isinstance(v, (int, float))}
        except ImportError:      # no numpy: no jit/native tiers
            native_stats = None
        cache = get_cache()
        payload = {
            "uptime_s": round(time.monotonic() - self._started, 3),
            "draining": self._draining,
            "inflight": self._inflight,
            "waiting": self._waiting,
            "threads_busy": self._threads_busy,
            "counters": dict(sorted(self.counters.items())),
            "singleflight": self.flight.snapshot(),
            "breaker": self.breaker.snapshot(),
            "native": native_stats,
            "disk_cache": cache.stats() if cache is not None else None,
            "config": {
                "max_inflight": self.config.max_inflight,
                "max_queue": self.config.max_queue,
                "deadline_s": self.config.deadline,
                "compile_budget_s": self.config.compile_budget,
                "batch_window_s": self.config.batch_window,
                "workers": self.config.workers,
            },
        }
        return _json_response(200, payload)

    def stats_payload(self) -> dict:
        """The /stats document as a dict (drain flush + tests)."""
        _, body, _, _ = self._stats()
        return json.loads(body)


async def serve_forever(config: ServeConfig | None = None,
                        ready=None) -> int:
    """Run the server until SIGTERM/SIGINT, then drain gracefully.

    ``ready`` (if given) is called with the bound ``(host, port)`` once
    the listener is up — the bench harness and tests use it instead of
    parsing stdout.  Returns the process exit code (0: clean drain).
    """
    import signal as _signal

    app = ServeApp(config)
    app._drain_event = asyncio.Event()
    server = await asyncio.start_server(app.handle_connection,
                                        app.config.host, app.config.port)
    host, port = server.sockets[0].getsockname()[:2]
    loop = asyncio.get_running_loop()
    installed = []
    for sig in (_signal.SIGTERM, _signal.SIGINT):
        try:
            loop.add_signal_handler(sig, app.request_drain)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):
            pass
    print(f"serve: listening on http://{host}:{port}", flush=True)
    if ready is not None:
        ready((host, port))
    try:
        await app._drain_event.wait()
        server.close()
        await server.wait_closed()
        clean = await app.wait_idle(app.config.drain_timeout)
        stats = json.dumps(app.stats_payload(), sort_keys=True)
        print(f"serve: drained ({'clean' if clean else 'timed out'}); "
              f"final stats: {stats}", file=sys.stderr, flush=True)
        return 0 if clean else 1
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
        app.close()
