"""Simdization-as-a-service: the ``repro serve`` HTTP tier.

Layout:

* :mod:`repro.serve.http` — minimal HTTP/1.1 over asyncio streams.
* :mod:`repro.serve.singleflight` — coalescing of identical work.
* :mod:`repro.serve.breaker` — the native-compile circuit breaker.
* :mod:`repro.serve.app` — admission, micro-batching, deadlines,
  degradation, drain; :func:`~repro.serve.app.serve_forever` is the
  CLI entry point.

See DESIGN.md §7 (Serving) for the architecture and the HTTP status
contract, and ``benchmarks/bench_serve.py`` for the load harness.
"""

from repro.serve.app import ServeApp, ServeConfig, serve_forever
from repro.serve.breaker import CircuitBreaker
from repro.serve.singleflight import SingleFlight

__all__ = [
    "CircuitBreaker",
    "ServeApp",
    "ServeConfig",
    "SingleFlight",
    "serve_forever",
]
