"""Single-flight coalescing of identical concurrent work.

When N clients ask the server for the same thing at the same time —
the same program simdized, the same figure swept, the same signature
compiled — exactly one of them should pay for it.  ``SingleFlight``
keys in-flight tasks; the first caller for a key becomes the *leader*
and starts the work, later callers become *followers* that await the
leader's task.  The task is deliberately detached from any one
request's lifetime: a follower (or even the leader) hitting its
deadline abandons its *await* — via ``asyncio.shield`` at the call
site — without cancelling the shared task, so late-arriving twins
still coalesce onto work already in progress and a warm result still
lands in the caches.

Event-loop-thread only, like everything else in :mod:`repro.serve`.
"""

from __future__ import annotations

import asyncio


class SingleFlight:
    """In-flight task table keyed by request identity."""

    def __init__(self):
        self._inflight: dict[object, asyncio.Task] = {}
        self.leaders = 0     # tasks started
        self.coalesced = 0   # callers that joined an existing task

    def task_for(self, key, factory) -> tuple[asyncio.Task, bool]:
        """The shared task for ``key`` (started via ``factory()`` if
        absent) and whether this caller is the leader.

        Callers await it as ``await asyncio.shield(task)`` so their own
        cancellation never kills work their twins are waiting on.
        """
        task = self._inflight.get(key)
        if task is not None:
            self.coalesced += 1
            return task, False
        task = asyncio.ensure_future(factory())
        self._inflight[key] = task
        self.leaders += 1

        def _done(finished: asyncio.Task, key=key) -> None:
            self._inflight.pop(key, None)
            if not finished.cancelled():
                finished.exception()  # consume: every caller may be gone

        task.add_done_callback(_done)
        return task, True

    def __len__(self) -> int:
        return len(self._inflight)

    def snapshot(self) -> dict:
        return {
            "inflight": len(self._inflight),
            "leaders": self.leaders,
            "coalesced": self.coalesced,
        }
