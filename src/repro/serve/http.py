"""A tiny HTTP/1.1 layer over asyncio streams.

The serving tier (:mod:`repro.serve.app`) needs exactly four things
from HTTP: parse a request line + headers + optional body, expose the
query string, emit a status/headers/body response, and never let a
malformed peer take the process down.  The standard library's
``http.server`` is thread-per-connection and ``asyncio``'s own stack
stops at raw streams, so this module implements the protocol subset
directly — one request per connection, ``Connection: close`` on every
response — rather than pulling in a framework the container doesn't
have.

Limits are hard: request line and each header capped at 8 KiB, at
most 64 headers, bodies capped at 1 MiB (:data:`MAX_BODY`).  Anything
over a limit or syntactically broken raises :class:`BadRequest`,
which the connection handler maps to a 400/413 and a closed socket.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

#: Hard cap on request bodies (bytes); larger requests get a 413.
MAX_BODY = 1 << 20
_MAX_LINE = 8192
_MAX_HEADERS = 64

#: Status lines for every code the app emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class BadRequest(Exception):
    """Malformed or over-limit request; carries the status to answer."""

    def __init__(self, message: str, status: int = 400):
        self.status = status
        super().__init__(message)


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str                      # target path without the query string
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)  # lower-cased keys
    body: bytes = b""


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off ``reader``; None on clean EOF.

    Raises :class:`BadRequest` on protocol violations and
    ``asyncio.IncompleteReadError``/``LimitOverrunError`` surface as
    BadRequest too, so callers have a single error type to answer.
    """
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise BadRequest(f"request line unreadable: {exc}") from None
    if not line:
        return None
    if len(line) > _MAX_LINE:
        raise BadRequest("request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line {line!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    headers: dict[str, str] = {}
    while True:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as exc:
            raise BadRequest(f"header unreadable: {exc}") from None
        if not line:
            raise BadRequest("connection closed inside headers")
        if len(line) > _MAX_LINE:
            raise BadRequest("header line too long")
        if line in (b"\r\n", b"\n"):
            break
        if len(headers) >= _MAX_HEADERS:
            raise BadRequest("too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise BadRequest(f"bad content-length {raw_length!r}") from None
        if length < 0:
            raise BadRequest(f"bad content-length {raw_length!r}")
        if length > MAX_BODY:
            raise BadRequest("request body too large", status=413)
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise BadRequest("connection closed inside body") from None
    elif "chunked" in headers.get("transfer-encoding", "").lower():
        raise BadRequest("chunked request bodies are not supported")

    return Request(method=method, path=split.path or "/", query=query,
                   headers=headers, body=body)


def response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one complete ``Connection: close`` response."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body
