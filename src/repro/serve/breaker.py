"""Circuit breaker for the native compile pipeline.

The server's slowest dependency is the host C toolchain: one wedged
``cc`` (or a burst of failing compiles under fault injection) must not
queue every native-tier request behind a doomed subprocess.  The
breaker wraps that dependency with the classic three-state machine:

* **closed** — requests use the native tier; consecutive compile
  failures are counted, and reaching ``threshold`` trips to *open*.
* **open** — the native tier is skipped entirely (the server degrades
  those requests to jit and says so in response metadata).  After
  ``cooldown`` seconds the next candidate request is admitted as a
  *half-open* probe.
* **half-open** — exactly one in-flight probe; its success closes the
  breaker, its failure re-opens it for another full cooldown.

The clock is injected (default ``time.monotonic``) so tests drive the
cooldown deterministically, and every transition is counted for
``/stats``.  Thread-safety: all calls happen on the event-loop thread,
so no locking is needed — the class is deliberately not thread-safe.
"""

from __future__ import annotations

import time

#: State names, as reported by /stats and asserted by tests.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probes."""

    def __init__(self, threshold: int = 3, cooldown: float = 5.0,
                 clock=time.monotonic):
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._state = CLOSED
        self._failures = 0          # consecutive, while closed
        self._opened_at = 0.0
        self._probe_inflight = False
        self.trips = 0              # closed/half-open -> open transitions
        self.recoveries = 0         # half-open -> closed transitions

    @property
    def state(self) -> str:
        # An expired cooldown reads as half-open: the *next* allow()
        # will admit the probe that actually moves the machine.
        if self._state == OPEN and not self._cooling():
            return HALF_OPEN
        return self._state

    def _cooling(self) -> bool:
        return self._clock() - self._opened_at < self.cooldown

    def allow(self) -> bool:
        """May this request use the guarded tier right now?

        In open state: False while cooling down; after the cooldown
        the first caller is admitted as the half-open probe and
        subsequent callers stay rejected until the probe reports.
        """
        if self._state == CLOSED:
            return True
        if self._state == OPEN and not self._cooling():
            self._state = HALF_OPEN
            self._probe_inflight = False
        if self._state == HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def success(self) -> None:
        """The guarded call succeeded."""
        if self._state == HALF_OPEN:
            self.recoveries += 1
        self._state = CLOSED
        self._failures = 0
        self._probe_inflight = False

    def failure(self) -> None:
        """The guarded call failed (or timed out)."""
        if self._state == HALF_OPEN:
            self._trip()
            return
        if self._state == OPEN:
            return
        self._failures += 1
        if self._failures >= self.threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._failures = 0
        self._probe_inflight = False
        self._opened_at = self._clock()
        self.trips += 1

    def snapshot(self) -> dict:
        """State + counters for /stats."""
        return {
            "state": self.state,
            "threshold": self.threshold,
            "cooldown_s": self.cooldown,
            "consecutive_failures": self._failures,
            "trips": self.trips,
            "recoveries": self.recoveries,
        }
