"""Vector-IR expressions: scalar address/bound expressions and vector values.

The vector IR is the simdizer's output language.  A program is a
structured skeleton (preheader / prologue sections / steady loop /
epilogue sections, see :mod:`repro.vir.program`) whose statements use
the expression forms defined here:

* :class:`SExpr` — scalar integer expressions (addresses, runtime
  alignments, shift amounts, splice points, loop bounds);
* :class:`VExpr` — vector values built from truncating loads, the
  paper's generic reorganization ops, and lane arithmetic.

Addresses are kept symbolic: :class:`Addr` denotes
``base(array) + (i + elem) * D`` where ``i`` is the loop counter bound
by the enclosing program section.  Substituting ``i -> i + B`` (the
paper's ``Substitute`` helper, Figure 7) is therefore just ``elem + B``
— see :func:`displace`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union

from repro.errors import CodegenError
from repro.ir.types import BinaryOp, DataType


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------

class SExpr:
    """Base class of scalar integer expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class SConst(SExpr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class SVar(SExpr):
    """A runtime scalar binding (e.g. the symbolic trip count ``ub``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SBase(SExpr):
    """The runtime base address of an array."""

    array: str

    def __str__(self) -> str:
        return f"&{self.array}[0]"


@dataclass(frozen=True)
class SReg(SExpr):
    """A scalar register defined earlier by a ``SetS`` statement."""

    name: str

    def __str__(self) -> str:
        return self.name


#: Scalar operators and their Python semantics (exact integer math).
S_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a // b,   # floor division, b > 0 in all uses
    "mod": lambda a, b: a % b,    # Python mod: result sign follows b > 0
    "and": lambda a, b: a & b,
    "min": min,
    "max": max,
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
    "eq": lambda a, b: int(a == b),
}

_S_SYMBOLS = {
    "add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "%", "and": "&",
    "lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==",
}


@dataclass(frozen=True)
class SBin(SExpr):
    op: str
    left: SExpr
    right: SExpr

    def __post_init__(self) -> None:
        if self.op not in S_OPS:
            raise CodegenError(f"unknown scalar op {self.op!r}")

    def __str__(self) -> str:
        sym = _S_SYMBOLS.get(self.op)
        if sym is None:
            return f"{self.op}({self.left}, {self.right})"
        return f"({self.left} {sym} {self.right})"


def s_add(a: SExpr, b: SExpr) -> SExpr:
    return _fold("add", a, b)


def s_sub(a: SExpr, b: SExpr) -> SExpr:
    return _fold("sub", a, b)


def s_mul(a: SExpr, b: SExpr) -> SExpr:
    return _fold("mul", a, b)


def s_div(a: SExpr, b: SExpr) -> SExpr:
    return _fold("div", a, b)


def s_mod(a: SExpr, b: SExpr) -> SExpr:
    return _fold("mod", a, b)


def s_and(a: SExpr, b: SExpr) -> SExpr:
    return _fold("and", a, b)


def _fold(op: str, a: SExpr, b: SExpr) -> SExpr:
    """Build an :class:`SBin`, constant-folding when both sides are literal."""
    if isinstance(a, SConst) and isinstance(b, SConst):
        return SConst(S_OPS[op](a.value, b.value))
    return SBin(op, a, b)


def s_bin(op: str, a: SExpr, b: SExpr) -> SExpr:
    """Generic constant-folding scalar-expression builder."""
    return _fold(op, a, b)


#: Operand positions accepting a compile-time int or a scalar expression.
ShiftAmount = Union[int, SExpr]


def as_sexpr(value: "int | SExpr") -> SExpr:
    return SConst(value) if isinstance(value, int) else value


# ---------------------------------------------------------------------------
# Addresses
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Addr:
    """The stride-one address ``base(array) + (i + elem) * D``.

    ``i`` is the (original-iteration-space) loop counter supplied by the
    executing section; the vector unit truncates the low bits on access.
    """

    array: str
    elem: int

    def displaced(self, delta: int) -> "Addr":
        """The address with ``i -> i + delta`` substituted."""
        return replace(self, elem=self.elem + delta)

    def __str__(self) -> str:
        if self.elem == 0:
            return f"&{self.array}[i]"
        sign = "+" if self.elem > 0 else "-"
        return f"&{self.array}[i{sign}{abs(self.elem)}]"


# ---------------------------------------------------------------------------
# Vector expressions
# ---------------------------------------------------------------------------

class VExpr:
    """Base class of vector-valued expressions."""

    __slots__ = ()

    def children(self) -> tuple["VExpr", ...]:
        return ()


@dataclass(frozen=True)
class VLoadE(VExpr):
    """Truncating vector load (paper's ``vload``)."""

    addr: Addr

    def __str__(self) -> str:
        return f"vload({self.addr})"


@dataclass(frozen=True)
class VShiftPairE(VExpr):
    """Select bytes ``shift..shift+V-1`` of ``a ++ b`` (paper's ``vshiftpair``)."""

    a: VExpr
    b: VExpr
    shift: ShiftAmount

    def children(self) -> tuple[VExpr, ...]:
        return (self.a, self.b)

    def __str__(self) -> str:
        return f"vshiftpair({self.a}, {self.b}, {self.shift})"


@dataclass(frozen=True)
class VSpliceE(VExpr):
    """First ``point`` bytes of ``a`` then rest of ``b`` (paper's ``vsplice``)."""

    a: VExpr
    b: VExpr
    point: ShiftAmount

    def children(self) -> tuple[VExpr, ...]:
        return (self.a, self.b)

    def __str__(self) -> str:
        return f"vsplice({self.a}, {self.b}, {self.point})"


@dataclass(frozen=True)
class VSplatE(VExpr):
    """Replicate a loop-invariant scalar into every lane."""

    operand: SExpr
    dtype: DataType

    def __str__(self) -> str:
        return f"vsplat({self.operand})"


@dataclass(frozen=True)
class VBinE(VExpr):
    """Lane-wise arithmetic on two vectors."""

    op: BinaryOp
    a: VExpr
    b: VExpr
    dtype: DataType

    def children(self) -> tuple[VExpr, ...]:
        return (self.a, self.b)

    def __str__(self) -> str:
        return f"v{self.op.name}({self.a}, {self.b})"


@dataclass(frozen=True)
class VIotaE(VExpr):
    """The vectorized loop counter (extension; see ``ir.LoopIndex``).

    Denotes the register of the virtual offset-0 iteration-number
    stream at loop counter ``i + bias``: with ``m = ⌊(i + bias)·D / V⌋``
    its lanes hold ``m·B, m·B+1, …, m·B+B−1`` — the iteration numbers
    whose values share the vector "window" containing iteration
    ``i + bias``.  Real hardware materializes this as a strength-reduced
    counter vector (one lane-wise add per iteration), which is how the
    cost model charges it.
    """

    bias: int
    dtype: DataType

    def __str__(self) -> str:
        if self.bias == 0:
            return "viota(i)"
        sign = "+" if self.bias > 0 else "-"
        return f"viota(i {sign} {abs(self.bias)})"


@dataclass(frozen=True)
class VRegE(VExpr):
    """A vector register defined earlier by a ``SetV`` statement."""

    name: str

    def __str__(self) -> str:
        return self.name


def displace(expr: VExpr, delta: int) -> VExpr:
    """Substitute ``i -> i + delta`` in every address of ``expr``.

    Register references are left untouched — callers must only displace
    pure (register-free) expressions, which is asserted here, because a
    register's defining statement would need displacement too.
    """
    if delta == 0:
        return expr
    if isinstance(expr, VLoadE):
        return VLoadE(expr.addr.displaced(delta))
    if isinstance(expr, VShiftPairE):
        return VShiftPairE(displace(expr.a, delta), displace(expr.b, delta), expr.shift)
    if isinstance(expr, VSpliceE):
        return VSpliceE(displace(expr.a, delta), displace(expr.b, delta), expr.point)
    if isinstance(expr, VSplatE):
        return expr
    if isinstance(expr, VIotaE):
        return VIotaE(expr.bias + delta, expr.dtype)
    if isinstance(expr, VBinE):
        return VBinE(expr.op, displace(expr.a, delta), displace(expr.b, delta), expr.dtype)
    if isinstance(expr, VRegE):
        raise CodegenError(f"cannot displace register reference {expr}")
    raise CodegenError(f"unknown vector expression {type(expr).__name__}")


def is_pure(expr: VExpr) -> bool:
    """True when the expression contains no register references."""
    if isinstance(expr, VRegE):
        return False
    return all(is_pure(child) for child in expr.children())


def walk(expr: VExpr):
    """Yield ``expr`` and all vector-typed descendants, preorder."""
    yield expr
    for child in expr.children():
        yield from walk(child)
