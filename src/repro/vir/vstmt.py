"""Vector-IR statements and program sections."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vir.vexpr import Addr, SExpr, VExpr, VRegE


class VStmt:
    """Base class of vector-IR statements."""

    __slots__ = ()


@dataclass(frozen=True)
class SetS(VStmt):
    """Define scalar register ``reg`` with the value of ``expr``."""

    reg: str
    expr: SExpr

    def __str__(self) -> str:
        return f"{self.reg} = {self.expr};"


@dataclass(frozen=True)
class SetV(VStmt):
    """Define vector register ``reg`` with the value of ``expr``."""

    reg: str
    expr: VExpr

    def __str__(self) -> str:
        return f"{self.reg} = {self.expr};"

    @property
    def is_copy(self) -> bool:
        """True for pure register moves (software-pipelining rotation fodder)."""
        return isinstance(self.expr, VRegE)


@dataclass(frozen=True)
class VStoreS(VStmt):
    """Full-width truncating vector store of ``src`` at ``addr``."""

    addr: Addr
    src: VExpr

    def __str__(self) -> str:
        return f"vstore({self.addr}, {self.src});"


@dataclass
class Section:
    """A straight-line run of statements executed with a fixed loop counter.

    ``i_expr`` gives the original-iteration-space counter value the
    section's addresses are evaluated with (``None`` when no statement
    uses an address).  ``cond`` makes the section conditional — used by
    the multi-statement epilogue, whose extra full store only executes
    when the per-statement left-over exceeds one vector (paper
    Section 4.3), and by unrolling's odd-iteration fix-up.
    """

    label: str
    stmts: list[VStmt] = field(default_factory=list)
    i_expr: SExpr | None = None
    cond: SExpr | None = None

    def __str__(self) -> str:
        head = f"{self.label}:"
        if self.i_expr is not None:
            head += f"  /* i = {self.i_expr} */"
        if self.cond is not None:
            head += f"  /* if ({self.cond}) */"
        body = "\n".join(f"  {s}" for s in self.stmts)
        return f"{head}\n{body}" if body else head
