"""AltiVec-flavoured pretty-printer for vector programs.

The paper implements the generic reorganization ops on AltiVec as
``vec_perm`` (for ``vshiftpair``), ``vec_sel`` (for ``vsplice``) and
``vec_splat``; loads/stores are ``vec_ld``/``vec_st``.  This printer
emits readable pseudo-C in that dialect so examples and docs can show
the code each policy produces.
"""

from __future__ import annotations

from repro.vir.program import VProgram
from repro.vir.vexpr import (
    Addr,
    SExpr,
    VBinE,
    VExpr,
    VIotaE,
    VLoadE,
    VRegE,
    VShiftPairE,
    VSpliceE,
    VSplatE,
)
from repro.vir.vstmt import Section, SetS, SetV, VStmt, VStoreS


def _amount(value) -> str:
    return str(value)


def _addr(addr: Addr, D: int) -> str:
    if addr.elem == 0:
        return f"&{addr.array}[i]"
    sign = "+" if addr.elem > 0 else "-"
    return f"&{addr.array}[i {sign} {abs(addr.elem)}]"


def _vexpr(expr: VExpr, D: int, altivec: bool) -> str:
    if isinstance(expr, VLoadE):
        op = "vec_ld(0, " if altivec else "vload("
        return f"{op}{_addr(expr.addr, D)})"
    if isinstance(expr, VShiftPairE):
        name = "vec_perm" if altivec else "vshiftpair"
        return (f"{name}({_vexpr(expr.a, D, altivec)}, "
                f"{_vexpr(expr.b, D, altivec)}, {_amount(expr.shift)})")
    if isinstance(expr, VSpliceE):
        name = "vec_sel" if altivec else "vsplice"
        return (f"{name}({_vexpr(expr.a, D, altivec)}, "
                f"{_vexpr(expr.b, D, altivec)}, {_amount(expr.point)})")
    if isinstance(expr, VSplatE):
        name = "vec_splat" if altivec else "vsplat"
        return f"{name}({expr.operand})"
    if isinstance(expr, VBinE):
        name = f"vec_{expr.op.name}" if altivec else f"v{expr.op.name}"
        return f"{name}({_vexpr(expr.a, D, altivec)}, {_vexpr(expr.b, D, altivec)})"
    if isinstance(expr, VIotaE):
        name = "vec_iota" if altivec else "viota"
        if expr.bias == 0:
            return f"{name}(i)"
        sign = "+" if expr.bias > 0 else "-"
        return f"{name}(i {sign} {abs(expr.bias)})"
    if isinstance(expr, VRegE):
        return expr.name
    raise TypeError(f"unknown vector expression {type(expr).__name__}")


def _stmt(stmt: VStmt, D: int, altivec: bool) -> str:
    if isinstance(stmt, SetS):
        return f"{stmt.reg} = {stmt.expr};"
    if isinstance(stmt, SetV):
        return f"{stmt.reg} = {_vexpr(stmt.expr, D, altivec)};"
    if isinstance(stmt, VStoreS):
        store = "vec_st" if altivec else "vstore"
        return f"{store}({_vexpr(stmt.src, D, altivec)}, 0, {_addr(stmt.addr, D)});"
    raise TypeError(f"unknown statement {type(stmt).__name__}")


def _section(sec: Section, D: int, altivec: bool, indent: str) -> list[str]:
    lines = []
    header = f"// --- {sec.label}"
    if sec.i_expr is not None:
        header += f"  (i = {sec.i_expr})"
    lines.append(indent + header)
    if sec.cond is not None:
        lines.append(indent + f"if ({sec.cond}) {{")
        inner = indent + "  "
    else:
        inner = indent
    for stmt in sec.stmts:
        lines.append(inner + _stmt(stmt, D, altivec))
    if sec.cond is not None:
        lines.append(indent + "}")
    return lines


def format_program(program: VProgram, altivec: bool = True) -> str:
    """Render a vector program as AltiVec-flavoured (or generic) pseudo-C."""
    D = program.D
    lines: list[str] = []
    lines.append(f"// simdized '{program.source.name}'  "
                 f"(V={program.V} bytes, {program.source.dtype} lanes, B={program.B})")
    if program.guard_min_trip is not None:
        lines.append(f"if (ub <= {program.guard_min_trip}) {{ /* original scalar loop */ }}")
        lines.append("else {")
    indent = "  " if program.guard_min_trip is not None else ""
    if program.preheader:
        lines.append(indent + "// --- preheader")
        for stmt in program.preheader:
            lines.append(indent + _stmt(stmt, D, altivec))
    for sec in program.prologue:
        lines.extend(_section(sec, D, altivec, indent))
    steady = program.steady
    if steady is not None:
        lines.append(indent + f"for (i = {steady.lb}; i < {steady.ub}; i += {steady.step}) {{")
        for stmt in steady.body:
            lines.append(indent + "  " + _stmt(stmt, D, altivec))
        if steady.bottom:
            lines.append(indent + "  // bottom-of-loop copies")
            for stmt in steady.bottom:
                lines.append(indent + "  " + _stmt(stmt, D, altivec))
        lines.append(indent + "}")
    for sec in program.epilogue:
        lines.extend(_section(sec, D, altivec, indent))
    if program.guard_min_trip is not None:
        lines.append("}")
    return "\n".join(lines)
