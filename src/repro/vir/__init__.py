"""Vector IR: the simdizer's output language."""

from repro.vir.printer import format_program
from repro.vir.program import SteadyLoop, VProgram
from repro.vir.vexpr import (
    Addr,
    SBase,
    SBin,
    SConst,
    SExpr,
    SReg,
    SVar,
    VBinE,
    VExpr,
    VIotaE,
    VLoadE,
    VRegE,
    VShiftPairE,
    VSpliceE,
    VSplatE,
    as_sexpr,
    displace,
    is_pure,
    s_add,
    s_and,
    s_div,
    s_mod,
    s_mul,
    s_sub,
    walk,
)
from repro.vir.vstmt import Section, SetS, SetV, VStmt, VStoreS

__all__ = [
    "format_program", "SteadyLoop", "VProgram", "Addr", "SBase", "SBin",
    "SConst", "SExpr", "SReg", "SVar", "VBinE", "VExpr", "VIotaE", "VLoadE", "VRegE",
    "VShiftPairE", "VSpliceE", "VSplatE", "as_sexpr", "displace", "is_pure",
    "s_add", "s_and", "s_div", "s_mod", "s_mul", "s_sub", "walk",
    "Section", "SetS", "SetV", "VStmt", "VStoreS",
]
