"""The structured vector program produced by SIMD code generation.

A :class:`VProgram` mirrors the shape the paper's code generator emits
(Sections 4.2–4.5): a preheader of loop-invariant scalar setup (runtime
alignments, shift amounts, splice points), prologue sections holding the
peeled-and-spliced first simdized iteration plus software-pipelining
initialisation, a steady-state loop, and epilogue sections for the
partial last stores.  A runtime guard (``ub > 3B``, Section 4.4) backs
off to the original scalar loop when the trip count is too small.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.expr import Loop
from repro.vir.vexpr import Addr, SExpr, VExpr, VLoadE, VSpliceE, VShiftPairE, VBinE, walk
from repro.vir.vstmt import Section, SetS, SetV, VStmt, VStoreS


@dataclass
class SteadyLoop:
    """``for (i = lb; i < ub; i += step) { body; bottom; }``.

    ``bottom`` holds the software-pipelining copies (``old = new``) that
    the paper places "at the bottom of the loop" (Figure 10, line 19);
    keeping them separate lets the unroll pass rotate them away.
    """

    lb: SExpr
    ub: SExpr
    step: int
    body: list[VStmt] = field(default_factory=list)
    bottom: list[VStmt] = field(default_factory=list)


@dataclass
class VProgram:
    """A complete simdized loop, ready for the interpreter or printer."""

    source: Loop
    V: int
    preheader: list[VStmt] = field(default_factory=list)
    prologue: list[Section] = field(default_factory=list)
    steady: SteadyLoop | None = None
    epilogue: list[Section] = field(default_factory=list)
    #: Run the scalar loop instead when the runtime trip count is <= this.
    guard_min_trip: int | None = None
    #: Unroll factor already applied to the steady body (cost bookkeeping).
    unroll: int = 1
    #: Residue of the steady loop counter modulo B (``LB mod B``); lets
    #: passes reason about which aligned vector an address truncates to.
    steady_residue: int = 0

    @property
    def D(self) -> int:
        return self.source.dtype.size

    @property
    def B(self) -> int:
        """Blocking factor: data elements per vector (paper eq. 7)."""
        return self.V // self.D

    # -- introspection helpers (used by passes, cost model, and tests) ----

    def body_exprs(self) -> list[VExpr]:
        """Top-level vector expressions of the steady body, in order."""
        out: list[VExpr] = []
        for stmt in self.steady.body if self.steady else []:
            if isinstance(stmt, SetV):
                out.append(stmt.expr)
            elif isinstance(stmt, VStoreS):
                out.append(stmt.src)
        return out

    def body_addrs(self) -> list[Addr]:
        """Every address referenced by the steady body (loads and stores)."""
        addrs: list[Addr] = []
        for stmt in self.steady.body if self.steady else []:
            if isinstance(stmt, SetV):
                addrs.extend(n.addr for n in walk(stmt.expr) if isinstance(n, VLoadE))
            elif isinstance(stmt, VStoreS):
                addrs.extend(n.addr for n in walk(stmt.src) if isinstance(n, VLoadE))
                addrs.append(stmt.addr)
        return addrs

    def pointer_count(self) -> int:
        """Modelled induction pointers: one per distinct array in the body.

        Strength-reduced real code keeps one bumped base pointer per
        array and folds small element displacements into the load's
        immediate field, so this is the per-iteration address overhead.
        """
        return len({a.array for a in self.body_addrs()})

    def all_sections(self) -> list[Section]:
        return list(self.prologue) + list(self.epilogue)

    def count_static(self, kind: type) -> int:
        """Static occurrences of a statement/expression kind, whole program."""
        total = 0
        exprs: list[VExpr] = []
        stmt_lists: list[list[VStmt]] = [self.preheader]
        stmt_lists += [sec.stmts for sec in self.prologue]
        if self.steady:
            stmt_lists += [self.steady.body, self.steady.bottom]
        stmt_lists += [sec.stmts for sec in self.epilogue]
        for stmts in stmt_lists:
            for stmt in stmts:
                if isinstance(stmt, kind):
                    total += 1
                if isinstance(stmt, SetV):
                    exprs.append(stmt.expr)
                elif isinstance(stmt, VStoreS):
                    exprs.append(stmt.src)
        if issubclass(kind, VExpr):
            for expr in exprs:
                total += sum(1 for n in walk(expr) if isinstance(n, kind))
        return total

    def static_shift_count(self) -> int:
        """Static vshiftpair count — what the shift-placement policies minimize."""
        return self.count_static(VShiftPairE)
