"""Compile-once kernel backend: vector programs as fused NumPy closures.

The batched engine (:mod:`repro.machine.npbackend`) already executes
the steady loop as whole-array NumPy calls, but it re-plans and
tree-walks ``_eval_rows`` on **every** ``run()``, and it leaves the
prologue/epilogue splice sections to the byte interpreter's recursive
``_eval_v``.  For sweep workloads the program is fixed while trip
counts and memory images vary, so all of that per-call work is
redundant.  This engine does the paper's compile-time/runtime split
(§5) one level up: everything decidable from the *program text* —
batchability, topological order, window layout, dtype-pinned op
chains, reduction folds, straight-lined prologue/epilogue splices,
structural operation counts — is decided **once**, lowered to Python
source, ``compile()``d, and cached; the materialized kernel only does
the per-*run* work (window bounds, collision checks, the fused ops).

Correctness contract is npbackend's, verbatim: final memory bytes and
:class:`~repro.machine.counters.OpCounters` are bit-identical to the
byte interpreter, and ``used_fallback`` matches the numpy engine —
the compile-time structural checks reuse npbackend's own analysis
helpers, the steady kernel's prelude re-runs npbackend's runtime
window checks (raising :class:`_Unbatchable` *before any memory
mutation* so the per-iteration fallback stays exact), and the inlined
sections call the same byte-level :mod:`repro.machine.vector` helpers
the interpreter calls, with their counter bumps precomputed into
per-section constants.

Kernels are cached at two tiers keyed on the program's structural
signature (:func:`program_signature`):

* an in-process LRU of materialized closures (``_KERNEL_CACHE``), so
  repeated trips and policy ablations pay zero planning or dispatch;
* the shared disk cache (:mod:`repro.cache`) holding the picklable
  :class:`_KernelSpec` — generated source plus the constant tables its
  helpers are rebuilt from — under a key versioned by package version
  and :data:`KERNEL_CODE_VERSION`, so ``measure_many`` workers and
  repeated CLI runs skip codegen too.  A stale code version simply
  never hits; a corrupted entry is a silent miss (cache doctrine).

This module is only imported when NumPy is present; use
:func:`repro.machine.backend.get_backend` for gated access.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.cache import get_cache
from repro.errors import MachineError
from repro.faults import fault as _fault
from repro.machine import interp
from repro.machine import npbackend
from repro.machine import vector as vec
from repro.machine.counters import BRANCH, CALL, OpCounters, SCALAR
from repro.machine.interp import VectorRunResult, run_vector
from repro.machine.npscalar import NumpyScalarBackend
from repro.machine.scalar import RunBindings
from repro.vir.program import VProgram
from repro.vir.vexpr import (
    Addr,
    SBase,
    SBin,
    SConst,
    SExpr,
    SReg,
    SVar,
    VBinE,
    VExpr,
    VIotaE,
    VLoadE,
    VRegE,
    VShiftPairE,
    VSpliceE,
    VSplatE,
)
from repro.vir.vstmt import Section, SetS, SetV, VStmt, VStoreS

#: Bump when the generated-kernel layout or helper semantics change:
#: disk entries written by older code must never materialize.
KERNEL_CODE_VERSION = 2

#: Compile/cache counters (process-wide; snapshot via
#: :func:`repro.machine.backend.jit_compile_stats`).
STATS = {
    "codegens": 0,       # specs lowered from scratch
    "memory_hits": 0,    # materialized closure reused
    "memory_misses": 0,
    "disk_hits": 0,      # spec loaded from the disk cache
    "disk_misses": 0,
    "compile_s": 0.0,    # seconds spent lowering + materializing
}


class _Unbatchable(Exception):
    """Raised by a kernel prelude when this *run* cannot batch.

    Only raised before any memory or register mutation, so the caller
    can fall back to exact per-iteration execution.
    """


class _CantCompile(Exception):
    """An IR form with no emitted equivalent (defensive; IR is closed)."""


# ---------------------------------------------------------------------------
# Structural signatures
# ---------------------------------------------------------------------------
#
# The signature must distinguish every program property the emitted
# kernel bakes in: V, D, step, the upper-bound symbol (it decides which
# SVar reads the runtime trip), statement forms and order in every
# phase, addresses, op/dtype pairs, and scalar operand *structure* (an
# ``SConst(4)`` and a literal ``4`` count SCALAR differently in
# _count_sbins, so scalar expressions serialize with type tags —
# ``str()`` would collide ``SVar("n")`` with ``SReg("n")``).

def _sig_s(expr) -> str:
    if isinstance(expr, int):
        return str(expr)
    if expr is None:
        return "-"
    if isinstance(expr, SConst):
        return f"c{expr.value}"
    if isinstance(expr, SVar):
        return f"v:{expr.name}"
    if isinstance(expr, SBase):
        return f"base:{expr.array}"
    if isinstance(expr, SReg):
        return f"sr:{expr.name}"
    if isinstance(expr, SBin):
        return f"{expr.op}({_sig_s(expr.left)},{_sig_s(expr.right)})"
    return f"?{type(expr).__name__}"


def _sig_v(expr: VExpr) -> str:
    if isinstance(expr, VLoadE):
        return f"ld:{expr.addr.array}:{expr.addr.elem}"
    if isinstance(expr, VRegE):
        return f"r:{expr.name}"
    if isinstance(expr, VShiftPairE):
        return f"shp({_sig_v(expr.a)},{_sig_v(expr.b)},{_sig_s(expr.shift)})"
    if isinstance(expr, VSpliceE):
        return f"spl({_sig_v(expr.a)},{_sig_v(expr.b)},{_sig_s(expr.point)})"
    if isinstance(expr, VSplatE):
        return f"splat({_sig_s(expr.operand)},{expr.dtype.name})"
    if isinstance(expr, VBinE):
        return f"{expr.op.name}<{expr.dtype.name}>({_sig_v(expr.a)},{_sig_v(expr.b)})"
    if isinstance(expr, VIotaE):
        return f"iota({expr.bias},{expr.dtype.name})"
    return f"?{type(expr).__name__}"


def _sig_stmt(stmt: VStmt) -> str:
    if isinstance(stmt, SetS):
        return f"{stmt.reg}:={_sig_s(stmt.expr)}"
    if isinstance(stmt, SetV):
        return f"{stmt.reg}={_sig_v(stmt.expr)}"
    if isinstance(stmt, VStoreS):
        return f"st:{stmt.addr.array}:{stmt.addr.elem}={_sig_v(stmt.src)}"
    return f"?{type(stmt).__name__}"


def _sig_section(section: Section) -> str:
    head = f"[{_sig_s(section.cond)};{_sig_s(section.i_expr)}]"
    return head + ",".join(_sig_stmt(s) for s in section.stmts)


def program_signature(program: VProgram) -> str:
    """A string determining the program's compiled kernel.

    Two programs with equal signatures get the same kernel: every
    baked-in property (stride, windows, ops, counts, pointer count,
    section shapes) is a function of the serialized structure.
    """
    parts = [
        f"V={program.V}",
        f"D={program.D}",
        f"up={program.source.upper!r}",
        "pre{" + ",".join(_sig_stmt(s) for s in program.preheader) + "}",
    ]
    parts.extend("pro" + _sig_section(s) for s in program.prologue)
    steady = program.steady
    if steady is None:
        parts.append("nosteady")
    else:
        parts.append(f"step={steady.step}")
        for stmt in list(steady.body) + list(steady.bottom):
            parts.append(_sig_stmt(stmt))
    parts.extend("epi" + _sig_section(s) for s in program.epilogue)
    return ";".join(parts)


def _cached_signature(program: VProgram) -> str:
    # Programs are immutable after simdize; memoize on the instance so
    # repeated runs of one program skip re-serialization.  The memo is
    # a plain string, so a program that later round-trips through
    # pickle (simdize disk cache) stays picklable.
    sig = getattr(program, "_jit_sig", None)
    if sig is None:
        sig = program_signature(program)
        program._jit_sig = sig
    return sig


# ---------------------------------------------------------------------------
# Kernel specification (picklable — this is what the disk cache holds)
# ---------------------------------------------------------------------------

@dataclass
class _KernelSpec:
    """Generated source plus the constant tables to rebuild its helpers.

    Everything here is picklable (strings, ints, dicts, frozen IR
    dataclasses), so a spec round-trips through the disk cache; the
    non-picklable parts — the NumPy helper closures and the compiled
    code object — are rebuilt from these tables by :func:`_materialize`.
    """

    signature: str
    batchable: bool        # steady loop has a batched kernel (_kernel)
    sections_ok: bool      # preheader/prologue/epilogue compiled (_pre/_post)
    V: int = 0
    stride: int = 0
    step: int = 0
    source: str = ""       # one module: _kernel / _pre / _post defs
    # -- steady-kernel tables -------------------------------------------
    win_keys: tuple = ()   # unique (array, elem) in base-table order
    loads: tuple = ()      # (array, elem, statement position) occurrences
    stores: tuple = ()     # (array, elem, statement position)
    binops: tuple = ()     # (op name, DataType)
    folds: tuple = ()      # (op name, DataType, accumulator register)
    splats: tuple = ()     # (operand SExpr, DataType)
    iotas: tuple = ()      # (bias, DataType)
    shifts: tuple = ()     # runtime vshiftpair shift SExprs
    points: tuple = ()     # runtime vsplice point SExprs
    per_iter: dict = field(default_factory=dict)  # category -> count
    pointers: int = 0
    # -- section tables --------------------------------------------------
    arrays: tuple = ()     # array names hoisted as aA{k}
    bbinops: tuple = ()    # (op name, DataType) per byte-mode vbinop
    bsplats: tuple = ()    # DataType per byte-mode splat factory
    biotas: tuple = ()     # (bias, DataType) per byte-mode iota factory
    counts: tuple = ()     # aggregated OpCounters dicts (_cnt{k})


@dataclass
class _Kernel:
    """A materialized spec; any function is None when not compiled."""

    spec: _KernelSpec
    fn: object | None      # batched steady loop (one run)
    bfn: object | None     # config-batched steady loop (many runs)
    pre: object | None     # preheader + prologue sections
    post: object | None    # epilogue sections


# ---------------------------------------------------------------------------
# Steady-loop emission (array mode)
# ---------------------------------------------------------------------------

class _SteadyEmitter:
    """Lowers the steady sequence to kernel source + constant tables.

    Every emitted subexpression is tagged *variant* — shape ``(n, V)``,
    one row per iteration — or *invariant* — shape ``(1, V)``.  The tag
    decides where a broadcast is required (``np.concatenate`` needs
    equal row counts; ufuncs and window stores broadcast natively), so
    the generated code carries no per-call shape dispatch at all.

    In ``batch`` mode the same walk lowers the statement sequence to a
    *config-batched* kernel ``_bkernel(ctx)`` instead: variant values
    are ``(rows, V)`` with one row per (config, iteration) pair —
    configs stacked in segment order, ragged trip counts welcome —
    and invariant values are ``(C, V)``, one row per config.  Because
    both modes walk the same sequence with the same structural cache
    keys, the constant tables (windows, binops, folds, splats, iotas,
    shift/point exprs) come out identical, and one spec serves both
    kernels.  Shape ambiguity (``C == rows`` whenever every config has
    one steady iteration) is resolved by baking each value's variant
    tag into the emitted source as a literal argument, never inferred
    from array shapes at run time.
    """

    def __init__(self, V: int, batch: bool = False):
        self.V = V
        self.batch = batch
        self.lines: list[str] = []
        self.cache: dict = {}          # structural key -> emitted temp name
        self.win_keys: list = []       # unique (array, elem), B-table order
        self._win_index: dict = {}
        self.loads: list = []
        self.stores: list = []
        self.binops: list = []
        self._binop_index: dict = {}
        self.folds: list = []
        self.splats: list = []
        self.iotas: list = []
        self.shifts: list = []
        self.points: list = []
        self.regvar: dict[str, str] = {}      # register -> result temp
        self.reg_variant: dict[str, bool] = {}
        self.assign_pos: dict[str, int] = {}

    def line(self, text: str) -> None:
        self.lines.append(text)

    def _base_index(self, addr: Addr) -> int:
        key = (addr.array, addr.elem)
        idx = self._win_index.get(key)
        if idx is None:
            idx = len(self.win_keys)
            self.win_keys.append(key)
            self._win_index[key] = idx
        return idx

    def _window(self, addr: Addr, buffer: str, kind: str) -> str:
        key = (kind, addr.array, addr.elem)
        name = self.cache.get(key)
        if name is None:
            idx = self._base_index(addr)
            name = f"{'w' if kind == 'load' else 'sw'}{idx}"
            if self.batch:
                # Gathered copy, not a view: the collision analysis
                # guarantees the copy equals what a live view would
                # read (stores never alias an unsnapshotted load).
                self.line(f"{name} = _bwin({idx}, ctx)")
            else:
                self.line(f"{name} = _win({buffer}, B[{idx}], n)")
            self.cache[key] = name
        return name

    def _binop(self, name: str, dtype) -> str:
        key = (name, dtype)
        idx = self._binop_index.get(key)
        if idx is None:
            idx = len(self.binops)
            self.binops.append((name, dtype))
            self._binop_index[key] = idx
        return f"_b{idx}"

    def _index_amount(self, amount, kind: str) -> str:
        """The shift/point as source text, with range check emitted.

        Compile-time ints in range become literals; runtime SExprs (and
        out-of-range literals, which must still raise npbackend's
        MachineError at run time) go through a checked helper.
        """
        check = "_cks" if kind == "shift" else "_ckp"
        if isinstance(amount, int):
            if 0 <= amount <= self.V:
                return str(amount)
            self.line(f"{check}({amount})")
            return str(amount)
        table = self.shifts if kind == "shift" else self.points
        key = (kind, amount)
        name = self.cache.get(key)
        if name is None:
            prefix = "sh" if kind == "shift" else "pt"
            idx = len(table)
            table.append(amount)
            name = f"{prefix}{idx}"
            if self.batch:
                # Batch callers pre-evaluate and range-check every
                # config's amount (configs with out-of-range values
                # are routed to the per-config kernel so the error
                # raises there); ctx holds one ``(C,)`` array each.
                attr = "shifts" if kind == "shift" else "points"
                self.line(f"{name} = ctx.{attr}[{idx}]")
            else:
                self.line(f"{name} = {check}(_peek(env, _{name}))")
            self.cache[key] = name
        return name

    def _concat_pair(self, a: str, av: bool, b: str, bv: bool) -> tuple[str, str]:
        """Operand texts for concatenate: broadcast the invariant side."""
        if av != bv:
            expand = "_bx({}, ctx)" if self.batch else "_bc({}, n)"
            if not av:
                a = expand.format(a)
            else:
                b = expand.format(b)
        return a, b

    def emit(self, expr: VExpr, pos: int) -> tuple[str, bool]:
        """(source text, variant?) for one expression occurrence."""
        V = self.V
        if isinstance(expr, VLoadE):
            self.loads.append((expr.addr.array, expr.addr.elem, pos))
            return self._window(expr.addr, "read_u8", "load"), True
        if isinstance(expr, VRegE):
            defining = self.assign_pos.get(expr.name)
            if defining is None:
                # Loop-invariant register from the preheader/prologue.
                key = ("inv", expr.name)
                name = self.cache.get(key)
                if name is None:
                    name = f"iv{len([k for k in self.cache if k[0] == 'inv'])}"
                    if self.batch:
                        self.line(f"{name} = _binv(ctx, {expr.name!r})")
                    else:
                        self.line(f"{name} = _invreg(env, {expr.name!r})")
                    self.cache[key] = name
                return name, False
            if defining < pos:
                return self.regvar[expr.name], self.reg_variant[expr.name]
            # Loop-carried: row t reads iteration t-1's value, row 0 the
            # register's pre-loop value (the definer is already emitted —
            # topological order — so its temp is in scope).
            key = ("carry", expr.name)
            name = self.cache.get(key)
            if name is None:
                name = f"cy{len([k for k in self.cache if k[0] == 'carry'])}"
                if self.batch:
                    self.line(
                        f"{name} = _bcy(ctx, {expr.name!r}, "
                        f"{self.regvar[expr.name]}, "
                        f"{self.reg_variant[expr.name]})"
                    )
                else:
                    self.line(
                        f"{name} = _carry(env, {expr.name!r}, "
                        f"{self.regvar[expr.name]}, n)"
                    )
                self.cache[key] = name
            return name, True
        if isinstance(expr, VShiftPairE):
            a, av = self.emit(expr.a, pos)
            b, bv = self.emit(expr.b, pos)
            s = self._index_amount(expr.shift, "shift")
            variant = av or bv
            if self.batch and not isinstance(expr.shift, int):
                # Runtime shift: each config takes its own window.
                a, b = self._concat_pair(a, av, b, bv)
                return f"_btake({a}, {b}, {s}, ctx, {variant})", variant
            a, b = self._concat_pair(a, av, b, bv)
            text = f"np.concatenate(({a}, {b}), axis=1)[:, {s}:{s} + {V}]"
            return text, variant
        if isinstance(expr, VSpliceE):
            a, av = self.emit(expr.a, pos)
            b, bv = self.emit(expr.b, pos)
            p = self._index_amount(expr.point, "point")
            variant = av or bv
            if self.batch and not isinstance(expr.point, int):
                a, b = self._concat_pair(a, av, b, bv)
                return f"_bsplice({a}, {b}, {p}, ctx, {variant})", variant
            a, b = self._concat_pair(a, av, b, bv)
            return f"np.concatenate(({a}[:, :{p}], {b}[:, {p}:]), axis=1)", variant
        if isinstance(expr, VSplatE):
            key = ("splat", expr)
            name = self.cache.get(key)
            if name is None:
                idx = len(self.splats)
                self.splats.append((expr.operand, expr.dtype))
                name = f"spv{idx}"
                if self.batch:
                    self.line(f"{name} = _bsp{idx}(ctx)")
                else:
                    self.line(f"{name} = _sp{idx}(env)")
                self.cache[key] = name
            return name, False
        if isinstance(expr, VBinE):
            a, av = self.emit(expr.a, pos)
            b, bv = self.emit(expr.b, pos)
            fn = self._binop(expr.op.name, expr.dtype)
            return f"{fn}({a}, {b})", av or bv
        if isinstance(expr, VIotaE):
            key = ("iota", expr.bias, expr.dtype)
            name = self.cache.get(key)
            if name is None:
                idx = len(self.iotas)
                self.iotas.append((expr.bias, expr.dtype))
                name = f"io{idx}"
                if self.batch:
                    self.line(f"{name} = _bio{idx}(ctx)")
                else:
                    self.line(f"{name} = _io{idx}(lb, n)")
                self.cache[key] = name
            return name, True


def _emit_steady(program: VProgram, spec_fields: dict) -> bool:
    """Emit the batched steady kernel into ``spec_fields``; False = can't."""
    steady = program.steady
    if steady is None:
        return False
    V = program.V
    stride = steady.step * program.D
    if steady.step <= 0 or stride <= 0 or stride % V:
        return False

    # Structural batchability: npbackend's own compile-time analysis,
    # reused verbatim so both engines fall back on exactly the same
    # programs (the ``used_fallback`` parity contract).
    seq: list[VStmt] = list(steady.body) + list(steady.bottom)
    assign_pos: dict[str, int] = {}
    for pos, stmt in enumerate(seq):
        scratch: list[Addr] = []
        if isinstance(stmt, SetV):
            if stmt.reg in assign_pos:
                return False
            assign_pos[stmt.reg] = pos
            if not npbackend._scan_expr(stmt.expr, scratch):
                return False
        elif isinstance(stmt, VStoreS):
            if not npbackend._scan_expr(stmt.src, scratch):
                return False
        else:
            return False
    reductions: dict[int, VExpr] = {}
    for pos, stmt in enumerate(seq):
        if isinstance(stmt, SetV):
            rhs = npbackend._reduction_rhs(seq, pos)
            if rhs is not None:
                reductions[pos] = rhs
    order = npbackend._topo_order(seq, assign_pos, reductions)
    if order is None:
        return False

    def emit_one(batch: bool) -> _SteadyEmitter:
        em = _SteadyEmitter(V, batch)
        em.assign_pos = assign_pos
        if not batch:
            em.line("B, mem_u8, read_u8 = _prelude(env, lb, n)")
        for pos in order:
            stmt = seq[pos]
            assert isinstance(stmt, SetV)
            var = f"R{pos}"
            if pos in reductions:
                expr = stmt.expr
                assert isinstance(expr, VBinE)
                rhs_text, rhs_variant = em.emit(reductions[pos], pos)
                idx = len(em.folds)
                em.folds.append((expr.op.name, expr.dtype, stmt.reg))
                if batch:
                    em.line(f"{var} = _bf{idx}(ctx, {rhs_text}, {rhs_variant})")
                else:
                    em.line(f"{var} = _f{idx}(env, {rhs_text}, n)")
                variant = False
            else:
                text, variant = em.emit(stmt.expr, pos)
                em.line(f"{var} = {text}")
            em.regvar[stmt.reg] = var
            em.reg_variant[stmt.reg] = variant
        for pos, stmt in enumerate(seq):
            if isinstance(stmt, VStoreS):
                text, src_variant = em.emit(stmt.src, pos)
                if batch:
                    idx = em._base_index(stmt.addr)
                    em.stores.append((stmt.addr.array, stmt.addr.elem, pos))
                    em.line(f"_bst({idx}, ctx, {text}, {src_variant})")
                else:
                    window = em._window(stmt.addr, "mem_u8", "store")
                    em.stores.append((stmt.addr.array, stmt.addr.elem, pos))
                    em.line(f"{window}[:] = {text}")
        # Final register values feed the epilogue.
        for pos in order:
            stmt = seq[pos]
            if batch:
                em.line(f"_bfinal(ctx, {stmt.reg!r}, {em.regvar[stmt.reg]}, "
                        f"{em.reg_variant[stmt.reg]})")
            else:
                em.line(f"env.vregs[{stmt.reg!r}] = "
                        f"{em.regvar[stmt.reg]}[-1].tobytes()")
        return em

    em = emit_one(batch=False)
    bem = emit_one(batch=True)
    # Both passes walk the same sequence with the same cache keys, so
    # the constant tables must agree; the spec stores them once.
    assert (em.win_keys, em.loads, em.stores, em.binops, em.folds,
            em.splats, em.iotas, em.shifts, em.points) == \
           (bem.win_keys, bem.loads, bem.stores, bem.binops, bem.folds,
            bem.splats, bem.iotas, bem.shifts, bem.points)

    per_iter = OpCounters()
    for stmt in seq:
        npbackend._count_stmt(per_iter, stmt)

    spec_fields.update(
        stride=stride,
        step=steady.step,
        win_keys=tuple(em.win_keys),
        loads=tuple(em.loads),
        stores=tuple(em.stores),
        binops=tuple(em.binops),
        folds=tuple(em.folds),
        splats=tuple(em.splats),
        iotas=tuple(em.iotas),
        shifts=tuple(em.shifts),
        points=tuple(em.points),
        per_iter=dict(per_iter.counts),
        pointers=program.pointer_count(),
    )
    spec_fields["_kernel_src"] = (
        "def _kernel(env, lb, n):\n"
        + "\n".join("    " + line for line in em.lines) + "\n"
        + "\n"
        + "def _bkernel(ctx):\n"
        + "\n".join("    " + line for line in (bem.lines or ["pass"])) + "\n"
    )
    return True


# ---------------------------------------------------------------------------
# Section emission (byte mode)
# ---------------------------------------------------------------------------

#: Scalar ops inlined as Python source, matching S_OPS semantics.
_S_INLINE = {
    "add": "({} + {})", "sub": "({} - {})", "mul": "({} * {})",
    "div": "({} // {})", "mod": "({} % {})", "and": "({} & {})",
    "min": "min({}, {})", "max": "max({}, {})",
    "lt": "int({} < {})", "le": "int({} <= {})",
    "gt": "int({} > {})", "ge": "int({} >= {})",
}


class _SectionEmitter:
    """Straight-lines preheader/prologue/epilogue to byte-mode source.

    The emitted code calls the same :mod:`repro.machine.vector` and
    :class:`~repro.machine.memory.Memory` primitives the interpreter
    calls — same byte semantics, same exceptions — but with the
    recursive dispatch flattened away and all counter bumps aggregated
    into per-block constants (``_cnt{k}``) computed at compile time
    from the same structural rules as ``interp._eval_v``.
    """

    def __init__(self, V: int, upper):
        self.V = V
        self.upper_var = upper if isinstance(upper, str) else None
        self.arrays: list[str] = []
        self._array_idx: dict = {}
        self.bbinops: list = []
        self._bbinop_idx: dict = {}
        self.bsplats: list = []
        self._bsplat_idx: dict = {}
        self.biotas: list = []
        self._biota_idx: dict = {}
        self.counts: list = []

    def _array(self, name: str) -> str:
        idx = self._array_idx.get(name)
        if idx is None:
            idx = len(self.arrays)
            self.arrays.append(name)
            self._array_idx[name] = idx
        return f"aA{idx}"

    def _ref(self, table: list, index: dict, key, prefix: str) -> str:
        idx = index.get(key)
        if idx is None:
            idx = len(table)
            table.append(key)
            index[key] = idx
        return f"{prefix}{idx}"

    def _count(self, counters: OpCounters) -> str | None:
        if not counters.counts:
            return None
        idx = len(self.counts)
        self.counts.append(dict(counters.counts))
        return f"_cnt{idx}"

    # -- expression source -----------------------------------------------

    def scalar_src(self, expr: SExpr) -> str:
        if isinstance(expr, SConst):
            return repr(expr.value)
        if isinstance(expr, SVar):
            if expr.name == self.upper_var:
                return "env.trip"
            return f"b.scalar({expr.name!r})"
        if isinstance(expr, SBase):
            return f"{self._array(expr.array)}.base"
        if isinstance(expr, SReg):
            return f"_rs(sregs, {expr.name!r})"
        if isinstance(expr, SBin):
            template = _S_INLINE.get(expr.op)
            if template is None:
                raise _CantCompile(expr.op)
            return template.format(
                self.scalar_src(expr.left), self.scalar_src(expr.right)
            )
        raise _CantCompile(type(expr).__name__)

    def _addr_src(self, addr: Addr, has_i: bool) -> str:
        if not has_i:
            # interp._addr_value raises here; preserve message and point.
            return f"_die({f'address {addr} used in a section with no loop counter'!r})"
        return f"{self._array(addr.array)}.addr(i0 + {addr.elem})"

    def vexpr_src(self, expr: VExpr, has_i: bool) -> str:
        V = self.V
        if isinstance(expr, VLoadE):
            return f"vload({self._addr_src(expr.addr, has_i)}, {V})"
        if isinstance(expr, VRegE):
            return f"_rv(vregs, {expr.name!r})"
        if isinstance(expr, VShiftPairE):
            shift = (expr.shift if isinstance(expr.shift, int)
                     else self.scalar_src(expr.shift))
            return (f"_vshiftpair({self.vexpr_src(expr.a, has_i)}, "
                    f"{self.vexpr_src(expr.b, has_i)}, {shift}, {V})")
        if isinstance(expr, VSpliceE):
            point = (expr.point if isinstance(expr.point, int)
                     else self.scalar_src(expr.point))
            return (f"_vsplice({self.vexpr_src(expr.a, has_i)}, "
                    f"{self.vexpr_src(expr.b, has_i)}, {point}, {V})")
        if isinstance(expr, VSplatE):
            fn = self._ref(self.bsplats, self._bsplat_idx, expr.dtype, "_spb")
            return f"{fn}({self.scalar_src(expr.operand)})"
        if isinstance(expr, VBinE):
            fn = self._ref(self.bbinops, self._bbinop_idx,
                           (expr.op.name, expr.dtype), "_bb")
            return (f"{fn}({self.vexpr_src(expr.a, has_i)}, "
                    f"{self.vexpr_src(expr.b, has_i)})")
        if isinstance(expr, VIotaE):
            if not has_i:
                return f"_die({'viota used in a section with no loop counter'!r})"
            fn = self._ref(self.biotas, self._biota_idx,
                           (expr.bias, expr.dtype), "_iob")
            return f"{fn}(i0)"
        raise _CantCompile(type(expr).__name__)

    # -- statements and sections ------------------------------------------

    def _stmt_lines(self, stmt: VStmt, has_i: bool, out: list[str],
                    indent: str) -> None:
        if isinstance(stmt, SetS):
            out.append(f"{indent}sregs[{stmt.reg!r}] = "
                       f"{self.scalar_src(stmt.expr)}")
        elif isinstance(stmt, SetV):
            if stmt.is_copy:
                out.append(f"{indent}vregs[{stmt.reg!r}] = "
                           f"_rv(vregs, {stmt.expr.name!r})")
            else:
                out.append(f"{indent}vregs[{stmt.reg!r}] = "
                           f"{self.vexpr_src(stmt.expr, has_i)}")
        elif isinstance(stmt, VStoreS):
            # Value before address, like interp._exec_stmts, so a bad
            # source register raises before a missing loop counter does.
            out.append(f"{indent}stv = {self.vexpr_src(stmt.src, has_i)}")
            out.append(f"{indent}vstore({self._addr_src(stmt.addr, has_i)}, "
                       f"stv, {self.V})")
        else:
            raise _CantCompile(type(stmt).__name__)

    def _count_stmts(self, stmts: list[VStmt]) -> OpCounters:
        """One execution's counter bumps, mirroring interp._exec_stmts."""
        pc = OpCounters()
        for stmt in stmts:
            if isinstance(stmt, SetS):
                npbackend._count_sbins(pc, stmt.expr)
            else:
                npbackend._count_stmt(pc, stmt)
        return pc

    def emit_function(self, name: str, preheader: list[VStmt],
                      sections: list[Section]) -> str:
        body: list[str] = []
        if preheader:
            pc = self._count_stmts(preheader)
            for stmt in preheader:
                self._stmt_lines(stmt, False, body, "    ")
            cnt = self._count(pc)
            if cnt is not None:
                body.append(f"    _bump_all(c, {cnt})")
        for section in sections:
            body.append(f"    # {section.label}")
            has_i = section.i_expr is not None
            taken = OpCounters()
            if has_i:
                npbackend._count_sbins(taken, section.i_expr)
            taken.merge(self._count_stmts(section.stmts))
            if section.cond is not None:
                # The interpreter bumps BRANCH and evaluates the
                # condition (counting its SBins) whether or not the
                # section runs; only the body is conditional.
                head = OpCounters()
                head.bump(BRANCH)
                npbackend._count_sbins(head, section.cond)
                body.append(f"    _bump_all(c, {self._count(head)})")
                body.append(f"    if {self.scalar_src(section.cond)}:")
                indent = "        "
            else:
                indent = "    "
            inner: list[str] = []
            if has_i:
                inner.append(f"{indent}i0 = {self.scalar_src(section.i_expr)}")
            for stmt in section.stmts:
                self._stmt_lines(stmt, has_i, inner, indent)
            cnt = self._count(taken)
            if cnt is not None:
                inner.append(f"{indent}_bump_all(c, {cnt})")
            if not inner:
                inner.append(f"{indent}pass")
            body.extend(inner)
        hoists = [
            "    c = env.counters",
            "    vregs = env.vregs",
            "    sregs = env.sregs",
            "    b = env.bindings",
            "    mem = env.mem",
            "    vload = mem.vload",
            "    vstore = mem.vstore",
            "    space = env.space",
        ]
        hoists += [
            f"    aA{idx} = space[{arr!r}]"
            for idx, arr in enumerate(self.arrays)
        ]
        if not body:
            body = ["    pass"]
        return f"def {name}(env):\n" + "\n".join(hoists + body) + "\n"


def _emit_sections(program: VProgram, spec_fields: dict) -> bool:
    """Emit _pre/_post into ``spec_fields``; False when a form can't."""
    em = _SectionEmitter(program.V, program.source.upper)
    try:
        pre = em.emit_function("_pre", list(program.preheader),
                               list(program.prologue))
        post = em.emit_function("_post", [], list(program.epilogue))
    except _CantCompile:
        return False
    spec_fields.update(
        arrays=tuple(em.arrays),
        bbinops=tuple(em.bbinops),
        bsplats=tuple(em.bsplats),
        biotas=tuple(em.biotas),
        counts=tuple(em.counts),
    )
    spec_fields["_pre_src"] = pre
    spec_fields["_post_src"] = post
    return True


def _compile_spec(program: VProgram, signature: str) -> _KernelSpec:
    """Lower a program to a kernel spec (once per signature)."""
    fields: dict = {}
    batchable = _emit_steady(program, fields)
    sections_ok = _emit_sections(program, fields)
    sources = []
    if batchable:
        sources.append(fields.pop("_kernel_src"))
    if sections_ok:
        sources.append(fields.pop("_pre_src"))
        sources.append(fields.pop("_post_src"))
    return _KernelSpec(
        signature=signature,
        batchable=batchable,
        sections_ok=sections_ok,
        V=program.V,
        source="\n".join(sources),
        **fields,
    )


# ---------------------------------------------------------------------------
# Helper factories (rebuilt from the spec's constant tables)
# ---------------------------------------------------------------------------
#
# Each factory bakes a spec constant into a closure whose semantics
# mirror one npbackend/interp evaluation case byte-for-byte.  The
# factories — not the closures — are what survives pickling:
# _materialize rebuilds the namespace from the spec's tables on load.

def _lanes(rows: np.ndarray, fmt: str) -> np.ndarray:
    """Reinterpret uint8 rows as lanes; copies only when view() can't."""
    try:
        return rows.view(fmt)
    except ValueError:
        return np.ascontiguousarray(rows).view(fmt)


_BITWISE = {"and": np.bitwise_and, "or": np.bitwise_or, "xor": np.bitwise_xor}
_ARITH = {"add": np.add, "sub": np.subtract, "mul": np.multiply,
          "min": np.minimum, "max": np.maximum}


def _make_binop(name: str, dtype):
    """Lane-wise op matching npbackend._binop_rows (ufuncs broadcast)."""
    if name in _BITWISE:
        return _BITWISE[name]
    ufmt = f"<u{dtype.size}"
    lane_fmt = f"<i{dtype.size}" if dtype.signed else ufmt
    if name in ("add", "sub", "mul"):
        func = _ARITH[name]

        def modular(a, b):
            # Two's-complement wraparound == unsigned modular arithmetic.
            return func(_lanes(a, ufmt), _lanes(b, ufmt)).view(np.uint8)

        return modular
    if name in ("min", "max"):
        func = _ARITH[name]

        def ordered(a, b):
            return func(_lanes(a, lane_fmt), _lanes(b, lane_fmt)).view(np.uint8)

        return ordered
    if name not in ("avg", "sadd", "ssub"):  # IR op set is closed
        raise MachineError(f"no batched lowering for vector op {name!r}")
    mask = (1 << dtype.bits) - 1
    lo, hi = dtype.min_value, dtype.max_value

    def saturating(a, b):
        wa = _lanes(a, lane_fmt).astype(np.int64)
        wb = _lanes(b, lane_fmt).astype(np.int64)
        if name == "avg":
            out = (wa + wb) >> 1  # arithmetic shift floors, like Python's >>
        elif name == "sadd":
            out = np.clip(wa + wb, lo, hi)
        else:  # ssub
            out = np.clip(wa - wb, lo, hi)
        out &= mask  # re-encode two's complement
        return out.astype(ufmt).view(np.uint8)

    return saturating


def _make_fold(name: str, dtype, reg: str, V: int):
    """Seeded lane-wise reduction matching npbackend._fold_reduction."""
    if name in _BITWISE:
        ufunc = _BITWISE[name]

        def fold_bits(env, rows, n):
            init = np.frombuffer(
                interp._read_vreg(env, reg), dtype=np.uint8
            ).reshape(1, V)
            block = np.concatenate(
                (init, np.broadcast_to(rows, (n, V))), axis=0
            )
            return ufunc.reduce(block, axis=0, keepdims=True)

        return fold_bits
    fmt = f"<{'i' if dtype.signed and name in ('min', 'max') else 'u'}{dtype.size}"
    ufunc = {"add": np.add, "mul": np.multiply,
             "min": np.minimum, "max": np.maximum}[name]

    def fold(env, rows, n):
        init = np.frombuffer(
            interp._read_vreg(env, reg), dtype=np.uint8
        ).reshape(1, V)
        block = np.concatenate((init, np.broadcast_to(rows, (n, V))), axis=0)
        lanes = block.view(fmt)
        # Pinned accumulation dtype: keep narrow-lane wraparound exact.
        out = ufunc.reduce(lanes, axis=0, keepdims=True, dtype=lanes.dtype)
        return out.view(np.uint8)

    return fold


def _make_splat(operand: SExpr, dtype, V: int):
    def splat(env):
        value = npbackend._peek_s(env, operand)
        data = vec.vsplat(dtype.wrap(value), dtype, V)
        return np.frombuffer(data, dtype=np.uint8).reshape(1, V)

    return splat


def _make_iota(bias: int, dtype, step: int, V: int):
    B = V // dtype.size
    mask = (1 << dtype.bits) - 1
    fmt = f"<u{dtype.size}"

    def iota(lb, n):
        i_vals = lb + step * np.arange(n, dtype=np.int64)
        m = (i_vals + bias) * dtype.size // V  # numpy // floors like Python
        lanes = m[:, None] * B + np.arange(B, dtype=np.int64)
        lanes &= mask  # modular wrap, like DataType.wrap
        return lanes.astype(fmt).view(np.uint8)

    return iota


def _make_check(limit: int, what: str):
    def check(value):
        if not 0 <= value <= limit:
            raise MachineError(f"{what} {value} outside [0, {limit}]")
        return value

    return check


def _window_bases(spec: _KernelSpec, env, lb: int, n: int):
    """The per-run window/collision analysis, npbackend._plan's runtime half.

    Raises _Unbatchable — before any mutation — exactly where _plan
    returns None at run time: out-of-bounds windows, backward
    load/store collisions, cross-iteration store/store collisions.
    Returns ``(bases, snapshot)``: one window base per spec.win_keys
    entry, and whether loads must read a pre-loop memory snapshot.
    Shared by the per-run kernel prelude and the config-batch builder,
    so both paths accept and reject exactly the same runs.
    """
    V, stride = spec.V, spec.stride
    win_keys, loads, stores = spec.win_keys, spec.loads, spec.stores
    span = (n - 1) * stride
    size = env.mem.size
    bases = []
    for array, elem in win_keys:
        a0 = env.space[array].addr(lb + elem)
        a0 -= a0 % V
        if a0 < 0 or a0 + span + V > size:
            raise _Unbatchable
        bases.append(a0)
    base_of = dict(zip(win_keys, bases))
    snapshot = False
    if stores:
        load_w = [(base_of[(ar, el)], pos) for ar, el, pos in loads]
        store_w = [(base_of[(ar, el)], pos) for ar, el, pos in stores]
        for sa, s_pos in store_w:
            for la, l_pos in load_w:
                d = la - sa
                if d % stride or abs(d) > span:
                    continue  # never the same window
                if d < 0 or (d == 0 and l_pos > s_pos):
                    raise _Unbatchable
                snapshot = True
            for other, _ in store_w:
                d = other - sa
                if d != 0 and d % stride == 0 and abs(d) <= span:
                    raise _Unbatchable
    return bases, snapshot


def _make_prelude(spec: _KernelSpec):
    def prelude(env, lb, n):
        bases, snapshot = _window_bases(spec, env, lb, n)
        mem_u8 = np.frombuffer(env.mem.raw(), dtype=np.uint8)
        read_u8 = mem_u8.copy() if snapshot else mem_u8
        return bases, mem_u8, read_u8

    return prelude


def _make_win(stride: int, V: int):
    as_strided = np.lib.stride_tricks.as_strided

    def win(buffer, a0, n):
        return as_strided(buffer[a0:], shape=(n, V), strides=(stride, 1))

    return win


def _make_invreg(V: int):
    def invreg(env, name):
        return np.frombuffer(
            interp._read_vreg(env, name), dtype=np.uint8
        ).reshape(1, V)

    return invreg


def _make_carry(V: int):
    def carry(env, name, rows, n):
        init = np.frombuffer(
            interp._read_vreg(env, name), dtype=np.uint8
        ).reshape(1, V)
        full = np.broadcast_to(rows, (n, V))
        return np.concatenate((init, full[:-1]), axis=0)

    return carry


def _make_bc(V: int):
    def bc(rows, n):
        return np.broadcast_to(rows, (n, V))

    return bc


# ---------------------------------------------------------------------------
# Config-batch execution (one kernel call per signature class)
# ---------------------------------------------------------------------------
#
# The batched kernel sees a _BatchCtx: C runs of the *same* program
# stacked along a config axis.  Variant values are (rows, V) where
# rows = sum of the per-config steady iteration counts — config c owns
# the contiguous row segment [seg_starts[c], seg_ends[c]), so ragged
# trip counts need no padding or masking: segment boundaries do the
# work (reduceat folds, seg_starts carry injection, seg_ends-1
# finals).  Invariant values are (C, V), one row per config, expanded
# to the row axis via ``row_cfg`` (row -> owning config) only where an
# op mixes the two shapes.  Memory is the concatenation of every
# run's buffer, so a window index is just a per-config base offset
# plus the usual in-run strided layout; stores scatter into the flat
# image and ``writeback`` copies each segment into its run's Memory.

class _BatchCtx:
    """Stacked per-run state for one batched kernel invocation."""

    def __init__(self, spec: _KernelSpec, items: list):
        # items: (env, lb, n, bases, snapshot, shifts, points) per run,
        # every run already validated by _window_bases and the
        # shift/point range checks.
        self.V = spec.V
        self.stride = spec.stride
        self.envs = [item[0] for item in items]
        ns = np.array([item[2] for item in items], dtype=np.int64)
        lbs = np.array([item[1] for item in items], dtype=np.int64)
        ends = np.cumsum(ns)
        self.seg_ends = ends
        self.seg_starts = ends - ns
        self.rows = int(ends[-1])
        self.row_cfg = np.repeat(np.arange(len(items)), ns)
        self.local_t = (np.arange(self.rows, dtype=np.int64)
                        - self.seg_starts[self.row_cfg])
        self.i_vals = lbs[self.row_cfg] + spec.step * self.local_t
        sizes = [env.mem.size for env in self.envs]
        self.mem_offsets = np.cumsum([0] + sizes[:-1])
        self.mem_flat = np.concatenate(
            [np.frombuffer(env.mem.raw(), dtype=np.uint8)
             for env in self.envs]
        )
        snapshot = any(item[4] for item in items)
        self.read_flat = self.mem_flat.copy() if snapshot else self.mem_flat
        bases = np.array([item[3] for item in items],
                         dtype=np.int64).reshape(len(items), len(spec.win_keys))
        self.gbase = self.mem_offsets[:, None] + bases  # (C, windows)
        self.shifts = [np.array([item[5][j] for item in items])
                       for j in range(len(spec.shifts))]
        self.points = [np.array([item[6][j] for item in items])
                       for j in range(len(spec.points))]

    def _segments(self, k: int, buffer):
        """Per-config (slice, strided window view) pairs for window k.

        Window starts within a config advance by the uniform kernel
        stride, so each config's rows are one ``as_strided`` view into
        the flat image — no per-row index arrays.  Store windows never
        overlap (the stride is a multiple of V), which is what lets
        the per-run kernel assign through these same views.
        """
        as_strided = np.lib.stride_tricks.as_strided
        for c, (start, end) in enumerate(zip(self.seg_starts, self.seg_ends)):
            view = as_strided(buffer[self.gbase[c, k]:],
                              shape=(int(end - start), self.V),
                              strides=(self.stride, 1))
            yield slice(int(start), int(end)), view

    def window(self, k: int) -> np.ndarray:
        """(rows, V) copy of window table entry k across all configs."""
        out = np.empty((self.rows, self.V), dtype=np.uint8)
        for rows, view in self._segments(k, self.read_flat):
            out[rows] = view
        return out

    def store(self, k: int, block) -> None:
        """Write a (rows, V) block through window table entry k."""
        for rows, view in self._segments(k, self.mem_flat):
            view[:] = block[rows]

    def writeback(self) -> None:
        """Copy each run's flat-image segment back into its Memory."""
        for offset, env in zip(self.mem_offsets, self.envs):
            end = offset + env.mem.size
            env.mem.raw()[:] = self.mem_flat[offset:end].tobytes()


def _bx(rows, ctx):
    """Expand an invariant (C, V) value to one row per iteration."""
    return rows[ctx.row_cfg]


def _bwin(k, ctx):
    return ctx.window(k)


def _bst(k, ctx, rows, variant):
    ctx.store(k, rows if variant else rows[ctx.row_cfg])


def _btake(a, b, amounts, ctx, variant):
    """Per-row window [s, s+V) of hstack(a, b) — runtime vshiftpair."""
    cat = np.concatenate((a, b), axis=1)
    per_row = amounts[ctx.row_cfg] if variant else amounts
    idx = per_row[:, None] + np.arange(ctx.V)
    return np.take_along_axis(cat, idx, axis=1)


def _bsplice(a, b, amounts, ctx, variant):
    """Per-row a[:p] + b[p:] of two V-byte rows — runtime vsplice."""
    cat = np.concatenate((a, b), axis=1)
    per_row = amounts[ctx.row_cfg] if variant else amounts
    j = np.arange(ctx.V)
    idx = j + ctx.V * (j >= per_row[:, None])
    return np.take_along_axis(cat, idx, axis=1)


def _binv_rows(ctx, name):
    """Every run's value of a vector register, stacked as (C, V)."""
    return np.stack([
        np.frombuffer(interp._read_vreg(env, name), dtype=np.uint8)
        for env in ctx.envs
    ])


def _binv(ctx, name):
    return _binv_rows(ctx, name)


def _bcy(ctx, name, rows, variant):
    """Loop-carried read: row t sees iteration t-1, segment heads see
    each run's pre-loop register value."""
    full = rows if variant else rows[ctx.row_cfg]
    out = np.empty((ctx.rows, ctx.V), dtype=np.uint8)
    out[1:] = full[:-1]
    out[ctx.seg_starts] = _binv_rows(ctx, name)
    return out


def _bfinal(ctx, name, rows, variant):
    """Each run's last-iteration register value feeds its epilogue."""
    finals = rows[ctx.seg_ends - 1] if variant else rows
    for env, row in zip(ctx.envs, finals):
        env.vregs[name] = row.tobytes()


def _make_bfold(name: str, dtype, reg: str, V: int):
    """Per-segment seeded reduction: _make_fold along the config axis.

    Each run's init row is inserted at its segment head, then one
    ``reduceat`` folds every segment in a single call — the pinned
    accumulation dtype keeps narrow-lane wraparound exact, as in the
    per-run fold.
    """
    if name in _BITWISE:
        ufunc = _BITWISE[name]
        fmt = None
    else:
        fmt = f"<{'i' if dtype.signed and name in ('min', 'max') else 'u'}{dtype.size}"
        ufunc = {"add": np.add, "mul": np.multiply,
                 "min": np.minimum, "max": np.maximum}[name]

    def bfold(ctx, rows, variant):
        full = rows if variant else rows[ctx.row_cfg]
        inits = _binv_rows(ctx, reg)
        block = np.insert(np.ascontiguousarray(full), ctx.seg_starts,
                          inits, axis=0)
        # Init rows shift every later segment start by its index.
        starts = ctx.seg_starts + np.arange(len(ctx.envs))
        if fmt is None:
            return ufunc.reduceat(block, starts, axis=0)
        lanes = block.view(fmt)
        out = ufunc.reduceat(lanes, starts, axis=0, dtype=lanes.dtype)
        return np.ascontiguousarray(out).view(np.uint8)

    return bfold


def _make_bsplat(operand: SExpr, dtype, V: int):
    splat = _make_splat(operand, dtype, V)

    def bsplat(ctx):
        return np.concatenate([splat(env) for env in ctx.envs], axis=0)

    return bsplat


def _make_biota(bias: int, dtype, V: int):
    B = V // dtype.size
    mask = (1 << dtype.bits) - 1
    fmt = f"<u{dtype.size}"

    def biota(ctx):
        m = (ctx.i_vals + bias) * dtype.size // V
        lanes = m[:, None] * B + np.arange(B, dtype=np.int64)
        lanes &= mask
        return lanes.astype(fmt).view(np.uint8)

    return biota


def _make_byte_binop(name: str, dtype, V: int):
    """vec.vbinop's lane semantics over one V-byte pair, via NumPy.

    Reuses the array-mode lane closures (:func:`_make_binop`), so the
    sections and the steady loop share one proven arithmetic model
    instead of the interpreter's per-lane Python loop.
    """
    rows = _make_binop(name, dtype)

    def bbin(a, b):
        ra = np.frombuffer(a, dtype=np.uint8).reshape(1, V)
        rb = np.frombuffer(b, dtype=np.uint8).reshape(1, V)
        return rows(ra, rb).tobytes()

    return bbin


def _make_byte_splat(dtype, V: int):
    wrap = dtype.wrap

    def splat(value):
        return vec.vsplat(wrap(value), dtype, V)

    return splat


def _make_byte_iota(bias: int, dtype, V: int):
    """interp._eval_v's VIotaE case, with the constants pre-bound."""
    B = V // dtype.size
    size = dtype.size
    wrap = dtype.wrap

    def iota(i):
        m = ((i + bias) * size) // V
        return vec.from_lanes([wrap(m * B + lane) for lane in range(B)], dtype)

    return iota


def _read_sreg(sregs, name):
    try:
        return sregs[name]
    except KeyError:
        raise MachineError(
            f"scalar register {name!r} read before being set"
        ) from None


def _read_vreg(vregs, name):
    try:
        return vregs[name]
    except KeyError:
        raise MachineError(
            f"vector register {name!r} read before being set"
        ) from None


def _die(message):
    raise MachineError(message)


def _bump_all(counters, counts):
    for category, amount in counts.items():
        counters.bump(category, amount)


def _materialize(spec: _KernelSpec) -> tuple:
    """Compile a spec's source against its rebuilt helper namespace."""
    if not spec.source:
        return None, None, None, None
    ns: dict = {
        "np": np,
        "MachineError": MachineError,
        "_peek": npbackend._peek_s,
        "_vshiftpair": vec.vshiftpair,
        "_vsplice": vec.vsplice,
        "_rs": _read_sreg,
        "_rv": _read_vreg,
        "_die": _die,
        "_bump_all": _bump_all,
    }
    if spec.batchable:
        ns.update({
            "_prelude": _make_prelude(spec),
            "_win": _make_win(spec.stride, spec.V),
            "_invreg": _make_invreg(spec.V),
            "_carry": _make_carry(spec.V),
            "_bc": _make_bc(spec.V),
            "_cks": _make_check(spec.V, "vshiftpair shift"),
            "_ckp": _make_check(spec.V, "vsplice point"),
            "_bx": _bx,
            "_bwin": _bwin,
            "_bst": _bst,
            "_btake": _btake,
            "_bsplice": _bsplice,
            "_binv": _binv,
            "_bcy": _bcy,
            "_bfinal": _bfinal,
        })
        for idx, (name, dtype) in enumerate(spec.binops):
            ns[f"_b{idx}"] = _make_binop(name, dtype)
        for idx, (name, dtype, reg) in enumerate(spec.folds):
            ns[f"_f{idx}"] = _make_fold(name, dtype, reg, spec.V)
            ns[f"_bf{idx}"] = _make_bfold(name, dtype, reg, spec.V)
        for idx, (operand, dtype) in enumerate(spec.splats):
            ns[f"_sp{idx}"] = _make_splat(operand, dtype, spec.V)
            ns[f"_bsp{idx}"] = _make_bsplat(operand, dtype, spec.V)
        for idx, (bias, dtype) in enumerate(spec.iotas):
            ns[f"_io{idx}"] = _make_iota(bias, dtype, spec.step, spec.V)
            ns[f"_bio{idx}"] = _make_biota(bias, dtype, spec.V)
        for idx, expr in enumerate(spec.shifts):
            ns[f"_sh{idx}"] = expr
        for idx, expr in enumerate(spec.points):
            ns[f"_pt{idx}"] = expr
    if spec.sections_ok:
        for idx, (name, dtype) in enumerate(spec.bbinops):
            ns[f"_bb{idx}"] = _make_byte_binop(name, dtype, spec.V)
        for idx, dtype in enumerate(spec.bsplats):
            ns[f"_spb{idx}"] = _make_byte_splat(dtype, spec.V)
        for idx, (bias, dtype) in enumerate(spec.biotas):
            ns[f"_iob{idx}"] = _make_byte_iota(bias, dtype, spec.V)
        for idx, counts in enumerate(spec.counts):
            ns[f"_cnt{idx}"] = counts
    code = compile(spec.source, "<repro-jit-kernel>", "exec")
    exec(code, ns)
    return (ns.get("_kernel"), ns.get("_bkernel"),
            ns.get("_pre"), ns.get("_post"))


# ---------------------------------------------------------------------------
# Two-tier kernel cache
# ---------------------------------------------------------------------------

_KERNEL_CACHE: OrderedDict[str, _Kernel] = OrderedDict()
_KERNEL_CACHE_MAX = 256


def _disk_key(signature: str) -> str:
    from repro import __version__

    return f"jit-kernel:{__version__}:{KERNEL_CODE_VERSION}:{signature}"


def get_kernel(program: VProgram) -> _Kernel:
    """The compiled kernel for this program's signature (cached)."""
    signature = _cached_signature(program)
    kernel = _KERNEL_CACHE.get(signature)
    if kernel is not None:
        _KERNEL_CACHE.move_to_end(signature)  # LRU: recent use survives
        STATS["memory_hits"] += 1
        return kernel
    STATS["memory_misses"] += 1
    _fault("compile")  # REPRO_FAULT=compile:… fails the kernel build here
    start = time.perf_counter()
    disk = get_cache()
    spec = None
    if disk is not None:
        entry = disk.get(_disk_key(signature))
        if isinstance(entry, _KernelSpec) and entry.signature == signature:
            spec = entry
            STATS["disk_hits"] += 1
        else:
            STATS["disk_misses"] += 1
    if spec is None:
        spec = _compile_spec(program, signature)
        STATS["codegens"] += 1
        if disk is not None:
            disk.put(_disk_key(signature), spec)
    fn, bfn, pre, post = _materialize(spec)
    STATS["compile_s"] += time.perf_counter() - start
    kernel = _Kernel(spec=spec, fn=fn, bfn=bfn, pre=pre, post=post)
    if len(_KERNEL_CACHE) >= _KERNEL_CACHE_MAX:
        _KERNEL_CACHE.popitem(last=False)
    _KERNEL_CACHE[signature] = kernel
    return kernel


def clear_memory_cache() -> None:
    """Drop materialized kernels (tests use this to force disk loads)."""
    _KERNEL_CACHE.clear()


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------

class JitBackend:
    """Compile-once execution of vector programs (bit-exact vs bytes).

    The ``_kernel_for`` / ``_steady`` / ``_steady_batch`` /
    ``_finish_env`` / ``_batch_finish`` hooks are the entire subclass
    surface: the native backend (:mod:`repro.machine.native`) overrides
    them to swap the steady loop — or the whole guarded run — for a
    compiled C kernel while inheriting the guard, section, and trip
    machinery unchanged.
    """

    name = "jit"

    def _kernel_for(self, program):
        return get_kernel(program)

    def _steady(self, env, steady, kernel) -> bool:
        return _run_steady(env, steady, kernel)

    def _steady_batch(self, live, kernel) -> dict:
        return _run_steady_batch(live, kernel)

    def _finish_env(self, env, kernel) -> bool:
        """Preheader/prologue, steady loop, epilogue for one guarded env.

        Runs everything after the guard/trip checks of :meth:`run`.
        The native backend overrides this to execute a whole accepted
        run as one C call (sections included) and only falls through
        here when the run declines whole-run lowering.
        """
        program = env.program
        if kernel.pre is not None:
            kernel.pre(env)
        else:
            interp._exec_stmts(env, program.preheader, i=None)
            for section in program.prologue:
                interp._exec_section(env, section)
        fell_back = False
        if program.steady is not None:
            fell_back = self._steady(env, program.steady, kernel)
        if kernel.post is not None:
            kernel.post(env)
        else:
            for section in program.epilogue:
                interp._exec_section(env, section)
        return fell_back

    def _batch_finish(self, live, results, kernel) -> None:
        """Sections + steady + results for the guarded (live) envs.

        The batch twin of :meth:`_finish_env`: the native backend
        overrides it to marshal every accepted env into one C batch
        driver call, delegating declined envs back here.
        """
        for _, env in live:
            if kernel.pre is not None:
                kernel.pre(env)
            else:
                interp._exec_stmts(env, env.program.preheader, i=None)
                for section in env.program.prologue:
                    interp._exec_section(env, section)
        fell: dict[int, bool] = {i: False for i, _ in live}
        if live[0][1].program.steady is not None:
            fell = self._steady_batch(live, kernel)
        for i, env in live:
            if kernel.post is not None:
                kernel.post(env)
            else:
                for section in env.program.epilogue:
                    interp._exec_section(env, section)
            results[i] = VectorRunResult(env.counters, env.trip,
                                         used_fallback=fell[i])

    def run(
        self,
        program,
        space,
        mem,
        bindings=None,
        trace=None,
    ) -> VectorRunResult:
        if trace is not None:
            # Tracing observes every access individually; stay on the
            # byte interpreter (same rule as the numpy engine).
            return run_vector(program, space, mem, bindings, trace)

        _fault("execute")  # before any state mutates: degradation-safe
        env = interp._Env(program, space, mem, bindings or RunBindings(), None)
        env.counters.bump(CALL, 2)

        if program.guard_min_trip is not None:
            env.counters.bump(BRANCH)
            if env.trip <= program.guard_min_trip:
                scalar = NumpyScalarBackend().run(
                    program.source, space, mem, env.bindings
                )
                env.counters.merge(scalar.counters)
                return VectorRunResult(env.counters, env.trip, used_fallback=True)
        elif env.trip != program.source.upper and isinstance(program.source.upper, int):
            raise MachineError("compile-time trip count mismatch")

        kernel = self._kernel_for(program)
        fell_back = self._finish_env(env, kernel)
        return VectorRunResult(env.counters, env.trip, used_fallback=fell_back)

    def run_batch(self, runs) -> list:
        """Execute ``(program, space, mem, bindings)`` runs as a batch.

        All programs must share one structural signature (the caller
        groups sweep configs by :func:`program_signature`); each run
        keeps its *own* program for everything value-dependent — trip
        resolution, guard fallbacks on its own source loop, interp
        section replay — while the class's single compiled kernel
        serves every run.

        Semantically identical to calling :meth:`run` per element —
        same final memories, counters, trips, fallback flags — but
        every run that passes the per-run batching checks executes the
        steady loop in ONE config-batched kernel call, so a signature
        class of C sweep configs costs one NumPy dispatch sequence
        instead of C.
        """
        _fault("execute")  # before any state mutates: degradation-safe
        results: list = [None] * len(runs)
        live: list[tuple[int, interp._Env]] = []
        signature = None
        for i, (program, space, mem, bindings) in enumerate(runs):
            if signature is None:
                signature = _cached_signature(program)
            elif _cached_signature(program) != signature:
                raise MachineError(
                    "run_batch requires one structural signature per batch"
                )
            env = interp._Env(program, space, mem,
                              bindings or RunBindings(), None)
            env.counters.bump(CALL, 2)
            if program.guard_min_trip is not None:
                env.counters.bump(BRANCH)
                if env.trip <= program.guard_min_trip:
                    scalar = NumpyScalarBackend().run(
                        program.source, space, mem, env.bindings
                    )
                    env.counters.merge(scalar.counters)
                    results[i] = VectorRunResult(env.counters, env.trip,
                                                 used_fallback=True)
                    continue
            elif (env.trip != program.source.upper
                  and isinstance(program.source.upper, int)):
                raise MachineError("compile-time trip count mismatch")
            live.append((i, env))
        if not live:
            return results
        kernel = self._kernel_for(live[0][1].program)
        self._batch_finish(live, results, kernel)
        return results


def _checked_amount(env, expr, V: int, what: str) -> int:
    value = npbackend._peek_s(env, expr)
    if not 0 <= value <= V:
        raise MachineError(f"{what} {value} outside [0, {V}]")
    return value


def _run_steady_batch(live, kernel: _Kernel) -> dict:
    """Run the steady loop for every live env, batching where possible.

    Per-env outcomes mirror :func:`_run_steady` exactly: envs the
    window analysis rejects replay the per-iteration fallback
    (``used_fallback=True``), envs with out-of-range runtime
    shift/point values re-raise through the per-run kernel, and the
    rest execute as one ``_bkernel`` call over the stacked config axis.
    """
    spec = kernel.spec
    fell: dict[int, bool] = {}
    if len(live) == 1 or kernel.bfn is None:
        # Nothing to stack: skip the batch planning entirely — the
        # per-run kernel's own prelude redoes the window analysis, so
        # planning here would be pure double work for singleton classes.
        for i, env in live:
            fell[i] = _run_steady(env, env.program.steady, kernel)
        return fell
    batch: list = []     # validated (env, lb, n, bases, snapshot, sh, pt, i)
    solo: list = []      # (i, env, lb, ub) replayed through the per-run path
    for i, env in live:
        steady = env.program.steady
        # Bounds evaluate exactly once per env (SBin evaluation bumps
        # SCALAR); the solo path reuses these values.
        lb = interp._eval_s(env, steady.lb)
        ub = interp._eval_s(env, steady.ub)
        if steady.step <= 0 or kernel.fn is None:
            solo.append((i, env, lb, ub))
            continue
        n = len(range(lb, ub, steady.step))
        if n == 0:
            fell[i] = False
            continue
        try:
            bases, snapshot = _window_bases(spec, env, lb, n)
            shifts = [_checked_amount(env, expr, spec.V, "vshiftpair shift")
                      for expr in spec.shifts]
            points = [_checked_amount(env, expr, spec.V, "vsplice point")
                      for expr in spec.points]
        except _Unbatchable:
            npbackend._steady_periter(env, steady, lb, ub)
            fell[i] = True
            continue
        except MachineError:
            # Out-of-range amount (or unset register): replay the
            # per-run kernel so the identical error raises from the
            # same execution point it would in run().
            solo.append((i, env, lb, ub))
            continue
        batch.append((env, lb, n, bases, snapshot, shifts, points, i))
    if batch and (len(batch) == 1 or kernel.bfn is None):
        solo += [(item[7], item[0], item[1],
                  item[1] + item[2] * spec.step) for item in batch]
        batch = []
    if batch:
        ctx = _BatchCtx(spec, [item[:7] for item in batch])
        kernel.bfn(ctx)
        if spec.stores:
            ctx.writeback()
        for env, _, n, *_rest in batch:
            _bump_steady_counters(env, spec, n)
        for item in batch:
            fell[item[7]] = False
    for i, env, lb, ub in solo:
        fell[i] = _run_steady_at(env, env.program.steady, kernel, lb, ub)
    return fell


def _bump_steady_counters(env: interp._Env, spec: _KernelSpec, n: int) -> None:
    # Structural counters: exactly what the byte interpreter tallies
    # per iteration, multiplied by the iteration count (precomputed at
    # kernel compile time).
    env.counters.bump(SCALAR, spec.pointers * n)
    env.counters.bump(BRANCH, n)
    for category, count in spec.per_iter.items():
        env.counters.bump(category, count * n)


def _run_steady(env: interp._Env, steady, kernel: _Kernel) -> bool:
    """Run the compiled steady kernel; True when the per-iteration path ran."""
    lb = interp._eval_s(env, steady.lb)
    ub = interp._eval_s(env, steady.ub)
    return _run_steady_at(env, steady, kernel, lb, ub)


def _run_steady_at(env: interp._Env, steady, kernel: _Kernel,
                   lb: int, ub: int) -> bool:
    if steady.step <= 0:
        npbackend._steady_periter(env, steady, lb, ub)
        return True
    n = len(range(lb, ub, steady.step))
    if n == 0:
        return False
    if kernel.fn is None:
        npbackend._steady_periter(env, steady, lb, ub)
        return True
    try:
        kernel.fn(env, lb, n)
    except _Unbatchable:
        # Raised by the prelude before any mutation, so the fallback
        # replays the loop from unmodified state.
        npbackend._steady_periter(env, steady, lb, ub)
        return True
    _bump_steady_counters(env, kernel.spec, n)
    return False
