"""V-aligned byte buffers for the native tier's zero-copy marshalling.

The paper's premise is that the hardware only has *aligned* vector
loads and stores; the native tier's vector-extension emitter takes the
compiler at its word and promises (`__builtin_assume_aligned`) that
every steady-loop window base, vregs slot, cvec block, and batch-row
segment is V-aligned.  That promise is only safe if it is *true*: the
Python side already truncates all window/section base addresses to
multiples of V relative to the buffer start, so the one missing piece
is the buffer start itself — CPython's ``bytearray`` payload carries
no alignment guarantee beyond the allocator's (8 or 16 bytes,
platform-dependent), and lying to ``__builtin_assume_aligned`` is
undefined behaviour that manifests as ``movaps`` faults.

:func:`aligned_view` closes the gap without copying: over-allocate a
``bytearray`` by one alignment quantum, locate the payload address via
``ctypes``, and expose the aligned interior as a writable
``memoryview``.  The view pins the backing (a ``BufferError`` greets
any resize attempt while it is live), so a ctypes array created over
the view — :func:`as_ctypes_u8` — stays valid for the duration of a
kernel call.

``ALIGNMENT`` is 64: a multiple of every supported vector width V
(16 here, headroom through AVX-512) *and* the common cache-line size,
so aligned buffers also never split a vector across lines.
"""

from __future__ import annotations

import ctypes

#: Buffer base alignment in bytes.  Must be a power of two and an
#: upper bound on every vector width the emitter promises alignment
#: for (the emitter falls back to unaligned accesses when V exceeds
#: this, which no current configuration does).
ALIGNMENT = 64


def address_of(buf) -> int:
    """The memory address of ``buf``'s first payload byte.

    ``buf`` is any writable buffer (bytearray, memoryview).  Creating
    the one-byte ctypes view is cheap and releases its export before
    returning.
    """
    view = (ctypes.c_char * 1).from_buffer(buf)
    try:
        return ctypes.addressof(view)
    finally:
        del view


def aligned_view(size: int, align: int = ALIGNMENT,
                 fill: int | None = None) -> memoryview:
    """A writable ``size``-byte memoryview starting at an address that
    is a multiple of ``align``.

    The view owns the over-allocated backing ``bytearray`` (the
    memoryview keeps it alive), so callers hold only the view.  While
    any ctypes export of the view exists the backing cannot resize —
    which it never needs to: these buffers are fixed-size by
    construction.  ``fill`` optionally initializes every payload byte;
    the default leaves the (zeroed) bytearray content.
    """
    if align <= 0 or align & (align - 1):
        raise ValueError(f"alignment {align} is not a positive power of two")
    if size < 0:
        raise ValueError(f"negative buffer size {size}")
    backing = bytearray(size + align)
    offset = (-address_of(backing)) % align
    view = memoryview(backing)[offset:offset + size]
    if fill is not None and size:
        view[:] = bytes([fill]) * size
    return view


def is_aligned(buf, align: int = ALIGNMENT) -> bool:
    """True when ``buf``'s first payload byte sits on an ``align``
    boundary (degenerate zero-length buffers count as aligned)."""
    if len(buf) == 0:
        return True
    return address_of(buf) % align == 0


def as_ctypes_u8(view):
    """A ``ctypes`` ``c_uint8`` array sharing ``view``'s memory.

    Zero-copy: the array's address is the view's address, so an
    aligned view yields an aligned C pointer.  Empty views get a
    detached one-byte array (the C side never dereferences a
    zero-length table, but ctypes cannot type a zero-length one).
    """
    if len(view) == 0:
        return (ctypes.c_uint8 * 1)()
    return (ctypes.c_uint8 * len(view)).from_buffer(view)
