"""Batched NumPy scalar-reference engine.

The byte-level scalar reference (:func:`repro.machine.scalar.run_scalar`)
evaluates the loop one original iteration at a time with a recursive
Python expression walker — semantically golden, but it dominated the
end-to-end sweep wall clock once the vector side was batched (PR 1).
This engine produces the **identical memory image** by evaluating each
statement's expression tree as whole-array NumPy operations over
shifted element windows: a stride-one reference ``a[i + c]`` over
``trip`` iterations is exactly the contiguous element slice
``a[c : c + trip]``, so the loop collapses into O(expression nodes)
vectorized calls — the batched-stencil formulation of shifted views.

Correctness contract (enforced by ``tests/test_differential.py``):

* final memory bytes are identical to :func:`run_scalar`'s, with exact
  wraparound / saturation / signedness semantics per
  :class:`~repro.ir.types.DataType` (lane values are carried as
  little-endian unsigned bit patterns, exactly as they live in memory);
* the returned :class:`~repro.machine.counters.OpCounters` are derived
  structurally by :func:`~repro.machine.scalar.reference_counters`,
  which reproduces the oracle's dynamic tally — so OPD and speedup
  numbers are bit-identical whichever engine ran.

Dependence note: a simdizable loop never carries a flow dependence
(``validate_loop`` rejects them, and load statements never follow the
storing statement), so **every load observes pre-loop memory**.  When a
stored array is also loaded, reads are served from a one-time snapshot
taken before any store — the whole-array writes then cannot disturb
them.  Reductions accumulate with ``ufunc.reduce`` over the operand
block, which is exact because the permitted reduction ops are modular
(add/mul) or order-insensitive (min/max/and/or/xor).

This module is only imported when NumPy is present; use
:func:`repro.machine.backend.get_scalar_backend` for gated access.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MachineError
from repro.ir.expr import BinOp, Const, Expr, Loop, LoopIndex, Reduction, Ref, ScalarVar
from repro.machine.arrays import ArraySpace
from repro.machine.memory import Memory
from repro.machine.scalar import (
    RunBindings,
    ScalarRunResult,
    reference_counters,
    run_scalar,
)


class NumpyScalarBackend:
    """Whole-array execution of the scalar reference (bit-exact vs bytes)."""

    name = "numpy"

    def run(
        self,
        loop: Loop,
        space: ArraySpace,
        mem: Memory,
        bindings: RunBindings | None = None,
    ) -> ScalarRunResult:
        bindings = bindings or RunBindings()
        trip = bindings.resolve_trip(loop)
        if trip == 0 or not _batchable(loop, trip):
            # Zero-trip reductions still touch the accumulator, and
            # out-of-range references must raise the oracle's error;
            # both are cheap enough to delegate outright.
            return run_scalar(loop, space, mem, bindings)

        mem_u8 = np.frombuffer(mem.raw(), dtype=np.uint8)
        # Loads of stored arrays must see pre-loop values (simdizable
        # loops have no flow dependences); one snapshot serves them all.
        overlap = loop.store_arrays() & loop.load_arrays()
        read_u8 = mem_u8.copy() if overlap else mem_u8

        def window(buffer: np.ndarray, name: str, offset: int, count: int) -> np.ndarray:
            arr = space[name]
            D = arr.decl.dtype.size
            start = arr.base + offset * D
            return buffer[start:start + count * D].view(f"<u{D}")

        def eval_expr(expr: Expr) -> np.ndarray:
            dtype = loop.dtype
            if isinstance(expr, Ref):
                return window(read_u8, expr.array.name, expr.offset, trip)
            if isinstance(expr, Const):
                return _pattern(expr.value, dtype)
            if isinstance(expr, ScalarVar):
                return _pattern(bindings.scalar(expr.name), dtype)
            if isinstance(expr, LoopIndex):
                lanes = np.arange(trip, dtype=np.int64)
                return _wrap_patterns(lanes, dtype)
            if isinstance(expr, BinOp):
                left = eval_expr(expr.left)
                right = eval_expr(expr.right)
                return _apply_op(expr.op.name, left, right, dtype)
            raise MachineError(f"unknown expression node {type(expr).__name__}")

        for stmt in loop.statements:
            values = eval_expr(stmt.expr)
            if isinstance(stmt, Reduction):
                target = window(mem_u8, stmt.target.array.name,
                                stmt.target.offset, 1)
                block = np.broadcast_to(values, (trip,))
                folded = _reduce_op(stmt.op.name, block, loop.dtype)
                target[:1] = _apply_op(stmt.op.name, target[:1].copy(),
                                       folded, loop.dtype)
            else:
                out = window(mem_u8, stmt.target.array.name,
                             stmt.target.offset, trip)
                out[:] = np.broadcast_to(values, (trip,))

        return ScalarRunResult(
            counters=reference_counters(loop, trip),
            trip=trip,
            data_count=trip * len(loop.statements),
        )


def _batchable(loop: Loop, trip: int) -> bool:
    """True when every reference stays inside its array for this trip."""
    for stmt in loop.statements:
        refs = list(stmt.loads())
        if isinstance(stmt, Reduction):
            if stmt.op.name not in _REDUCE_UFUNCS:
                return False  # no exact batched fold; use the oracle
            refs.append(stmt.target)
            spans = [(r.offset, r.offset + (1 if r is stmt.target else trip))
                     for r in refs]
        else:
            refs.append(stmt.target)
            spans = [(r.offset, r.offset + trip) for r in refs]
        for ref, (low, high) in zip(refs, spans):
            if low < 0 or high > ref.array.length:
                return False
    return True


# ---------------------------------------------------------------------------
# Lane arithmetic on little-endian unsigned bit patterns
# ---------------------------------------------------------------------------

def _pattern(value: int, dtype) -> np.ndarray:
    """A loop-invariant lane value as a 0-d unsigned bit pattern."""
    return np.asarray(value & ((1 << dtype.bits) - 1), dtype=f"<u{dtype.size}")


def _wrap_patterns(values: np.ndarray, dtype) -> np.ndarray:
    """Reduce int64 lane values to unsigned patterns (DataType.wrap)."""
    return (values & ((1 << dtype.bits) - 1)).astype(f"<u{dtype.size}")


def _as_int64(a: np.ndarray, dtype) -> np.ndarray:
    """Interpret unsigned patterns as this type's lane values, widened."""
    if dtype.signed:
        return np.asarray(a).view(f"<i{dtype.size}").astype(np.int64)
    return np.asarray(a).astype(np.int64)


def _apply_op(name: str, a: np.ndarray, b: np.ndarray, dtype) -> np.ndarray:
    """Elementwise BinaryOp.apply + DataType.wrap on unsigned patterns."""
    if name in ("and", "or", "xor"):
        func = {"and": np.bitwise_and, "or": np.bitwise_or,
                "xor": np.bitwise_xor}[name]
        return func(a, b)
    if name in ("add", "sub", "mul"):
        # Two's-complement wraparound == unsigned modular arithmetic.
        func = {"add": np.add, "sub": np.subtract, "mul": np.multiply}[name]
        return func(a, b)
    if name in ("min", "max"):
        func = np.minimum if name == "min" else np.maximum
        if dtype.signed:
            sfmt = f"<i{dtype.size}"
            out = func(np.asarray(a).view(sfmt), np.asarray(b).view(sfmt))
            return np.asarray(out).view(f"<u{dtype.size}")
        return func(a, b)
    wa, wb = _as_int64(a, dtype), _as_int64(b, dtype)
    if name == "avg":
        out = (wa + wb) >> 1  # arithmetic shift floors, like Python's >>
    elif name == "sadd":
        out = np.clip(wa + wb, dtype.min_value, dtype.max_value)
    elif name == "ssub":
        out = np.clip(wa - wb, dtype.min_value, dtype.max_value)
    else:
        raise MachineError(f"unknown batched binary op {name!r}")
    return _wrap_patterns(out, dtype)


#: ufunc per reduction op; reassociation is exact for all of these
#: (modular add/mul, order-insensitive min/max/and/or/xor).
_REDUCE_UFUNCS = {
    "add": np.add, "mul": np.multiply,
    "min": np.minimum, "max": np.maximum,
    "and": np.bitwise_and, "or": np.bitwise_or, "xor": np.bitwise_xor,
}


def _reduce_op(name: str, block: np.ndarray, dtype) -> np.ndarray:
    """Fold a (trip,)-shaped operand block into one lane value, exactly."""
    try:
        ufunc = _REDUCE_UFUNCS[name]
    except KeyError:
        raise MachineError(f"op {name!r} has no exact batched reduction") from None
    if name in ("min", "max") and dtype.signed:
        lanes = np.asarray(block).view(f"<i{dtype.size}")
        out = ufunc.reduce(lanes, dtype=lanes.dtype)
        return np.asarray(out).view(f"<u{dtype.size}")
    # Pin the accumulation dtype: add/multiply.reduce would otherwise
    # promote narrow lanes to the platform int and lose the wraparound.
    return ufunc.reduce(block, dtype=np.asarray(block).dtype)
