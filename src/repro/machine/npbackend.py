"""Batched NumPy execution backend for vector programs.

This engine executes the same :class:`~repro.vir.program.VProgram` as
the byte interpreter (:mod:`repro.machine.interp`) but represents
vectors as ``uint8`` ndarray rows and — the big win — executes **all
iterations of the steady-state loop in one batched call**: every static
load and store becomes a strided 2-D window over the array space
(``shape (n, V)``, ``strides (step*D, 1)``), and each reorganization op
becomes a whole-array slice/concatenate/arithmetic op.

Correctness contract: final memory bytes and
:class:`~repro.machine.counters.OpCounters` are identical to the byte
interpreter's.  Counters are *structural*: the steady loop's dynamic
counts are ``n × (per-iteration statement counts)``, which is exactly
what the byte interpreter tallies by re-walking the statements every
iteration (the cost model counts operations of the program, not work
done by the engine — DESIGN.md §5).

Batching preconditions (checked per program; any miss falls back to
per-iteration execution through the interpreter's own helpers, so the
answer is still exact — and is reported via ``used_fallback``):

* steady step > 0 and the iteration byte stride ``step*D`` is a
  multiple of ``V`` (truncated windows then advance uniformly);
* the steady body/bottom holds only ``SetV``/``VStoreS`` statements and
  known expression forms, with each vector register assigned at most
  once per iteration;
* the register dependency graph is acyclic *except* for recognized
  reduction self-cycles ``acc = op(acc, rhs)`` over an exactly
  reassociable op (modular add/mul, order-insensitive
  min/max/and/or/xor), which batch as a lane-wise ``ufunc.reduce``
  fold of the rhs block seeded with the prologue accumulator;
* store windows of different statements never collide across
  iterations (windows are ``V``-aligned, so they are equal or
  disjoint; collisions reduce to a residue test on window distances).

Load windows *may* coincide with store windows: a valid loop carries
no flow dependence and never loads after a same-iteration store of the
same window (``validate_loop`` rejects both), so every colliding load
observes pre-steady-loop memory.  Such loads are served from a one-time
snapshot taken before any batched store — the residue test only
rejects the (defensively checked, unreachable-for-valid-programs)
backward case where a load window was stored in an *earlier* iteration
or by an earlier same-iteration statement.

Loop-carried register reads (software-pipelining ``old``/``new`` pairs,
predictive-commoning rotation chains) batch as *shifted rows*: a read
of a register assigned at a later program point sees the previous
iteration's value, i.e. row ``t`` reads the defining array's row
``t-1`` with row 0 taken from the register's prologue value.

This module is only imported when NumPy is present; use
:func:`repro.machine.backend.get_backend` for gated access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MachineError
from repro import faults
from repro.machine import interp
from repro.machine import vector as vec
from repro.machine.arrays import ArraySpace
from repro.machine.counters import (
    BRANCH,
    CALL,
    OpCounters,
    SCALAR,
    VARITH,
    VCOPY,
    VLOAD,
    VPERM,
    VSEL,
    VSPLAT,
    VSTORE,
)
from repro.machine.interp import VectorRunResult, run_vector
from repro.machine.memory import Memory
from repro.machine.npscalar import NumpyScalarBackend
from repro.machine.scalar import RunBindings
from repro.machine.trace import Trace
from repro.vir.program import SteadyLoop, VProgram
from repro.vir.vexpr import (
    Addr,
    SBase,
    SBin,
    SConst,
    SExpr,
    SReg,
    SVar,
    S_OPS,
    VBinE,
    VExpr,
    VIotaE,
    VLoadE,
    VRegE,
    VShiftPairE,
    VSpliceE,
    VSplatE,
    walk,
)
from repro.vir.vstmt import SetV, VStmt, VStoreS


class NumpyBackend:
    """Array-batched execution of vector programs (bit-exact vs bytes)."""

    name = "numpy"

    def run(
        self,
        program: VProgram,
        space: ArraySpace,
        mem: Memory,
        bindings: RunBindings | None = None,
        trace: Trace | None = None,
    ) -> VectorRunResult:
        if trace is not None:
            # Tracing observes every access individually with its phase
            # and iteration; batched execution has no such event stream,
            # so the observability path stays on the byte interpreter.
            return run_vector(program, space, mem, bindings, trace)

        faults.fault("execute")  # before any state mutates: degradation-safe
        env = interp._Env(program, space, mem, bindings or RunBindings(), None)
        env.counters.bump(CALL, 2)

        if program.guard_min_trip is not None:
            env.counters.bump(BRANCH)
            if env.trip <= program.guard_min_trip:
                # The batched scalar engine writes the oracle's memory
                # image and reports the oracle's counters (npscalar's
                # correctness contract), so the guard path stays exact.
                scalar = NumpyScalarBackend().run(
                    program.source, space, mem, env.bindings
                )
                env.counters.merge(scalar.counters)
                return VectorRunResult(env.counters, env.trip, used_fallback=True)
        elif env.trip != program.source.upper and isinstance(program.source.upper, int):
            raise MachineError("compile-time trip count mismatch")

        interp._exec_stmts(env, program.preheader, i=None)
        fell_back = False
        for section in program.prologue:
            interp._exec_section(env, section)
        if program.steady is not None:
            fell_back = _run_steady(env, program.steady)
        for section in program.epilogue:
            interp._exec_section(env, section)
        return VectorRunResult(env.counters, env.trip, used_fallback=fell_back)


# ---------------------------------------------------------------------------
# Steady-state loop: batched when safe, per-iteration otherwise
# ---------------------------------------------------------------------------

def _run_steady(env: interp._Env, steady: SteadyLoop) -> bool:
    """Execute the steady loop; True when the per-iteration path ran."""
    lb = interp._eval_s(env, steady.lb)
    ub = interp._eval_s(env, steady.ub)
    if steady.step <= 0:
        _steady_periter(env, steady, lb, ub)
        return True
    n = len(range(lb, ub, steady.step))
    if n == 0:
        return False
    plan = _plan(env, steady, lb, n)
    if plan is None:
        _steady_periter(env, steady, lb, ub)
        return True
    _exec_batched(env, plan)
    # Structural counters: exactly what the byte interpreter tallies
    # per iteration, multiplied by the iteration count.
    env.counters.bump(SCALAR, env.program.pointer_count() * n)
    env.counters.bump(BRANCH, n)
    per_iter = OpCounters()
    for stmt in plan.seq:
        _count_stmt(per_iter, stmt)
    for category, count in per_iter.counts.items():
        env.counters.bump(category, count * n)
    return False


def _steady_periter(env: interp._Env, steady: SteadyLoop, lb: int, ub: int) -> None:
    """Exact per-iteration execution via the interpreter's own helpers."""
    pointers = env.program.pointer_count()
    for i in range(lb, ub, steady.step):
        env.counters.bump(SCALAR, pointers)
        env.counters.bump(BRANCH)
        interp._exec_stmts(env, steady.body, i)
        interp._exec_stmts(env, steady.bottom, i)


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------

@dataclass
class _Plan:
    """Everything needed to execute the steady loop as one batch."""

    n: int                      # iteration count
    lb: int                     # first loop counter value
    step: int                   # loop counter step
    stride: int                 # bytes between consecutive iteration windows
    seq: list[VStmt]            # body + bottom, original order
    assign_pos: dict[str, int]  # vector register -> defining position
    order: list[int]            # topological execution order of SetV positions
    reductions: dict[int, VExpr]  # SetV position -> batched-fold rhs
    mem_u8: np.ndarray          # writable uint8 view of the whole memory
    read_u8: np.ndarray         # buffer serving loads (snapshot on overlap)


#: Reduction ops whose lane-wise fold is exact under reassociation:
#: add/mul are modular, min/max/and/or/xor are order-insensitive.
_REDUCE_OPS = frozenset(("add", "mul", "min", "max", "and", "or", "xor"))


def _reduction_rhs(seq: list[VStmt], pos: int) -> VExpr | None:
    """The foldable operand when ``seq[pos]`` is ``acc = op(acc, rhs)``.

    Requires an exactly reassociable op, the accumulator on exactly one
    side, and no other read of the accumulator anywhere in the steady
    sequence (rhs included) — then the loop-carried self-cycle is a pure
    fold and the batch can reduce the rhs block in one call.
    """
    stmt = seq[pos]
    assert isinstance(stmt, SetV)
    expr = stmt.expr
    if not isinstance(expr, VBinE) or expr.op.name not in _REDUCE_OPS:
        return None
    a_is_acc = isinstance(expr.a, VRegE) and expr.a.name == stmt.reg
    b_is_acc = isinstance(expr.b, VRegE) and expr.b.name == stmt.reg
    if a_is_acc == b_is_acc:  # both or neither
        return None
    rhs = expr.b if a_is_acc else expr.a
    if any(isinstance(n, VRegE) and n.name == stmt.reg for n in walk(rhs)):
        return None
    for other_pos, other in enumerate(seq):
        if other_pos == pos:
            continue
        exprs = [other.expr] if isinstance(other, SetV) else [other.src]
        for e in exprs:
            if any(isinstance(n, VRegE) and n.name == stmt.reg for n in walk(e)):
                return None
    return rhs


def _plan(env: interp._Env, steady: SteadyLoop, lb: int, n: int) -> _Plan | None:
    program = env.program
    V = program.V
    stride = steady.step * program.D
    if stride <= 0 or stride % V:
        return None

    seq: list[VStmt] = list(steady.body) + list(steady.bottom)
    assign_pos: dict[str, int] = {}
    load_refs: list[tuple[Addr, int]] = []  # (address, statement position)
    store_refs: list[tuple[Addr, int]] = []
    for pos, stmt in enumerate(seq):
        load_addrs: list[Addr] = []
        if isinstance(stmt, SetV):
            if stmt.reg in assign_pos:
                return None
            assign_pos[stmt.reg] = pos
            if not _scan_expr(stmt.expr, load_addrs):
                return None
        elif isinstance(stmt, VStoreS):
            if not _scan_expr(stmt.src, load_addrs):
                return None
            store_refs.append((stmt.addr, pos))
        else:
            return None  # SetS or unknown: loop-variant scalar state
        load_refs.extend((addr, pos) for addr in load_addrs)

    reductions: dict[int, VExpr] = {}
    for pos, stmt in enumerate(seq):
        if isinstance(stmt, SetV):
            rhs = _reduction_rhs(seq, pos)
            if rhs is not None:
                reductions[pos] = rhs

    order = _topo_order(seq, assign_pos, reductions)
    if order is None:
        return None

    # Window bounds and collision analysis.  Windows are V-aligned and
    # V bytes long, so two windows are equal or disjoint; window t of an
    # access with first window a0 sits at a0 + t*stride, so windows of
    # two accesses collide iff their distance d is a multiple of the
    # stride with |d/stride| <= n-1.
    def first_window(addr: Addr) -> int | None:
        a0 = env.space[addr.array].addr(lb + addr.elem)
        a0 -= a0 % V
        if a0 < 0 or a0 + (n - 1) * stride + V > env.mem.size:
            return None
        return a0

    load_w = []
    for addr, pos in load_refs:
        a0 = first_window(addr)
        if a0 is None:
            return None
        load_w.append((a0, pos))
    store_w = []
    for addr, pos in store_refs:
        a0 = first_window(addr)
        if a0 is None:
            return None
        store_w.append((a0, pos))

    snapshot_reads = False
    for sa, s_pos in store_w:
        # A load window coinciding with a store window is safe exactly
        # when the interpreter's load would observe pre-steady memory:
        # the store happens in a strictly later iteration (d/stride > 0)
        # or later in the same iteration (d == 0, load statement not
        # after the store statement — loads of the storing statement
        # itself evaluate before its write).  Serving such loads from a
        # pre-loop snapshot is then exact.  The backward cases are flow
        # dependences the source validation rejects; keep the defensive
        # bail-out so an invalid program still gets exact per-iteration
        # semantics.
        for la, l_pos in load_w:
            d = la - sa
            if d % stride or abs(d) > (n - 1) * stride:
                continue  # never the same window
            if d < 0 or (d == 0 and l_pos > s_pos):
                return None
            snapshot_reads = True
        # Two *different* store statements hitting one window across
        # iterations interleave in program order; batching would not.
        # Identical first windows (d == 0) are safe: both statements
        # write the same window in the same per-iteration order, so the
        # later statement's full batch wins either way.
        for other, _ in store_w:
            d = other - sa
            if d != 0 and d % stride == 0 and abs(d) <= (n - 1) * stride:
                return None

    mem_u8 = np.frombuffer(env.mem.raw(), dtype=np.uint8)
    # Loads never observe the batch's stores (argued above), so one
    # snapshot serves every load; without overlap the live buffer is
    # identical and the copy is skipped.
    read_u8 = mem_u8.copy() if snapshot_reads else mem_u8
    return _Plan(n, lb, steady.step, stride, seq, assign_pos, order,
                 reductions, mem_u8, read_u8)


_SUPPORTED_OPS = frozenset(
    ("add", "sub", "mul", "min", "max", "and", "or", "xor", "avg", "sadd", "ssub")
)


def _scan_expr(expr: VExpr, load_addrs: list[Addr]) -> bool:
    """Collect load addresses; False when a node has no batched form."""
    for node in walk(expr):
        if isinstance(node, VLoadE):
            load_addrs.append(node.addr)
        elif isinstance(node, VBinE):
            if node.op.name not in _SUPPORTED_OPS:
                return False
        elif not isinstance(
            node, (VRegE, VShiftPairE, VSpliceE, VSplatE, VIotaE)
        ):
            return False
    return True


def _topo_order(
    seq: list[VStmt],
    assign_pos: dict[str, int],
    reductions: dict[int, VExpr],
) -> list[int] | None:
    """Order SetV positions so every read's defining array exists first.

    Every register read — same-iteration or loop-carried — needs the
    *complete* (n, V) array of its defining statement, so each read is
    an edge definer -> reader.  A recognized reduction's accumulator
    self-read is resolved by the batched fold, so its self-edge is
    dropped; any other cycle has no batched form and returns None.
    """
    positions = sorted(assign_pos.values())
    indeg = {pos: 0 for pos in positions}
    adj: dict[int, list[int]] = {pos: [] for pos in positions}
    for pos in positions:
        stmt = seq[pos]
        assert isinstance(stmt, SetV)
        for node in walk(stmt.expr):
            if isinstance(node, VRegE):
                src = assign_pos.get(node.name)
                if src == pos and pos in reductions:
                    continue  # the fold consumes the self-cycle
                if src is not None:
                    adj[src].append(pos)
                    indeg[pos] += 1
    ready = [pos for pos in positions if indeg[pos] == 0]
    order: list[int] = []
    while ready:
        pos = ready.pop()
        order.append(pos)
        for succ in adj[pos]:
            indeg[succ] -= 1
            if indeg[succ] == 0:
                ready.append(succ)
    if len(order) != len(positions):
        return None
    return order


# ---------------------------------------------------------------------------
# Batched execution
# ---------------------------------------------------------------------------

def _exec_batched(env: interp._Env, plan: _Plan) -> None:
    arrays: dict[str, np.ndarray] = {}
    for pos in plan.order:
        stmt = plan.seq[pos]
        assert isinstance(stmt, SetV)
        if pos in plan.reductions:
            arrays[stmt.reg] = _fold_reduction(env, plan, arrays, stmt, pos)
        else:
            arrays[stmt.reg] = _eval_rows(env, plan, arrays, stmt.expr, pos)
    for pos, stmt in enumerate(plan.seq):
        if isinstance(stmt, VStoreS):
            rows = _eval_rows(env, plan, arrays, stmt.src, pos)
            view = _window_view(env, plan, stmt.addr, plan.mem_u8)
            view[:] = np.broadcast_to(rows, (plan.n, env.program.V))
    # Final register values feed the epilogue (run by the interpreter).
    for pos in plan.order:
        stmt = plan.seq[pos]
        assert isinstance(stmt, SetV)
        env.vregs[stmt.reg] = arrays[stmt.reg][-1].tobytes()


def _fold_reduction(
    env: interp._Env,
    plan: _Plan,
    arrays: dict[str, np.ndarray],
    stmt: SetV,
    pos: int,
) -> np.ndarray:
    """``acc = op(acc, rhs)`` over all iterations as one lane-wise fold.

    The accumulator after the last iteration is the op-fold of the rhs
    rows seeded with the register's prologue value — exact because the
    permitted ops reassociate exactly.  Returns shape ``(1, V)``: only
    the final value exists (nothing else may read the accumulator).
    """
    V = env.program.V
    expr = stmt.expr
    assert isinstance(expr, VBinE)
    rows = _eval_rows(env, plan, arrays, plan.reductions[pos], pos)
    init = np.frombuffer(
        interp._read_vreg(env, stmt.reg), dtype=np.uint8
    ).reshape(1, V)
    block = np.concatenate(
        [init, np.broadcast_to(rows, (plan.n, V))], axis=0
    )
    return _fold_rows(expr.op.name, block, expr.dtype)


def _fold_rows(name: str, block: np.ndarray, dtype) -> np.ndarray:
    """Fold (m, V) uint8 rows lane-wise into (1, V), bit-exactly."""
    if name in ("and", "or", "xor"):
        ufunc = {"and": np.bitwise_and, "or": np.bitwise_or,
                 "xor": np.bitwise_xor}[name]
        return ufunc.reduce(block, axis=0, keepdims=True)
    fmt = f"<{'i' if dtype.signed and name in ('min', 'max') else 'u'}{dtype.size}"
    lanes = np.ascontiguousarray(block).view(fmt)
    ufunc = {"add": np.add, "mul": np.multiply,
             "min": np.minimum, "max": np.maximum}[name]
    # Pin the accumulation dtype: add/multiply.reduce would otherwise
    # promote narrow lanes to the platform int and lose the wraparound.
    out = ufunc.reduce(lanes, axis=0, keepdims=True, dtype=lanes.dtype)
    return np.ascontiguousarray(out).view(np.uint8)


def _window_view(
    env: interp._Env, plan: _Plan, addr: Addr, buffer: np.ndarray
) -> np.ndarray:
    """The access's truncated V-byte window per iteration, as (n, V)."""
    V = env.program.V
    a0 = env.space[addr.array].addr(plan.lb + addr.elem)
    a0 -= a0 % V
    return np.lib.stride_tricks.as_strided(
        buffer[a0:], shape=(plan.n, V), strides=(plan.stride, 1)
    )


def _eval_rows(
    env: interp._Env,
    plan: _Plan,
    arrays: dict[str, np.ndarray],
    expr: VExpr,
    pos: int,
) -> np.ndarray:
    """Evaluate a vector expression over all iterations.

    Returns a uint8 array of shape (n, V), or (1, V) for values that are
    iteration-invariant (splats, loop-invariant registers).
    """
    V = env.program.V
    if isinstance(expr, VLoadE):
        # Loads never observe the batch's stores (see _plan), so they
        # are served from the read buffer — a pre-loop snapshot when a
        # stored window collides with a load window, the live memory
        # otherwise.
        return _window_view(env, plan, expr.addr, plan.read_u8)
    if isinstance(expr, VRegE):
        defining = plan.assign_pos.get(expr.name)
        if defining is None:
            # Loop-invariant register from the preheader/prologue.
            data = interp._read_vreg(env, expr.name)
            return np.frombuffer(data, dtype=np.uint8).reshape(1, V)
        rows = arrays[expr.name]
        if defining < pos:
            return rows  # same-iteration value
        # Loop-carried: row t reads the value defined in iteration t-1;
        # row 0 reads the register's pre-loop (prologue) value.
        init = np.frombuffer(
            interp._read_vreg(env, expr.name), dtype=np.uint8
        ).reshape(1, V)
        full = np.broadcast_to(rows, (plan.n, V))
        return np.concatenate([init, full[:-1]], axis=0)
    if isinstance(expr, VShiftPairE):
        a = _eval_rows(env, plan, arrays, expr.a, pos)
        b = _eval_rows(env, plan, arrays, expr.b, pos)
        shift = expr.shift if isinstance(expr.shift, int) else _peek_s(env, expr.shift)
        if not 0 <= shift <= V:
            raise MachineError(f"vshiftpair shift {shift} outside [0, {V}]")
        a, b = _pair(a, b)
        return np.concatenate([a, b], axis=1)[:, shift:shift + V]
    if isinstance(expr, VSpliceE):
        a = _eval_rows(env, plan, arrays, expr.a, pos)
        b = _eval_rows(env, plan, arrays, expr.b, pos)
        point = expr.point if isinstance(expr.point, int) else _peek_s(env, expr.point)
        if not 0 <= point <= V:
            raise MachineError(f"vsplice point {point} outside [0, {V}]")
        a, b = _pair(a, b)
        return np.concatenate([a[:, :point], b[:, point:]], axis=1)
    if isinstance(expr, VSplatE):
        value = _peek_s(env, expr.operand)
        data = vec.vsplat(expr.dtype.wrap(value), expr.dtype, V)
        return np.frombuffer(data, dtype=np.uint8).reshape(1, V)
    if isinstance(expr, VBinE):
        a = _eval_rows(env, plan, arrays, expr.a, pos)
        b = _eval_rows(env, plan, arrays, expr.b, pos)
        return _binop_rows(expr.op.name, a, b, expr.dtype)
    if isinstance(expr, VIotaE):
        dtype = expr.dtype
        B = V // dtype.size
        i_vals = plan.lb + plan.step * np.arange(plan.n, dtype=np.int64)
        m = (i_vals + expr.bias) * dtype.size // V  # numpy // floors like Python
        lanes = m[:, None] * B + np.arange(B, dtype=np.int64)
        lanes &= (1 << dtype.bits) - 1  # modular wrap, like DataType.wrap
        return np.ascontiguousarray(lanes.astype(f"<u{dtype.size}")).view(np.uint8)
    raise MachineError(f"unknown vector expression {type(expr).__name__}")


def _pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    rows = max(a.shape[0], b.shape[0])
    return (
        np.broadcast_to(a, (rows, a.shape[1])),
        np.broadcast_to(b, (rows, b.shape[1])),
    )


def _lane_view(rows: np.ndarray, fmt: str) -> np.ndarray:
    """Reinterpret uint8 rows as lane values (copies when non-contiguous)."""
    return np.ascontiguousarray(rows).view(fmt)


def _binop_rows(name: str, a: np.ndarray, b: np.ndarray, dtype) -> np.ndarray:
    """Lane-wise op matching BinaryOp.apply + DataType.wrap, on uint8 rows."""
    a, b = _pair(a, b)
    if name in ("and", "or", "xor"):
        func = {"and": np.bitwise_and, "or": np.bitwise_or, "xor": np.bitwise_xor}[name]
        return func(a, b)
    ufmt = f"<u{dtype.size}"
    sfmt = f"<i{dtype.size}"
    lane_fmt = sfmt if dtype.signed else ufmt
    if name in ("add", "sub", "mul"):
        # Two's-complement wraparound == unsigned modular arithmetic.
        la, lb = _lane_view(a, ufmt), _lane_view(b, ufmt)
        func = {"add": np.add, "sub": np.subtract, "mul": np.multiply}[name]
        return func(la, lb).view(np.uint8)
    la, lb = _lane_view(a, lane_fmt), _lane_view(b, lane_fmt)
    if name in ("min", "max"):
        func = np.minimum if name == "min" else np.maximum
        return np.ascontiguousarray(func(la, lb)).view(np.uint8)
    wa = la.astype(np.int64)
    wb = lb.astype(np.int64)
    if name == "avg":
        out = (wa + wb) >> 1  # arithmetic shift floors, like Python's >>
    elif name == "sadd":
        out = np.clip(wa + wb, dtype.min_value, dtype.max_value)
    elif name == "ssub":
        out = np.clip(wa - wb, dtype.min_value, dtype.max_value)
    else:  # pragma: no cover - guarded by _SUPPORTED_OPS
        raise MachineError(f"unknown batched binary op {name!r}")
    out &= (1 << dtype.bits) - 1  # re-encode two's complement
    return np.ascontiguousarray(out.astype(ufmt)).view(np.uint8)


# ---------------------------------------------------------------------------
# Count-free scalar evaluation (all steady scalar operands are invariant)
# ---------------------------------------------------------------------------

def _peek_s(env: interp._Env, expr: SExpr) -> int:
    if isinstance(expr, SConst):
        return expr.value
    if isinstance(expr, SVar):
        loop = env.program.source
        if isinstance(loop.upper, str) and expr.name == loop.upper:
            return env.trip
        return env.bindings.scalar(expr.name)
    if isinstance(expr, SBase):
        return env.space[expr.array].base
    if isinstance(expr, SReg):
        try:
            return env.sregs[expr.name]
        except KeyError:
            raise MachineError(
                f"scalar register {expr.name!r} read before being set"
            ) from None
    if isinstance(expr, SBin):
        return S_OPS[expr.op](_peek_s(env, expr.left), _peek_s(env, expr.right))
    raise MachineError(f"unknown scalar expression {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Structural counting (one iteration's worth, mirroring interp._eval_v)
# ---------------------------------------------------------------------------

def _count_stmt(counters: OpCounters, stmt: VStmt) -> None:
    if isinstance(stmt, SetV):
        if stmt.is_copy:
            counters.bump(VCOPY)
        else:
            _count_vexpr(counters, stmt.expr)
    elif isinstance(stmt, VStoreS):
        _count_vexpr(counters, stmt.src)
        counters.bump(VSTORE)
    else:  # pragma: no cover - planning rejects anything else
        raise MachineError(f"unknown statement {type(stmt).__name__}")


def _count_vexpr(counters: OpCounters, expr: VExpr) -> None:
    if isinstance(expr, VLoadE):
        counters.bump(VLOAD)
    elif isinstance(expr, VRegE):
        pass
    elif isinstance(expr, VShiftPairE):
        _count_vexpr(counters, expr.a)
        _count_vexpr(counters, expr.b)
        _count_sbins(counters, expr.shift)
        counters.bump(VPERM)
    elif isinstance(expr, VSpliceE):
        _count_vexpr(counters, expr.a)
        _count_vexpr(counters, expr.b)
        _count_sbins(counters, expr.point)
        counters.bump(VSEL)
    elif isinstance(expr, VSplatE):
        _count_sbins(counters, expr.operand)
        counters.bump(VSPLAT)
    elif isinstance(expr, VBinE):
        _count_vexpr(counters, expr.a)
        _count_vexpr(counters, expr.b)
        counters.bump(VARITH)
    elif isinstance(expr, VIotaE):
        counters.bump(VARITH)
    else:  # pragma: no cover - planning rejects anything else
        raise MachineError(f"unknown vector expression {type(expr).__name__}")


def _count_sbins(counters: OpCounters, operand) -> None:
    """SCALAR bumps interp._eval_s would make evaluating this operand."""
    if not isinstance(operand, SExpr):
        return
    sbins = _sbin_count(operand)
    if sbins:
        counters.bump(SCALAR, sbins)


def _sbin_count(expr: SExpr) -> int:
    if isinstance(expr, SBin):
        return 1 + _sbin_count(expr.left) + _sbin_count(expr.right)
    return 0
