"""Byte-addressable memory with AltiVec-style truncating vector access.

The paper's target machines "support only loads and stores of
register-length aligned memory": a vector load at address ``p`` ignores
the low ``log2(V)`` address bits (AltiVec ``vec_ld``), and likewise for
stores.  :class:`Memory` implements exactly that contract.
"""

from __future__ import annotations

from repro.errors import MachineError


class Memory:
    """A flat little-endian byte-addressable memory."""

    def __init__(self, size: int, fill: int = 0xCD):
        if size <= 0:
            raise MachineError("memory size must be positive")
        self._data = bytearray([fill]) * size if False else bytearray([fill] * size)
        self.size = size

    # -- raw byte access ------------------------------------------------

    def read(self, addr: int, nbytes: int) -> bytes:
        """Read ``nbytes`` raw bytes (no alignment truncation)."""
        self._check(addr, nbytes)
        return bytes(self._data[addr:addr + nbytes])

    def write(self, addr: int, data: bytes) -> None:
        """Write raw bytes (no alignment truncation)."""
        self._check(addr, len(data))
        self._data[addr:addr + len(data)] = data

    # -- vector access with hardware truncation --------------------------

    def vload(self, addr: int, V: int) -> bytes:
        """Load ``V`` contiguous bytes from ``addr`` truncated down to a
        multiple of ``V`` — the paper's alignment-constrained load."""
        base = addr - (addr % V)
        return self.read(base, V)

    def vstore(self, addr: int, data: bytes, V: int) -> None:
        """Store a full vector at ``addr`` truncated down to a multiple of
        ``V`` — the paper's alignment-constrained store."""
        if len(data) != V:
            raise MachineError(f"vstore of {len(data)} bytes on a {V}-byte machine")
        base = addr - (addr % V)
        self.write(base, data)

    # -- helpers ---------------------------------------------------------

    def raw(self) -> bytearray:
        """The live backing store, shared (not copied).

        Execution backends that wrap the memory in typed array views
        (e.g. a NumPy ``uint8`` view) use this to mutate the same bytes
        the byte-level accessors see, so both access paths stay
        coherent within one run.
        """
        return self._data

    def snapshot(self) -> bytes:
        """An immutable copy of the whole memory, for equivalence checks."""
        return bytes(self._data)

    def clone(self) -> "Memory":
        copy = Memory.__new__(Memory)
        copy._data = bytearray(self._data)
        copy.size = self.size
        return copy

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.size:
            raise MachineError(
                f"access [{addr}, {addr + nbytes}) outside memory of size {self.size}"
            )
