"""Byte-addressable memory with AltiVec-style truncating vector access.

The paper's target machines "support only loads and stores of
register-length aligned memory": a vector load at address ``p`` ignores
the low ``log2(V)`` address bits (AltiVec ``vec_ld``), and likewise for
stores.  :class:`Memory` implements exactly that contract.

The backing store is allocated through
:func:`repro.machine.alignedbuf.aligned_view`, so byte 0 of every
memory image sits on a 64-byte boundary.  Simulation never notices
(addresses here are offsets), but the native tier's vector-extension
kernels receive ``raw()`` zero-copy and promise the compiler that all
V-truncated addresses are genuinely V-aligned — a promise that is only
true if the base is.
"""

from __future__ import annotations

from repro.errors import MachineError
from repro.machine.alignedbuf import aligned_view


def _restore(size: int, data: bytes) -> "Memory":
    """Pickle constructor: rebuild an aligned memory from its bytes."""
    mem = Memory.__new__(Memory)
    mem._data = aligned_view(size)
    mem._data[:] = data
    mem.size = size
    return mem


class Memory:
    """A flat little-endian byte-addressable memory."""

    def __init__(self, size: int, fill: int = 0xCD):
        if size <= 0:
            raise MachineError("memory size must be positive")
        self._data = aligned_view(size, fill=fill)
        self.size = size

    # -- raw byte access ------------------------------------------------

    def read(self, addr: int, nbytes: int) -> bytes:
        """Read ``nbytes`` raw bytes (no alignment truncation)."""
        self._check(addr, nbytes)
        return bytes(self._data[addr:addr + nbytes])

    def write(self, addr: int, data: bytes) -> None:
        """Write raw bytes (no alignment truncation)."""
        self._check(addr, len(data))
        self._data[addr:addr + len(data)] = data

    # -- vector access with hardware truncation --------------------------

    def vload(self, addr: int, V: int) -> bytes:
        """Load ``V`` contiguous bytes from ``addr`` truncated down to a
        multiple of ``V`` — the paper's alignment-constrained load."""
        base = addr - (addr % V)
        return self.read(base, V)

    def vstore(self, addr: int, data: bytes, V: int) -> None:
        """Store a full vector at ``addr`` truncated down to a multiple of
        ``V`` — the paper's alignment-constrained store."""
        if len(data) != V:
            raise MachineError(f"vstore of {len(data)} bytes on a {V}-byte machine")
        base = addr - (addr % V)
        self.write(base, data)

    # -- helpers ---------------------------------------------------------

    def raw(self) -> memoryview:
        """The live backing store, shared (not copied).

        Execution backends that wrap the memory in typed array views
        (e.g. a NumPy ``uint8`` view, or the native tier's ctypes
        pointer) use this to mutate the same bytes the byte-level
        accessors see, so both access paths stay coherent within one
        run.  The view's base address is 64-byte aligned (see module
        docstring); it is fixed-size, so whole-image restores go
        through slice assignment (``raw()[:] = snapshot``).
        """
        return self._data

    def snapshot(self) -> bytes:
        """An immutable copy of the whole memory, for equivalence checks."""
        return bytes(self._data)

    def clone(self) -> "Memory":
        copy = Memory.__new__(Memory)
        copy._data = aligned_view(self.size)
        copy._data[:] = self._data
        copy.size = self.size
        return copy

    def __reduce__(self):
        # memoryviews don't pickle; rebuild the aligned backing on load
        # (sweep workers ship memories across process boundaries).
        return (_restore, (self.size, bytes(self._data)))

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.size:
            raise MachineError(
                f"access [{addr}, {addr + nbytes}) outside memory of size {self.size}"
            )
