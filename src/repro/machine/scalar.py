"""Scalar reference executor: golden semantics + ideal scalar op counts.

Executing the loop IR directly, one original iteration at a time, gives

* the ground-truth memory state every simdization must reproduce
  byte-for-byte, and
* the paper's "idealistic scalar instruction count" baseline (SEQ):
  one operation per load, per arithmetic node, and per store — no
  address or loop overhead — e.g. 6 loads + 5 adds + 1 store = 12
  operations per datum for the Section 5.5 single-statement loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MachineError
from repro.ir.expr import BinOp, Const, Expr, Loop, LoopIndex, Reduction, Ref, ScalarVar
from repro.machine.arrays import ArraySpace
from repro.machine.counters import OpCounters, SARITH, SLOAD, SSTORE
from repro.machine.memory import Memory


@dataclass
class RunBindings:
    """Runtime values for a loop execution.

    ``trip`` must be given when the loop's upper bound is symbolic; for
    a compile-time bound it may be omitted (or must match).  ``scalars``
    binds the loop-invariant :class:`~repro.ir.expr.ScalarVar` operands.
    """

    trip: int | None = None
    scalars: dict[str, int] = field(default_factory=dict)

    def resolve_trip(self, loop: Loop) -> int:
        if isinstance(loop.upper, int):
            if self.trip is not None and self.trip != loop.upper:
                raise MachineError(
                    f"trip count mismatch: loop has compile-time trip "
                    f"{loop.upper}, bindings say {self.trip}"
                )
            return loop.upper
        if self.trip is None:
            raise MachineError(f"runtime trip count {loop.upper!r} is unbound")
        if self.trip < 0:
            raise MachineError(f"negative trip count {self.trip}")
        return self.trip

    def scalar(self, name: str) -> int:
        try:
            return self.scalars[name]
        except KeyError:
            raise MachineError(f"runtime scalar {name!r} is unbound") from None


@dataclass
class ScalarRunResult:
    """Outcome of a scalar reference execution."""

    counters: OpCounters
    trip: int
    #: Number of data elements computed (one per statement per iteration).
    data_count: int = 0
    #: Degradation record from the resilient scalar chain, or None
    #: (same shape as ``VectorRunResult.fallback``).
    fallback: dict | None = None

    @property
    def ops(self) -> int:
        return self.counters.total


def run_scalar(
    loop: Loop,
    space: ArraySpace,
    mem: Memory,
    bindings: RunBindings | None = None,
) -> ScalarRunResult:
    """Execute ``loop`` iteration-by-iteration on ``mem``; return op counts."""
    bindings = bindings or RunBindings()
    trip = bindings.resolve_trip(loop)
    counters = OpCounters()

    bound = {arr.name: space[arr.name] for arr in loop.arrays()}

    def eval_expr(expr: Expr, i: int) -> int:
        dtype = loop.dtype
        if isinstance(expr, Ref):
            counters.bump(SLOAD)
            return bound[expr.array.name].load(mem, i + expr.offset)
        if isinstance(expr, Const):
            return dtype.wrap(expr.value)
        if isinstance(expr, ScalarVar):
            return dtype.wrap(bindings.scalar(expr.name))
        if isinstance(expr, LoopIndex):
            # The counter lives in a register; using it as a value is free.
            return dtype.wrap(i)
        if isinstance(expr, BinOp):
            left = eval_expr(expr.left, i)
            right = eval_expr(expr.right, i)
            counters.bump(SARITH)
            return expr.op.apply(left, right, dtype)
        raise MachineError(f"unknown expression node {type(expr).__name__}")

    reductions = [s for s in loop.statements if isinstance(s, Reduction)]
    if reductions:
        # Ideal scalar reductions keep the accumulator in a register:
        # one load of the initial value and one final store, with one
        # accumulate op per iteration.
        accs: list[int] = []
        for stmt in reductions:
            counters.bump(SLOAD)
            accs.append(bound[stmt.target.array.name].load(mem, stmt.target.offset))
        for i in range(trip):
            for k, stmt in enumerate(reductions):
                value = eval_expr(stmt.expr, i)
                counters.bump(SARITH)
                accs[k] = stmt.op.apply(accs[k], value, loop.dtype)
        for k, stmt in enumerate(reductions):
            counters.bump(SSTORE)
            bound[stmt.target.array.name].store(mem, stmt.target.offset, accs[k])
    else:
        for i in range(trip):
            for stmt in loop.statements:
                value = eval_expr(stmt.expr, i)
                counters.bump(SSTORE)
                bound[stmt.target.array.name].store(mem, i + stmt.target.offset, value)

    return ScalarRunResult(counters=counters, trip=trip,
                           data_count=trip * len(loop.statements))


def reference_counters(loop: Loop, trip: int) -> OpCounters:
    """The exact :class:`OpCounters` :func:`run_scalar` tallies, derived
    structurally — no execution.

    The scalar reference re-walks the statement bodies every iteration,
    so its dynamic counts are ``trip × (per-iteration statement counts)``
    plus, for reductions, the one-time accumulator load/store.  Batched
    scalar engines report these counters so OPD and speedup stay
    bit-identical to the oracle whichever engine produced the memory
    image (the cost model counts operations of the *loop*, not of the
    engine executing it).
    """
    counters = OpCounters()
    loads = arith = stores = fixed_loads = fixed_stores = 0
    for stmt in loop.statements:
        loads += len(stmt.loads())
        arith += sum(1 for n in stmt.expr.walk() if isinstance(n, BinOp))
        if isinstance(stmt, Reduction):
            arith += 1        # the accumulate op
            fixed_loads += 1  # initial accumulator load
            fixed_stores += 1 # final accumulator store
        else:
            stores += 1
    if loads * trip + fixed_loads:
        counters.bump(SLOAD, loads * trip + fixed_loads)
    if arith * trip:
        counters.bump(SARITH, arith * trip)
    if stores * trip + fixed_stores:
        counters.bump(SSTORE, stores * trip + fixed_stores)
    return counters


def ideal_scalar_ops(loop: Loop, trip: int) -> int:
    """Analytic ideal scalar op count (loads + arith + stores) — no execution."""
    per_iter = 0
    fixed = 0
    for stmt in loop.statements:
        per_iter += len(stmt.loads())
        per_iter += sum(1 for n in stmt.expr.walk() if isinstance(n, BinOp))
        if isinstance(stmt, Reduction):
            per_iter += 1  # the accumulate op
            fixed += 2     # initial load + final store of the accumulator
        else:
            per_iter += 1  # the store
    return per_iter * trip + fixed


def ideal_scalar_opd(loop: Loop) -> float:
    """Ideal scalar operations per datum (trip-count independent)."""
    return ideal_scalar_ops(loop, trip=1) / len(loop.statements)
