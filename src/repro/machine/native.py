"""Native codegen backend: signature kernels compiled to machine code.

The jit tier (:mod:`repro.machine.jit`) stops at generated NumPy-Python
source.  This tier closes the paper's loop: for each structural program
signature it lowers the :class:`~repro.vir.program.VProgram` through
the C emitter (:mod:`repro.export.cgen` with the portable plain-C
dialect — the SSE/AltiVec emitters stay export-only) into a translation
unit holding the scalar reference loop, the simdized loop, and a
*steady-loop kernel* with the flat-buffer ABI this module calls, then
compiles it with the system toolchain (``cc -O3 -shared -fPIC``), loads
the shared object via :mod:`ctypes`, and invokes it on the run's
existing byte buffers with zero-copy pointer passing.

Division of labour — native is the jit engine with the steady loop
swapped out:

* prologue/epilogue sections, the guard fallback, trip resolution, and
  all counter bookkeeping stay on the jit/interp machinery (sections
  are a handful of V-byte ops; the steady loop is where the time is);
* the per-run window/collision analysis is jit's own
  :func:`~repro.machine.jit._window_bases`, reused verbatim so native
  batches and falls back on **exactly** the same runs (the
  ``used_fallback`` parity contract).  For every accepted run the
  colliding loads read pre-loop memory in sequential order too, so the
  C kernel executes the original statement sequence iteration by
  iteration and needs no snapshot buffer;
* operation counters remain analytic
  (:func:`~repro.machine.jit._bump_steady_counters`), so OPD tables
  are byte-identical to the bytes oracle.

Compilation itself goes through the pipeline in
:mod:`repro.machine.compilequeue`: every kernel is emitted as a
uniquely named ``simdal_steady_<digest>`` function so many signatures
can share one translation unit and one ``cc`` invocation (the sweep
runners precompile whole campaigns this way before workers fork), and
``REPRO_NATIVE_ASYNC=1`` moves compilation to a background thread that
hot-swaps the machine code into the live kernel object while runs
proceed on the jit tier.

Kernels are cached at two tiers keyed on the structural signature:
an in-process LRU of loaded ``ctypes`` functions, and the shared disk
cache holding the ``.c`` source and ``.so`` object as sibling
artifacts under a key versioned by package version,
:data:`NATIVE_CODE_VERSION`, and the *compiler identity* (path plus
``--version`` line), so a toolchain upgrade can never resurrect a
stale object.  The compiler identity itself re-resolves whenever
``REPRO_CC``/``CC`` change (and :func:`reset_compiler_cache` drops it
plus any memoized cc failures), so a transient or fault-injected
toolchain failure cannot poison later legitimate compiles.  A
corrupted or truncated ``.so`` fails its content digest and the whole
entry group is quarantined, never raised.

Hosts without a C compiler (and ``REPRO_FAULT=compile:*`` runs) raise
:class:`NativeUnavailable` from kernel acquisition — before any memory
mutation — which the resilient chain turns into a structured
``native → jit`` degradation with one warning per process.

This module is only imported when NumPy is present (it builds on the
jit tier); use :func:`repro.machine.backend.get_backend` for gated
access.
"""

from __future__ import annotations

import atexit
import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import time
import warnings
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.cache import get_cache
from repro.errors import CodegenError, MachineError
from repro.export.cgen import CEmitter
from repro.export.portable import PortableBackend, kernel_unit_prelude
from repro.faults import fault as _fault
from repro.machine import compilequeue, interp, jit, npbackend
from repro.machine import vector as vec
from repro.machine.jit import JitBackend
from repro.vir.program import VProgram
from repro.vir.vexpr import (
    SConst,
    VBinE,
    VExpr,
    VIotaE,
    VLoadE,
    VRegE,
    VShiftPairE,
    VSpliceE,
    VSplatE,
)
from repro.vir.vstmt import SetV, VStoreS

#: Bump when the emitted C kernel layout or ABI changes: disk entries
#: written by older code must never load.  v2: per-signature
#: ``simdal_steady_<digest>`` symbols (batched translation units).
NATIVE_CODE_VERSION = 2

#: Compile/cache counters (process-wide; surfaced with a ``native_``
#: prefix by :func:`repro.machine.backend.jit_compile_stats`).
STATS = {
    "codegens": 0,         # C kernels emitted from scratch
    "memory_hits": 0,      # loaded ctypes kernel reused
    "memory_misses": 0,
    "disk_hits": 0,        # .so loaded from the disk cache
    "disk_misses": 0,
    "cc_s": 0.0,           # foreground seconds inside the system compiler
    "load_s": 0.0,         # foreground seconds loading shared objects
    "cc_invocations": 0,   # compiler subprocesses launched
    "tus": 0,              # translation units fed to those invocations
    "tu_kernels": 0,       # kernels carried by successful batches
    "precompiled": 0,      # kernels compiled ahead by the sweep pipeline
    "async_compiles": 0,   # jobs submitted to the background queue
    "hot_swaps": 0,        # async kernels swapped in behind a live run
    "async_failures": 0,   # background jobs that failed (stayed on jit)
    "queue_depth_max": 0,  # high-water mark of the background queue
    "async_cc_s": 0.0,     # background compiler seconds (overlap run time)
    "async_load_s": 0.0,   # background .so load seconds
}

#: Prefix of every steady-loop kernel symbol; the per-signature name
#: comes from :func:`kernel_symbol`.
KERNEL_SYMBOL = "simdal_steady"


def kernel_symbol(signature: str) -> str:
    """The exported C symbol for a signature's steady kernel.

    Digest-suffixed so any set of signature kernels can coexist in one
    shared object — the batched compile pipeline links many kernels
    into one ``cc`` invocation.  Stable across processes (it hashes
    the structural signature only), so a ``.so`` written by one worker
    resolves in every other.
    """
    digest = hashlib.sha256(signature.encode()).hexdigest()[:16]
    return f"{KERNEL_SYMBOL}_{digest}"


class NativeUnavailable(MachineError):
    """The native tier cannot produce a kernel on this host.

    Carries ``phase = "compile"`` so the resilient chain files the
    native → jit degradation under the compile phase.
    """

    phase = "compile"


class _CantEmit(Exception):
    """A steady form outside the C emitter's subset (delegate to jit)."""


# ---------------------------------------------------------------------------
# Steady-kernel C emission
# ---------------------------------------------------------------------------
#
# The kernel ABI (fixed; versioned by NATIVE_CODE_VERSION):
#
#   void simdal_steady(uint8_t *mem, int64_t lb, int64_t n,
#                      const int64_t *wb, const int64_t *scal,
#                      const uint8_t *cvec, uint8_t *vregs)
#
# * mem   — the run's whole memory image (Memory.raw(), zero-copy)
# * lb, n — steady lower bound and iteration count
# * wb    — one absolute V-aligned window base per spec.win_keys entry
#           (window address at iteration t is wb[k] + t*stride)
# * scal  — checked runtime shift amounts then splice points, in table
#           order (loop-invariant: the steady sequence is SetV/VStoreS
#           only, so every SExpr operand is fixed for the whole run)
# * cvec  — one V-byte splat constant per splat-table entry
# * vregs — len(vreg_names) V-byte slots: Python seeds the registers
#           the loop reads before writing, C writes back every SetV
#           target's final value for the epilogue
#
# Statements execute in ORIGINAL sequence order, one iteration at a
# time — exactly the interpreter's semantics — so loop-carried reads
# and reductions need no special lowering, and every run accepted by
# _window_bases produces the same bytes the batched jit kernel does.

@dataclass
class _NativeMeta:
    """Picklable invoke-time tables (this is what the disk cache holds)."""

    signature: str
    symbol: str = ""         # simdal_steady_<digest> in the TU
    source: str = ""
    so_sha256: str = ""
    vreg_names: tuple = ()   # vregs-buffer slot order
    seed_regs: tuple = ()    # read-before-write registers Python seeds
    out_regs: tuple = ()     # SetV targets C writes back
    shifts: tuple = ()       # runtime vshiftpair SExprs, scal[] order
    points: tuple = ()       # runtime vsplice SExprs, after shifts
    splats: tuple = ()       # (operand SExpr, dtype) per cvec block
    bad_amounts: tuple = ()  # (what, value) compile-time out-of-range


@dataclass
class _NativeKernel:
    """A jit kernel plus (when emission and cc succeeded) its C steady."""

    jk: jit._Kernel
    meta: _NativeMeta | None
    cfn: object | None       # ctypes function, or None to delegate to jit
    plan: object = None      # lazy per-process _InvokePlan (never pickled)
    pending: bool = False    # queued on the async pipeline (cfn arrives
    #                          via hot-swap; delegates to jit meanwhile)

    @property
    def spec(self) -> jit._KernelSpec:
        return self.jk.spec

    @property
    def pre(self):
        return self.jk.pre

    @property
    def post(self):
        return self.jk.post


class _KernelEmitter:
    """Lowers a batchable steady sequence to the C kernel + its tables."""

    def __init__(self, program: VProgram, spec: jit._KernelSpec):
        self.program = program
        self.spec = spec
        self.V = spec.V
        self.stride = spec.stride
        self.dtype = program.source.dtype
        self._win_idx = {key: k for k, key in enumerate(spec.win_keys)}
        self.names: list[str] = []       # register -> vregs slot order
        self._slot: dict[str, int] = {}
        self.seeds: dict[str, None] = {}
        self.shifts: list = []
        self._shift_idx: dict = {}
        self.points: list = []
        self._point_idx: dict = {}
        self.splats: list = []
        self._splat_idx: dict = {}
        self.bad_amounts: list = []
        self.assign_pos: dict[str, int] = {}

    def slot(self, reg: str) -> int:
        idx = self._slot.get(reg)
        if idx is None:
            idx = self._slot[reg] = len(self.names)
            self.names.append(reg)
        return idx

    def _window(self, addr) -> str:
        k = self._win_idx.get((addr.array, addr.elem))
        if k is None:
            raise _CantEmit(f"address {addr} missing from the window table")
        return f"mem + wb[{k}] + t * {self.stride}"

    def _amount(self, amount, kind: str) -> str:
        what = "vshiftpair shift" if kind == "shift" else "vsplice point"
        if isinstance(amount, int):
            if 0 <= amount <= self.V:
                return str(amount)
            # Must still raise the jit engine's MachineError at invoke
            # time, from the same pre-mutation point.
            self.bad_amounts.append((what, amount))
            return "0"
        table = self.shifts if kind == "shift" else self.points
        index = self._shift_idx if kind == "shift" else self._point_idx
        idx = index.get(amount)
        if idx is None:
            idx = index[amount] = len(table)
            table.append(amount)
        offset = idx if kind == "shift" else len(self.shifts) + idx
        return f"scal[{offset}]"

    def vexpr(self, expr: VExpr, pos: int) -> str:
        if isinstance(expr, VLoadE):
            return f"simdal_load({self._window(expr.addr)})"
        if isinstance(expr, VRegE):
            defining = self.assign_pos.get(expr.name)
            if defining is None or defining >= pos:
                # Invariant or loop-carried: Python seeds the pre-loop
                # value; sequential execution does the rest.
                self.seeds.setdefault(expr.name)
            return f"v{self.slot(expr.name)}"
        if isinstance(expr, VShiftPairE):
            a = self.vexpr(expr.a, pos)
            b = self.vexpr(expr.b, pos)
            s = self._amount(expr.shift, "shift")
            return f"simdal_shiftpair({a}, {b}, {s})"
        if isinstance(expr, VSpliceE):
            a = self.vexpr(expr.a, pos)
            b = self.vexpr(expr.b, pos)
            p = self._amount(expr.point, "point")
            return f"simdal_splice({a}, {b}, {p})"
        if isinstance(expr, VSplatE):
            if expr.dtype != self.dtype:
                raise _CantEmit("splat dtype differs from the loop dtype")
            key = (expr.operand, expr.dtype)
            idx = self._splat_idx.get(key)
            if idx is None:
                idx = self._splat_idx[key] = len(self.splats)
                self.splats.append(key)
            return f"simdal_load(cvec + {idx * self.V})"
        if isinstance(expr, VIotaE):
            if expr.dtype != self.dtype:
                raise _CantEmit("iota dtype differs from the loop dtype")
            return f"simdal_iota(i + ({expr.bias}))"
        if isinstance(expr, VBinE):
            if expr.dtype != self.dtype:
                raise _CantEmit("binop dtype differs from the loop dtype")
            a = self.vexpr(expr.a, pos)
            b = self.vexpr(expr.b, pos)
            return f"simdal_op_{expr.op.name}({a}, {b})"
        raise _CantEmit(f"no C lowering for {type(expr).__name__}")

    def emit(self) -> tuple[str, _NativeMeta]:
        steady = self.program.steady
        seq = list(steady.body) + list(steady.bottom)
        for pos, stmt in enumerate(seq):
            if isinstance(stmt, SetV):
                self.assign_pos[stmt.reg] = pos
        body: list[str] = []
        outs: list[str] = []
        for pos, stmt in enumerate(seq):
            if isinstance(stmt, SetV):
                text = self.vexpr(stmt.expr, pos)
                body.append(f"        v{self.slot(stmt.reg)} = {text};")
                if stmt.reg not in outs:
                    outs.append(stmt.reg)
            elif isinstance(stmt, VStoreS):
                text = self.vexpr(stmt.src, pos)
                body.append(
                    f"        simdal_store({self._window(stmt.addr)}, {text});"
                )
            else:
                raise _CantEmit(f"no C lowering for {type(stmt).__name__}")
        V = self.V
        symbol = kernel_symbol(self.spec.signature)
        pad = " " * (len(symbol) + 6)
        lines = [
            f"void {symbol}(uint8_t *mem, int64_t lb, int64_t n,",
            f"{pad}const int64_t *wb, const int64_t *scal,",
            f"{pad}const uint8_t *cvec, uint8_t *vregs) {{",
            "    (void)lb; (void)wb; (void)scal; (void)cvec; (void)vregs;",
        ]
        for k in range(len(self.names)):
            lines.append(f"    simdal_vec v{k};")
        for name in self.seeds:
            lines.append(
                f"    v{self.slot(name)} = "
                f"simdal_load(vregs + {self.slot(name) * V});"
            )
        lines.append("    for (int64_t t = 0; t < n; t++) {")
        lines.append(f"        int64_t i = lb + t * {self.spec.step};")
        lines.append("        (void)i;")
        lines.extend(body)
        lines.append("    }")
        for name in outs:
            lines.append(
                f"    simdal_store(vregs + {self.slot(name) * V}, "
                f"v{self.slot(name)});"
            )
        lines.append("}")
        meta = _NativeMeta(
            signature=self.spec.signature,
            symbol=symbol,
            vreg_names=tuple(self.names),
            seed_regs=tuple(self.seeds),
            out_regs=tuple(outs),
            shifts=tuple(self.shifts),
            points=tuple(self.points),
            splats=tuple(self.splats),
            bad_amounts=tuple(self.bad_amounts),
        )
        return "\n".join(lines) + "\n", meta


def emit_kernel(program: VProgram,
                spec: jit._KernelSpec) -> tuple[str, _NativeMeta]:
    """Just the steady-kernel C function plus its invoke tables.

    This is the unit of batching: the compile pipeline concatenates
    many kernels (same V and dtype) behind one
    :func:`~repro.export.portable.kernel_unit_prelude`.  Raises
    :class:`_CantEmit` when the steady sequence cannot be lowered.
    """
    return _KernelEmitter(program, spec).emit()


def emit_native_source(program: VProgram,
                       spec: jit._KernelSpec) -> tuple[str, _NativeMeta]:
    """A standalone single-kernel translation unit plus invoke tables.

    The unit is the portable-C export (scalar reference + simdized
    loop, via :class:`~repro.export.cgen.CEmitter`) with the steady
    kernel appended; when the full export hits a form outside the
    exporter's subset, the unit degrades to helpers + kernel only.
    Compilation goes through the *batched* pipeline nowadays
    (:func:`build_request` + :func:`compilequeue.compile_requests`);
    this composer remains for export and diagnosis of one signature in
    isolation.  Raises :class:`_CantEmit` when the steady sequence
    itself cannot be lowered.
    """
    backend = PortableBackend()
    kernel_src, meta = emit_kernel(program, spec)
    try:
        unit = CEmitter(program, backend).translation_unit()
    except CodegenError:
        unit = (
            "/* generated by simdal: steady kernel only */\n"
            "#include <stdint.h>\n"
            "#include <string.h>\n"
            + backend.helpers(program.V, program.source.dtype).rstrip()
            + "\n"
        )
    meta.source = unit + "\n" + kernel_src
    return meta.source, meta


def build_request(signature: str, key: str, jk: jit._Kernel,
                  program: VProgram):
    """A :class:`~repro.machine.compilequeue.CompileRequest` for this
    program, or None when the steady sequence cannot be lowered (the
    caller caches a permanent jit-delegating kernel instead)."""
    try:
        kernel_src, meta = emit_kernel(program, jk.spec)
    except _CantEmit:
        return None
    STATS["codegens"] += 1
    dtype = program.source.dtype
    return compilequeue.CompileRequest(
        signature=signature,
        key=key,
        symbol=meta.symbol,
        V=jk.spec.V,
        lane=dtype.name,
        kernel_src=kernel_src,
        prelude=kernel_unit_prelude(jk.spec.V, dtype),
        meta=meta,
        jk=jk,
    )


# ---------------------------------------------------------------------------
# Compiler discovery and identity
# ---------------------------------------------------------------------------

#: Memoized compiler resolution: (requested env value, (path-or-None,
#: identity hash)).  Keyed on the request so a ``REPRO_CC``/``CC``
#: change mid-process re-resolves instead of serving the stale probe.
_CC: tuple[str, tuple[str | None, str]] | None = None
_WARNED = False


def _cc_env() -> str:
    """The requested compiler: ``REPRO_CC`` overrides the ambient
    ``CC`` (build systems export ``CC`` for their own purposes; the
    repro-specific knob must win)."""
    return os.environ.get("REPRO_CC") or os.environ.get("CC") or ""


def _compiler_identity() -> tuple[str | None, str]:
    """(compiler executable, identity hash) — memoized per request.

    The identity hash (path + first ``--version`` line) versions every
    disk key, so objects compiled by one toolchain are invisible to
    another.
    """
    global _CC
    env = _cc_env()
    if _CC is not None and _CC[0] == env:
        return _CC[1]
    found = shutil.which(env) if env else None
    if found is None:
        for name in ("gcc", "cc", "clang"):
            found = shutil.which(name)
            if found:
                break
    if found is None:
        _CC = (env, (None, "none"))
        return _CC[1]
    try:
        proc = subprocess.run([found, "--version"], capture_output=True,
                              text=True, timeout=30)
        banner = (proc.stdout or proc.stderr).splitlines()[0] if \
            (proc.stdout or proc.stderr) else ""
    except Exception:
        banner = ""
    digest = hashlib.sha256(f"{found}\0{banner}".encode()).hexdigest()[:16]
    _CC = (env, (found, digest))
    return _CC[1]


def reset_compiler_cache() -> None:
    """Forget the memoized compiler probe and memoized cc failures.

    A fault-injected or transient toolchain failure must not poison
    later legitimate compiles in the same process: after repairing the
    toolchain (or pointing ``REPRO_CC`` somewhere sane) call this to
    retry cold.  The warn-once flag survives — one missing-compiler
    warning per process is enough.
    """
    global _CC
    _CC = None
    _FAILED.clear()


def _require_compiler() -> tuple[str, str]:
    global _WARNED
    cc, identity = _compiler_identity()
    if cc is None:
        if not _WARNED:
            _WARNED = True
            warnings.warn(
                "no C compiler found (tried $CC, gcc, cc, clang); the "
                "native backend degrades to the jit tier for this process",
                RuntimeWarning,
                stacklevel=3,
            )
        raise NativeUnavailable(
            "no C compiler available for the native backend"
        )
    return cc, identity


_WORKDIR: Path | None = None


def _workdir() -> Path:
    """A process-lifetime scratch dir: loaded .so paths must outlive us."""
    global _WORKDIR
    if _WORKDIR is None:
        _WORKDIR = Path(tempfile.mkdtemp(prefix="repro_native_"))
        atexit.register(shutil.rmtree, _WORKDIR, ignore_errors=True)
    return _WORKDIR


def _bind_symbol(lib, symbol: str):
    """Resolve and type one steady-kernel symbol in a loaded library."""
    fn = getattr(lib, symbol)
    fn.restype = None
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_uint8),   # mem
        ctypes.c_int64,                   # lb
        ctypes.c_int64,                   # n
        ctypes.POINTER(ctypes.c_int64),   # wb
        ctypes.POINTER(ctypes.c_int64),   # scal
        ctypes.POINTER(ctypes.c_uint8),   # cvec
        ctypes.POINTER(ctypes.c_uint8),   # vregs
    ]
    return fn


def _load_so(path: Path, symbol: str):
    # Each signature loads its own cached copy of the batched .so;
    # dlopen dedupes repeat loads of the same path within a process.
    return _bind_symbol(ctypes.CDLL(str(path)), symbol)


# ---------------------------------------------------------------------------
# Two-tier kernel cache
# ---------------------------------------------------------------------------

_NATIVE_CACHE: OrderedDict[str, _NativeKernel] = OrderedDict()
_NATIVE_CACHE_MAX = 128

#: Kernels whose cc invocation failed this process, keyed by the full
#: *disk key* (signature + compiler identity): retrying every run would
#: pay a doomed subprocess per config, so the failure is memoized and
#: re-raised cheaply (degradation stays per-run).  Keying on the disk
#: key means switching toolchains via ``REPRO_CC``/``CC`` — or
#: :func:`reset_compiler_cache` — naturally un-poisons the signature.
_FAILED: dict[str, str] = {}


def _disk_key(signature: str, cc_identity: str) -> str:
    from repro import __version__

    return (f"native-kernel:{__version__}:{NATIVE_CODE_VERSION}:"
            f"{cc_identity}:{signature}")


def _cache_put(signature: str, kernel: _NativeKernel) -> None:
    if len(_NATIVE_CACHE) >= _NATIVE_CACHE_MAX:
        _NATIVE_CACHE.popitem(last=False)
    _NATIVE_CACHE[signature] = kernel


def clear_memory_cache() -> None:
    """Drop loaded kernels and memoized cc failures (tests use this)."""
    _NATIVE_CACHE.clear()
    _FAILED.clear()


def _load_from_disk(disk, key: str, signature: str,
                    jk: jit._Kernel) -> _NativeKernel | None:
    """Warm path: validated meta + digest-checked .so, or None.

    Any inconsistency — missing/orphaned artifact, digest mismatch,
    dlopen failure — quarantines the whole entry group (cache
    doctrine: corruption is a silent miss, never an exception).
    """
    entry = disk.get(key)
    if (not isinstance(entry, _NativeMeta) or entry.signature != signature
            or not entry.symbol):
        return None
    so_path = disk.artifact_path(key, ".so")
    if so_path is None:
        disk.quarantine_artifacts(key)
        return None
    try:
        data = so_path.read_bytes()
        if hashlib.sha256(data).hexdigest() != entry.so_sha256:
            raise OSError("shared object digest mismatch")
        start = time.perf_counter()
        cfn = _load_so(so_path, entry.symbol)
        STATS["load_s"] += time.perf_counter() - start
    except Exception:
        disk.quarantine_artifacts(key)
        return None
    return _NativeKernel(jk=jk, meta=entry, cfn=cfn)


def _compile_native(key: str, signature: str, jk: jit._Kernel,
                    program: VProgram, disk) -> _NativeKernel:
    """Cold path: a single-request batch through the compile pipeline."""
    request = build_request(signature, key, jk, program)
    if request is None:
        return _NativeKernel(jk=jk, meta=None, cfn=None)
    loaded, failures, cc_s, load_s = compilequeue.compile_requests(
        [request], disk)
    STATS["cc_s"] += cc_s
    STATS["load_s"] += load_s
    pair = loaded.get(signature)
    if pair is None:
        reason = failures.get(signature, "native compile failed")
        _FAILED[key] = reason
        raise NativeUnavailable(reason)
    cfn, meta = pair
    return _NativeKernel(jk=jk, meta=meta, cfn=cfn)


def _acquire_async(signature: str, jk: jit._Kernel,
                   program: VProgram) -> _NativeKernel:
    """Non-blocking acquisition: delegate to jit now, hot-swap later.

    The foreground never launches the compiler.  A warm disk object
    still loads synchronously (milliseconds, and it keeps warm runs on
    machine code from the first call); anything colder caches a
    ``pending`` placeholder that delegates to jit and queues the
    compile on the background thread, which mutates the *same* kernel
    object when the ``.so`` lands.  Queue failures leave the
    placeholder delegating forever — silent by design, so async
    first-result latency stays within a hair of plain jit.
    """
    cc, identity = _require_compiler()
    key = _disk_key(signature, identity)
    failed = _FAILED.get(key)
    if failed is not None:
        raise NativeUnavailable(failed)
    disk = get_cache()
    if disk is not None:
        kernel = _load_from_disk(disk, key, signature, jk)
        if kernel is not None:
            STATS["disk_hits"] += 1
            _cache_put(signature, kernel)
            return kernel
        STATS["disk_misses"] += 1
    kernel = _NativeKernel(jk=jk, meta=None, cfn=None, pending=True)
    _cache_put(signature, kernel)
    compilequeue.enqueue(signature, key, jk, program, kernel)
    return kernel


def get_native_kernel(program: VProgram) -> _NativeKernel:
    """The loaded native kernel for this program's signature (cached)."""
    signature = jit._cached_signature(program)
    kernel = _NATIVE_CACHE.get(signature)
    if kernel is not None:
        _NATIVE_CACHE.move_to_end(signature)
        STATS["memory_hits"] += 1
        return kernel
    STATS["memory_misses"] += 1
    jk = jit.get_kernel(program)
    if not jk.spec.batchable or jk.fn is None:
        # The steady loop itself is unbatchable: there is nothing for a
        # C kernel to run that jit's per-iteration path doesn't cover.
        kernel = _NativeKernel(jk=jk, meta=None, cfn=None)
        _cache_put(signature, kernel)
        return kernel
    if compilequeue.async_enabled():
        # The injected compile fault fires inside the queue worker in
        # async mode (the foreground compiles nothing), so the run
        # itself never degrades — it just stays on jit.
        return _acquire_async(signature, jk, program)
    _fault("compile")  # REPRO_FAULT=compile:… fails the cc step here
    cc, identity = _require_compiler()
    key = _disk_key(signature, identity)
    failed = _FAILED.get(key)
    if failed is not None:
        raise NativeUnavailable(failed)
    disk = get_cache()
    kernel = None
    if disk is not None:
        kernel = _load_from_disk(disk, key, signature, jk)
        if kernel is not None:
            STATS["disk_hits"] += 1
        else:
            STATS["disk_misses"] += 1
    if kernel is None:
        kernel = _compile_native(key, signature, jk, program, disk)
    _cache_put(signature, kernel)
    return kernel


# ---------------------------------------------------------------------------
# Steady-loop invocation
# ---------------------------------------------------------------------------

# ctypes array *types* are surprisingly expensive to create (a new
# class per call); a sweep re-invokes kernels with a handful of
# distinct buffer lengths, so the types are cached process-wide.
_U8_ARRAYS: dict[int, type] = {}
_I64_ARRAYS: dict[int, type] = {}


def _u8_array(length: int) -> type:
    atype = _U8_ARRAYS.get(length)
    if atype is None:
        atype = _U8_ARRAYS[length] = ctypes.c_uint8 * length
    return atype


def _i64_array(length: int) -> type:
    atype = _I64_ARRAYS.get(length)
    if atype is None:
        atype = _I64_ARRAYS[length] = ctypes.c_int64 * length
    return atype


#: Cached-negative sentinel for the per-plan window-base memo.
_UNBATCHABLE = object()


class _InvokePlan:
    """Per-kernel invoke constants, derived from the meta tables once.

    Everything here is loop-invariant *and* run-invariant: register
    slot offsets, and — when every splat operand is a literal — the
    fully materialized cvec buffer (already a ctypes array, so warm
    invokes marshal nothing for it).

    ``wb_memo`` additionally memoizes :func:`jit._window_bases` per
    array space: the analysis is a pure function of (spec, space,
    lb, n, memory size) — array bases never move once placed and no
    runtime scalar enters it — so steady-state repeated runs (the
    sweep inner loop) skip the window/collision walk entirely.
    Rejections are memoized too, so the fallback surface is identical
    hot or cold.  Keyed weakly so retired spaces don't pin entries.
    """

    __slots__ = ("seed_offsets", "out_offsets", "vregs_len",
                 "splats_dyn", "c_cvec_const", "wb_memo")

    def __init__(self, meta: _NativeMeta, V: int):
        self.wb_memo = weakref.WeakKeyDictionary()
        slots = {name: k for k, name in enumerate(meta.vreg_names)}
        self.seed_offsets = tuple((name, slots[name] * V)
                                  for name in meta.seed_regs)
        self.out_offsets = tuple((name, slots[name] * V)
                                 for name in meta.out_regs)
        self.vregs_len = max(1, len(meta.vreg_names) * V)
        if all(isinstance(operand, SConst) for operand, _ in meta.splats):
            consts = bytearray()
            for operand, dtype in meta.splats:
                consts += vec.vsplat(dtype.wrap(operand.value), dtype, V)
            if not consts:
                consts = bytearray(1)
            self.splats_dyn = None
            self.c_cvec_const = _u8_array(len(consts))(*consts)
        else:
            self.splats_dyn = meta.splats
            self.c_cvec_const = None


def _invoke(kernel: _NativeKernel, env: interp._Env, lb: int, n: int) -> None:
    """One C steady-loop call; every check precedes every mutation.

    Raises :class:`jit._Unbatchable` (window analysis) or
    :class:`MachineError` (range checks, unset registers) exactly where
    the jit kernel's prelude would, so the fallback surface is shared.
    """
    spec = kernel.jk.spec
    meta = kernel.meta
    V = spec.V
    plan = kernel.plan
    if plan is None:
        plan = kernel.plan = _InvokePlan(meta, V)
    per_space = plan.wb_memo.get(env.space)
    if per_space is None:
        per_space = plan.wb_memo[env.space] = {}
    wb_key = (lb, n, env.mem.size)
    cached = per_space.get(wb_key)
    if cached is None:
        try:
            cached = jit._window_bases(spec, env, lb, n)
        except jit._Unbatchable:
            per_space[wb_key] = _UNBATCHABLE
            raise
        per_space[wb_key] = cached
    elif cached is _UNBATCHABLE:
        raise jit._Unbatchable
    bases, _snapshot = cached
    for what, value in meta.bad_amounts:
        raise MachineError(f"{what} {value} outside [0, {V}]")
    amounts = [jit._checked_amount(env, expr, V, "vshiftpair shift")
               for expr in meta.shifts]
    amounts += [jit._checked_amount(env, expr, V, "vsplice point")
                for expr in meta.points]
    if plan.c_cvec_const is not None:
        c_cvec = plan.c_cvec_const
    else:
        consts = bytearray()
        for operand, dtype in plan.splats_dyn:
            value = npbackend._peek_s(env, operand)
            consts += vec.vsplat(dtype.wrap(value), dtype, V)
        if not consts:
            consts = bytearray(1)
        c_cvec = _u8_array(len(consts)).from_buffer(consts)
    vregs = bytearray(plan.vregs_len)
    for name, offset in plan.seed_offsets:
        vregs[offset:offset + V] = interp._read_vreg(env, name)

    mem_buf = env.mem.raw()
    c_mem = _u8_array(len(mem_buf)).from_buffer(mem_buf)
    c_vregs = _u8_array(plan.vregs_len).from_buffer(vregs)
    c_wb = _i64_array(max(1, len(bases)))(*bases)
    c_scal = _i64_array(max(1, len(amounts)))(*amounts)
    try:
        kernel.cfn(c_mem, lb, n, c_wb, c_scal, c_cvec, c_vregs)
    finally:
        # Release the buffer exports so the bytearrays stay resizable
        # and snapshot-restorable for callers.
        del c_mem, c_vregs, c_cvec
    for name, offset in plan.out_offsets:
        env.vregs[name] = bytes(vregs[offset:offset + V])


def _run_steady_at_native(env: interp._Env, steady, kernel: _NativeKernel,
                          lb: int, ub: int) -> bool:
    """Native twin of :func:`jit._run_steady_at`; True = per-iter path."""
    if steady.step <= 0:
        npbackend._steady_periter(env, steady, lb, ub)
        return True
    n = len(range(lb, ub, steady.step))
    if n == 0:
        return False
    if kernel.cfn is None:
        return jit._run_steady_at(env, steady, kernel.jk, lb, ub)
    try:
        _invoke(kernel, env, lb, n)
    except jit._Unbatchable:
        # Raised before any mutation, so the fallback replays the loop
        # from unmodified state — same contract as the jit prelude.
        npbackend._steady_periter(env, steady, lb, ub)
        return True
    jit._bump_steady_counters(env, kernel.jk.spec, n)
    return False


def _run_steady_native(env: interp._Env, steady,
                       kernel: _NativeKernel) -> bool:
    lb = interp._eval_s(env, steady.lb)
    ub = interp._eval_s(env, steady.ub)
    return _run_steady_at_native(env, steady, kernel, lb, ub)


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------

class NativeBackend(JitBackend):
    """Machine-code execution of vector programs (bit-exact vs bytes).

    Inherits the jit engine's run/guard/section machinery and swaps the
    steady loop for the compiled C kernel via the three hook points.
    """

    name = "native"

    def _kernel_for(self, program):
        return get_native_kernel(program)

    def _steady(self, env, steady, kernel):
        return _run_steady_native(env, steady, kernel)

    def _steady_batch(self, live, kernel):
        # Per-env native execution: sections and trip handling already
        # happened in run_batch; the C kernel is the batch win here
        # (one machine-code loop per config, no NumPy dispatch at all).
        fell: dict[int, bool] = {}
        for i, env in live:
            fell[i] = _run_steady_native(env, env.program.steady, kernel)
        return fell
