"""Native codegen backend: signature kernels compiled to machine code.

The jit tier (:mod:`repro.machine.jit`) stops at generated NumPy-Python
source.  This tier closes the paper's loop: for each structural program
signature it lowers the :class:`~repro.vir.program.VProgram` through
the C emitter (:mod:`repro.export.cgen` with the portable plain-C
dialect — the SSE/AltiVec emitters stay export-only) into a translation
unit holding the scalar reference loop, the simdized loop, and a
*steady-loop kernel* with the flat-buffer ABI this module calls, then
compiles it with the system toolchain (``cc -O3 -shared -fPIC``), loads
the shared object via :mod:`ctypes`, and invokes it on the run's
existing byte buffers with zero-copy pointer passing.

Division of labour — native is the jit engine with the hot path
swapped out.  Since the v3 ABI the translation unit carries three
entry points per signature: the steady kernel, a whole-run driver
``simdal_run_<digest>`` (prologue/epilogue vector sections lowered as
flag-gated blocks fed by a per-run slot table), and a class driver
``simdal_steady_batch_<digest>`` whose row loop lives inside C — so an
accepted run is **one** ctypes crossing and a batched signature class
is one crossing total.  The split that keeps figures exact:

* everything value-dependent — scalar registers, section conditions
  and addressing, guard fallback, trip resolution, and all counter
  bookkeeping — resolves in Python (for whole-run calls on a shadow
  env *before* the C call; anything outside the lowered surface bails
  to the classic per-piece path from untouched state);
* the per-run window/collision analysis is jit's own
  :func:`~repro.machine.jit._window_bases`, reused verbatim so native
  batches and falls back on **exactly** the same runs (the
  ``used_fallback`` parity contract).  For every accepted run the
  colliding loads read pre-loop memory in sequential order too, so the
  C kernel executes the original statement sequence iteration by
  iteration and needs no snapshot buffer;
* operation counters remain analytic
  (:func:`~repro.machine.jit._bump_steady_counters`), so OPD tables
  are byte-identical to the bytes oracle.

Compilation itself goes through the pipeline in
:mod:`repro.machine.compilequeue`: every kernel is emitted as a
uniquely named ``simdal_steady_<digest>`` function so many signatures
can share one translation unit and one ``cc`` invocation (the sweep
runners precompile whole campaigns this way before workers fork), and
``REPRO_NATIVE_ASYNC=1`` moves compilation to a background thread that
hot-swaps the machine code into the live kernel object while runs
proceed on the jit tier.

Kernels are cached at two tiers keyed on the structural signature:
an in-process LRU of loaded ``ctypes`` functions, and the shared disk
cache holding the ``.c`` source and ``.so`` object as sibling
artifacts under a key versioned by package version,
:data:`NATIVE_CODE_VERSION`, and the *compiler identity* (path plus
``--version`` line), so a toolchain upgrade can never resurrect a
stale object.  The compiler identity itself re-resolves whenever
``REPRO_CC``/``CC`` change (and :func:`reset_compiler_cache` drops it
plus any memoized cc failures), so a transient or fault-injected
toolchain failure cannot poison later legitimate compiles.  A
corrupted or truncated ``.so`` fails its content digest and the whole
entry group is quarantined, never raised.

Hosts without a C compiler (and ``REPRO_FAULT=compile:*`` runs) raise
:class:`NativeUnavailable` from kernel acquisition — before any memory
mutation — which the resilient chain turns into a structured
``native → jit`` degradation with one warning per process.

This module is only imported when NumPy is present (it builds on the
jit tier); use :func:`repro.machine.backend.get_backend` for gated
access.
"""

from __future__ import annotations

import atexit
import ctypes
import hashlib
import os
import shlex
import shutil
import subprocess
import tempfile
import time
import warnings
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.cache import get_cache
from repro.errors import CodegenError, MachineError
from repro.export.cgen import CEmitter
from repro.export.portable import PortableBackend, kernel_unit_prelude
from repro.ir.types import DataType
from repro.faults import fault as _fault
from repro.machine import compilequeue, interp, jit, npbackend
from repro.machine.alignedbuf import ALIGNMENT, aligned_view, as_ctypes_u8
from repro.machine import vector as vec
from repro.machine.counters import (
    BRANCH,
    VARITH,
    VCOPY,
    VLOAD,
    VPERM,
    VSEL,
    VSPLAT,
    VSTORE,
)
from repro.machine.jit import JitBackend
from repro.vir.program import VProgram
from repro.vir.vexpr import (
    SConst,
    VBinE,
    VExpr,
    VIotaE,
    VLoadE,
    VRegE,
    VShiftPairE,
    VSpliceE,
    VSplatE,
)
from repro.vir.vstmt import SetS, SetV, VStoreS

#: Bump when the emitted C kernel layout or ABI changes: disk entries
#: written by older code must never load.  v2: per-signature
#: ``simdal_steady_<digest>`` symbols (batched translation units).
#: v3: whole-run ``simdal_run_<digest>`` (lowered prologue/epilogue
#: sections) and the class batch driver ``simdal_steady_batch_<digest>``.
#: v4: two emitter modes (scalar-lane / vector-extension), ``restrict``
#: parameters, aligned ``_a`` loads/stores backed by the aligned-buffer
#: marshalling, and batch-row segments padded to the buffer alignment.
NATIVE_CODE_VERSION = 4

#: Compile/cache counters (process-wide; surfaced with a ``native_``
#: prefix by :func:`repro.machine.backend.jit_compile_stats`).
STATS = {
    "codegens": 0,         # C kernels emitted from scratch
    "memory_hits": 0,      # loaded ctypes kernel reused
    "memory_misses": 0,
    "disk_hits": 0,        # .so loaded from the disk cache
    "disk_misses": 0,
    "cc_s": 0.0,           # foreground seconds inside the system compiler
    "load_s": 0.0,         # foreground seconds loading shared objects
    "cc_invocations": 0,   # compiler subprocesses launched
    "cc_timeouts": 0,      # invocations killed at REPRO_CC_TIMEOUT
    "tus": 0,              # translation units fed to those invocations
    "tu_kernels": 0,       # kernels carried by successful batches
    "precompiled": 0,      # kernels compiled ahead by the sweep pipeline
    "async_compiles": 0,   # jobs submitted to the background queue
    "hot_swaps": 0,        # async kernels swapped in behind a live run
    "async_failures": 0,   # background jobs that failed (stayed on jit)
    "queue_depth_max": 0,  # high-water mark of the background queue
    "async_cc_s": 0.0,     # background compiler seconds (overlap run time)
    "async_load_s": 0.0,   # background .so load seconds
    "whole_runs": 0,       # accepted runs executed as one C call end-to-end
    "batch_calls": 0,      # class batch-driver invocations (one per class)
    "batch_rows": 0,       # runs carried by those batch-driver calls
    "simd_kernels": 0,     # kernels emitted for the vector-ext prelude
    "scalar_kernels": 0,   # kernels emitted for the scalar-lane prelude
    "simd_probes": 0,      # vector-extension capability probes compiled
    "simd_probe_failures": 0,  # probes the toolchain rejected
    "flag_probes": 0,      # -march=native flag probes compiled
    "mode_simd": 0,        # cold acquisitions keyed in vector-ext mode
    "mode_scalar": 0,      # cold acquisitions keyed in scalar-lane mode
    "batch_marshal_us": 0,  # µs marshalling rows for batch/run drivers
    "batch_copy_us": 0,    # µs in the flat gather/scatter memory copies
    "batch_c_us": 0,       # µs inside the C batch driver itself
}

#: Prefix of every steady-loop kernel symbol; the per-signature name
#: comes from :func:`kernel_symbol`.
KERNEL_SYMBOL = "simdal_steady"


def _sig_digest(signature: str) -> str:
    return hashlib.sha256(signature.encode()).hexdigest()[:16]


def kernel_symbol(signature: str) -> str:
    """The exported C symbol for a signature's steady kernel.

    Digest-suffixed so any set of signature kernels can coexist in one
    shared object — the batched compile pipeline links many kernels
    into one ``cc`` invocation.  Stable across processes (it hashes
    the structural signature only), so a ``.so`` written by one worker
    resolves in every other.
    """
    return f"{KERNEL_SYMBOL}_{_sig_digest(signature)}"


def run_symbol(signature: str) -> str:
    """The whole-run driver symbol: sections + guarded steady call."""
    return f"simdal_run_{_sig_digest(signature)}"


def batch_symbol(signature: str) -> str:
    """The class batch-driver symbol: the row loop over whole runs."""
    return f"simdal_steady_batch_{_sig_digest(signature)}"


class NativeUnavailable(MachineError):
    """The native tier cannot produce a kernel on this host.

    Carries ``phase = "compile"`` so the resilient chain files the
    native → jit degradation under the compile phase.
    """

    phase = "compile"


class _CantEmit(Exception):
    """A steady form outside the C emitter's subset (delegate to jit)."""


# ---------------------------------------------------------------------------
# Steady-kernel C emission
# ---------------------------------------------------------------------------
#
# The kernel ABI (fixed; versioned by NATIVE_CODE_VERSION):
#
#   void simdal_steady(uint8_t *mem, int64_t lb, int64_t n,
#                      const int64_t *wb, const int64_t *scal,
#                      const uint8_t *cvec, uint8_t *vregs)
#
# * mem   — the run's whole memory image (Memory.raw(), zero-copy)
# * lb, n — steady lower bound and iteration count
# * wb    — one absolute V-aligned window base per spec.win_keys entry
#           (window address at iteration t is wb[k] + t*stride)
# * scal  — checked runtime shift amounts then splice points, in table
#           order (loop-invariant: the steady sequence is SetV/VStoreS
#           only, so every SExpr operand is fixed for the whole run)
# * cvec  — one V-byte splat constant per splat-table entry
# * vregs — len(vreg_names) V-byte slots: Python seeds the registers
#           the loop reads before writing, C writes back every SetV
#           target's final value for the epilogue
#
# Statements execute in ORIGINAL sequence order, one iteration at a
# time — exactly the interpreter's semantics — so loop-carried reads
# and reductions need no special lowering, and every run accepted by
# _window_bases produces the same bytes the batched jit kernel does.
#
# Since NATIVE_CODE_VERSION 3 every kernel ships two more functions in
# the same translation unit:
#
#   void simdal_run(uint8_t *mem, int64_t lb, int64_t n,
#                   const int64_t *wb, const int64_t *scal,
#                   const uint8_t *cvec, uint8_t *vregs,
#                   const int64_t *sect)
#
# the whole-run driver — the lowered prologue section blocks, the
# steady kernel call (guarded by n > 0), then the lowered epilogue
# blocks.  ``sect`` is the per-run section table: one flag slot per
# section (0 = the marshaller resolved its condition false, skip the
# block) followed by the section's value slots — precomputed truncated
# load/store base addresses, splat lane values, iota counters, runtime
# shift/splice amounts — in the emitter's traversal order.  Everything
# value-dependent (scalar registers, conditions, addressing, bounds
# checks) is resolved at marshal time on a shadow env, so the C side
# is pure straight-line vector code over mem/vregs.  And:
#
#   void simdal_steady_batch(uint8_t *mem, int64_t rows,
#                            const int64_t *lbn, const int64_t *wb,
#                            const int64_t *scal, const uint8_t *cvec,
#                            uint8_t *vregs, const int64_t *sect)
#
# the class batch driver: ``mem`` is the flat concatenation of every
# run's memory image and ``lbn`` holds (mem offset, lb, n) per row;
# the row loop lives inside C and calls simdal_run once per row with
# that row's slice of the wb/scal/cvec/vregs/sect tables (compile-time
# row strides), so a whole signature class costs ONE ctypes crossing.

@dataclass
class _NativeMeta:
    """Picklable invoke-time tables (this is what the disk cache holds)."""

    signature: str
    symbol: str = ""         # simdal_steady_<digest> in the TU
    source: str = ""
    so_sha256: str = ""
    vreg_names: tuple = ()   # vregs-buffer slot order
    seed_regs: tuple = ()    # read-before-write registers Python seeds
    out_regs: tuple = ()     # SetV targets C writes back
    shifts: tuple = ()       # runtime vshiftpair SExprs, scal[] order
    points: tuple = ()       # runtime vsplice SExprs, after shifts
    splats: tuple = ()       # (operand SExpr, dtype) per cvec block
    bad_amounts: tuple = ()  # (what, value) compile-time out-of-range
    run_symbol: str = ""     # simdal_run_<digest> (whole-run driver)
    batch_symbol: str = ""   # simdal_steady_batch_<digest> (row loop)
    sections_c: bool = False  # prologue/epilogue lowered into simdal_run
    sect_len: int = 0        # per-run sect[] table length
    sect_spans: tuple = ()   # (base, count) per section, prologue first


@dataclass
class _NativeKernel:
    """A jit kernel plus (when emission and cc succeeded) its C steady."""

    jk: jit._Kernel
    meta: _NativeMeta | None
    cfn: object | None       # ctypes steady fn, or None to delegate to jit
    rfn: object = None       # ctypes whole-run driver (simdal_run)
    bcfn: object = None      # ctypes class batch driver (simdal_steady_batch)
    plan: object = None      # lazy per-process _InvokePlan (never pickled)
    pending: bool = False    # queued on the async pipeline (cfn arrives
    #                          via hot-swap; delegates to jit meanwhile)

    @property
    def spec(self) -> jit._KernelSpec:
        return self.jk.spec

    @property
    def pre(self):
        return self.jk.pre

    @property
    def post(self):
        return self.jk.post


class _KernelEmitter:
    """Lowers a batchable steady sequence to the C kernel + its tables."""

    def __init__(self, program: VProgram, spec: jit._KernelSpec):
        self.program = program
        self.spec = spec
        self.V = spec.V
        self.stride = spec.stride
        self.dtype = program.source.dtype
        self._win_idx = {key: k for k, key in enumerate(spec.win_keys)}
        self.names: list[str] = []       # register -> vregs slot order
        self._slot: dict[str, int] = {}
        self.seeds: dict[str, None] = {}
        self.shifts: list = []
        self._shift_idx: dict = {}
        self.points: list = []
        self._point_idx: dict = {}
        self.splats: list = []
        self._splat_idx: dict = {}
        self.bad_amounts: list = []
        self.assign_pos: dict[str, int] = {}
        self._sect_cursor = 0
        # Alignment suffixes for load/store helpers.  Buffer bases
        # (mem, vregs, cvec, batch-row segments) come from the aligned
        # allocator, and every emitted offset — window/section bases
        # (V-truncated) and vregs/cvec slots (k*V) — is a multiple of
        # V, so slot accesses (_av) are V-aligned whenever V divides
        # the allocator's ALIGNMENT; window accesses (_aw) additionally
        # need the iteration stride to preserve the residue.  Both hold
        # for every current configuration; the guards keep a future
        # exotic V safe rather than fast.
        buf_aligned = self.V <= ALIGNMENT and ALIGNMENT % self.V == 0
        self._av = "_a" if buf_aligned else ""
        self._aw = "_a" if buf_aligned and self.stride % self.V == 0 else ""

    def slot(self, reg: str) -> int:
        idx = self._slot.get(reg)
        if idx is None:
            idx = self._slot[reg] = len(self.names)
            self.names.append(reg)
        return idx

    def _window(self, addr) -> str:
        k = self._win_idx.get((addr.array, addr.elem))
        if k is None:
            raise _CantEmit(f"address {addr} missing from the window table")
        return f"mem + wb[{k}] + t * {self.stride}"

    def _amount(self, amount, kind: str) -> str:
        what = "vshiftpair shift" if kind == "shift" else "vsplice point"
        if isinstance(amount, int):
            if 0 <= amount <= self.V:
                return str(amount)
            # Must still raise the jit engine's MachineError at invoke
            # time, from the same pre-mutation point.
            self.bad_amounts.append((what, amount))
            return "0"
        table = self.shifts if kind == "shift" else self.points
        index = self._shift_idx if kind == "shift" else self._point_idx
        idx = index.get(amount)
        if idx is None:
            idx = index[amount] = len(table)
            table.append(amount)
        offset = idx if kind == "shift" else len(self.shifts) + idx
        return f"scal[{offset}]"

    def vexpr(self, expr: VExpr, pos: int) -> str:
        if isinstance(expr, VLoadE):
            return f"simdal_load{self._aw}({self._window(expr.addr)})"
        if isinstance(expr, VRegE):
            defining = self.assign_pos.get(expr.name)
            if defining is None or defining >= pos:
                # Invariant or loop-carried: Python seeds the pre-loop
                # value; sequential execution does the rest.
                self.seeds.setdefault(expr.name)
            return f"v{self.slot(expr.name)}"
        if isinstance(expr, VShiftPairE):
            a = self.vexpr(expr.a, pos)
            b = self.vexpr(expr.b, pos)
            if isinstance(expr.shift, int) and 0 <= expr.shift <= self.V:
                # Literal amount: the _c macro is a compile-time byte
                # shuffle in vector-ext mode (a plain call otherwise).
                return f"simdal_shiftpair_c({a}, {b}, {expr.shift})"
            s = self._amount(expr.shift, "shift")
            return f"simdal_shiftpair({a}, {b}, {s})"
        if isinstance(expr, VSpliceE):
            a = self.vexpr(expr.a, pos)
            b = self.vexpr(expr.b, pos)
            if isinstance(expr.point, int) and 0 <= expr.point <= self.V:
                return f"simdal_splice_c({a}, {b}, {expr.point})"
            p = self._amount(expr.point, "point")
            return f"simdal_splice({a}, {b}, {p})"
        if isinstance(expr, VSplatE):
            if expr.dtype != self.dtype:
                raise _CantEmit("splat dtype differs from the loop dtype")
            key = (expr.operand, expr.dtype)
            idx = self._splat_idx.get(key)
            if idx is None:
                idx = self._splat_idx[key] = len(self.splats)
                self.splats.append(key)
            return f"simdal_load{self._av}(cvec + {idx * self.V})"
        if isinstance(expr, VIotaE):
            if expr.dtype != self.dtype:
                raise _CantEmit("iota dtype differs from the loop dtype")
            return f"simdal_iota(i + ({expr.bias}))"
        if isinstance(expr, VBinE):
            if expr.dtype != self.dtype:
                raise _CantEmit("binop dtype differs from the loop dtype")
            a = self.vexpr(expr.a, pos)
            b = self.vexpr(expr.b, pos)
            return f"simdal_op_{expr.op.name}({a}, {b})"
        raise _CantEmit(f"no C lowering for {type(expr).__name__}")

    # -- prologue/epilogue section lowering (whole-run surface) ---------
    #
    # Sections are straight-line SetS/SetV/VStoreS blocks guarded by a
    # scalar condition and addressed by a scalar i-expression.  All
    # scalar work stays in the Python marshaller (it never reads vector
    # state, so the split is exact); the C side receives precomputed
    # values through per-section sect[] slots, allocated here in the
    # SAME traversal order the marshaller walks at run time.

    def _sect_slot(self) -> str:
        idx = self._sect_cursor
        self._sect_cursor += 1
        return f"sect[{idx}]"

    def _sect_vexpr(self, expr: VExpr) -> str:
        if isinstance(expr, VLoadE):
            # The marshaller slots the truncated, bounds-checked base.
            return f"simdal_load{self._av}(mem + {self._sect_slot()})"
        if isinstance(expr, VRegE):
            return (f"simdal_load{self._av}"
                    f"(vregs + {self.slot(expr.name) * self.V})")
        if isinstance(expr, VShiftPairE):
            a = self._sect_vexpr(expr.a)
            b = self._sect_vexpr(expr.b)
            if isinstance(expr.shift, int):
                if not 0 <= expr.shift <= self.V:
                    raise _CantEmit("section shift outside [0, V]")
                return f"simdal_shiftpair_c({a}, {b}, {expr.shift})"
            s = self._sect_slot()
            return f"simdal_shiftpair({a}, {b}, {s})"
        if isinstance(expr, VSpliceE):
            a = self._sect_vexpr(expr.a)
            b = self._sect_vexpr(expr.b)
            if isinstance(expr.point, int):
                if not 0 <= expr.point <= self.V:
                    raise _CantEmit("section point outside [0, V]")
                return f"simdal_splice_c({a}, {b}, {expr.point})"
            p = self._sect_slot()
            return f"simdal_splice({a}, {b}, {p})"
        if isinstance(expr, VSplatE):
            if expr.dtype != self.dtype:
                raise _CantEmit("splat dtype differs from the loop dtype")
            return f"simdal_splat({self._sect_slot()})"
        if isinstance(expr, VIotaE):
            if expr.dtype != self.dtype:
                raise _CantEmit("iota dtype differs from the loop dtype")
            return f"simdal_iota({self._sect_slot()})"
        if isinstance(expr, VBinE):
            if expr.dtype != self.dtype:
                raise _CantEmit("binop dtype differs from the loop dtype")
            a = self._sect_vexpr(expr.a)
            b = self._sect_vexpr(expr.b)
            return f"simdal_op_{expr.op.name}({a}, {b})"
        raise _CantEmit(f"no C lowering for {type(expr).__name__}")

    def _sect_stmts(self, stmts) -> list[str]:
        lines: list[str] = []
        V = self.V
        for stmt in stmts:
            if isinstance(stmt, SetS):
                continue  # scalar registers live in the marshaller only
            if isinstance(stmt, SetV):
                if stmt.is_copy:
                    src = (f"simdal_load{self._av}(vregs + "
                           f"{self.slot(stmt.expr.name) * V})")
                else:
                    src = self._sect_vexpr(stmt.expr)
                lines.append(f"        simdal_store{self._av}(vregs + "
                             f"{self.slot(stmt.reg) * V}, {src});")
            elif isinstance(stmt, VStoreS):
                text = self._sect_vexpr(stmt.src)
                lines.append(
                    f"        simdal_store{self._av}"
                    f"(mem + {self._sect_slot()}, {text});"
                )
            else:
                raise _CantEmit(f"no C lowering for {type(stmt).__name__}")
        return lines

    def _sect_block(self, section, spans: list) -> list[str]:
        base = self._sect_cursor
        flag = self._sect_slot()
        body = self._sect_stmts(section.stmts)
        spans.append((base, self._sect_cursor - base))
        return [f"    if ({flag}) {{"] + body + ["    }"]

    def _emit_sections(self):
        """(prologue blocks, epilogue blocks, spans, lowered?).

        All-or-nothing: any form outside the subset declines section
        lowering for the whole signature — the run driver degrades to
        a guarded steady call and sections stay on the jit/interp path.
        """
        self._sect_cursor = 0
        spans: list = []
        try:
            pro = [self._sect_block(s, spans) for s in self.program.prologue]
            epi = [self._sect_block(s, spans) for s in self.program.epilogue]
        except _CantEmit:
            self._sect_cursor = 0
            return [], [], (), False
        return pro, epi, tuple(spans), True

    def _emit_run(self, pro_blocks, epi_blocks) -> list[str]:
        symbol = run_symbol(self.spec.signature)
        steady_sym = kernel_symbol(self.spec.signature)
        pad = " " * (len(symbol) + 6)
        lines = [
            f"SIMDAL_NOINLINE",
            f"void {symbol}(uint8_t *restrict mem, int64_t lb, int64_t n,",
            f"{pad}const int64_t *restrict wb,",
            f"{pad}const int64_t *restrict scal,",
            f"{pad}const uint8_t *restrict cvec,",
            f"{pad}uint8_t *restrict vregs,",
            f"{pad}const int64_t *restrict sect) {{",
            "    (void)sect;",
        ]
        for block in pro_blocks:
            lines.extend(block)
        lines.append(
            f"    if (n > 0) {steady_sym}(mem, lb, n, wb, scal, cvec, vregs);"
        )
        for block in epi_blocks:
            lines.extend(block)
        lines.append("}")
        return lines

    def _emit_batch(self, sect_len: int) -> list[str]:
        symbol = batch_symbol(self.spec.signature)
        rsym = run_symbol(self.spec.signature)
        V = self.V
        nw = len(self.spec.win_keys)
        ns = len(self.shifts) + len(self.points)
        nc = len(self.splats) * V
        nv = len(self.names) * V
        pad = " " * (len(symbol) + 6)
        return [
            f"void {symbol}(uint8_t *mem, int64_t rows, const int64_t *lbn,",
            f"{pad}const int64_t *wb, const int64_t *scal,",
            f"{pad}const uint8_t *cvec, uint8_t *vregs,",
            f"{pad}const int64_t *sect) {{",
            "    /* lbn mem offsets are padded to the allocator alignment",
            "       by the Python gather, so each row's mem base keeps the",
            "       alignment promise simdal_run's loads rely on. */",
            "    for (int64_t r = 0; r < rows; r++) {",
            f"        {rsym}(mem + lbn[3 * r], lbn[3 * r + 1], "
            f"lbn[3 * r + 2],",
            f"            wb + r * {nw}, scal + r * {ns}, cvec + r * {nc},",
            f"            vregs + r * {nv}, sect + r * {sect_len});",
            "    }",
            "}",
        ]

    def emit(self) -> tuple[str, _NativeMeta]:
        steady = self.program.steady
        seq = list(steady.body) + list(steady.bottom)
        for pos, stmt in enumerate(seq):
            if isinstance(stmt, SetV):
                self.assign_pos[stmt.reg] = pos
        body: list[str] = []
        outs: list[str] = []
        for pos, stmt in enumerate(seq):
            if isinstance(stmt, SetV):
                text = self.vexpr(stmt.expr, pos)
                body.append(f"        v{self.slot(stmt.reg)} = {text};")
                if stmt.reg not in outs:
                    outs.append(stmt.reg)
            elif isinstance(stmt, VStoreS):
                text = self.vexpr(stmt.src, pos)
                body.append(
                    f"        simdal_store{self._aw}"
                    f"({self._window(stmt.addr)}, {text});"
                )
            else:
                raise _CantEmit(f"no C lowering for {type(stmt).__name__}")
        V = self.V
        symbol = kernel_symbol(self.spec.signature)
        pad = " " * (len(symbol) + 6)
        lines = [
            f"SIMDAL_NOINLINE",
            f"void {symbol}(uint8_t *restrict mem, int64_t lb, int64_t n,",
            f"{pad}const int64_t *restrict wb,",
            f"{pad}const int64_t *restrict scal,",
            f"{pad}const uint8_t *restrict cvec,",
            f"{pad}uint8_t *restrict vregs) {{",
            "    (void)lb; (void)wb; (void)scal; (void)cvec; (void)vregs;",
        ]
        for k in range(len(self.names)):
            lines.append(f"    simdal_vec v{k};")
        for name in self.seeds:
            lines.append(
                f"    v{self.slot(name)} = "
                f"simdal_load{self._av}(vregs + {self.slot(name) * V});"
            )
        lines.append("    for (int64_t t = 0; t < n; t++) {")
        lines.append(f"        int64_t i = lb + t * {self.spec.step};")
        lines.append("        (void)i;")
        lines.extend(body)
        lines.append("    }")
        for name in outs:
            lines.append(
                f"    simdal_store(vregs + {self.slot(name) * V}, "
                f"v{self.slot(name)});"
            )
        lines.append("}")
        # The whole-run and batch drivers follow the steady kernel in
        # the same unit (definition-before-use, non-static so other
        # translation units never collide on the digest-unique names).
        pro_blocks, epi_blocks, spans, sections_c = self._emit_sections()
        sect_len = self._sect_cursor if sections_c else 0
        lines.append("")
        lines.extend(self._emit_run(pro_blocks, epi_blocks))
        lines.append("")
        lines.extend(self._emit_batch(sect_len))
        meta = _NativeMeta(
            signature=self.spec.signature,
            symbol=symbol,
            vreg_names=tuple(self.names),
            seed_regs=tuple(self.seeds),
            out_regs=tuple(outs),
            shifts=tuple(self.shifts),
            points=tuple(self.points),
            splats=tuple(self.splats),
            bad_amounts=tuple(self.bad_amounts),
            run_symbol=run_symbol(self.spec.signature),
            batch_symbol=batch_symbol(self.spec.signature),
            sections_c=sections_c,
            sect_len=sect_len,
            sect_spans=spans,
        )
        return "\n".join(lines) + "\n", meta


def emit_kernel(program: VProgram,
                spec: jit._KernelSpec) -> tuple[str, _NativeMeta]:
    """Just the steady-kernel C function plus its invoke tables.

    This is the unit of batching: the compile pipeline concatenates
    many kernels (same V and dtype) behind one
    :func:`~repro.export.portable.kernel_unit_prelude`.  Raises
    :class:`_CantEmit` when the steady sequence cannot be lowered.
    """
    return _KernelEmitter(program, spec).emit()


def emit_native_source(program: VProgram,
                       spec: jit._KernelSpec) -> tuple[str, _NativeMeta]:
    """A standalone single-kernel translation unit plus invoke tables.

    The unit is the portable-C export (scalar reference + simdized
    loop, via :class:`~repro.export.cgen.CEmitter`) with the steady
    kernel appended; when the full export hits a form outside the
    exporter's subset, the unit degrades to helpers + kernel only.
    Compilation goes through the *batched* pipeline nowadays
    (:func:`build_request` + :func:`compilequeue.compile_requests`);
    this composer remains for export and diagnosis of one signature in
    isolation.  Raises :class:`_CantEmit` when the steady sequence
    itself cannot be lowered.
    """
    backend = PortableBackend()
    kernel_src, meta = emit_kernel(program, spec)
    try:
        unit = CEmitter(program, backend).translation_unit()
    except CodegenError:
        unit = (
            "/* generated by simdal: steady kernel only */\n"
            "#include <stdint.h>\n"
            "#include <string.h>\n"
            + backend.helpers(program.V, program.source.dtype).rstrip()
            + "\n"
        )
    meta.source = unit + "\n" + kernel_src
    return meta.source, meta


def build_request(signature: str, key: str, jk: jit._Kernel,
                  program: VProgram):
    """A :class:`~repro.machine.compilequeue.CompileRequest` for this
    program, or None when the steady sequence cannot be lowered (the
    caller caches a permanent jit-delegating kernel instead)."""
    try:
        kernel_src, meta = emit_kernel(program, jk.spec)
    except _CantEmit:
        return None
    STATS["codegens"] += 1
    simd = simd_enabled()
    STATS["simd_kernels" if simd else "scalar_kernels"] += 1
    dtype = program.source.dtype
    return compilequeue.CompileRequest(
        signature=signature,
        key=key,
        symbol=meta.symbol,
        V=jk.spec.V,
        lane=dtype.name,
        kernel_src=kernel_src,
        prelude=kernel_unit_prelude(jk.spec.V, dtype, simd=simd),
        meta=meta,
        jk=jk,
    )


# ---------------------------------------------------------------------------
# Compiler discovery and identity
# ---------------------------------------------------------------------------

#: Memoized compiler resolution: (requested env value, (path-or-None,
#: identity hash)).  Keyed on the request so a ``REPRO_CC``/``CC``
#: change mid-process re-resolves instead of serving the stale probe.
_CC: tuple[str, tuple[str | None, str]] | None = None
_WARNED = False


def _cc_env() -> str:
    """The requested compiler: ``REPRO_CC`` overrides the ambient
    ``CC`` (build systems export ``CC`` for their own purposes; the
    repro-specific knob must win)."""
    return os.environ.get("REPRO_CC") or os.environ.get("CC") or ""


#: Default wall-clock budget for one compiler subprocess (seconds).
_CC_TIMEOUT_DEFAULT = 120.0


def cc_timeout() -> float:
    """Wall-clock budget for every ``cc`` subprocess (seconds).

    ``REPRO_CC_TIMEOUT`` overrides the 120 s default.  A hung compiler
    (broken ccache daemon, dead NFS mount behind the toolchain) used
    to stall the batch pipeline forever; every invocation — probes and
    kernel compiles alike — now runs under this budget, and an
    overrunning compile has its whole process group killed and is
    charged as an ordinary batch failure (singleton-recompile
    isolation included).
    """
    raw = os.environ.get("REPRO_CC_TIMEOUT", "")
    if raw:
        try:
            value = float(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return _CC_TIMEOUT_DEFAULT


def _compiler_identity() -> tuple[str | None, str]:
    """(compiler executable, identity hash) — memoized per request.

    The identity hash (path + first ``--version`` line) versions every
    disk key, so objects compiled by one toolchain are invisible to
    another.
    """
    global _CC
    env = _cc_env()
    if _CC is not None and _CC[0] == env:
        return _CC[1]
    found = shutil.which(env) if env else None
    if found is None:
        for name in ("gcc", "cc", "clang"):
            found = shutil.which(name)
            if found:
                break
    if found is None:
        _CC = (env, (None, "none"))
        return _CC[1]
    try:
        proc = subprocess.run([found, "--version"], capture_output=True,
                              text=True, timeout=min(30.0, cc_timeout()))
        banner = (proc.stdout or proc.stderr).splitlines()[0] if \
            (proc.stdout or proc.stderr) else ""
    except Exception:
        banner = ""
    digest = hashlib.sha256(f"{found}\0{banner}".encode()).hexdigest()[:16]
    _CC = (env, (found, digest))
    return _CC[1]


# ---------------------------------------------------------------------------
# Compiler flags and the vector-extension capability probe
# ---------------------------------------------------------------------------

#: Memoized flag resolution: ((cc env request, REPRO_CC_FLAGS value),
#: flags tuple).  Keyed on both envs so changing either mid-process
#: re-probes instead of serving a stale answer (same doctrine as _CC).
_FLAGS: tuple[tuple[str, str | None], tuple[str, ...]] | None = None

#: Memoized vector-extension capability: (same env key, supported?).
_SIMD: tuple[tuple[str, str | None], bool] | None = None

#: Test/bench override for the emitter mode (None = env + probe).
_SIMD_OVERRIDE: bool | None = None

_MARCH_PROBE_SRC = "int simdal_flag_probe;\n"


def _flags_env() -> str | None:
    return os.environ.get("REPRO_CC_FLAGS")


def _env_key() -> tuple[str, str | None]:
    return (_cc_env(), _flags_env())


def _try_compile(cc: str, args: list, source: str, stem: str) -> bool:
    """One syntax-only probe invocation: does ``cc args source`` fly?"""
    path = _workdir() / f"{stem}.c"
    try:
        path.write_text(source)
        proc = subprocess.run(
            [cc, *args, "-fsyntax-only", str(path)],
            capture_output=True, text=True, timeout=min(60.0, cc_timeout()),
        )
        return proc.returncode == 0
    except Exception:
        return False


def compiler_flags() -> tuple[str, ...]:
    """The optimization flags every native cc invocation uses.

    ``-O3`` always; then ``-march=native`` when the toolchain accepts
    it (probed once with a trivial unit), *unless* ``REPRO_CC_FLAGS``
    is set — the env value (shell-split, appended after ``-O3``)
    replaces the probed default entirely, so it is both an extension
    point and the opt-out.  Memoized, keyed on the compiler/flags env
    pair; :func:`reset_compiler_cache` clears it.
    """
    global _FLAGS
    key = _env_key()
    if _FLAGS is not None and _FLAGS[0] == key:
        return _FLAGS[1]
    flags = ["-O3"]
    requested = _flags_env()
    if requested is not None:
        flags += shlex.split(requested)
    else:
        cc, _ = _compiler_identity()
        if cc is not None:
            STATS["flag_probes"] += 1
            if _try_compile(cc, ["-O3", "-march=native"],
                            _MARCH_PROBE_SRC, "probe_march"):
                flags.append("-march=native")
    _FLAGS = (key, tuple(flags))
    return _FLAGS[1]


def _simd_probe_source() -> str:
    """A tiny TU exercising every vector-extension idiom the emitter
    relies on (vector_size types, __builtin_shufflevector, vector
    compares/selects, __builtin_assume_aligned)."""
    from repro.export.portable import kernel_unit_prelude as _prelude

    dtype = DataType("int16", 2, True)
    return _prelude(16, dtype, simd=True) + (
        "simdal_vec simdal_simd_probe(simdal_vec a, simdal_vec b,\n"
        "                             int64_t k) {\n"
        "    simdal_vec r = simdal_op_add(simdal_shiftpair_c(a, b, 3),\n"
        "                                 simdal_splice_c(a, b, 5));\n"
        "    r = simdal_op_min(r, simdal_op_sadd(a, simdal_op_ssub(a, b)));\n"
        "    r = simdal_op_avg(r, simdal_op_max(a, b));\n"
        "    r = simdal_shiftpair(r, simdal_splice(a, b, k), k);\n"
        "    r = simdal_op_mul(r, simdal_splat(k));\n"
        "    uint8_t buf[SIMDAL_V] __attribute__((aligned(64)));\n"
        "    simdal_store_a(buf, r);\n"
        "    return simdal_op_xor(simdal_load_a(buf), simdal_iota(k));\n"
        "}\n"
    )


def simd_supported() -> bool:
    """Can the resolved compiler build the vector-extension helpers?

    Probed once per (compiler, flags) resolution by compiling a test
    unit that uses every idiom the SIMD emitter emits; GCC < 12 (no
    ``__builtin_shufflevector``) and non-GNU compilers fail it and the
    tier silently stays on the scalar-lane emitter.  Memoized alongside
    the compiler identity; :func:`reset_compiler_cache` clears it.
    """
    global _SIMD
    key = _env_key()
    if _SIMD is not None and _SIMD[0] == key:
        return _SIMD[1]
    cc, _ = _compiler_identity()
    ok = False
    if cc is not None:
        STATS["simd_probes"] += 1
        ok = _try_compile(cc, list(compiler_flags()), _simd_probe_source(),
                          "probe_simd")
        if not ok:
            STATS["simd_probe_failures"] += 1
    _SIMD = (key, ok)
    return ok


def simd_enabled() -> bool:
    """Is the vector-extension emitter active for new kernels?

    ``set_simd_mode`` overrides win; then ``REPRO_NATIVE_SIMD=0``
    forces scalar-lane; otherwise the capability probe decides.
    """
    if _SIMD_OVERRIDE is not None:
        return _SIMD_OVERRIDE
    if os.environ.get("REPRO_NATIVE_SIMD", "") == "0":
        return False
    return simd_supported()


def emitter_mode() -> str:
    """``"vector-ext"`` or ``"scalar-lane"`` — the active emitter."""
    return "vector-ext" if simd_enabled() else "scalar-lane"


def set_simd_mode(value: bool | None) -> None:
    """Force the emitter mode for this process (None = env + probe).

    Flips what *new* kernels are compiled from, so the in-process
    kernel cache is dropped — the disk key embeds the mode, so objects
    of both modes coexist on disk without cross-loading.  Forcing True
    on a host whose compiler fails the probe makes every compile fail
    (and degrade to jit); benches check :func:`simd_supported` first.
    """
    global _SIMD_OVERRIDE
    _SIMD_OVERRIDE = value
    _NATIVE_CACHE.clear()


def reset_compiler_cache() -> None:
    """Forget the memoized compiler/flag/capability probes and cc
    failures.

    A fault-injected or transient toolchain failure must not poison
    later legitimate compiles in the same process: after repairing the
    toolchain (or pointing ``REPRO_CC``/``REPRO_CC_FLAGS`` somewhere
    sane) call this to retry cold.  Clears the flag resolution and the
    vector-extension capability probe along with the compiler identity
    — they are functions of the same toolchain.  The warn-once flag
    survives — one missing-compiler warning per process is enough.
    """
    global _CC, _FLAGS, _SIMD
    _CC = None
    _FLAGS = None
    _SIMD = None
    _FAILED.clear()


def _require_compiler() -> tuple[str, str]:
    global _WARNED
    cc, identity = _compiler_identity()
    if cc is None:
        if not _WARNED:
            _WARNED = True
            warnings.warn(
                "no C compiler found (tried $CC, gcc, cc, clang); the "
                "native backend degrades to the jit tier for this process",
                RuntimeWarning,
                stacklevel=3,
            )
        raise NativeUnavailable(
            "no C compiler available for the native backend"
        )
    return cc, identity


_WORKDIR: Path | None = None


def _workdir() -> Path:
    """A process-lifetime scratch dir: loaded .so paths must outlive us."""
    global _WORKDIR
    if _WORKDIR is None:
        _WORKDIR = Path(tempfile.mkdtemp(prefix="repro_native_"))
        atexit.register(shutil.rmtree, _WORKDIR, ignore_errors=True)
    return _WORKDIR


def _bind_symbol(lib, symbol: str):
    """Resolve and type one steady-kernel symbol in a loaded library."""
    fn = getattr(lib, symbol)
    fn.restype = None
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_uint8),   # mem
        ctypes.c_int64,                   # lb
        ctypes.c_int64,                   # n
        ctypes.POINTER(ctypes.c_int64),   # wb
        ctypes.POINTER(ctypes.c_int64),   # scal
        ctypes.POINTER(ctypes.c_uint8),   # cvec
        ctypes.POINTER(ctypes.c_uint8),   # vregs
    ]
    return fn


def _bind_functions(lib, meta: _NativeMeta):
    """Resolve (steady, whole-run, batch) for one signature's kernel."""
    cfn = _bind_symbol(lib, meta.symbol)
    rfn = getattr(lib, meta.run_symbol)
    rfn.restype = None
    rfn.argtypes = [
        ctypes.POINTER(ctypes.c_uint8),   # mem
        ctypes.c_int64,                   # lb
        ctypes.c_int64,                   # n
        ctypes.POINTER(ctypes.c_int64),   # wb
        ctypes.POINTER(ctypes.c_int64),   # scal
        ctypes.POINTER(ctypes.c_uint8),   # cvec
        ctypes.POINTER(ctypes.c_uint8),   # vregs
        ctypes.POINTER(ctypes.c_int64),   # sect
    ]
    bcfn = getattr(lib, meta.batch_symbol)
    bcfn.restype = None
    bcfn.argtypes = [
        ctypes.POINTER(ctypes.c_uint8),   # mem (flat concatenation)
        ctypes.c_int64,                   # rows
        ctypes.POINTER(ctypes.c_int64),   # lbn (mem offset, lb, n) per row
        ctypes.POINTER(ctypes.c_int64),   # wb rows
        ctypes.POINTER(ctypes.c_int64),   # scal rows
        ctypes.POINTER(ctypes.c_uint8),   # cvec rows
        ctypes.POINTER(ctypes.c_uint8),   # vregs rows
        ctypes.POINTER(ctypes.c_int64),   # sect rows
    ]
    return cfn, rfn, bcfn


def _load_so(path: Path, meta: _NativeMeta):
    # Each signature loads its own cached copy of the batched .so;
    # dlopen dedupes repeat loads of the same path within a process.
    return _bind_functions(ctypes.CDLL(str(path)), meta)


# ---------------------------------------------------------------------------
# Two-tier kernel cache
# ---------------------------------------------------------------------------

_NATIVE_CACHE: OrderedDict[str, _NativeKernel] = OrderedDict()
_NATIVE_CACHE_MAX = 128

#: Kernels whose cc invocation failed this process, keyed by the full
#: *disk key* (signature + compiler identity): retrying every run would
#: pay a doomed subprocess per config, so the failure is memoized and
#: re-raised cheaply (degradation stays per-run).  Keying on the disk
#: key means switching toolchains via ``REPRO_CC``/``CC`` — or
#: :func:`reset_compiler_cache` — naturally un-poisons the signature.
_FAILED: dict[str, str] = {}


def _disk_key(signature: str, cc_identity: str) -> str:
    from repro import __version__

    # The emitter mode and the exact flag set are part of the object's
    # identity: a scalar-lane .so must never satisfy a vector-ext
    # lookup (or vice versa), and objects built with different flags
    # (-march, REPRO_CC_FLAGS) must not cross-load either.
    if simd_enabled():
        mode = "simd"
        STATS["mode_simd"] += 1
    else:
        mode = "scalar"
        STATS["mode_scalar"] += 1
    flags = hashlib.sha256(
        "\0".join(compiler_flags()).encode()
    ).hexdigest()[:8]
    return (f"native-kernel:{__version__}:{NATIVE_CODE_VERSION}:"
            f"{cc_identity}:{mode}:{flags}:{signature}")


def _cache_put(signature: str, kernel: _NativeKernel) -> None:
    if len(_NATIVE_CACHE) >= _NATIVE_CACHE_MAX:
        _NATIVE_CACHE.popitem(last=False)
    _NATIVE_CACHE[signature] = kernel


def clear_memory_cache() -> None:
    """Drop loaded kernels and memoized cc failures (tests use this)."""
    _NATIVE_CACHE.clear()
    _FAILED.clear()


def _load_from_disk(disk, key: str, signature: str,
                    jk: jit._Kernel) -> _NativeKernel | None:
    """Warm path: validated meta + digest-checked .so, or None.

    Any inconsistency — missing/orphaned artifact, digest mismatch,
    dlopen failure — quarantines the whole entry group (cache
    doctrine: corruption is a silent miss, never an exception).
    """
    entry = disk.get(key)
    if (not isinstance(entry, _NativeMeta) or entry.signature != signature
            or not entry.symbol or not entry.run_symbol
            or not entry.batch_symbol):
        return None
    so_path = disk.artifact_path(key, ".so")
    if so_path is None:
        disk.quarantine_artifacts(key)
        return None
    try:
        data = so_path.read_bytes()
        if hashlib.sha256(data).hexdigest() != entry.so_sha256:
            raise OSError("shared object digest mismatch")
        start = time.perf_counter()
        cfn, rfn, bcfn = _load_so(so_path, entry)
        STATS["load_s"] += time.perf_counter() - start
    except Exception:
        disk.quarantine_artifacts(key)
        return None
    return _NativeKernel(jk=jk, meta=entry, cfn=cfn, rfn=rfn, bcfn=bcfn)


def _compile_native(key: str, signature: str, jk: jit._Kernel,
                    program: VProgram, disk) -> _NativeKernel:
    """Cold path: a single-request batch through the compile pipeline."""
    request = build_request(signature, key, jk, program)
    if request is None:
        return _NativeKernel(jk=jk, meta=None, cfn=None)
    loaded, failures, cc_s, load_s = compilequeue.compile_requests(
        [request], disk)
    STATS["cc_s"] += cc_s
    STATS["load_s"] += load_s
    pair = loaded.get(signature)
    if pair is None:
        reason = failures.get(signature, "native compile failed")
        _FAILED[key] = reason
        raise NativeUnavailable(reason)
    (cfn, rfn, bcfn), meta = pair
    return _NativeKernel(jk=jk, meta=meta, cfn=cfn, rfn=rfn, bcfn=bcfn)


def _acquire_async(signature: str, jk: jit._Kernel,
                   program: VProgram) -> _NativeKernel:
    """Non-blocking acquisition: delegate to jit now, hot-swap later.

    The foreground never launches the compiler.  A warm disk object
    still loads synchronously (milliseconds, and it keeps warm runs on
    machine code from the first call); anything colder caches a
    ``pending`` placeholder that delegates to jit and queues the
    compile on the background thread, which mutates the *same* kernel
    object when the ``.so`` lands.  Queue failures leave the
    placeholder delegating forever — silent by design, so async
    first-result latency stays within a hair of plain jit.
    """
    cc, identity = _require_compiler()
    key = _disk_key(signature, identity)
    failed = _FAILED.get(key)
    if failed is not None:
        raise NativeUnavailable(failed)
    disk = get_cache()
    if disk is not None:
        kernel = _load_from_disk(disk, key, signature, jk)
        if kernel is not None:
            STATS["disk_hits"] += 1
            _cache_put(signature, kernel)
            return kernel
        STATS["disk_misses"] += 1
    kernel = _NativeKernel(jk=jk, meta=None, cfn=None, pending=True)
    _cache_put(signature, kernel)
    compilequeue.enqueue(signature, key, jk, program, kernel)
    return kernel


def get_native_kernel(program: VProgram) -> _NativeKernel:
    """The loaded native kernel for this program's signature (cached)."""
    signature = jit._cached_signature(program)
    kernel = _NATIVE_CACHE.get(signature)
    if kernel is not None:
        _NATIVE_CACHE.move_to_end(signature)
        STATS["memory_hits"] += 1
        return kernel
    STATS["memory_misses"] += 1
    jk = jit.get_kernel(program)
    if not jk.spec.batchable or jk.fn is None:
        # The steady loop itself is unbatchable: there is nothing for a
        # C kernel to run that jit's per-iteration path doesn't cover.
        kernel = _NativeKernel(jk=jk, meta=None, cfn=None)
        _cache_put(signature, kernel)
        return kernel
    if compilequeue.async_enabled():
        # The injected compile fault fires inside the queue worker in
        # async mode (the foreground compiles nothing), so the run
        # itself never degrades — it just stays on jit.
        return _acquire_async(signature, jk, program)
    _fault("compile")  # REPRO_FAULT=compile:… fails the cc step here
    cc, identity = _require_compiler()
    key = _disk_key(signature, identity)
    failed = _FAILED.get(key)
    if failed is not None:
        raise NativeUnavailable(failed)
    disk = get_cache()
    kernel = None
    if disk is not None:
        kernel = _load_from_disk(disk, key, signature, jk)
        if kernel is not None:
            STATS["disk_hits"] += 1
        else:
            STATS["disk_misses"] += 1
    if kernel is None:
        kernel = _compile_native(key, signature, jk, program, disk)
    _cache_put(signature, kernel)
    return kernel


# ---------------------------------------------------------------------------
# Steady-loop invocation
# ---------------------------------------------------------------------------

# ctypes array *types* are surprisingly expensive to create (a new
# class per call); a sweep re-invokes kernels with a handful of
# distinct buffer lengths, so the types are cached process-wide.
_U8_ARRAYS: dict[int, type] = {}
_I64_ARRAYS: dict[int, type] = {}


def _u8_array(length: int) -> type:
    atype = _U8_ARRAYS.get(length)
    if atype is None:
        atype = _U8_ARRAYS[length] = ctypes.c_uint8 * length
    return atype


def _i64_array(length: int) -> type:
    atype = _I64_ARRAYS.get(length)
    if atype is None:
        atype = _I64_ARRAYS[length] = ctypes.c_int64 * length
    return atype


#: Cached-negative sentinel for the per-plan window-base memo.
_UNBATCHABLE = object()


class _InvokePlan:
    """Per-kernel invoke constants, derived from the meta tables once.

    Everything here is loop-invariant *and* run-invariant: register
    slot offsets, and — when every splat operand is a literal — the
    fully materialized cvec buffer (already a ctypes array, so warm
    invokes marshal nothing for it).

    ``wb_memo`` additionally memoizes :func:`jit._window_bases` per
    array space: the analysis is a pure function of (spec, space,
    lb, n, memory size) — array bases never move once placed and no
    runtime scalar enters it — so steady-state repeated runs (the
    sweep inner loop) skip the window/collision walk entirely.
    Rejections are memoized too, so the fallback surface is identical
    hot or cold.  Keyed weakly so retired spaces don't pin entries.
    """

    __slots__ = ("seed_offsets", "out_offsets", "all_offsets", "vregs_len",
                 "splats_dyn", "c_cvec_const", "cvec_const", "wb_memo",
                 "nw", "ns", "nc", "nv_stride", "nsect")

    def __init__(self, meta: _NativeMeta, spec: jit._KernelSpec):
        V = spec.V
        self.wb_memo = weakref.WeakKeyDictionary()
        slots = {name: k for k, name in enumerate(meta.vreg_names)}
        self.seed_offsets = tuple((name, slots[name] * V)
                                  for name in meta.seed_regs)
        self.out_offsets = tuple((name, slots[name] * V)
                                 for name in meta.out_regs)
        self.all_offsets = {name: k * V for name, k in slots.items()}
        self.vregs_len = max(1, len(meta.vreg_names) * V)
        # Batch-row table strides (must match the compile-time strides
        # baked into simdal_steady_batch).
        self.nw = len(spec.win_keys)
        self.ns = len(meta.shifts) + len(meta.points)
        self.nc = len(meta.splats) * V
        self.nv_stride = len(meta.vreg_names) * V
        self.nsect = meta.sect_len
        if all(isinstance(operand, SConst) for operand, _ in meta.splats):
            consts = bytearray()
            for operand, dtype in meta.splats:
                consts += vec.vsplat(dtype.wrap(operand.value), dtype, V)
            self.cvec_const = bytes(consts)
            self.splats_dyn = None
            # The persistent ctypes array lives over an aligned view
            # (as_ctypes_u8 keeps the view, and thus the backing,
            # alive), so warm invokes hand the kernel a V-aligned cvec
            # base without copying.
            buf = aligned_view(max(1, len(consts)))
            buf[:len(consts)] = consts
            self.c_cvec_const = as_ctypes_u8(buf)
        else:
            self.splats_dyn = meta.splats
            self.cvec_const = None
            self.c_cvec_const = None


def _plan_for(kernel: _NativeKernel) -> _InvokePlan:
    plan = kernel.plan
    if plan is None:
        plan = kernel.plan = _InvokePlan(kernel.meta, kernel.jk.spec)
    return plan


def _steady_tables(kernel: _NativeKernel, env, lb: int, n: int):
    """Validated steady-call tables ``(wb, scal, cvec bytes)`` for one run.

    Pure reads: raises :class:`jit._Unbatchable` (window analysis,
    memoized per space) or :class:`MachineError` (range checks) before
    anything is mutated, from the same pre-mutation points the jit
    kernel prelude uses, so every tier accepts and rejects exactly the
    same runs.  Shared by the per-run invoke, the whole-run marshaller,
    and the class batch driver.
    """
    spec = kernel.jk.spec
    meta = kernel.meta
    V = spec.V
    plan = _plan_for(kernel)
    per_space = plan.wb_memo.get(env.space)
    if per_space is None:
        per_space = plan.wb_memo[env.space] = {}
    wb_key = (lb, n, env.mem.size)
    cached = per_space.get(wb_key)
    if cached is None:
        try:
            cached = jit._window_bases(spec, env, lb, n)
        except jit._Unbatchable:
            per_space[wb_key] = _UNBATCHABLE
            raise
        per_space[wb_key] = cached
    elif cached is _UNBATCHABLE:
        raise jit._Unbatchable
    bases, _snapshot = cached
    for what, value in meta.bad_amounts:
        raise MachineError(f"{what} {value} outside [0, {V}]")
    amounts = [jit._checked_amount(env, expr, V, "vshiftpair shift")
               for expr in meta.shifts]
    amounts += [jit._checked_amount(env, expr, V, "vsplice point")
                for expr in meta.points]
    if plan.cvec_const is not None:
        cvec = plan.cvec_const
    else:
        consts = bytearray()
        for operand, dtype in plan.splats_dyn:
            value = npbackend._peek_s(env, operand)
            consts += vec.vsplat(dtype.wrap(value), dtype, V)
        cvec = bytes(consts)
    return bases, amounts, cvec


def _invoke(kernel: _NativeKernel, env: interp._Env, lb: int, n: int) -> None:
    """One C steady-loop call; every check precedes every mutation.

    Raises :class:`jit._Unbatchable` (window analysis) or
    :class:`MachineError` (range checks, unset registers) exactly where
    the jit kernel's prelude would, so the fallback surface is shared.
    """
    spec = kernel.jk.spec
    V = spec.V
    plan = _plan_for(kernel)
    bases, amounts, cvec = _steady_tables(kernel, env, lb, n)
    if plan.c_cvec_const is not None:
        c_cvec = plan.c_cvec_const
    else:
        cbuf = aligned_view(max(1, len(cvec)))
        cbuf[:len(cvec)] = cvec
        c_cvec = as_ctypes_u8(cbuf)
    vregs = aligned_view(plan.vregs_len)
    for name, offset in plan.seed_offsets:
        vregs[offset:offset + V] = interp._read_vreg(env, name)

    mem_buf = env.mem.raw()
    c_mem = _u8_array(len(mem_buf)).from_buffer(mem_buf)
    c_vregs = _u8_array(plan.vregs_len).from_buffer(vregs)
    c_wb = _i64_array(max(1, len(bases)))(*bases)
    c_scal = _i64_array(max(1, len(amounts)))(*amounts)
    try:
        kernel.cfn(c_mem, lb, n, c_wb, c_scal, c_cvec, c_vregs)
    finally:
        # Release the buffer exports promptly (the memory view export
        # in particular must not outlive the call).
        del c_mem, c_vregs, c_cvec
    for name, offset in plan.out_offsets:
        env.vregs[name] = bytes(vregs[offset:offset + V])


def _run_steady_at_native(env: interp._Env, steady, kernel: _NativeKernel,
                          lb: int, ub: int) -> bool:
    """Native twin of :func:`jit._run_steady_at`; True = per-iter path."""
    if steady.step <= 0:
        npbackend._steady_periter(env, steady, lb, ub)
        return True
    n = len(range(lb, ub, steady.step))
    if n == 0:
        return False
    if kernel.cfn is None:
        return jit._run_steady_at(env, steady, kernel.jk, lb, ub)
    try:
        _invoke(kernel, env, lb, n)
    except jit._Unbatchable:
        # Raised before any mutation, so the fallback replays the loop
        # from unmodified state — same contract as the jit prelude.
        npbackend._steady_periter(env, steady, lb, ub)
        return True
    jit._bump_steady_counters(env, kernel.jk.spec, n)
    return False


def _run_steady_native(env: interp._Env, steady,
                       kernel: _NativeKernel) -> bool:
    lb = interp._eval_s(env, steady.lb)
    ub = interp._eval_s(env, steady.ub)
    return _run_steady_at_native(env, steady, kernel, lb, ub)


# ---------------------------------------------------------------------------
# Whole-run marshalling (sections + steady as one C call)
# ---------------------------------------------------------------------------
#
# The marshaller resolves everything value-dependent — scalar
# registers, section conditions, addressing, bounds and range checks,
# counter bookkeeping — on a SHADOW env (same program/space/memory/
# bindings, fresh register files and counters), walking the program in
# the interpreter's exact order and collecting the sect[]/wb/scal/cvec
# tables the C drivers consume.  Nothing outside the shadow mutates
# until the C call returns (preheader statements cannot touch memory:
# loads/stores need a loop counter and raise first), so any _Bail —
# an unlowered form, a failed check, a condition the emitter could not
# know — simply discards the shadow and replays the classic jit path
# from pristine state, reproducing byte-exact error and fallback
# semantics.  On success the shadow's counters/registers merge into
# the real env plus the analytic steady bumps, so OPD tables stay
# bit-identical to the bytes oracle.

class _Bail(Exception):
    """This run falls outside the whole-run C surface (classic replay)."""


_I64_MASK = (1 << 64) - 1
_I64_SIGN = 1 << 63


def _as_i64(value: int) -> int:
    """Two's-complement fold into ctypes' int64 range.

    Slot values ride an int64 table; the C side casts back to the
    unsigned lane type, so only the low 64 bits matter.
    """
    return ((value & _I64_MASK) ^ _I64_SIGN) - _I64_SIGN


class _Row:
    """One marshalled run: the per-row tables a C driver call consumes."""

    __slots__ = ("shadow", "lb", "n", "wb", "scal", "cvec", "sect",
                 "vregs", "written")

    def __init__(self, shadow, lb, n, wb, scal, cvec, sect, vregs, written):
        self.shadow = shadow     # the marshal-time env (None: steady-only)
        self.lb = lb
        self.n = n
        self.wb = wb             # window bases, run-relative
        self.scal = scal         # checked runtime shift/point amounts
        self.cvec = cvec         # splat constants, bytes
        self.sect = sect         # section flag + value slots
        self.vregs = vregs       # seeded register buffer (stride-exact)
        self.written = written   # registers C writes that commit reads back


def _store_base(shadow: interp._Env, addr, i0, V: int) -> int:
    """The truncated, bounds-checked base a section load/store touches."""
    if i0 is None:
        raise _Bail  # interp raises MachineError here; classic replays it
    a = shadow.space[addr.array].addr(i0 + addr.elem)
    base = a - a % V
    if base < 0 or base + V > shadow.mem.size:
        raise _Bail
    return base


def _marshal_vexpr(shadow: interp._Env, expr, i0, vals: list,
                   defined: set, V: int) -> None:
    """Mirror interp._eval_v's counter bumps; slot values in emit order."""
    if isinstance(expr, VLoadE):
        shadow.counters.bump(VLOAD)
        vals.append(_store_base(shadow, expr.addr, i0, V))
        return
    if isinstance(expr, VRegE):
        if expr.name not in defined:
            raise _Bail  # read-before-set: classic replay raises it
        return
    if isinstance(expr, VShiftPairE):
        _marshal_vexpr(shadow, expr.a, i0, vals, defined, V)
        _marshal_vexpr(shadow, expr.b, i0, vals, defined, V)
        shift = expr.shift
        if not isinstance(shift, int):
            shift = interp._eval_s(shadow, shift)
            if not 0 <= shift <= V:
                raise _Bail
            vals.append(shift)
        elif not 0 <= shift <= V:
            raise _Bail
        shadow.counters.bump(VPERM)
        return
    if isinstance(expr, VSpliceE):
        _marshal_vexpr(shadow, expr.a, i0, vals, defined, V)
        _marshal_vexpr(shadow, expr.b, i0, vals, defined, V)
        point = expr.point
        if not isinstance(point, int):
            point = interp._eval_s(shadow, point)
            if not 0 <= point <= V:
                raise _Bail
            vals.append(point)
        elif not 0 <= point <= V:
            raise _Bail
        shadow.counters.bump(VSEL)
        return
    if isinstance(expr, VSplatE):
        value = interp._eval_s(shadow, expr.operand)
        shadow.counters.bump(VSPLAT)
        vals.append(_as_i64(expr.dtype.wrap(value)))
        return
    if isinstance(expr, VBinE):
        _marshal_vexpr(shadow, expr.a, i0, vals, defined, V)
        _marshal_vexpr(shadow, expr.b, i0, vals, defined, V)
        shadow.counters.bump(VARITH)
        return
    if isinstance(expr, VIotaE):
        if i0 is None:
            raise _Bail
        shadow.counters.bump(VARITH)
        vals.append(_as_i64(i0 + expr.bias))
        return
    raise _Bail


def _marshal_stmts(shadow: interp._Env, stmts, i0, vals: list, defined: set,
                   written: list, written_set: set, V: int) -> None:
    for stmt in stmts:
        if isinstance(stmt, SetS):
            shadow.sregs[stmt.reg] = interp._eval_s(shadow, stmt.expr)
        elif isinstance(stmt, SetV):
            if stmt.is_copy:
                shadow.counters.bump(VCOPY)
                if stmt.expr.name not in defined:
                    raise _Bail
            else:
                _marshal_vexpr(shadow, stmt.expr, i0, vals, defined, V)
            defined.add(stmt.reg)
            if stmt.reg not in written_set:
                written_set.add(stmt.reg)
                written.append(stmt.reg)
        elif isinstance(stmt, VStoreS):
            # interp order: src evaluates (and bumps) before the store
            # counter and address — slots land in the same order.
            _marshal_vexpr(shadow, stmt.src, i0, vals, defined, V)
            shadow.counters.bump(VSTORE)
            vals.append(_store_base(shadow, stmt.addr, i0, V))
        else:
            raise _Bail


def _marshal_section(shadow: interp._Env, section, sect: list, span,
                     defined: set, written: list, written_set: set,
                     V: int) -> None:
    base, count = span
    if section.cond is not None:
        shadow.counters.bump(BRANCH)
        if not interp._eval_s(shadow, section.cond):
            return  # flag slot stays 0: C skips the block
    i0 = (interp._eval_s(shadow, section.i_expr)
          if section.i_expr is not None else None)
    vals: list = []
    _marshal_stmts(shadow, section.stmts, i0, vals, defined, written,
                   written_set, V)
    if len(vals) + 1 != count:
        raise _Bail  # defensive: emitter/marshaller slot drift
    sect[base] = 1
    sect[base + 1:base + count] = vals


def _marshal_run(kernel: _NativeKernel, env: interp._Env) -> _Row:
    """Marshal one guarded env into a whole-run row, mutating nothing.

    Raises :class:`_Bail` when any part of the run falls outside the
    lowered surface; the caller replays the classic path on the still
    untouched env.
    """
    program = env.program
    meta = kernel.meta
    plan = _plan_for(kernel)
    V = kernel.jk.spec.V
    shadow = interp._Env(program, env.space, env.mem, env.bindings, None)
    try:
        # Memory-safe on the shared mem: preheader loads/stores need a
        # loop counter and raise inside interp before touching bytes.
        interp._exec_stmts(shadow, program.preheader, i=None)
    except MachineError:
        raise _Bail from None
    defined = set(shadow.vregs)
    written: list = []
    written_set: set = set()
    sect = [0] * plan.nsect
    spans = meta.sect_spans
    n_pro = len(program.prologue)
    if len(spans) != n_pro + len(program.epilogue):
        raise _Bail  # defensive: meta shape drift
    for section, span in zip(program.prologue, spans[:n_pro]):
        _marshal_section(shadow, section, sect, span, defined, written,
                         written_set, V)
    steady = program.steady
    lb = n = 0
    wb: list = [0] * plan.nw
    scal: list = [0] * plan.ns
    cvec: bytes = b"\x00" * plan.nc
    if steady is not None:
        lb = interp._eval_s(shadow, steady.lb)
        ub = interp._eval_s(shadow, steady.ub)
        if steady.step <= 0:
            raise _Bail
        n = len(range(lb, ub, steady.step))
        if n > 0:
            for name in meta.seed_regs:
                if name not in defined:
                    raise _Bail
            try:
                wb, scal, cvec = _steady_tables(kernel, shadow, lb, n)
            except (jit._Unbatchable, MachineError):
                raise _Bail from None
            wb = list(wb)  # the memoized base list must never be shared
            for name in meta.out_regs:
                defined.add(name)
                if name not in written_set:
                    written_set.add(name)
                    written.append(name)
    for section, span in zip(program.epilogue, spans[n_pro:]):
        _marshal_section(shadow, section, sect, span, defined, written,
                         written_set, V)
    offsets = plan.all_offsets
    for name in written:
        if name not in offsets:
            raise _Bail  # defensive: register without a vregs slot
    vregs = aligned_view(plan.nv_stride)
    for name, value in shadow.vregs.items():
        offset = offsets.get(name)
        if offset is not None:
            vregs[offset:offset + V] = value
    return _Row(shadow, lb, n, wb, scal, cvec, sect, vregs, tuple(written))


def _commit_run(kernel: _NativeKernel, env: interp._Env, row: _Row) -> None:
    """Fold a completed whole-run C call back into the real env."""
    spec = kernel.jk.spec
    V = spec.V
    shadow = row.shadow
    env.counters.merge(shadow.counters)
    if row.n > 0:
        jit._bump_steady_counters(env, spec, row.n)
    env.sregs.update(shadow.sregs)
    env.vregs.update(shadow.vregs)
    offsets = kernel.plan.all_offsets
    for name in row.written:
        offset = offsets[name]
        env.vregs[name] = bytes(row.vregs[offset:offset + V])


def _call_run(kernel: _NativeKernel, env: interp._Env, row: _Row) -> None:
    """The ctypes whole-run call + commit for one marshalled row."""
    mem_buf = env.mem.raw()
    c_mem = _u8_array(len(mem_buf)).from_buffer(mem_buf)
    vregs = row.vregs if len(row.vregs) else aligned_view(1)
    c_vregs = _u8_array(len(vregs)).from_buffer(vregs)
    cvec = aligned_view(max(1, len(row.cvec)))
    cvec[:len(row.cvec)] = row.cvec
    c_cvec = as_ctypes_u8(cvec)
    c_wb = _i64_array(max(1, len(row.wb)))(*row.wb)
    c_scal = _i64_array(max(1, len(row.scal)))(*row.scal)
    c_sect = _i64_array(max(1, len(row.sect)))(*row.sect)
    try:
        kernel.rfn(c_mem, row.lb, row.n, c_wb, c_scal, c_cvec, c_vregs,
                   c_sect)
    finally:
        del c_mem, c_vregs, c_cvec
    _commit_run(kernel, env, row)


def _invoke_run(kernel: _NativeKernel, env: interp._Env) -> bool:
    """Execute one whole run as a single C call; False = marshal bailed."""
    try:
        row = _marshal_run(kernel, env)
    except _Bail:
        return False
    _call_run(kernel, env, row)
    STATS["whole_runs"] += 1
    return True


def _invoke_batch(kernel: _NativeKernel, rows: list) -> None:
    """One C batch-driver call for ``rows`` = ``[(env, row), ...]``.

    Gathers every row's memory into one flat image (a row's addresses
    stay run-relative: the driver adds the row's segment offset to the
    mem base), fires ``simdal_steady_batch`` once, then scatters the
    segments and per-row vregs back.  Callers commit registers and
    counters per row afterwards.

    The flat image, vregs block, and cvec block all come from
    :func:`aligned_view`, and every row's segment offset is rounded up
    to :data:`ALIGNMENT` — so each row's mem/vregs/cvec base keeps the
    V-alignment promise the kernels were compiled against.  The gather
    and scatter copy the whole memory image of every row (O(total
    mem), unlike the zero-copy per-iter path); ``batch_copy_us`` vs
    ``batch_c_us`` attribute that cost in ``--profile``.
    """
    plan = _plan_for(kernel)
    t0 = time.perf_counter()
    sizes = [env.mem.size for env, _ in rows]
    offsets: list = []
    total = 0
    for size in sizes:
        offsets.append(total)
        total += -(-size // ALIGNMENT) * ALIGNMENT
    flat = aligned_view(max(1, total))
    for (env, _), offset, size in zip(rows, offsets, sizes):
        flat[offset:offset + size] = env.mem.raw()
    lbn: list = []
    wb: list = []
    scal: list = []
    sect: list = []
    stride = plan.nv_stride
    vregs = aligned_view(max(1, stride * len(rows)))
    cvec = aligned_view(max(1, plan.nc * len(rows)))
    for idx, ((env, row), offset) in enumerate(zip(rows, offsets)):
        lbn += (offset, row.lb, row.n)
        wb += row.wb
        scal += row.scal
        sect += row.sect
        cvec[idx * plan.nc:(idx + 1) * plan.nc] = row.cvec
        vregs[idx * stride:(idx + 1) * stride] = row.vregs
    c_mem = as_ctypes_u8(flat)
    c_vregs = as_ctypes_u8(vregs)
    c_cvec = as_ctypes_u8(cvec)
    c_lbn = _i64_array(len(lbn))(*lbn)
    c_wb = _i64_array(max(1, len(wb)))(*wb)
    c_scal = _i64_array(max(1, len(scal)))(*scal)
    c_sect = _i64_array(max(1, len(sect)))(*sect)
    t1 = time.perf_counter()
    try:
        kernel.bcfn(c_mem, len(rows), c_lbn, c_wb, c_scal, c_cvec,
                    c_vregs, c_sect)
    finally:
        del c_mem, c_vregs, c_cvec
    t2 = time.perf_counter()
    for (env, _), offset, size in zip(rows, offsets, sizes):
        env.mem.raw()[:] = flat[offset:offset + size]
    if stride:
        for idx, (_env, row) in enumerate(rows):
            row.vregs = vregs[idx * stride:(idx + 1) * stride]
    t3 = time.perf_counter()
    STATS["batch_copy_us"] += int((t1 - t0 + t3 - t2) * 1e6)
    STATS["batch_c_us"] += int((t2 - t1) * 1e6)


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------

class NativeBackend(JitBackend):
    """Machine-code execution of vector programs (bit-exact vs bytes).

    Inherits the jit engine's run/guard/section machinery and swaps the
    steady loop for the compiled C kernel via the hook points.  When a
    kernel's whole-run surface compiled (``meta.sections_c``), accepted
    runs execute as a single ``simdal_run`` call and whole signature
    classes execute as a single ``simdal_steady_batch`` call — one
    ctypes crossing per class; anything the marshaller bails on replays
    the classic per-piece path from untouched state.
    """

    name = "native"

    def _kernel_for(self, program):
        return get_native_kernel(program)

    def _steady(self, env, steady, kernel):
        return _run_steady_native(env, steady, kernel)

    def _finish_env(self, env, kernel):
        meta = kernel.meta
        if (kernel.cfn is not None and kernel.rfn is not None
                and meta is not None and meta.sections_c
                and _invoke_run(kernel, env)):
            return False
        return super()._finish_env(env, kernel)

    def _batch_finish(self, live, results, kernel):
        meta = kernel.meta
        if (kernel.cfn is None or kernel.bcfn is None or meta is None
                or not meta.sections_c):
            return super()._batch_finish(live, results, kernel)
        rows: list = []
        classic: list = []
        t0 = time.perf_counter()
        for i, env in live:
            try:
                rows.append((i, env, _marshal_run(kernel, env)))
            except _Bail:
                classic.append((i, env))
        STATS["batch_marshal_us"] += int((time.perf_counter() - t0) * 1e6)
        if len(rows) == 1:
            # Singleton classes skip the flat gather/scatter copy.
            i, env, row = rows[0]
            _call_run(kernel, env, row)
            STATS["whole_runs"] += 1
            results[i] = interp.VectorRunResult(env.counters, env.trip,
                                                used_fallback=False)
        elif rows:
            _invoke_batch(kernel, [(env, row) for _, env, row in rows])
            STATS["batch_calls"] += 1
            STATS["batch_rows"] += len(rows)
            for i, env, row in rows:
                _commit_run(kernel, env, row)
                results[i] = interp.VectorRunResult(env.counters, env.trip,
                                                    used_fallback=False)
        for i, env in classic:
            fell = super()._finish_env(env, kernel)
            results[i] = interp.VectorRunResult(env.counters, env.trip,
                                                used_fallback=fell)

    def _steady_batch(self, live, kernel):
        # Reached when the whole-run surface is unavailable (sections
        # not lowered, or functions still pending): sections already
        # ran in Python; batch the steady loops through the C driver.
        if kernel.cfn is None or kernel.bcfn is None:
            # Pending/declined kernels batch on the jit tier's
            # config-batched kernel, exactly like jit.run_batch.
            return jit._run_steady_batch(live, kernel.jk)
        spec = kernel.jk.spec
        V = spec.V
        plan = _plan_for(kernel)
        fell: dict[int, bool] = {}
        if len(live) == 1:
            for i, env in live:
                fell[i] = _run_steady_native(env, env.program.steady,
                                             kernel)
            return fell
        rows: list = []
        solo: list = []
        t0 = time.perf_counter()
        for i, env in live:
            steady = env.program.steady
            lb = interp._eval_s(env, steady.lb)
            ub = interp._eval_s(env, steady.ub)
            if steady.step <= 0:
                solo.append((i, env, lb, ub))
                continue
            n = len(range(lb, ub, steady.step))
            if n == 0:
                fell[i] = False
                continue
            try:
                wb, scal, cvec = _steady_tables(kernel, env, lb, n)
                vregs = aligned_view(plan.nv_stride)
                for name, offset in plan.seed_offsets:
                    vregs[offset:offset + V] = interp._read_vreg(env, name)
            except jit._Unbatchable:
                npbackend._steady_periter(env, steady, lb, ub)
                fell[i] = True
                continue
            except MachineError:
                solo.append((i, env, lb, ub))
                continue
            rows.append((i, env,
                         _Row(None, lb, n, list(wb), scal, cvec,
                              [0] * plan.nsect, vregs, ())))
        STATS["batch_marshal_us"] += int((time.perf_counter() - t0) * 1e6)
        if len(rows) == 1:
            i, env, row = rows[0]
            solo.append((i, env, row.lb, row.lb + row.n * spec.step))
            rows = []
        if rows:
            _invoke_batch(kernel, [(env, row) for _, env, row in rows])
            STATS["batch_calls"] += 1
            STATS["batch_rows"] += len(rows)
            for i, env, row in rows:
                for name, offset in plan.out_offsets:
                    env.vregs[name] = bytes(row.vregs[offset:offset + V])
                jit._bump_steady_counters(env, spec, row.n)
                fell[i] = False
        for i, env, lb, ub in solo:
            fell[i] = _run_steady_at_native(env, env.program.steady,
                                            kernel, lb, ub)
        return fell
