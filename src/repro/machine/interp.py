"""Interpreter for vector programs: executes and counts dynamic operations.

This is the reproduction's stand-in for the paper's PowerPC+VMX
cycle-accurate simulator.  It executes the structured vector program on
a byte-addressable memory with AltiVec truncation semantics and tallies
every operation by category (see :mod:`repro.machine.counters` and the
cost model in ``DESIGN.md`` §5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError
from repro.ir.expr import Loop
from repro.machine.arrays import ArraySpace
from repro.machine.counters import (
    BRANCH,
    CALL,
    OpCounters,
    SCALAR,
    VARITH,
    VCOPY,
    VLOAD,
    VPERM,
    VSEL,
    VSPLAT,
    VSTORE,
)
from repro.machine.memory import Memory
from repro.machine.scalar import RunBindings, run_scalar
from repro.machine.trace import Trace
from repro.machine import vector as vec
from repro.vir.program import VProgram, SteadyLoop
from repro.vir.vexpr import (
    Addr,
    SBase,
    SBin,
    SConst,
    SExpr,
    SReg,
    SVar,
    S_OPS,
    VBinE,
    VExpr,
    VIotaE,
    VLoadE,
    VRegE,
    VShiftPairE,
    VSpliceE,
    VSplatE,
)
from repro.vir.vstmt import Section, SetS, SetV, VStmt, VStoreS


@dataclass
class VectorRunResult:
    """Outcome of executing a vector program.

    ``used_fallback`` is True when the engine took an exactness
    fallback instead of its primary path: the guarded scalar run for
    trips at or below ``guard_min_trip`` (both engines), or — on the
    batched NumPy backend — per-iteration steady-loop execution for
    programs its planner cannot batch.  Counters and memory are
    identical either way; the flag only reports *how* they were made.

    ``fallback`` is set by the resilient backend chain
    (:func:`repro.machine.backend.get_resilient_backend`) when a
    higher engine tier failed and a lower one produced this result:
    ``{"tier": ran, "phase": where-it-failed, "reason": first error,
    "failed": (tiers that failed, in order)}``.  ``None`` means the
    requested tier ran clean.

    ``batch_fallback`` is the batch-level analogue: the resilient
    chain sets it on every result of a batched call whose primary tier
    lacked (or failed) batch execution, so the runs re-executed config
    by config — ``{"tier": primary, "phase": "batch", "reason": why}``.
    Counters and memory are identical either way; the record only
    makes the degradation visible in the profile's resilience section.
    """

    counters: OpCounters
    trip: int
    used_fallback: bool
    fallback: dict | None = None
    batch_fallback: dict | None = None

    @property
    def ops(self) -> int:
        return self.counters.total


class _Env:
    """Mutable execution state: register files and memory handles."""

    def __init__(self, program: VProgram, space: ArraySpace, mem: Memory,
                 bindings: RunBindings, trace: Trace | None = None):
        self.program = program
        self.space = space
        self.mem = mem
        self.bindings = bindings
        self.sregs: dict[str, int] = {}
        self.vregs: dict[str, bytes] = {}
        self.counters = OpCounters()
        self.trip = bindings.resolve_trip(program.source)
        self.trace = trace
        self.current_i: int | None = None


def run_vector(
    program: VProgram,
    space: ArraySpace,
    mem: Memory,
    bindings: RunBindings | None = None,
    trace: Trace | None = None,
) -> VectorRunResult:
    """Execute ``program`` on ``mem``; return dynamic operation counts.

    When the program carries a runtime guard and the trip count is at or
    below it, the original scalar loop runs instead (the paper's
    ``ub > 3B`` fallback) and its scalar operations are counted.
    Passing a :class:`~repro.machine.trace.Trace` records every memory
    and reorganization operation with its phase and address.
    """
    env = _Env(program, space, mem, bindings or RunBindings(), trace)
    env.counters.bump(CALL, 2)  # one call + one return, as the paper measures

    if program.guard_min_trip is not None:
        env.counters.bump(BRANCH)
        if env.trip <= program.guard_min_trip:
            scalar = run_scalar(program.source, space, mem, env.bindings)
            env.counters.merge(scalar.counters)
            return VectorRunResult(env.counters, env.trip, used_fallback=True)
    elif env.trip != program.source.upper and isinstance(program.source.upper, int):
        raise MachineError("compile-time trip count mismatch")

    _exec_stmts(env, program.preheader, i=None)
    for section in program.prologue:
        _exec_section(env, section)
    if program.steady is not None:
        _exec_steady(env, program.steady)
    for section in program.epilogue:
        _exec_section(env, section)
    return VectorRunResult(env.counters, env.trip, used_fallback=False)


# ---------------------------------------------------------------------------
# Execution helpers
# ---------------------------------------------------------------------------

def _exec_section(env: _Env, section: Section) -> None:
    if env.trace is not None:
        env.trace.set_phase(section.label)
    if section.cond is not None:
        env.counters.bump(BRANCH)
        if not _eval_s(env, section.cond):
            return
    i = _eval_s(env, section.i_expr) if section.i_expr is not None else None
    _exec_stmts(env, section.stmts, i)


def _exec_steady(env: _Env, steady: SteadyLoop) -> None:
    lb = _eval_s(env, steady.lb)
    ub = _eval_s(env, steady.ub)
    pointers = env.program.pointer_count()
    if env.trace is not None:
        env.trace.set_phase("steady")
    for i in range(lb, ub, steady.step):
        # Modelled per-iteration overhead: one bump per induction
        # pointer plus the loop's compare-and-branch (DESIGN.md §5).
        env.counters.bump(SCALAR, pointers)
        env.counters.bump(BRANCH)
        _exec_stmts(env, steady.body, i)
        _exec_stmts(env, steady.bottom, i)


def _exec_stmts(env: _Env, stmts: list[VStmt], i: int | None) -> None:
    for stmt in stmts:
        if isinstance(stmt, SetS):
            env.sregs[stmt.reg] = _eval_s(env, stmt.expr)
        elif isinstance(stmt, SetV):
            if stmt.is_copy:
                env.counters.bump(VCOPY)
                env.vregs[stmt.reg] = _read_vreg(env, stmt.expr.name)
            else:
                env.vregs[stmt.reg] = _eval_v(env, stmt.expr, i)
        elif isinstance(stmt, VStoreS):
            value = _eval_v(env, stmt.src, i)
            env.counters.bump(VSTORE)
            address = _addr_value(env, stmt.addr, i)
            if env.trace is not None:
                env.trace.record("vstore", address - address % env.program.V, i)
            env.mem.vstore(address, value, env.program.V)
        else:
            raise MachineError(f"unknown statement {type(stmt).__name__}")


def _addr_value(env: _Env, addr: Addr, i: int | None) -> int:
    if i is None:
        raise MachineError(f"address {addr} used in a section with no loop counter")
    bound = env.space[addr.array]
    return bound.addr(i + addr.elem)


def _read_vreg(env: _Env, name: str) -> bytes:
    try:
        return env.vregs[name]
    except KeyError:
        raise MachineError(f"vector register {name!r} read before being set") from None


def _eval_s(env: _Env, expr: SExpr) -> int:
    if isinstance(expr, SConst):
        return expr.value
    if isinstance(expr, SVar):
        loop: Loop = env.program.source
        if isinstance(loop.upper, str) and expr.name == loop.upper:
            return env.trip
        return env.bindings.scalar(expr.name)
    if isinstance(expr, SBase):
        return env.space[expr.array].base
    if isinstance(expr, SReg):
        try:
            return env.sregs[expr.name]
        except KeyError:
            raise MachineError(f"scalar register {expr.name!r} read before being set") from None
    if isinstance(expr, SBin):
        left = _eval_s(env, expr.left)
        right = _eval_s(env, expr.right)
        env.counters.bump(SCALAR)
        return S_OPS[expr.op](left, right)
    raise MachineError(f"unknown scalar expression {type(expr).__name__}")


def _eval_v(env: _Env, expr: VExpr, i: int | None) -> bytes:
    V = env.program.V
    if isinstance(expr, VLoadE):
        env.counters.bump(VLOAD)
        address = _addr_value(env, expr.addr, i)
        if env.trace is not None:
            env.trace.record("vload", address - address % V, i,
                             site=(expr.addr.array, expr.addr.elem))
        return env.mem.vload(address, V)
    if isinstance(expr, VRegE):
        return _read_vreg(env, expr.name)
    if isinstance(expr, VShiftPairE):
        a = _eval_v(env, expr.a, i)
        b = _eval_v(env, expr.b, i)
        shift = expr.shift if isinstance(expr.shift, int) else _eval_s(env, expr.shift)
        env.counters.bump(VPERM)
        return vec.vshiftpair(a, b, shift, V)
    if isinstance(expr, VSpliceE):
        a = _eval_v(env, expr.a, i)
        b = _eval_v(env, expr.b, i)
        point = expr.point if isinstance(expr.point, int) else _eval_s(env, expr.point)
        env.counters.bump(VSEL)
        return vec.vsplice(a, b, point, V)
    if isinstance(expr, VSplatE):
        value = _eval_s(env, expr.operand)
        env.counters.bump(VSPLAT)
        return vec.vsplat(expr.dtype.wrap(value), expr.dtype, V)
    if isinstance(expr, VBinE):
        a = _eval_v(env, expr.a, i)
        b = _eval_v(env, expr.b, i)
        env.counters.bump(VARITH)
        return vec.vbinop(expr.op, a, b, expr.dtype, V)
    if isinstance(expr, VIotaE):
        if i is None:
            raise MachineError("viota used in a section with no loop counter")
        # Strength-reduced counter vector: one lane add per evaluation.
        env.counters.bump(VARITH)
        dtype = expr.dtype
        B = V // dtype.size
        m = ((i + expr.bias) * dtype.size) // V
        lanes = [dtype.wrap(m * B + lane) for lane in range(B)]
        return vec.from_lanes(lanes, dtype)
    raise MachineError(f"unknown vector expression {type(expr).__name__}")
