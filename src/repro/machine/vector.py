"""Byte-level semantics of the paper's generic data reorganization ops.

These functions define, once, what ``vsplat`` / ``vshiftpair`` /
``vsplice`` and elementwise arithmetic mean on raw vector bytes
(paper Section 2.2).  Both the interpreter and the unit/property tests
use them, so any disagreement with the codegen shows up immediately.
"""

from __future__ import annotations

from repro.errors import MachineError
from repro.ir.types import BinaryOp, DataType


def vsplat(value: int, dtype: DataType, V: int) -> bytes:
    """Replicate a scalar into all ``V / D`` lanes (paper's ``vsplat``)."""
    if V % dtype.size:
        raise MachineError(f"vector length {V} not a multiple of lane size {dtype.size}")
    return dtype.to_bytes(value) * (V // dtype.size)


def vshiftpair(v1: bytes, v2: bytes, shift: int, V: int) -> bytes:
    """Select bytes ``shift .. shift+V-1`` from ``v1 ++ v2``.

    The paper specifies ``0 <= shift < V``; we additionally accept
    ``shift == V`` (select ``v2`` whole) because the runtime right-shift
    amount ``V - ((to - from) mod V)`` degenerates to ``V`` when the
    source and target offsets coincide.  AltiVec ``vec_perm`` handles
    this the same way (permute indices 16..31 select the second input).
    """
    _check_vec(v1, V)
    _check_vec(v2, V)
    if not 0 <= shift <= V:
        raise MachineError(f"vshiftpair shift {shift} outside [0, {V}]")
    pair = v1 + v2
    return pair[shift:shift + V]


def vsplice(v1: bytes, v2: bytes, point: int, V: int) -> bytes:
    """Concatenate the first ``point`` bytes of ``v1`` with the last
    ``V - point`` bytes of ``v2`` (paper's ``vsplice``).

    ``point == 0`` copies ``v2``; ``point == V`` copies ``v1``.
    """
    _check_vec(v1, V)
    _check_vec(v2, V)
    if not 0 <= point <= V:
        raise MachineError(f"vsplice point {point} outside [0, {V}]")
    return v1[:point] + v2[point:]


def vbinop(op: BinaryOp, v1: bytes, v2: bytes, dtype: DataType, V: int) -> bytes:
    """Apply ``op`` lane-wise to two vectors of ``dtype`` elements.

    Each whole vector is decoded with a single ``int.from_bytes`` and
    lanes are extracted by shift-and-mask, instead of slicing and
    re-encoding ``V / D`` byte substrings per call.
    """
    _check_vec(v1, V)
    _check_vec(v2, V)
    whole1 = int.from_bytes(v1, "little")
    whole2 = int.from_bytes(v2, "little")
    bits = dtype.bits
    mask = (1 << bits) - 1
    sign_bit = 1 << (bits - 1)
    signed = dtype.signed
    out = 0
    for k in range(0, 8 * V, bits):
        a = (whole1 >> k) & mask
        b = (whole2 >> k) & mask
        if signed:
            if a & sign_bit:
                a -= mask + 1
            if b & sign_bit:
                b -= mask + 1
        out |= (op.apply(a, b, dtype) & mask) << k
    return out.to_bytes(V, "little")


def lanes(vec: bytes, dtype: DataType) -> list[int]:
    """Decode a vector into its lane values (index 0 = lowest address)."""
    D = dtype.size
    if len(vec) % D:
        raise MachineError(f"{len(vec)}-byte vector not a multiple of lane size {D}")
    return [dtype.from_bytes(vec[k:k + D]) for k in range(0, len(vec), D)]


def from_lanes(values: list[int], dtype: DataType) -> bytes:
    """Encode lane values into vector bytes (inverse of :func:`lanes`)."""
    return b"".join(dtype.to_bytes(v) for v in values)


def _check_vec(vec: bytes, V: int) -> None:
    if len(vec) != V:
        raise MachineError(f"expected a {V}-byte vector, got {len(vec)} bytes")
