"""Dynamic operation counters — the reproduction's "cycle-accurate simulator".

The paper's metric is *operations per datum* (OPD): dynamic operation
count divided by the number of data elements computed, chosen precisely
because it is independent of cycle time / latency / issue width.  We
therefore count every executed operation of the vector IR, bucketed by
category, plus the modelled loop overhead described in ``DESIGN.md``
section 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Vector-unit operation categories.
VLOAD = "vload"
VSTORE = "vstore"
VPERM = "vperm"        # vshiftpair -> vec_perm
VSEL = "vsel"          # vsplice    -> vec_sel
VSPLAT = "vsplat"
VARITH = "varith"
VCOPY = "copy"         # register move (software-pipelining residue)
#: Scalar-unit categories (modelled overhead).
SCALAR = "scalar"      # address computation / induction pointer bumps
BRANCH = "branch"
CALL = "call"
#: Scalar fallback execution (guarded runtime path).
SLOAD = "sload"
SSTORE = "sstore"
SARITH = "sarith"

VECTOR_CATEGORIES = (VLOAD, VSTORE, VPERM, VSEL, VSPLAT, VARITH, VCOPY)
OVERHEAD_CATEGORIES = (SCALAR, BRANCH, CALL)
SCALAR_CATEGORIES = (SLOAD, SSTORE, SARITH)
ALL_CATEGORIES = VECTOR_CATEGORIES + OVERHEAD_CATEGORIES + SCALAR_CATEGORIES


@dataclass
class OpCounters:
    """A bag of per-category dynamic operation counts."""

    counts: dict[str, int] = field(default_factory=dict)

    def bump(self, category: str, amount: int = 1) -> None:
        if category not in ALL_CATEGORIES:
            raise KeyError(f"unknown op category {category!r}")
        self.counts[category] = self.counts.get(category, 0) + amount

    def __getitem__(self, category: str) -> int:
        return self.counts.get(category, 0)

    @property
    def total(self) -> int:
        """All executed operations, vector + overhead + scalar-fallback."""
        return sum(self.counts.values())

    @property
    def vector_total(self) -> int:
        return sum(self.counts.get(c, 0) for c in VECTOR_CATEGORIES)

    @property
    def reorg_total(self) -> int:
        """Data reorganization ops (the shift/splice overhead the paper tracks)."""
        return self[VPERM] + self[VSEL]

    @property
    def memory_total(self) -> int:
        return self[VLOAD] + self[VSTORE]

    def merge(self, other: "OpCounters") -> None:
        for category, count in other.counts.items():
            self.counts[category] = self.counts.get(category, 0) + count

    def as_dict(self) -> dict[str, int]:
        return {c: self.counts.get(c, 0) for c in ALL_CATEGORIES if self.counts.get(c, 0)}

    def __str__(self) -> str:
        parts = ", ".join(f"{c}={n}" for c, n in sorted(self.as_dict().items()))
        return f"OpCounters(total={self.total}, {parts})"
