"""Execution-backend protocols and registries.

Two *pairs* of engines interpret the same inputs:

* **Vector backends** (:class:`ExecutionBackend`) execute a
  :class:`~repro.vir.program.VProgram` — ``bytes`` is the byte-level
  reference interpreter (:mod:`repro.machine.interp`), ``numpy`` the
  batched array backend (:mod:`repro.machine.npbackend`), ``jit`` the
  compile-once kernel backend (:mod:`repro.machine.jit`) that lowers
  each program to a cached fused-NumPy closure, and ``native`` the
  machine-code backend (:mod:`repro.machine.native`) that compiles
  signature kernels with the system C toolchain — preferring the
  vector-extension emitter on capable compilers (true aligned SIMD
  against the 64-byte-aligned :class:`~repro.machine.memory.Memory`
  buffers), silently falling back to the scalar-lane emitter
  elsewhere.
* **Scalar backends** (:class:`ScalarBackend`) execute the original
  :class:`~repro.ir.expr.Loop` as the paper's byte-for-byte reference
  — ``bytes`` is the per-iteration interpreter
  (:func:`repro.machine.scalar.run_scalar`), ``numpy`` the whole-array
  engine (:mod:`repro.machine.npscalar`) that evaluates each
  statement's expression tree over shifted element windows.

In both registries ``"auto"`` resolves to ``numpy`` when available and
falls back to ``bytes`` otherwise, so the package keeps working with no
hard dependency beyond the standard library; the NumPy engines come
from the ``repro[fast]`` extra.

Every engine must produce identical final memory images **and**
identical :class:`~repro.machine.counters.OpCounters` to its ``bytes``
oracle — the cost model counts operations of the *program*, not of the
engine executing it (see ``DESIGN.md`` §5).
``tests/test_differential.py`` enforces this equivalence property over
random synthesized loops on both backend axes.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import MachineError
from repro.ir.expr import Loop
from repro.machine.arrays import ArraySpace
from repro.machine.interp import VectorRunResult, run_vector
from repro.machine.memory import Memory
from repro.machine.scalar import RunBindings, ScalarRunResult, run_scalar
from repro.machine.trace import Trace
from repro.vir.program import VProgram

#: Names accepted wherever a backend is selected (CLI, verify, bench).
BACKEND_CHOICES = ("auto", "bytes", "numpy", "jit", "native")
#: Names accepted wherever a scalar-reference engine is selected.
SCALAR_BACKEND_CHOICES = ("auto", "bytes", "numpy")


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can execute a vector program on a machine state."""

    name: str

    def run(
        self,
        program: VProgram,
        space: ArraySpace,
        mem: Memory,
        bindings: RunBindings | None = None,
        trace: Trace | None = None,
    ) -> VectorRunResult:
        """Execute ``program`` on ``mem``; return dynamic operation counts."""
        ...  # pragma: no cover - protocol


class BytesBackend:
    """The byte-level reference interpreter, wrapped as a backend."""

    name = "bytes"

    def run(
        self,
        program: VProgram,
        space: ArraySpace,
        mem: Memory,
        bindings: RunBindings | None = None,
        trace: Trace | None = None,
    ) -> VectorRunResult:
        return run_vector(program, space, mem, bindings, trace)


def numpy_available() -> bool:
    """True when the optional ``numpy`` dependency can be imported."""
    try:
        import numpy  # noqa: F401
    except Exception:  # pragma: no cover - import failure path
        return False
    return True


def default_backend_name() -> str:
    """The backend ``"auto"`` resolves to on this interpreter."""
    return "numpy" if numpy_available() else "bytes"


def get_backend(name: str = "auto") -> ExecutionBackend:
    """Resolve a backend name to an engine instance.

    ``"auto"`` prefers the NumPy backend and silently falls back to the
    byte interpreter when NumPy is unavailable; asking for ``"numpy"``
    explicitly raises instead, so a user who forced the fast path finds
    out it is missing.
    """
    if name == "auto":
        name = default_backend_name()
    if name == "bytes":
        return BytesBackend()
    if name == "numpy":
        if not numpy_available():
            raise MachineError(
                "the numpy execution backend needs numpy installed "
                "(pip install 'repro[fast]'); use backend='bytes' or 'auto'"
            )
        from repro.machine.npbackend import NumpyBackend

        return NumpyBackend()
    if name == "jit":
        if not numpy_available():
            raise MachineError(
                "the jit execution backend needs numpy installed "
                "(pip install 'repro[fast]'); use backend='bytes' or 'auto'"
            )
        from repro.machine.jit import JitBackend

        return JitBackend()
    if name == "native":
        if not numpy_available():
            raise MachineError(
                "the native execution backend needs numpy installed "
                "(pip install 'repro[fast]'); use backend='bytes' or 'auto'"
            )
        # No compiler requirement here: a missing toolchain is a
        # run-time degradation (native → jit with one warning), not a
        # configuration error — hosts without cc still accept the flag.
        from repro.machine.native import NativeBackend

        return NativeBackend()
    raise MachineError(
        f"unknown execution backend {name!r}; choose from {BACKEND_CHOICES}"
    )


# ---------------------------------------------------------------------------
# Backend degradation chain
# ---------------------------------------------------------------------------
#
# A sweep config must never die because one engine tier misbehaved:
# the bytes interpreters are the semantic oracles and are always able
# to produce the answer the faster tiers were asked for.  The resilient
# wrappers run the requested tier and, on *any* failure, restore the
# pre-attempt memory image and transparently re-execute on the next
# tier down, recording a structured degradation on the result
# (``fallback = {tier, phase, reason, failed}``).  Errors on the last
# tier propagate unchanged — there is nothing left to degrade to, and
# a genuine program error (bad shift amount, unbound register) raises
# the same exception from the oracle that the fast tier raised.
#
# Hot-swap interplay: in asynchronous compile mode (REPRO_NATIVE_ASYNC,
# repro.machine.compilequeue) the native tier never *fails* on a cold
# kernel — acquisition returns a jit-delegating kernel immediately and
# the compiled machine code is swapped in mid-sweep when the background
# queue delivers it.  That swap happens inside the native tier, below
# this chain: no degradation is recorded (the run never failed), and a
# background compile failure just leaves the kernel delegating to jit
# forever.  The chain still matters on the synchronous path (cc
# failures, compiler-less hosts, REPRO_FAULT=compile:raise) — and in
# async mode an injected compile fault fires inside the queue worker,
# so figures stay byte-identical while the degradation simply does not
# need recording.

#: Ordered fallback tiers per requested vector backend.
DEGRADATION_CHAIN: dict[str, tuple[str, ...]] = {
    "native": ("native", "jit", "numpy", "bytes"),
    "jit": ("jit", "numpy", "bytes"),
    "numpy": ("numpy", "bytes"),
    "bytes": ("bytes",),
}

#: Ordered fallback tiers per requested scalar-reference backend.
SCALAR_DEGRADATION_CHAIN: dict[str, tuple[str, ...]] = {
    "numpy": ("numpy", "bytes"),
    "bytes": ("bytes",),
}


def _failure_phase(exc: BaseException) -> str:
    """Which pipeline phase an engine failure belongs to."""
    phase = getattr(exc, "phase", None)
    if isinstance(phase, str):
        return phase
    if isinstance(exc, SyntaxError) or type(exc).__name__ == "CodegenError":
        return "compile"
    return "execute"


def _degradation(tier: str, first_exc: BaseException,
                 failed: list[str]) -> dict:
    return {
        "tier": tier,
        "phase": _failure_phase(first_exc),
        "reason": f"{type(first_exc).__name__}: {first_exc}",
        "failed": tuple(failed),
    }


class _ResilientChain:
    """Shared tier-walking logic for both backend axes."""

    def __init__(self, tiers: tuple[str, ...], resolve):
        self.tiers = tiers
        self._resolve = resolve  # tier name -> engine (may raise)
        # The head tier resolves eagerly so an explicitly requested
        # but unavailable engine still raises the friendly error.
        self._engines: dict[str, object] = {tiers[0]: resolve(tiers[0])}

    @property
    def primary(self):
        return self._engines[self.tiers[0]]

    def engine_for(self, tier: str):
        engine = self._engines.get(tier)
        if engine is None:
            engine = self._engines[tier] = self._resolve(tier)
        return engine

    def run_degrading(self, mem: Memory, attempt) -> tuple[object, dict | None]:
        """Call ``attempt(engine)`` down the chain; restore ``mem``
        between tiers.  Returns ``(result, degradation-or-None)``."""
        first_exc: BaseException | None = None
        failed: list[str] = []
        snapshot = mem.snapshot() if len(self.tiers) > 1 else None
        for pos, tier in enumerate(self.tiers):
            last = pos == len(self.tiers) - 1
            try:
                engine = self.engine_for(tier)
            except Exception as exc:
                # Tier unavailable on this interpreter (no numpy).
                if first_exc is None:
                    first_exc = exc
                failed.append(tier)
                if last:
                    raise
                continue
            try:
                result = attempt(engine)
            except Exception as exc:
                if last:
                    raise
                if first_exc is None:
                    first_exc = exc
                failed.append(tier)
                mem.raw()[:] = snapshot
                continue
            if failed:
                return result, _degradation(tier, first_exc, failed)
            return result, None
        raise MachineError("empty degradation chain")  # pragma: no cover


class ResilientBackend:
    """An :class:`ExecutionBackend` that degrades down a tier chain."""

    def __init__(self, name: str = "auto"):
        if name == "auto":
            name = default_backend_name()
        tiers = DEGRADATION_CHAIN.get(name)
        if tiers is None:
            raise MachineError(
                f"unknown execution backend {name!r}; "
                f"choose from {BACKEND_CHOICES}"
            )
        self._chain = _ResilientChain(tiers, get_backend)
        self.name = name

    def run(
        self,
        program: VProgram,
        space: ArraySpace,
        mem: Memory,
        bindings: RunBindings | None = None,
        trace: Trace | None = None,
    ) -> VectorRunResult:
        def attempt(engine):
            return engine.run(program, space, mem, bindings, trace)

        result, degradation = self._chain.run_degrading(mem, attempt)
        if degradation is not None:
            result.fallback = degradation
        return result

    def run_batch(self, runs: list) -> list:
        """Batched execution with whole-batch degradation.

        The primary tier's native batch is tried first; any failure
        restores every run's memory and re-executes config by config
        through :meth:`run`, so one poisoned config degrades alone
        instead of sinking its signature class.  Leaving the batch
        path is never silent: every result of a class that ran
        config-by-config carries a structured ``batch_fallback``
        record — whether the primary tier has no batch execution at
        all (numpy/bytes heads) or its batched call failed — which
        the ``--profile`` resilience section aggregates.
        """
        primary = self._chain.primary
        tier = self._chain.tiers[0]
        batch = getattr(primary, "run_batch", None)
        batch_fallback: dict | None = None
        if batch is None:
            batch_fallback = {"tier": tier, "phase": "batch",
                              "reason": "tier has no batch execution"}
        elif len(self._chain.tiers) == 1:
            return batch(runs)
        else:
            snapshots = [mem.snapshot() for _, _, mem, _ in runs]
            try:
                return batch(runs)
            except Exception as exc:
                for (_, _, mem, _), snap in zip(runs, snapshots):
                    mem.raw()[:] = snap
                batch_fallback = {
                    "tier": tier, "phase": "batch",
                    "reason": f"{type(exc).__name__}: {exc}",
                }
        results = [self.run(program, space, mem, bindings)
                   for program, space, mem, bindings in runs]
        for result in results:
            result.batch_fallback = batch_fallback
        return results


class ResilientScalarBackend:
    """A :class:`ScalarBackend` that degrades ``numpy`` to ``bytes``."""

    def __init__(self, name: str = "auto"):
        if name == "auto":
            name = default_backend_name()
        tiers = SCALAR_DEGRADATION_CHAIN.get(name)
        if tiers is None:
            raise MachineError(
                f"unknown scalar backend {name!r}; "
                f"choose from {SCALAR_BACKEND_CHOICES}"
            )
        self._chain = _ResilientChain(tiers, get_scalar_backend)
        self.name = name

    def run(
        self,
        loop: Loop,
        space: ArraySpace,
        mem: Memory,
        bindings: RunBindings | None = None,
    ) -> ScalarRunResult:
        def attempt(engine):
            return engine.run(loop, space, mem, bindings)

        result, degradation = self._chain.run_degrading(mem, attempt)
        if degradation is not None:
            result.fallback = degradation
        return result


def get_resilient_backend(name: str = "auto") -> ExecutionBackend:
    """A vector engine that survives tier failures by degrading.

    Requesting an explicitly unavailable head tier (``numpy``/``jit``
    without NumPy installed) still raises the friendly install hint —
    degradation covers *run-time* tier failures, not misconfiguration
    the user asked for by name.
    """
    return ResilientBackend(name)


def get_resilient_scalar_backend(name: str = "auto") -> ScalarBackend:
    """A scalar-reference engine that degrades ``numpy`` to ``bytes``."""
    return ResilientScalarBackend(name)


def run_vector_batch(engine: ExecutionBackend, runs: list) -> list:
    """Run ``(program, space, mem, bindings)`` tuples as one batch.

    Engines with a native ``run_batch`` (the jit engine executes whole
    signature classes in one config-batched kernel call) get the entire
    list; every other engine degrades to per-run :meth:`run` calls with
    identical semantics, so callers can batch against any backend and
    the differential tests can compare batch results across the whole
    registry.  Results come back in input order.
    """
    native = getattr(engine, "run_batch", None)
    if native is not None:
        return native(runs)
    return [engine.run(program, space, mem, bindings)
            for program, space, mem, bindings in runs]


def jit_compile_stats() -> dict:
    """A snapshot of the compiled engines' compile/cache counters.

    Import-free on purpose: when a compiled tier's module was never
    loaded there is nothing to report and the (possibly numpy-less)
    interpreter must not be forced to import it.  The jit engine's
    counters appear under their own names; the native engine's are
    folded in under a ``native_`` prefix (``native_cc_s``,
    ``native_memory_hits``, and since v4 the emitter-mode/probe and
    batch-attribution counters ``native_mode_simd``,
    ``native_simd_probes``, ``native_batch_marshal_us``, …) so one
    snapshot covers both tiers.
    """
    import sys

    module = sys.modules.get("repro.machine.jit")
    stats = dict(module.STATS) if module is not None else {}
    native = sys.modules.get("repro.machine.native")
    if native is not None:
        for stat, value in native.STATS.items():
            stats[f"native_{stat}"] = value
    return stats


# ---------------------------------------------------------------------------
# Scalar-reference engines
# ---------------------------------------------------------------------------

@runtime_checkable
class ScalarBackend(Protocol):
    """Anything that can execute the original scalar loop on a memory."""

    name: str

    def run(
        self,
        loop: Loop,
        space: ArraySpace,
        mem: Memory,
        bindings: RunBindings | None = None,
    ) -> ScalarRunResult:
        """Execute ``loop`` on ``mem``; return reference operation counts."""
        ...  # pragma: no cover - protocol


class BytesScalarBackend:
    """The per-iteration scalar reference, wrapped as a backend."""

    name = "bytes"

    def run(
        self,
        loop: Loop,
        space: ArraySpace,
        mem: Memory,
        bindings: RunBindings | None = None,
    ) -> ScalarRunResult:
        return run_scalar(loop, space, mem, bindings)


def get_scalar_backend(name: str = "auto") -> ScalarBackend:
    """Resolve a scalar-reference engine name to an engine instance.

    Mirrors :func:`get_backend`: ``"auto"`` prefers the whole-array
    NumPy engine and silently falls back to the per-iteration
    interpreter when NumPy is unavailable; asking for ``"numpy"``
    explicitly raises instead.
    """
    if name == "auto":
        name = default_backend_name()
    if name == "bytes":
        return BytesScalarBackend()
    if name == "numpy":
        if not numpy_available():
            raise MachineError(
                "the numpy scalar backend needs numpy installed "
                "(pip install 'repro[fast]'); use scalar_backend='bytes' "
                "or 'auto'"
            )
        from repro.machine.npscalar import NumpyScalarBackend

        return NumpyScalarBackend()
    raise MachineError(
        f"unknown scalar backend {name!r}; choose from {SCALAR_BACKEND_CHOICES}"
    )
