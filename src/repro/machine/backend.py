"""Execution-backend protocol and registry.

Two engines interpret the same :class:`~repro.vir.program.VProgram`:

* ``bytes`` — the byte-level reference interpreter
  (:mod:`repro.machine.interp`).  Pure Python, zero dependencies, and
  the semantic oracle every other engine must match byte-for-byte.
* ``numpy`` — the batched array backend
  (:mod:`repro.machine.npbackend`), which executes the steady-state
  loop as whole-array NumPy operations.  Orders of magnitude faster on
  long trip counts, and only available when ``numpy`` is installed
  (the ``repro[fast]`` extra).

``"auto"`` resolves to ``numpy`` when available and falls back to
``bytes`` otherwise, so the package keeps working with no hard
dependency beyond the standard library.

Both engines must produce identical final memory images **and**
identical :class:`~repro.machine.counters.OpCounters` — the cost model
counts operations of the *program*, not of the engine executing it
(see ``DESIGN.md`` §5).  ``tests/test_differential.py`` enforces this
equivalence property over random synthesized loops.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import MachineError
from repro.machine.arrays import ArraySpace
from repro.machine.interp import VectorRunResult, run_vector
from repro.machine.memory import Memory
from repro.machine.scalar import RunBindings
from repro.machine.trace import Trace
from repro.vir.program import VProgram

#: Names accepted wherever a backend is selected (CLI, verify, bench).
BACKEND_CHOICES = ("auto", "bytes", "numpy")


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can execute a vector program on a machine state."""

    name: str

    def run(
        self,
        program: VProgram,
        space: ArraySpace,
        mem: Memory,
        bindings: RunBindings | None = None,
        trace: Trace | None = None,
    ) -> VectorRunResult:
        """Execute ``program`` on ``mem``; return dynamic operation counts."""
        ...  # pragma: no cover - protocol


class BytesBackend:
    """The byte-level reference interpreter, wrapped as a backend."""

    name = "bytes"

    def run(
        self,
        program: VProgram,
        space: ArraySpace,
        mem: Memory,
        bindings: RunBindings | None = None,
        trace: Trace | None = None,
    ) -> VectorRunResult:
        return run_vector(program, space, mem, bindings, trace)


def numpy_available() -> bool:
    """True when the optional ``numpy`` dependency can be imported."""
    try:
        import numpy  # noqa: F401
    except Exception:  # pragma: no cover - import failure path
        return False
    return True


def default_backend_name() -> str:
    """The backend ``"auto"`` resolves to on this interpreter."""
    return "numpy" if numpy_available() else "bytes"


def get_backend(name: str = "auto") -> ExecutionBackend:
    """Resolve a backend name to an engine instance.

    ``"auto"`` prefers the NumPy backend and silently falls back to the
    byte interpreter when NumPy is unavailable; asking for ``"numpy"``
    explicitly raises instead, so a user who forced the fast path finds
    out it is missing.
    """
    if name == "auto":
        name = default_backend_name()
    if name == "bytes":
        return BytesBackend()
    if name == "numpy":
        if not numpy_available():
            raise MachineError(
                "the numpy execution backend needs numpy installed "
                "(pip install 'repro[fast]'); use backend='bytes' or 'auto'"
            )
        from repro.machine.npbackend import NumpyBackend

        return NumpyBackend()
    raise MachineError(
        f"unknown execution backend {name!r}; choose from {BACKEND_CHOICES}"
    )
