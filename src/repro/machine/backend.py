"""Execution-backend protocols and registries.

Two *pairs* of engines interpret the same inputs:

* **Vector backends** (:class:`ExecutionBackend`) execute a
  :class:`~repro.vir.program.VProgram` — ``bytes`` is the byte-level
  reference interpreter (:mod:`repro.machine.interp`), ``numpy`` the
  batched array backend (:mod:`repro.machine.npbackend`), ``jit`` the
  compile-once kernel backend (:mod:`repro.machine.jit`) that lowers
  each program to a cached fused-NumPy closure.
* **Scalar backends** (:class:`ScalarBackend`) execute the original
  :class:`~repro.ir.expr.Loop` as the paper's byte-for-byte reference
  — ``bytes`` is the per-iteration interpreter
  (:func:`repro.machine.scalar.run_scalar`), ``numpy`` the whole-array
  engine (:mod:`repro.machine.npscalar`) that evaluates each
  statement's expression tree over shifted element windows.

In both registries ``"auto"`` resolves to ``numpy`` when available and
falls back to ``bytes`` otherwise, so the package keeps working with no
hard dependency beyond the standard library; the NumPy engines come
from the ``repro[fast]`` extra.

Every engine must produce identical final memory images **and**
identical :class:`~repro.machine.counters.OpCounters` to its ``bytes``
oracle — the cost model counts operations of the *program*, not of the
engine executing it (see ``DESIGN.md`` §5).
``tests/test_differential.py`` enforces this equivalence property over
random synthesized loops on both backend axes.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import MachineError
from repro.ir.expr import Loop
from repro.machine.arrays import ArraySpace
from repro.machine.interp import VectorRunResult, run_vector
from repro.machine.memory import Memory
from repro.machine.scalar import RunBindings, ScalarRunResult, run_scalar
from repro.machine.trace import Trace
from repro.vir.program import VProgram

#: Names accepted wherever a backend is selected (CLI, verify, bench).
BACKEND_CHOICES = ("auto", "bytes", "numpy", "jit")
#: Names accepted wherever a scalar-reference engine is selected.
SCALAR_BACKEND_CHOICES = ("auto", "bytes", "numpy")


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can execute a vector program on a machine state."""

    name: str

    def run(
        self,
        program: VProgram,
        space: ArraySpace,
        mem: Memory,
        bindings: RunBindings | None = None,
        trace: Trace | None = None,
    ) -> VectorRunResult:
        """Execute ``program`` on ``mem``; return dynamic operation counts."""
        ...  # pragma: no cover - protocol


class BytesBackend:
    """The byte-level reference interpreter, wrapped as a backend."""

    name = "bytes"

    def run(
        self,
        program: VProgram,
        space: ArraySpace,
        mem: Memory,
        bindings: RunBindings | None = None,
        trace: Trace | None = None,
    ) -> VectorRunResult:
        return run_vector(program, space, mem, bindings, trace)


def numpy_available() -> bool:
    """True when the optional ``numpy`` dependency can be imported."""
    try:
        import numpy  # noqa: F401
    except Exception:  # pragma: no cover - import failure path
        return False
    return True


def default_backend_name() -> str:
    """The backend ``"auto"`` resolves to on this interpreter."""
    return "numpy" if numpy_available() else "bytes"


def get_backend(name: str = "auto") -> ExecutionBackend:
    """Resolve a backend name to an engine instance.

    ``"auto"`` prefers the NumPy backend and silently falls back to the
    byte interpreter when NumPy is unavailable; asking for ``"numpy"``
    explicitly raises instead, so a user who forced the fast path finds
    out it is missing.
    """
    if name == "auto":
        name = default_backend_name()
    if name == "bytes":
        return BytesBackend()
    if name == "numpy":
        if not numpy_available():
            raise MachineError(
                "the numpy execution backend needs numpy installed "
                "(pip install 'repro[fast]'); use backend='bytes' or 'auto'"
            )
        from repro.machine.npbackend import NumpyBackend

        return NumpyBackend()
    if name == "jit":
        if not numpy_available():
            raise MachineError(
                "the jit execution backend needs numpy installed "
                "(pip install 'repro[fast]'); use backend='bytes' or 'auto'"
            )
        from repro.machine.jit import JitBackend

        return JitBackend()
    raise MachineError(
        f"unknown execution backend {name!r}; choose from {BACKEND_CHOICES}"
    )


def run_vector_batch(engine: ExecutionBackend, runs: list) -> list:
    """Run ``(program, space, mem, bindings)`` tuples as one batch.

    Engines with a native ``run_batch`` (the jit engine executes whole
    signature classes in one config-batched kernel call) get the entire
    list; every other engine degrades to per-run :meth:`run` calls with
    identical semantics, so callers can batch against any backend and
    the differential tests can compare batch results across the whole
    registry.  Results come back in input order.
    """
    native = getattr(engine, "run_batch", None)
    if native is not None:
        return native(runs)
    return [engine.run(program, space, mem, bindings)
            for program, space, mem, bindings in runs]


def jit_compile_stats() -> dict:
    """A snapshot of the jit engine's compile/cache counters.

    Import-free on purpose: when the jit module was never loaded there
    is nothing to report and the (possibly numpy-less) interpreter must
    not be forced to import it, so this returns ``{}``.
    """
    import sys

    module = sys.modules.get("repro.machine.jit")
    return dict(module.STATS) if module is not None else {}


# ---------------------------------------------------------------------------
# Scalar-reference engines
# ---------------------------------------------------------------------------

@runtime_checkable
class ScalarBackend(Protocol):
    """Anything that can execute the original scalar loop on a memory."""

    name: str

    def run(
        self,
        loop: Loop,
        space: ArraySpace,
        mem: Memory,
        bindings: RunBindings | None = None,
    ) -> ScalarRunResult:
        """Execute ``loop`` on ``mem``; return reference operation counts."""
        ...  # pragma: no cover - protocol


class BytesScalarBackend:
    """The per-iteration scalar reference, wrapped as a backend."""

    name = "bytes"

    def run(
        self,
        loop: Loop,
        space: ArraySpace,
        mem: Memory,
        bindings: RunBindings | None = None,
    ) -> ScalarRunResult:
        return run_scalar(loop, space, mem, bindings)


def get_scalar_backend(name: str = "auto") -> ScalarBackend:
    """Resolve a scalar-reference engine name to an engine instance.

    Mirrors :func:`get_backend`: ``"auto"`` prefers the whole-array
    NumPy engine and silently falls back to the per-iteration
    interpreter when NumPy is unavailable; asking for ``"numpy"``
    explicitly raises instead.
    """
    if name == "auto":
        name = default_backend_name()
    if name == "bytes":
        return BytesScalarBackend()
    if name == "numpy":
        if not numpy_available():
            raise MachineError(
                "the numpy scalar backend needs numpy installed "
                "(pip install 'repro[fast]'); use scalar_backend='bytes' "
                "or 'auto'"
            )
        from repro.machine.npscalar import NumpyScalarBackend

        return NumpyScalarBackend()
    raise MachineError(
        f"unknown scalar backend {name!r}; choose from {SCALAR_BACKEND_CHOICES}"
    )
