"""Execution tracing for the virtual SIMD machine.

A :class:`Trace` records every dynamic memory operation (kind, aligned
address) and reorganization op the interpreter executes.  Two uses:

* **directly checking the paper's no-reload guarantee** — "our code
  generation scheme guarantees to never load the same data associated
  with a single static access twice": with reuse enabled, the steady
  state must not load any aligned vector address twice
  (:func:`steady_reload_count`);
* debugging — :func:`format_trace` prints the op-by-op behaviour of a
  program on real addresses.

Tracing is opt-in (``run_vector(..., trace=Trace())``) and adds no
cost otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections import Counter


@dataclass(frozen=True)
class TraceEvent:
    phase: str        # "preheader" | section label | "steady" | "bottom"
    kind: str         # "vload" | "vstore" | "vperm" | "vsel" | ...
    address: int | None = None
    counter: int | None = None  # loop counter i, if any
    site: tuple[str, int] | None = None  # static (array, elem) of the access


@dataclass
class Trace:
    """An append-only record of executed operations."""

    events: list[TraceEvent] = field(default_factory=list)
    _phase: str = "preheader"

    def set_phase(self, phase: str) -> None:
        self._phase = phase

    def record(self, kind: str, address: int | None = None,
               counter: int | None = None,
               site: tuple[str, int] | None = None) -> None:
        self.events.append(TraceEvent(self._phase, kind, address, counter, site))

    # -- queries -----------------------------------------------------------

    def loads(self, phase: str | None = None) -> list[TraceEvent]:
        return [e for e in self.events
                if e.kind == "vload" and (phase is None or e.phase == phase)]

    def stores(self, phase: str | None = None) -> list[TraceEvent]:
        return [e for e in self.events
                if e.kind == "vstore" and (phase is None or e.phase == phase)]

    def steady_reload_count(self) -> int:
        """Extra steady-state loads of an aligned address *within one
        static access* — 0 when the paper's no-reload guarantee ("never
        load the same data associated with a single static access
        twice") holds."""
        counts = Counter((e.site, e.address) for e in self.loads("steady"))
        return sum(n - 1 for n in counts.values() if n > 1)

    def steady_cross_site_reload_count(self) -> int:
        """Extra steady loads of an aligned address across *all* static
        accesses — a stronger metric than the paper's guarantee; the
        predictive-commoning pass can drive this to 0 where distinct
        accesses share vectors."""
        counts = Counter(e.address for e in self.loads("steady"))
        return sum(n - 1 for n in counts.values() if n > 1)

    def store_addresses(self) -> list[int]:
        return [e.address for e in self.stores()]

    def format_trace(self, limit: int = 60) -> str:
        lines = []
        for event in self.events[:limit]:
            where = f"i={event.counter}" if event.counter is not None else ""
            addr = f"@{event.address}" if event.address is not None else ""
            lines.append(f"[{event.phase:>12s}] {event.kind:6s} {addr:8s} {where}")
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
