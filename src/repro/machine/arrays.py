"""Array placement and element-level access on the virtual machine.

:class:`ArraySpace` places each :class:`~repro.ir.expr.ArrayDecl` in a
single :class:`~repro.machine.memory.Memory` at a base address that

* honours the declared compile-time residue ``base mod V`` (or a
  caller/RNG-chosen residue for runtime-aligned arrays), and
* is surrounded by guard vectors, so that the truncated vector loads a
  stream shift issues one vector before/after the accessed stream stay
  in bounds — the virtual equivalent of "the access stays in the page".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import MachineError
from repro.ir.expr import ArrayDecl
from repro.machine.memory import Memory

#: Number of guard vectors placed before and after each array.
GUARD_VECTORS = 4


@dataclass(frozen=True)
class BoundArray:
    """An array bound to a concrete base address in a memory."""

    decl: ArrayDecl
    base: int

    @property
    def name(self) -> str:
        return self.decl.name

    @property
    def size_bytes(self) -> int:
        return self.decl.length * self.decl.dtype.size

    def addr(self, index: int) -> int:
        """Byte address of element ``index`` (no bounds check; guards exist)."""
        return self.base + index * self.decl.dtype.size

    def load(self, mem: Memory, index: int) -> int:
        self._check(index)
        return self.decl.dtype.from_bytes(mem.read(self.addr(index), self.decl.dtype.size))

    def store(self, mem: Memory, index: int, value: int) -> None:
        self._check(index)
        mem.write(self.addr(index), self.decl.dtype.to_bytes(value))

    def read_all(self, mem: Memory) -> list[int]:
        """All element values, for verification and examples."""
        dtype = self.decl.dtype
        raw = mem.read(self.base, self.size_bytes)
        return [
            dtype.from_bytes(raw[k * dtype.size:(k + 1) * dtype.size])
            for k in range(self.decl.length)
        ]

    def write_all(self, mem: Memory, values: Iterable[int]) -> None:
        values = list(values)
        if len(values) != self.decl.length:
            raise MachineError(
                f"array {self.name!r}: expected {self.decl.length} values, got {len(values)}"
            )
        dtype = self.decl.dtype
        mem.write(self.base, b"".join(dtype.to_bytes(v) for v in values))

    def _check(self, index: int) -> None:
        if index < 0 or index >= self.decl.length:
            raise MachineError(
                f"element {index} outside array {self.name!r} of length {self.decl.length}"
            )


class ArraySpace:
    """Allocates arrays into one memory with alignment control and guards."""

    def __init__(self, V: int = 16):
        if V & (V - 1) or V <= 0:
            raise MachineError(f"vector length must be a power of two, got {V}")
        self.V = V
        self._bound: dict[str, BoundArray] = {}
        self._runtime_residues: dict[str, int] = {}
        self._cursor = V  # leave address 0 unused to catch stray null derefs

    def place(self, decl: ArrayDecl, runtime_residue: int | None = None) -> None:
        """Reserve space for ``decl``.

        ``runtime_residue`` chooses the actual ``base mod V`` for
        runtime-aligned arrays (the simdizer never sees it); for
        compile-time-aligned arrays it must be omitted.
        """
        if decl.name in self._bound:
            raise MachineError(f"array {decl.name!r} placed twice")
        if decl.align is not None:
            if runtime_residue is not None:
                raise MachineError(
                    f"array {decl.name!r} has compile-time alignment; "
                    "runtime_residue is only for runtime-aligned arrays"
                )
            residue = decl.align % self.V
        else:
            residue = 0 if runtime_residue is None else runtime_residue % self.V
            if residue % decl.dtype.size != 0:
                raise MachineError(
                    f"array {decl.name!r}: runtime residue {residue} violates "
                    f"natural alignment to {decl.dtype.size}"
                )
        start = self._cursor + GUARD_VECTORS * self.V
        base = start + ((residue - start) % self.V)
        end = base + decl.length * decl.dtype.size
        self._cursor = end + GUARD_VECTORS * self.V
        self._bound[decl.name] = BoundArray(decl, base)
        self._runtime_residues[decl.name] = residue

    def place_all(self, decls: Iterable[ArrayDecl], runtime_residues: Mapping[str, int] | None = None) -> None:
        residues = runtime_residues or {}
        for decl in decls:
            self.place(decl, residues.get(decl.name) if decl.runtime_aligned else None)

    def make_memory(self, fill: int = 0xCD) -> Memory:
        """Create a memory large enough for everything placed so far."""
        return Memory(self._cursor + GUARD_VECTORS * self.V, fill=fill)

    def __getitem__(self, name: str) -> BoundArray:
        try:
            return self._bound[name]
        except KeyError:
            raise MachineError(f"array {name!r} was never placed") from None

    def __contains__(self, name: str) -> bool:
        return name in self._bound

    def arrays(self) -> list[BoundArray]:
        return list(self._bound.values())

    def bases(self) -> dict[str, int]:
        """Array name -> concrete base address (the runtime symbol table)."""
        return {name: arr.base for name, arr in self._bound.items()}
