"""Batched, asynchronous compile pipeline for the native tier.

:mod:`repro.machine.native` compiles one kernel per structural
signature; PR 6 paid one ``cc -O3 -shared`` subprocess per kernel, so
a cold 24-signature sweep spent ~5.4 s inside the toolchain.  This
module amortizes that wall three ways:

* **Multi-kernel translation units.**  :func:`compile_requests` groups
  pending kernels by ``(V, lane dtype)`` — the portable helper block is
  fixed-name and dtype-parameterized, so kernels sharing the pair live
  behind one prelude — writes one ``.c`` per group, and feeds *all*
  groups to a **single** ``cc`` invocation producing one ``.so`` that
  exports every ``simdal_steady_<digest>`` symbol.  Per-signature
  artifact groups stay individually cached and evictable: the shared
  object is copied under each signature's digest stem
  (:meth:`repro.cache.DiskCache.put_artifact_file`), so evicting or
  quarantining one signature never disturbs its batch-mates.
* **Precompile-ahead.**  :func:`precompile` lets the sweep runners
  collect a campaign's signature classes up front and compile them as
  one batch *before* workers fork, so forked workers find warm disk
  entries instead of redoing identical compiles.
* **An asynchronous background queue.**  With ``REPRO_NATIVE_ASYNC=1``
  (or :func:`set_async_compile`), kernel acquisition never blocks on
  the compiler: it returns a jit-delegating kernel immediately, queues
  the compile on a daemon thread (in-flight dedup keyed by signature),
  and the worker *hot-swaps* the compiled function into the live
  kernel object the moment it lands.  Queue failures are silent — the
  kernel simply keeps delegating to jit — so injected or real cc
  failures never reach the run.

Failure isolation: a batched ``cc`` failure with more than one kernel
recompiles each request as a singleton, so one bad unit cannot poison
its batch-mates.  Timings are returned to the caller, which accounts
them under ``cc_s``/``load_s`` (foreground) or ``async_cc_s``/
``async_load_s`` (background) — the async keys are deliberately
invisible to the profile's phase re-attribution, because background
compiler seconds overlap run time instead of extending it.
"""

from __future__ import annotations

import atexit
import ctypes
import hashlib
import itertools
import os
import signal
import subprocess
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.cache import get_cache
from repro.errors import FaultInjected
from repro.faults import fault as _fault


def _nat():
    # native imports this module at its top; importing back lazily
    # breaks the cycle (native is always fully initialized by the time
    # any pipeline function runs).
    from repro.machine import native

    return native


# ---------------------------------------------------------------------------
# Env knobs
# ---------------------------------------------------------------------------

_ASYNC_OVERRIDE: bool | None = None


def async_enabled() -> bool:
    """True when kernel compiles run on the background queue.

    ``REPRO_NATIVE_ASYNC=1`` in the environment, or a process-local
    :func:`set_async_compile` override (the CLI maps ``--async-compile``
    onto it).
    """
    if _ASYNC_OVERRIDE is not None:
        return _ASYNC_OVERRIDE
    return os.environ.get("REPRO_NATIVE_ASYNC", "") not in ("", "0")


def set_async_compile(value: bool | None) -> None:
    """Force async compilation on/off for this process (None = env)."""
    global _ASYNC_OVERRIDE
    _ASYNC_OVERRIDE = value


def precompile_enabled() -> bool:
    """False only under ``REPRO_NATIVE_PRECOMPILE=0`` (CI uses it to
    force the per-kernel cold path for byte-parity comparison)."""
    return os.environ.get("REPRO_NATIVE_PRECOMPILE", "1") != "0"


# ---------------------------------------------------------------------------
# Batched translation units
# ---------------------------------------------------------------------------

#: Monotonic suffix for compiled shared objects (see compile_requests).
_SO_SEQ = itertools.count()


def _run_cc(argv):
    """Run one ``cc`` invocation with a wall-clock budget.

    The subprocess gets its own session so a hang (a wedged linker, an
    injected ``compile:timeout``) can be killed as a whole process
    group — ``cc`` is a driver that forks cc1/as/ld children, and
    killing only the driver would leak them.  Returns a completed-
    process-shaped object; on timeout ``returncode`` is None and
    ``stderr`` carries the budget, so callers charge the batch exactly
    like any other nonzero exit.
    """
    native = _nat()
    budget = native.cc_timeout()
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        start_new_session=True,
    )
    try:
        stdout, stderr = proc.communicate(timeout=budget)
    except subprocess.TimeoutExpired:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            proc.kill()
        proc.wait()
        native.STATS["cc_timeouts"] += 1
        return subprocess.CompletedProcess(
            argv, None, "",
            f"cc timed out after {budget:g}s (REPRO_CC_TIMEOUT)")
    return subprocess.CompletedProcess(argv, proc.returncode, stdout, stderr)


@dataclass
class CompileRequest:
    """One signature kernel awaiting compilation.

    Built by :func:`repro.machine.native.build_request`; carries
    everything the pipeline needs so compilation itself never touches
    the program again (the async worker must not share VProgram walks
    with the foreground).
    """

    signature: str      # structural signature (cache identity)
    key: str            # versioned disk-cache key
    symbol: str         # simdal_steady_<digest> exported by the TU
    V: int              # vector width — TU grouping axis
    lane: str           # dtype name — TU grouping axis
    kernel_src: str     # the kernel function body (C)
    prelude: str        # kernel_unit_prelude(V, dtype)
    meta: object        # _NativeMeta (source/so_sha256 filled on success)
    jk: object          # jit._Kernel (fallback + spec)
    unit_source: str = field(default="", compare=False)


def compile_requests(requests, disk):
    """Compile ``requests`` as batched TUs behind one ``cc`` invocation.

    Returns ``(loaded, failures, cc_s, load_s)`` where ``loaded`` maps
    signature → ``(ctypes function, meta)`` and ``failures`` maps
    signature → reason.  On a batched compiler failure with more than
    one request, every request is retried as a singleton so the one
    broken unit is isolated and its batch-mates still land.  Artifacts
    (TU ``.c`` source, a copy of the ``.so``, pickled meta) are
    persisted per signature when ``disk`` is a cache.
    """
    native = _nat()
    loaded: dict[str, tuple] = {}
    failures: dict[str, str] = {}
    if not requests:
        return loaded, failures, 0.0, 0.0
    cc, _identity = native._require_compiler()
    work = native._workdir()
    units: OrderedDict[tuple, list] = OrderedDict()
    for req in requests:
        units.setdefault((req.V, req.lane), []).append(req)
    batch_id = hashlib.sha256(
        "|".join(req.key for req in requests).encode()
    ).hexdigest()[:16]
    c_paths = []
    for (V, lane), group in units.items():
        src = group[0].prelude + "\n".join(req.kernel_src for req in group)
        path = work / f"tu_{batch_id}_{V}_{lane}.c"
        path.write_text(src)
        c_paths.append(path)
        for req in group:
            req.unit_source = src
    # The output name must be unique per invocation: a recompile of the
    # same batch (e.g. after quarantining a tampered cache entry) would
    # otherwise have the linker truncate an inode that is still mapped
    # by a live dlopen handle — instant SIGBUS on the next symbol call.
    so_path = work / f"tu_{batch_id}_{next(_SO_SEQ)}.so"
    start = time.perf_counter()
    proc = _run_cc(
        [cc, *native.compiler_flags(), "-shared", "-fPIC",
         "-o", str(so_path)]
        + [str(path) for path in c_paths],
    )
    cc_s = time.perf_counter() - start
    native.STATS["cc_invocations"] += 1
    if proc.returncode != 0:
        if len(requests) == 1:
            req = requests[0]
            failures[req.signature] = (
                f"{cc} failed (exit {proc.returncode}): "
                f"{proc.stderr.strip()[:500]}"
            )
            return loaded, failures, cc_s, 0.0
        # One bad kernel must not sink its batch-mates: isolate the
        # culprit by recompiling every request as a singleton.
        load_s = 0.0
        for req in requests:
            sub_loaded, sub_failed, sub_cc, sub_load = compile_requests(
                [req], disk)
            loaded.update(sub_loaded)
            failures.update(sub_failed)
            cc_s += sub_cc
            load_s += sub_load
        return loaded, failures, cc_s, load_s
    native.STATS["tus"] += len(units)
    native.STATS["tu_kernels"] += len(requests)
    so_bytes = so_path.read_bytes()
    so_digest = hashlib.sha256(so_bytes).hexdigest()
    start = time.perf_counter()
    lib = ctypes.CDLL(str(so_path))
    for req in requests:
        req.meta.source = req.unit_source
        req.meta.so_sha256 = so_digest
        loaded[req.signature] = (native._bind_functions(lib, req.meta),
                                 req.meta)
    load_s = time.perf_counter() - start
    if disk is not None:
        for req in requests:
            disk.put_artifact(req.key, ".c", req.unit_source.encode())
            disk.put_artifact_file(req.key, ".so", so_path)
            disk.put(req.key, req.meta)
    return loaded, failures, cc_s, load_s


# ---------------------------------------------------------------------------
# Precompile-ahead (the sweep runners call this before workers fork)
# ---------------------------------------------------------------------------

def precompile(programs, profile=None) -> int:
    """Compile every cold signature in ``programs`` as one batch.

    Populates the native memory cache (and the shared disk cache) so
    subsequent runs — including forked sweep workers — hit warm
    entries instead of paying one ``cc`` each.  Returns the number of
    kernels compiled; 0 when there is nothing to do, no compiler
    exists, precompilation is disabled, or async mode owns compilation
    (queueing ahead of demand would just reorder the same work).

    Runs outside the verifier's stat windows, so it folds its own
    STATS deltas and compiler seconds into ``profile`` directly.
    """
    native = _nat()
    if not programs or async_enabled() or not precompile_enabled():
        return 0
    if native._compiler_identity()[0] is None:
        return 0
    from repro.machine import jit

    before = {k: v for k, v in native.STATS.items() if isinstance(v, int)}
    disk = get_cache()
    requests = []
    seen = set()
    compiled = 0
    cc_s = load_s = 0.0
    try:
        for program in programs:
            signature = jit._cached_signature(program)
            if signature in seen or signature in native._NATIVE_CACHE:
                continue
            seen.add(signature)
            jk = jit.get_kernel(program)
            if not jk.spec.batchable or jk.fn is None:
                native._cache_put(
                    signature, native._NativeKernel(jk=jk, meta=None,
                                                    cfn=None))
                continue
            key = native._disk_key(signature,
                                   native._compiler_identity()[1])
            if key in native._FAILED:
                continue
            if disk is not None:
                kernel = native._load_from_disk(disk, key, signature, jk)
                if kernel is not None:
                    native.STATS["disk_hits"] += 1
                    native._cache_put(signature, kernel)
                    continue
                native.STATS["disk_misses"] += 1
            request = native.build_request(signature, key, jk, program)
            if request is None:
                native._cache_put(
                    signature, native._NativeKernel(jk=jk, meta=None,
                                                    cfn=None))
                continue
            requests.append(request)
        if requests:
            _fault("compile")
            loaded, failures, cc_s, load_s = compile_requests(requests,
                                                              disk)
            native.STATS["cc_s"] += cc_s
            native.STATS["load_s"] += load_s
            for req in requests:
                pair = loaded.get(req.signature)
                if pair is None:
                    native._FAILED[req.key] = failures.get(
                        req.signature, "batched native compile failed")
                    continue
                (cfn, rfn, bcfn), meta = pair
                native._cache_put(
                    req.signature,
                    native._NativeKernel(jk=req.jk, meta=meta, cfn=cfn,
                                         rfn=rfn, bcfn=bcfn))
                compiled += 1
            native.STATS["precompiled"] += compiled
    except FaultInjected:
        # An injected compile fault lands on the per-run acquisition
        # path instead, where the resilient chain records the
        # degradation — precompilation must never fail a sweep.
        pass
    if profile is not None:
        if cc_s:
            profile.add("cc", cc_s)
        if load_s:
            profile.add("native_load", load_s)
        for key, value in native.STATS.items():
            if isinstance(value, int):
                delta = value - before.get(key, 0)
                if delta:
                    profile.count(f"native_{key}", delta)
    return compiled


# ---------------------------------------------------------------------------
# The asynchronous background queue
# ---------------------------------------------------------------------------

class _CompileQueue:
    """A daemon-thread compile queue with batch drain and hot-swap.

    ``submit`` registers a request and its live placeholder kernel
    (in-flight dedup keyed by signature) and wakes the worker; the
    worker pops *everything* pending in one go and compiles it as one
    batched ``cc`` invocation, so a burst of N cold signatures still
    costs one toolchain launch.  On success each placeholder kernel is
    hot-swapped in publication order — meta first, stale plan cleared,
    the ctypes function last — so a reader that observes ``cfn`` set
    always sees the matching tables (readers check ``cfn`` before
    touching meta/plan, and the GIL orders the stores).  On failure the
    placeholder simply keeps delegating to jit, forever and silently;
    the failure is memoized in ``native._FAILED`` so a later cold
    acquisition doesn't retry a doomed compile.

    Fork safety: the queue state (lock, pending map, thread handle) is
    reset in forked children via ``os.register_at_fork``, because the
    worker thread does not survive ``fork`` and a condition variable
    captured mid-wait would deadlock the child.
    """

    def __init__(self):
        self._reset()

    def _reset(self):
        self._cond = threading.Condition()
        self._pending: dict[str, CompileRequest] = {}
        self._kernels: dict[str, object] = {}
        self._busy = 0
        self._thread: threading.Thread | None = None
        self._shutdown = False

    def submit(self, request: CompileRequest, kernel) -> None:
        native = _nat()
        with self._cond:
            if self._shutdown:
                # Interpreter is tearing down: finalize the placeholder
                # as a permanent jit delegate instead of orphaning it
                # in a pending state no worker will ever resolve.
                kernel.pending = False
                return
            if request.signature not in self._pending:
                self._pending[request.signature] = request
                self._kernels[request.signature] = kernel
                native.STATS["async_compiles"] += 1
            depth = len(self._pending) + self._busy
            if depth > native.STATS["queue_depth_max"]:
                native.STATS["queue_depth_max"] = depth
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run, name="repro-native-cc", daemon=True)
                self._thread.start()
            self._cond.notify_all()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the queue is idle; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._pending or self._busy:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining)
        return True

    def clear(self) -> None:
        """Drop not-yet-started work (test isolation between cases)."""
        with self._cond:
            self._pending.clear()
            self._kernels.clear()
            self._cond.notify_all()

    def shutdown(self, timeout: float = 5.0) -> bool:
        """Stop the worker deterministically (atexit / tests).

        Pending-but-unstarted work is dropped — their placeholder
        kernels are finalized as jit delegates — and the worker thread
        is asked to exit once its in-flight batch (if any) completes,
        then joined with ``timeout``.  Returns False if the join timed
        out (a wedged cc already bounded by :func:`_run_cc`'s budget).
        Idempotent; ``submit`` after shutdown is a no-op.
        """
        with self._cond:
            self._shutdown = True
            for kernel in self._kernels.values():
                kernel.pending = False
            self._pending.clear()
            self._kernels.clear()
            thread = self._thread
            self._cond.notify_all()
        if thread is None or not thread.is_alive():
            return True
        thread.join(timeout)
        return not thread.is_alive()

    def _run(self):
        while True:
            with self._cond:
                while not self._pending:
                    if self._shutdown:
                        return
                    self._cond.wait()
                batch = list(self._pending.values())
                kernels = dict(self._kernels)
                self._pending.clear()
                self._kernels.clear()
                self._busy = len(batch)
            try:
                self._compile_batch(batch, kernels)
            finally:
                with self._cond:
                    self._busy = 0
                    self._cond.notify_all()

    def _compile_batch(self, batch, kernels):
        native = _nat()
        try:
            _fault("compile")
            loaded, failures, cc_s, load_s = compile_requests(
                batch, get_cache())
        except Exception as exc:  # injected faults included: stay on jit
            loaded, cc_s, load_s = {}, 0.0, 0.0
            failures = {req.signature: f"async native compile failed: {exc}"
                        for req in batch}
        # Background compiler seconds overlap run time instead of
        # extending it, so they land on async_* keys the profile's
        # phase re-attribution deliberately ignores.
        native.STATS["async_cc_s"] += cc_s
        native.STATS["async_load_s"] += load_s
        for req in batch:
            kernel = kernels.get(req.signature)
            pair = loaded.get(req.signature)
            if pair is None:
                native._FAILED[req.key] = failures.get(
                    req.signature, "async native compile failed")
                native.STATS["async_failures"] += 1
                if kernel is not None:
                    kernel.pending = False
                continue
            (cfn, rfn, bcfn), meta = pair
            if kernel is not None:
                kernel.meta = meta
                kernel.plan = None
                kernel.pending = False
                kernel.rfn = rfn
                kernel.bcfn = bcfn
                kernel.cfn = cfn  # published last: readers key off cfn
                native.STATS["hot_swaps"] += 1


_QUEUE = _CompileQueue()

if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_QUEUE._reset)

# Deterministic teardown: without this, interpreter exit races the
# daemon worker mid-cc — Python tears down module globals while the
# thread still references them, spraying ignored exceptions on stderr.
atexit.register(_QUEUE.shutdown)


def shutdown(timeout: float = 5.0) -> bool:
    """Shut the background queue down deterministically (idempotent)."""
    return _QUEUE.shutdown(timeout)


def enqueue(signature: str, key: str, jk, program, kernel) -> bool:
    """Queue a background compile that will hot-swap into ``kernel``.

    Returns False (and finalizes the kernel as a permanent jit
    delegate) when the steady sequence cannot be lowered to C at all —
    the same shapes the synchronous path delegates.
    """
    native = _nat()
    request = native.build_request(signature, key, jk, program)
    if request is None:
        kernel.pending = False
        return False
    _QUEUE.submit(request, kernel)
    return True


def drain(timeout: float | None = None) -> bool:
    """Wait for every queued background compile to finish."""
    return _QUEUE.drain(timeout)


def reset_queue() -> None:
    """Drop queued work and wait out in-flight batches (test hook).

    Also revives a queue a previous test shut down, so cases that
    exercise :func:`shutdown` do not leak a dead queue into later ones.
    """
    _QUEUE.clear()
    _QUEUE.drain()
    with _QUEUE._cond:
        _QUEUE._shutdown = False
