"""Virtual SIMD machine: memory, arrays, vector semantics, interpreters."""

from repro.machine.arrays import ArraySpace, BoundArray, GUARD_VECTORS
from repro.machine.backend import (
    BACKEND_CHOICES,
    SCALAR_BACKEND_CHOICES,
    BytesBackend,
    BytesScalarBackend,
    ExecutionBackend,
    ScalarBackend,
    default_backend_name,
    get_backend,
    get_scalar_backend,
    jit_compile_stats,
    numpy_available,
)
from repro.machine.counters import OpCounters
from repro.machine.interp import VectorRunResult, run_vector
from repro.machine.memory import Memory
from repro.machine.trace import Trace, TraceEvent
from repro.machine.scalar import (
    RunBindings,
    ScalarRunResult,
    ideal_scalar_opd,
    ideal_scalar_ops,
    reference_counters,
    run_scalar,
)
from repro.machine.vector import from_lanes, lanes, vbinop, vshiftpair, vsplat, vsplice

__all__ = [
    "ArraySpace", "BoundArray", "GUARD_VECTORS", "OpCounters",
    "BACKEND_CHOICES", "SCALAR_BACKEND_CHOICES",
    "BytesBackend", "BytesScalarBackend",
    "ExecutionBackend", "ScalarBackend",
    "default_backend_name", "get_backend", "get_scalar_backend",
    "jit_compile_stats", "numpy_available",
    "VectorRunResult", "run_vector", "Memory", "RunBindings",
    "ScalarRunResult", "ideal_scalar_opd", "ideal_scalar_ops",
    "reference_counters", "run_scalar",
    "from_lanes", "lanes", "vbinop", "vshiftpair", "vsplat", "vsplice",
    "Trace", "TraceEvent",
]
