"""Validity checking of data reorganization graphs.

Implements the paper's constraints:

* **(C.2)** ``O_src == addr(i=0) mod V`` at every ``vstore`` node;
* **(C.3)** ``O_src1 == O_src2 == ... == O_srcn`` at every ``vop`` node;

with ⊥ (splat) matching any defined offset.  Policies must produce
graphs passing :func:`validate_graph`; the driver asserts this before
code generation, and property tests assert it for random loops.
"""

from __future__ import annotations

from repro.align.offsets import Offset, compatible
from repro.errors import GraphError
from repro.reorg.graph import LoopGraph, RNode, ROp, RShiftStream, RStore, StatementGraph


def validate_statement(sg: StatementGraph, V: int) -> None:
    """Raise :class:`GraphError` if the statement graph violates (C.2)/(C.3)."""
    _validate_node(sg.store, V)


def validate_graph(graph: LoopGraph) -> None:
    """Raise :class:`GraphError` if any statement graph is invalid."""
    for sg in graph.statements:
        validate_statement(sg, graph.V)


def is_valid(graph: LoopGraph) -> bool:
    try:
        validate_graph(graph)
    except GraphError:
        return False
    return True


def _validate_node(node: RNode, V: int) -> None:
    # Children first: the deepest violation gives the most precise
    # diagnostic (a bad operand also breaks every enclosing constraint).
    for child in node.children():
        _validate_node(child, V)
    if isinstance(node, RStore):
        store_off = node.offset(V)
        src_off = node.src.offset(V)
        if not compatible(src_off, store_off):
            raise GraphError(
                f"(C.2) violated at {node}: source stream offset {src_off} "
                f"!= store alignment {store_off}"
            )
    if isinstance(node, ROp):
        offsets = [child.offset(V) for child in node.inputs]
        defined: list[Offset] = [o for o in offsets if not o.is_any]
        for off in defined[1:]:
            if not compatible(defined[0], off):
                raise GraphError(
                    f"(C.3) violated at {node}: input offsets "
                    f"{[str(o) for o in offsets]} do not match"
                )
    if isinstance(node, RShiftStream):
        src_off = node.src.offset(V)
        if src_off.is_any:
            raise GraphError(f"shifting a splat stream is meaningless: {node}")
        if node.to.is_known and not 0 <= node.to.value < V:
            raise GraphError(f"shift target {node.to} outside [0, {V})")
