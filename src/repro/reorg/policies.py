"""Stream-shift placement policies (paper Section 3.4).

Given a bare reorganization graph, each policy inserts
:class:`~repro.reorg.graph.RShiftStream` nodes to make the graph valid
while minimizing (to a varying degree) the number of shifts:

========== ===================================================================
zero       shift every misaligned load to offset 0 right after the load, and
           the store stream from 0 to the store alignment right before the
           store.  Least optimized, but the only policy whose shift
           *directions* are compile-time determined under runtime alignments
           (loads always shift left, stores always shift right — Section 4.4).
eager      shift every misaligned load directly to the store alignment.
lazy       like eager, but delay shifts while constraint (C.3) already holds:
           relatively aligned operands compute at their common offset and
           only the result is shifted.
dominant   shift streams to the most frequent offset in the statement graph,
           then shift the result to the store alignment; most effective after
           lazy-style delaying, which is how it is implemented here.
========== ===================================================================

``eager``/``lazy``/``dominant`` require every stream offset to be a
compile-time constant; with runtime alignments they raise
:class:`~repro.errors.PolicyError` and the driver falls back to
``zero`` (exactly the paper's rule).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable

from repro.align.offsets import ANY, KnownOffset, Offset, ZERO, compatible
from repro.errors import PolicyError
from repro.reorg.graph import (
    LoopGraph,
    RIota,
    RLoad,
    RNode,
    ROp,
    RShiftStream,
    RSplat,
    RStore,
    StatementGraph,
)

POLICY_NAMES = ("zero", "eager", "lazy", "dominant")


def apply_policy(graph: LoopGraph, policy: str) -> LoopGraph:
    """Return a new, valid loop graph with shifts placed per ``policy``."""
    try:
        func = _POLICIES[policy]
    except KeyError:
        raise PolicyError(f"unknown policy {policy!r}; expected one of {POLICY_NAMES}") from None
    out = LoopGraph(loop=graph.loop, V=graph.V)
    for sg in graph.statements:
        out.statements.append(func(sg, graph.V))
    return out


def default_policy(graph: LoopGraph) -> str:
    """The best generally applicable policy: ``dominant`` when every offset
    is compile-time known, otherwise ``zero`` (paper Section 4.4)."""
    return "zero" if _has_runtime_offsets(graph) else "dominant"


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _has_runtime_offsets(graph: LoopGraph) -> bool:
    for sg in graph.statements:
        for node in sg.store.walk():
            if node.offset(graph.V).is_runtime:
                return True
    return False


def _shift_to(node: RNode, to: Offset, V: int) -> RNode:
    """Wrap ``node`` in a stream shift to ``to`` unless already compatible."""
    if compatible(node.offset(V), to):
        return node
    return RShiftStream(node, to)


def _require_known(sg: StatementGraph, V: int, policy: str) -> None:
    for node in sg.store.walk():
        if node.offset(V).is_runtime:
            raise PolicyError(
                f"policy {policy!r} needs compile-time alignments, but "
                f"{node} has runtime offset (use the zero-shift policy)"
            )


# ---------------------------------------------------------------------------
# Zero-shift
# ---------------------------------------------------------------------------

def zero_shift_expr(node: RNode, V: int) -> RNode:
    """Zero-shift placement on a bare expression tree: every misaligned
    (or runtime-aligned) stream is shifted to offset 0 after its load.
    Shared by the regular policy and the reduction vectorizer (whose
    accumulators want offset-0 blocks)."""
    if isinstance(node, (RLoad, RIota)):
        return _shift_to(node, ZERO, V)
    if isinstance(node, RSplat):
        return node
    if isinstance(node, ROp):
        return ROp(node.op, tuple(zero_shift_expr(c, V) for c in node.inputs),
                   node.dtype)
    raise PolicyError(f"unexpected node {node} in bare graph")


def zero_shift(sg: StatementGraph, V: int) -> StatementGraph:
    src = zero_shift_expr(sg.store.src, V)
    src = _shift_to(src, sg.store.offset(V), V)
    return StatementGraph(RStore(sg.store.ref, src), sg.statement_index)


# ---------------------------------------------------------------------------
# Eager-shift
# ---------------------------------------------------------------------------

def eager_shift(sg: StatementGraph, V: int) -> StatementGraph:
    _require_known(sg, V, "eager")
    store_off = sg.store.offset(V)

    def rebuild(node: RNode) -> RNode:
        if isinstance(node, (RLoad, RIota)):
            return _shift_to(node, store_off, V)
        if isinstance(node, RSplat):
            return node
        if isinstance(node, ROp):
            return ROp(node.op, tuple(rebuild(c) for c in node.inputs), node.dtype)
        raise PolicyError(f"unexpected node {node} in bare graph")

    return StatementGraph(RStore(sg.store.ref, rebuild(sg.store.src)), sg.statement_index)


# ---------------------------------------------------------------------------
# Lazy-shift and dominant-shift share a delayed-shift rebuild
# ---------------------------------------------------------------------------

def _delayed_rebuild(sg: StatementGraph, V: int, target: Offset) -> StatementGraph:
    """Shift only where (C.3) would break, using ``target`` as the meeting
    offset, then satisfy (C.2) at the store."""

    def rebuild(node: RNode) -> RNode:
        if isinstance(node, (RLoad, RSplat, RIota)):
            return node
        if isinstance(node, ROp):
            children = [rebuild(c) for c in node.inputs]
            defined = [c.offset(V) for c in children if not c.offset(V).is_any]
            if not defined or all(off == defined[0] for off in defined[1:]):
                return ROp(node.op, tuple(children), node.dtype)
            children = [_shift_to(c, target, V) for c in children]
            return ROp(node.op, tuple(children), node.dtype)
        raise PolicyError(f"unexpected node {node} in bare graph")

    src = _shift_to(rebuild(sg.store.src), sg.store.offset(V), V)
    return StatementGraph(RStore(sg.store.ref, src), sg.statement_index)


def lazy_shift(sg: StatementGraph, V: int) -> StatementGraph:
    _require_known(sg, V, "lazy")
    return _delayed_rebuild(sg, V, sg.store.offset(V))


def dominant_offset(sg: StatementGraph, V: int) -> Offset:
    """The most frequent stream offset among the statement's references.

    The store reference participates with weight one; ties prefer the
    store alignment (saving the final (C.2) shift), then the smallest
    offset value, making the choice deterministic.
    """
    counts: Counter[int] = Counter()
    for node in sg.store.walk():
        if isinstance(node, (RLoad, RIota)):
            off = node.offset(V)
            assert isinstance(off, KnownOffset)
            counts[off.value] += 1
    store_off = sg.store.offset(V)
    assert isinstance(store_off, KnownOffset)
    counts[store_off.value] += 1

    def rank(item: tuple[int, int]) -> tuple[int, int, int]:
        value, count = item
        return (-count, 0 if value == store_off.value else 1, value)

    best_value = min(counts.items(), key=rank)[0]
    return KnownOffset(best_value)


def dominant_shift(sg: StatementGraph, V: int) -> StatementGraph:
    _require_known(sg, V, "dominant")
    return _delayed_rebuild(sg, V, dominant_offset(sg, V))


_POLICIES: dict[str, Callable[[StatementGraph, int], StatementGraph]] = {
    "zero": zero_shift,
    "eager": eager_shift,
    "lazy": lazy_shift,
    "dominant": dominant_shift,
}
