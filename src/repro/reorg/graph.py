"""The data reorganization graph (paper Section 3.3).

A data reorganization graph is the statement's expression tree
augmented with data reordering nodes.  Every node carries a *stream
offset*; a graph is valid when

* (C.2) the store's source offset equals the store address alignment,
* (C.3) all inputs of a ``vop`` have pairwise-matching offsets,

with the splat offset ⊥ matching anything.  The shift-placement
policies (:mod:`repro.reorg.policies`) produce valid graphs by
inserting :class:`RShiftStream` nodes; the SIMD code generator then
lowers the graph (:mod:`repro.codegen`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.align.analysis import ref_offset
from repro.align.offsets import ANY, KnownOffset, Offset
from repro.errors import GraphError
from repro.ir.expr import Const, Expr, Loop, Ref, ScalarVar
from repro.ir.types import BinaryOp, DataType


class RNode:
    """Base class of reorganization-graph nodes."""

    __slots__ = ()

    def offset(self, V: int) -> Offset:
        """This node's stream offset property."""
        raise NotImplementedError

    def children(self) -> tuple["RNode", ...]:
        return ()

    def walk(self) -> Iterator["RNode"]:
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class RLoad(RNode):
    """``vload`` of a stride-one memory stream (paper eq. 1)."""

    ref: Ref

    def offset(self, V: int) -> Offset:
        return ref_offset(self.ref, V)

    def __str__(self) -> str:
        return f"vload({self.ref})"


@dataclass(frozen=True)
class RSplat(RNode):
    """``vsplat`` of a loop-invariant scalar; offset is ⊥ (paper eq. 6)."""

    operand: Expr  # Const or ScalarVar

    def __post_init__(self) -> None:
        if not isinstance(self.operand, (Const, ScalarVar)):
            raise GraphError(f"vsplat operand must be loop-invariant, got {self.operand}")

    def offset(self, V: int) -> Offset:
        return ANY

    def __str__(self) -> str:
        return f"vsplat({self.operand})"


@dataclass(frozen=True)
class RIota(RNode):
    """The vectorized loop counter (extension; ``ir.LoopIndex``).

    Behaves like a load from a virtual, vector-aligned iteration-number
    array: its stream offset is 0, and shift placement treats it like
    any other stream (a shifted iota is just two adjacent iota
    registers combined, which the code generator emits generically).
    """

    def offset(self, V: int) -> Offset:
        return KnownOffset(0)

    def __str__(self) -> str:
        return "viota(i)"


@dataclass(frozen=True)
class ROp(RNode):
    """A regular ``vop``; offset is the common offset of its inputs (eq. 4)."""

    op: BinaryOp
    inputs: tuple[RNode, ...]
    dtype: DataType

    def children(self) -> tuple[RNode, ...]:
        return self.inputs

    def offset(self, V: int) -> Offset:
        for child in self.inputs:
            off = child.offset(V)
            if not off.is_any:
                return off
        return ANY

    def __str__(self) -> str:
        args = ", ".join(str(c) for c in self.inputs)
        return f"v{self.op.name}({args})"


@dataclass(frozen=True)
class RShiftStream(RNode):
    """``vshiftstream``: change a register stream's offset to ``to`` (eq. 5)."""

    src: RNode
    to: Offset

    def __post_init__(self) -> None:
        if self.to.is_any:
            raise GraphError("vshiftstream target offset must be a defined offset")

    def children(self) -> tuple[RNode, ...]:
        return (self.src,)

    def offset(self, V: int) -> Offset:
        return self.to

    def __str__(self) -> str:
        return f"vshiftstream({self.src}, {self.to})"


@dataclass(frozen=True)
class RStore(RNode):
    """``vstore`` of the ``src`` stream to a stride-one reference (C.2)."""

    ref: Ref
    src: RNode

    def children(self) -> tuple[RNode, ...]:
        return (self.src,)

    def offset(self, V: int) -> Offset:
        return ref_offset(self.ref, V)

    def __str__(self) -> str:
        return f"vstore({self.ref}, {self.src})"


@dataclass
class StatementGraph:
    """The reorganization graph of one loop statement."""

    store: RStore
    statement_index: int

    def shift_nodes(self) -> list[RShiftStream]:
        return [n for n in self.store.walk() if isinstance(n, RShiftStream)]

    def load_nodes(self) -> list[RLoad]:
        return [n for n in self.store.walk() if isinstance(n, RLoad)]

    def shift_count(self) -> int:
        """Static ``vshiftstream`` count — the quantity policies minimize."""
        return len(self.shift_nodes())


@dataclass
class LoopGraph:
    """Reorganization graphs for every statement of a loop."""

    loop: Loop
    V: int
    statements: list[StatementGraph] = field(default_factory=list)

    @property
    def B(self) -> int:
        return self.V // self.loop.dtype.size

    def shift_count(self) -> int:
        return sum(sg.shift_count() for sg in self.statements)

    def __str__(self) -> str:
        lines = [f"LoopGraph(V={self.V}, B={self.B})"]
        for sg in self.statements:
            lines.append(f"  S{sg.statement_index}: {sg.store}")
        return "\n".join(lines)
