"""Common-offset reassociation (paper Section 5.5, *OffsetReassoc*).

"The associativity and commutativity of the computation are used to
group computations with identical offsets to make the lazy-shift and
dominant-shift policies more successful."

Applied to the *bare* graph (before shift placement): every maximal
chain of one associative-commutative operator is flattened, its
operands are grouped by stream offset, each group is combined first,
and the group results are folded together.  The group containing the
store's offset is folded first so the delayed-shift policies pay at
most one shift per remaining group — the ``n−1`` shifts of the paper's
lower bound for ``n`` distinct alignments.
"""

from __future__ import annotations

from functools import reduce

from repro.align.offsets import Offset
from repro.errors import GraphError
from repro.reorg.graph import LoopGraph, RIota, RLoad, RNode, ROp, RShiftStream, RSplat, RStore, StatementGraph


def reassociate(graph: LoopGraph) -> LoopGraph:
    """Return a new loop graph with common-offset reassociation applied."""
    out = LoopGraph(loop=graph.loop, V=graph.V)
    for sg in graph.statements:
        out.statements.append(_reassociate_statement(sg, graph.V))
    return out


def _reassociate_statement(sg: StatementGraph, V: int) -> StatementGraph:
    store_off = sg.store.offset(V)
    src = _rebuild(sg.store.src, V, store_off)
    return StatementGraph(RStore(sg.store.ref, src), sg.statement_index)


def _rebuild(node: RNode, V: int, store_off: Offset) -> RNode:
    if isinstance(node, (RLoad, RSplat, RIota)):
        return node
    if isinstance(node, RShiftStream):
        raise GraphError("reassociation must run before shift placement")
    if isinstance(node, ROp):
        if not (node.op.associative and node.op.commutative):
            children = tuple(_rebuild(c, V, store_off) for c in node.inputs)
            return ROp(node.op, children, node.dtype)
        operands = [_rebuild(c, V, store_off) for c in _flatten(node)]
        return _regroup(node, operands, V, store_off)
    raise GraphError(f"unexpected node {node} in bare graph")


def _flatten(node: ROp) -> list[RNode]:
    """Operands of the maximal same-operator chain rooted at ``node``."""
    operands: list[RNode] = []
    for child in node.inputs:
        if isinstance(child, ROp) and child.op == node.op:
            operands.extend(_flatten(child))
        else:
            operands.append(child)
    return operands


def _regroup(node: ROp, operands: list[RNode], V: int, store_off: Offset) -> RNode:
    groups: dict[object, list[RNode]] = {}
    order: list[object] = []
    for operand in operands:
        key = _offset_key(operand.offset(V))
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(operand)

    def combine(items: list[RNode]) -> RNode:
        return reduce(lambda a, b: ROp(node.op, (a, b), node.dtype), items)

    store_key = _offset_key(store_off)

    def rank(key: object) -> tuple[int, int, str]:
        # Store-offset group first, then larger groups, then stable order.
        return (
            0 if key == store_key else 1,
            -len(groups[key]),
            str(key),
        )

    ordered = sorted(order, key=rank)
    parts = [combine(groups[key]) for key in ordered]
    return combine(parts)


def _offset_key(off: Offset) -> object:
    """A hashable grouping key distinguishing known / runtime / splat offsets."""
    return off
