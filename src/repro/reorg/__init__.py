"""Data reorganization graphs and stream-shift placement policies."""

from repro.reorg.build import build_expr, build_loop_graph, build_statement
from repro.reorg.graph import (
    LoopGraph,
    RIota,
    RLoad,
    RNode,
    ROp,
    RShiftStream,
    RSplat,
    RStore,
    StatementGraph,
)
from repro.reorg.policies import (
    POLICY_NAMES,
    apply_policy,
    default_policy,
    dominant_offset,
    dominant_shift,
    eager_shift,
    lazy_shift,
    zero_shift,
    zero_shift_expr,
)
from repro.reorg.reassoc import reassociate
from repro.reorg.validate import is_valid, validate_graph, validate_statement

__all__ = [
    "build_expr", "build_loop_graph", "build_statement",
    "LoopGraph", "RIota", "RLoad", "RNode", "ROp", "RShiftStream", "RSplat", "RStore",
    "StatementGraph",
    "POLICY_NAMES", "apply_policy", "default_policy", "dominant_offset",
    "dominant_shift", "eager_shift", "lazy_shift", "zero_shift", "zero_shift_expr",
    "reassociate", "is_valid", "validate_graph", "validate_statement",
]
