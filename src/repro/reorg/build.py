"""Build bare reorganization graphs from loop IR.

"First, the loop is simdized as if for a machine with no alignment
constraints" (paper Section 1): the bare graph is a one-to-one mapping
of the scalar expression tree onto vector nodes, with no reordering
operations.  The shift-placement policies then make it valid.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.ir.expr import BinOp, Const, Expr, Loop, LoopIndex, Ref, ScalarVar, Statement
from repro.reorg.graph import LoopGraph, RIota, RLoad, RNode, ROp, RSplat, RStore, StatementGraph


def build_expr(expr: Expr, loop: Loop) -> RNode:
    """Map a scalar expression tree onto bare vector graph nodes."""
    if isinstance(expr, Ref):
        return RLoad(expr)
    if isinstance(expr, (Const, ScalarVar)):
        return RSplat(expr)
    if isinstance(expr, LoopIndex):
        return RIota()
    if isinstance(expr, BinOp):
        return ROp(
            expr.op,
            (build_expr(expr.left, loop), build_expr(expr.right, loop)),
            loop.dtype,
        )
    raise GraphError(f"cannot simdize expression node {type(expr).__name__}")


def build_statement(stmt: Statement, index: int, loop: Loop) -> StatementGraph:
    return StatementGraph(RStore(stmt.target, build_expr(stmt.expr, loop)), index)


def build_loop_graph(loop: Loop, V: int) -> LoopGraph:
    """The bare (alignment-oblivious) reorganization graph of a loop."""
    graph = LoopGraph(loop=loop, V=V)
    for index, stmt in enumerate(loop.statements):
        graph.statements.append(build_statement(stmt, index, loop))
    return graph
