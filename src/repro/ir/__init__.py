"""Scalar loop IR: the simdizer's input language."""

from repro.ir.expr import (
    ArrayDecl,
    LoopIndex,
    BinOp,
    Const,
    Expr,
    Loop,
    Reduction,
    Ref,
    ScalarVar,
    Statement,
    as_expr,
    validate_loop,
)
from repro.ir.builder import ArrayHandle, ExprHandle, LoopBuilder, figure1_loop
from repro.ir.types import (
    ADD,
    ALL_OPS,
    ALL_TYPES,
    AND,
    AVG,
    INT8,
    INT16,
    INT32,
    MAX,
    MIN,
    MUL,
    OR,
    SUB,
    UINT8,
    UINT16,
    UINT32,
    XOR,
    BinaryOp,
    DataType,
    op_by_name,
    type_by_name,
)

__all__ = [
    "ArrayDecl", "BinOp", "Const", "Expr", "Loop", "LoopIndex", "Reduction", "Ref", "ScalarVar",
    "Statement", "as_expr", "validate_loop",
    "ArrayHandle", "ExprHandle", "LoopBuilder", "figure1_loop",
    "ADD", "ALL_OPS", "ALL_TYPES", "AND", "AVG", "INT8", "INT16", "INT32",
    "MAX", "MIN", "MUL", "OR", "SUB", "UINT8", "UINT16", "UINT32", "XOR",
    "BinaryOp", "DataType", "op_by_name", "type_by_name",
]
