"""Scalar loop IR: arrays, expression trees, statements.

This is the input language of the simdizer, mirroring the paper's
Section 4.1 assumptions: an innermost normalized loop whose memory
references are loop-invariant scalars or stride-one array references
``a[i + c]``, all of one uniform element length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.errors import IRError
from repro.ir.types import BinaryOp, DataType


@dataclass(frozen=True)
class ArrayDecl:
    """A named array symbol.

    ``align`` is the compile-time-known base-address residue modulo the
    target vector length ``V`` (the paper's compile-time alignment), or
    ``None`` when the base alignment is only known at runtime.  Per the
    paper's natural-alignment assumption, a known ``align`` must be a
    multiple of the element size.

    ``length`` is the number of elements backing storage must provide;
    the machine allocator additionally pads with guard vectors so that
    truncated vector loads just outside the accessed stream (produced
    by stream shifts near loop boundaries) never fault, exactly like an
    in-page access on real hardware.
    """

    name: str
    dtype: DataType
    length: int
    align: int | None = 0

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise IRError(f"array name {self.name!r} is not an identifier")
        if self.length <= 0:
            raise IRError(f"array {self.name!r} must have positive length")
        if self.align is not None:
            if self.align < 0:
                raise IRError(f"array {self.name!r} has negative alignment")
            if self.align % self.dtype.size != 0:
                raise IRError(
                    f"array {self.name!r}: base alignment {self.align} is not "
                    f"naturally aligned to element size {self.dtype.size}"
                )

    @property
    def runtime_aligned(self) -> bool:
        """True when the base alignment is only discoverable at runtime."""
        return self.align is None


class Expr:
    """Base class of scalar loop-IR expressions."""

    __slots__ = ()

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants, preorder."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Ref(Expr):
    """A stride-one reference ``array[i + offset]``.

    Its address at original iteration ``i`` is
    ``base(array) + (i + offset) * D``.
    """

    array: ArrayDecl
    offset: int = 0

    def __str__(self) -> str:
        if self.offset == 0:
            return f"{self.array.name}[i]"
        sign = "+" if self.offset > 0 else "-"
        return f"{self.array.name}[i{sign}{abs(self.offset)}]"


@dataclass(frozen=True)
class Const(Expr):
    """A loop-invariant integer literal."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class ScalarVar(Expr):
    """A loop-invariant runtime scalar (bound at execution time)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LoopIndex(Expr):
    """The loop counter used as a *value* (``a[i] = i * 2``).

    The paper's Section 4.1 assumptions exclude this ("the loop counter
    can only appear in the address computation") and its Section 7
    lists it as future work; this reproduction implements it as an
    extension, vectorizing the counter into an iota register stream.
    """

    def __str__(self) -> str:
        return "i"


@dataclass(frozen=True)
class BinOp(Expr):
    """A two-operand lane operation applied elementwise."""

    op: BinaryOp
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        if self.op.name in ("min", "max", "avg"):
            return f"{self.op.name}({self.left}, {self.right})"
        return f"({self.left} {self.op.symbol} {self.right})"


#: Anything acceptable where an expression operand is expected.
ExprLike = Union[Expr, int]


def as_expr(value: ExprLike) -> Expr:
    """Coerce a Python int into a :class:`Const`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return Const(value)
    raise IRError(f"cannot use {value!r} as a loop-IR expression")


@dataclass(frozen=True)
class Statement:
    """One assignment ``target = expr`` executed each loop iteration."""

    target: Ref
    expr: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.expr};"

    def refs(self) -> list[Ref]:
        """All stride-one references in the statement, loads then the store."""
        return self.loads() + [self.target]

    def loads(self) -> list[Ref]:
        """All load references in evaluation order (duplicates preserved)."""
        return [node for node in self.expr.walk() if isinstance(node, Ref)]

    def invariants(self) -> list[Expr]:
        """All loop-invariant leaf operands (consts and scalar vars)."""
        return [n for n in self.expr.walk() if isinstance(n, (Const, ScalarVar))]


@dataclass(frozen=True)
class Reduction:
    """A reduction statement ``array[index] op= expr`` (extension).

    ``target`` is a *fixed-index* reference: unlike a
    :class:`Statement` target, its offset is an absolute element index
    independent of the loop counter.  ``op`` must be associative and
    commutative with an identity element (add/mul/min/max/and/or/xor),
    so the vectorizer may reassociate the accumulation into per-lane
    partial results folded horizontally after the loop — bit-exactly,
    since lane arithmetic is modular.

    The paper's Section 7 lists "accesses to scalar variables …
    occurring in non-address computation" as future work; reductions
    are the most important instance and this reproduction implements
    them (see :mod:`repro.codegen.reduction`).
    """

    target: Ref
    op: BinaryOp
    expr: Expr

    def __str__(self) -> str:
        sym = self.op.symbol
        head = f"{self.target.array.name}[{self.target.offset}]"
        if self.op.name in ("min", "max"):
            return f"{head} = {self.op.name}({head}, {self.expr});"
        return f"{head} {sym}= {self.expr};"

    def refs(self) -> list[Ref]:
        """The statement's stream references — loads only: the fixed-index
        target is not a stride-one stream."""
        return self.loads()

    def loads(self) -> list[Ref]:
        return [node for node in self.expr.walk() if isinstance(node, Ref)]

    def invariants(self) -> list[Expr]:
        return [n for n in self.expr.walk() if isinstance(n, (Const, ScalarVar))]


#: Either kind of loop-body statement.
AnyStatement = Union[Statement, Reduction]


@dataclass
class Loop:
    """A normalized innermost loop ``for (i = 0; i < upper; i++) {stmts}``.

    ``upper`` is the trip count: a compile-time int, or the name of a
    runtime scalar for the paper's unknown-loop-bound case.

    A loop contains either regular statements or reductions, never a
    mix — the two need different steady-state structures (stores must
    block on the store alignment; reductions accumulate full blocks
    from iteration 0).
    """

    upper: int | str
    statements: list[AnyStatement]
    index: str = "i"
    name: str = "loop"
    scalar_vars: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        validate_loop(self)

    def __str__(self) -> str:
        body = "\n".join(f"  {stmt}" for stmt in self.statements)
        return f"for ({self.index} = 0; {self.index} < {self.upper}; {self.index}++) {{\n{body}\n}}"

    @property
    def dtype(self) -> DataType:
        """The loop's uniform element type (the paper's *D* comes from this)."""
        return self.statements[0].target.array.dtype

    @property
    def runtime_upper(self) -> bool:
        return isinstance(self.upper, str)

    @property
    def has_reductions(self) -> bool:
        return any(isinstance(s, Reduction) for s in self.statements)

    def arrays(self) -> list[ArrayDecl]:
        """All distinct arrays, in first-appearance order."""
        seen: dict[str, ArrayDecl] = {}
        for stmt in self.statements:
            seen.setdefault(stmt.target.array.name, stmt.target.array)
            for ref in stmt.loads():
                seen.setdefault(ref.array.name, ref.array)
        return list(seen.values())

    def store_arrays(self) -> set[str]:
        return {stmt.target.array.name for stmt in self.statements}

    def load_arrays(self) -> set[str]:
        return {ref.array.name for stmt in self.statements for ref in stmt.loads()}

    def runtime_alignment(self) -> bool:
        """True when any referenced array has a runtime-only base alignment."""
        return any(arr.runtime_aligned for arr in self.arrays())

    def signature(self) -> str:
        """A stable structural key for memoizing work keyed on this loop.

        Two loops with equal signatures simdize identically: the
        signature captures the trip bound, every array's type/extent/
        alignment class, the statement bodies, and the declared runtime
        scalars — everything the simdizer reads.  Concrete runtime
        residues and data values are deliberately excluded (the
        simdizer never sees them).
        """
        arrays = ";".join(
            f"{a.name}:{a.dtype.name}:{a.length}:"
            f"{'rt' if a.align is None else a.align}"
            for a in self.arrays()
        )
        stmts = "|".join(str(s) for s in self.statements)
        return f"{self.upper}§{arrays}§{stmts}§{','.join(self.scalar_vars)}"

    def min_index(self) -> int:
        """Smallest element offset referenced (may be negative)."""
        return min(ref.offset for stmt in self.statements for ref in stmt.refs())

    def max_index_excl(self, trip: int) -> int:
        """One past the largest element index touched for a given trip count."""
        return max(ref.offset for stmt in self.statements for ref in stmt.refs()) + trip


def validate_loop(loop: Loop) -> None:
    """Check the Section 4.1 simdizability assumptions, raising :class:`IRError`.

    * at least one statement, each a stride-one store of an expression;
    * all references share one uniform element length (no conversions);
    * stored arrays are never loaded and never stored twice (the loop
      must be free of loop-carried dependences — the paper assumes the
      surrounding compiler established this before simdization);
    * runtime scalar variables used in expressions are declared;
    * array extents cover every element the loop touches when the trip
      count is known at compile time.
    """
    if not loop.statements:
        raise IRError("loop has no statements")
    if isinstance(loop.upper, int) and loop.upper <= 0:
        raise IRError(f"loop trip count must be positive, got {loop.upper}")
    if isinstance(loop.upper, str) and not loop.upper.isidentifier():
        raise IRError(f"symbolic trip count {loop.upper!r} is not an identifier")

    kinds = {type(s) for s in loop.statements}
    if kinds == {Statement, Reduction}:
        raise IRError(
            "loops mixing regular statements and reductions are not "
            "simdizable as one unit; split the loop first"
        )

    dtype = loop.statements[0].target.array.dtype
    store_seen: set[str] = set()
    for stmt in loop.statements:
        for ref in stmt.refs() + [stmt.target]:
            if ref.array.dtype != dtype:
                raise IRError(
                    f"mixed element types: {ref.array.name} is {ref.array.dtype}, "
                    f"loop is {dtype} (the paper forbids data conversions)"
                )
        if isinstance(stmt, Reduction):
            if not (stmt.op.associative and stmt.op.commutative):
                raise IRError(
                    f"reduction op {stmt.op.name!r} must be associative and "
                    "commutative"
                )
            if not 0 <= stmt.target.offset < stmt.target.array.length:
                raise IRError(
                    f"reduction target {stmt.target.array.name}"
                    f"[{stmt.target.offset}] outside the array"
                )
        if stmt.target.array.name in store_seen:
            raise IRError(
                f"array {stmt.target.array.name!r} stored by two statements; "
                "output dependences are not supported"
            )
        store_seen.add(stmt.target.array.name)

    overlap = loop.store_arrays() & loop.load_arrays()
    if overlap:
        if loop.has_reductions:
            raise IRError(
                f"arrays {sorted(overlap)} are both accumulated and loaded; "
                "reduction targets must be disjoint from operand streams"
            )
        # Blocked execution tolerates some dependences (same-iteration
        # and self anti dependences); reject only the provably unsafe
        # ones, with the full classification as the diagnostic.
        from repro.deps.analysis import blocking_dependences

        blockers = blocking_dependences(loop.statements)
        if blockers:
            detail = "; ".join(dep.describe() for dep in blockers[:3])
            raise IRError(f"loop-carried dependences block simdization: {detail}")

    declared = set(loop.scalar_vars)
    if isinstance(loop.upper, str):
        declared.add(loop.upper)
    for stmt in loop.statements:
        for node in stmt.expr.walk():
            if isinstance(node, ScalarVar) and node.name not in declared:
                raise IRError(f"undeclared runtime scalar {node.name!r}")
            if isinstance(node, Ref) and node is not stmt.target:
                pass

    if isinstance(loop.upper, int):
        for stmt in loop.statements:
            refs = stmt.loads() if isinstance(stmt, Reduction) else stmt.refs()
            for ref in refs:
                low = ref.offset
                high = ref.offset + loop.upper - 1
                if low < 0 or high >= ref.array.length:
                    raise IRError(
                        f"reference {ref} touches [{low}, {high}] outside "
                        f"array {ref.array.name!r} of length {ref.array.length}"
                    )
