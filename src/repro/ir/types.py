"""Scalar element types and binary operators for the loop IR.

The paper targets SIMD units operating on packed fixed-length vectors
of 1-, 2-, and 4-byte integer elements.  All arithmetic wraps modulo
``2**(8*size)`` exactly like the hardware lanes do, so the scalar
reference executor and the vector interpreter agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IRError


@dataclass(frozen=True)
class DataType:
    """An element type: ``name`` for printing, ``size`` in bytes, signedness.

    ``size`` is the paper's *D*, the uniform data length of all memory
    references in a simdizable loop.
    """

    name: str
    size: int
    signed: bool

    def __post_init__(self) -> None:
        if self.size not in (1, 2, 4, 8):
            raise IRError(f"unsupported element size {self.size}")

    @property
    def bits(self) -> int:
        return self.size * 8

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Reduce ``value`` into this type's representable range (two's complement)."""
        value &= (1 << self.bits) - 1
        if self.signed and value > self.max_value:
            value -= 1 << self.bits
        return value

    def to_bytes(self, value: int) -> bytes:
        """Encode ``value`` as little-endian lane bytes."""
        return (value & ((1 << self.bits) - 1)).to_bytes(self.size, "little")

    def from_bytes(self, data: bytes) -> int:
        """Decode little-endian lane bytes into a Python int of this type."""
        if len(data) != self.size:
            raise IRError(f"expected {self.size} bytes for {self.name}, got {len(data)}")
        return self.wrap(int.from_bytes(data, "little"))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


INT8 = DataType("int8", 1, signed=True)
INT16 = DataType("int16", 2, signed=True)
INT32 = DataType("int32", 4, signed=True)
UINT8 = DataType("uint8", 1, signed=False)
UINT16 = DataType("uint16", 2, signed=False)
UINT32 = DataType("uint32", 4, signed=False)

ALL_TYPES = (INT8, INT16, INT32, UINT8, UINT16, UINT32)

_BY_NAME = {t.name: t for t in ALL_TYPES}
# Friendly aliases used by the mini-C frontend.
_BY_NAME["char"] = INT8
_BY_NAME["short"] = INT16
_BY_NAME["int"] = INT32
_BY_NAME["unsigned char"] = UINT8
_BY_NAME["unsigned short"] = UINT16
_BY_NAME["unsigned int"] = UINT32


def type_by_name(name: str) -> DataType:
    """Look up a :class:`DataType` by canonical or C-style alias name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise IRError(f"unknown element type {name!r}") from None


@dataclass(frozen=True)
class BinaryOp:
    """A two-operand lane operation.

    ``associative``/``commutative`` drive the common-offset
    reassociation optimization (paper Section 5.5, *OffsetReassoc*),
    which may only regroup operands of associative-commutative chains.
    """

    name: str
    symbol: str
    associative: bool
    commutative: bool

    def apply(self, a: int, b: int, dtype: DataType) -> int:
        """Evaluate the operation on two lane values, wrapping like hardware."""
        func = _OP_FUNCS[self.name]
        return dtype.wrap(func(a, b, dtype))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.symbol


def _saturate(value: int, t: DataType) -> int:
    return min(max(value, t.min_value), t.max_value)


_OP_FUNCS = {
    "add": lambda a, b, t: a + b,
    "sub": lambda a, b, t: a - b,
    "mul": lambda a, b, t: a * b,
    "min": lambda a, b, t: min(a, b),
    "max": lambda a, b, t: max(a, b),
    "and": lambda a, b, t: a & b,
    "or": lambda a, b, t: a | b,
    "xor": lambda a, b, t: a ^ b,
    "avg": lambda a, b, t: (a + b) >> 1,
    "sadd": lambda a, b, t: _saturate(a + b, t),
    "ssub": lambda a, b, t: _saturate(a - b, t),
}

ADD = BinaryOp("add", "+", associative=True, commutative=True)
SUB = BinaryOp("sub", "-", associative=False, commutative=False)
MUL = BinaryOp("mul", "*", associative=True, commutative=True)
MIN = BinaryOp("min", "min", associative=True, commutative=True)
MAX = BinaryOp("max", "max", associative=True, commutative=True)
AND = BinaryOp("and", "&", associative=True, commutative=True)
OR = BinaryOp("or", "|", associative=True, commutative=True)
XOR = BinaryOp("xor", "^", associative=True, commutative=True)
AVG = BinaryOp("avg", "avg", associative=False, commutative=True)
# Saturating arithmetic (multimedia's signature ops: vec_adds / paddsb).
# Saturation breaks associativity, so these never participate in
# common-offset reassociation or reductions.
SADD = BinaryOp("sadd", "sadd", associative=False, commutative=True)
SSUB = BinaryOp("ssub", "ssub", associative=False, commutative=False)

ALL_OPS = (ADD, SUB, MUL, MIN, MAX, AND, OR, XOR, AVG, SADD, SSUB)

_OPS_BY_NAME = {op.name: op for op in ALL_OPS}
_OPS_BY_SYMBOL = {op.symbol: op for op in ALL_OPS}


def op_identity(op: BinaryOp, dtype: DataType) -> int:
    """The identity element of an associative-commutative op on ``dtype``.

    Used by reduction vectorization to initialize lane accumulators and
    to mask the lanes of a partial tail block.
    """
    identities = {
        "add": 0,
        "mul": 1,
        "min": dtype.max_value,
        "max": dtype.min_value,
        "and": dtype.wrap(-1) if dtype.signed else dtype.max_value,
        "or": 0,
        "xor": 0,
    }
    try:
        return identities[op.name]
    except KeyError:
        raise IRError(
            f"op {op.name!r} has no identity usable for reductions"
        ) from None


def op_by_name(name: str) -> BinaryOp:
    """Look up a :class:`BinaryOp` by name (``"add"``) or symbol (``"+"``)."""
    op = _OPS_BY_NAME.get(name) or _OPS_BY_SYMBOL.get(name)
    if op is None:
        raise IRError(f"unknown binary op {name!r}")
    return op
