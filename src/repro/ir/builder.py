"""Fluent builder API for constructing loop IR programmatically.

Example
-------
>>> from repro.ir import builder as b
>>> lb = b.LoopBuilder(trip=100)
>>> a = lb.array("a", "int32", 128, align=12)
>>> x = lb.array("b", "int32", 128, align=4)
>>> y = lb.array("c", "int32", 128, align=8)
>>> lb.assign(a[3], x[1] + y[2])
>>> loop = lb.build()
>>> print(loop)
for (i = 0; i < 100; i++) {
  a[i+3] = (b[i+1] + c[i+2]);
}
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IRError
from repro.ir.expr import ArrayDecl, BinOp, Const, Expr, ExprLike, Loop, LoopIndex, Reduction, Ref, ScalarVar, Statement, as_expr
from repro.ir.types import ADD, AND, AVG, MAX, MIN, MUL, OR, SADD, SSUB, SUB, XOR, BinaryOp, DataType, op_by_name, type_by_name


class ExprHandle:
    """Wraps an :class:`Expr` to provide operator overloading."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr):
        self.expr = expr

    def _bin(self, op, other: "ExprLike | ExprHandle", swap: bool = False) -> "ExprHandle":
        rhs = other.expr if isinstance(other, ExprHandle) else as_expr(other)
        left, right = (rhs, self.expr) if swap else (self.expr, rhs)
        return ExprHandle(BinOp(op, left, right))

    def __add__(self, other):
        return self._bin(ADD, other)

    def __radd__(self, other):
        return self._bin(ADD, other, swap=True)

    def __sub__(self, other):
        return self._bin(SUB, other)

    def __rsub__(self, other):
        return self._bin(SUB, other, swap=True)

    def __mul__(self, other):
        return self._bin(MUL, other)

    def __rmul__(self, other):
        return self._bin(MUL, other, swap=True)

    def __and__(self, other):
        return self._bin(AND, other)

    def __or__(self, other):
        return self._bin(OR, other)

    def __xor__(self, other):
        return self._bin(XOR, other)

    def min(self, other):
        return self._bin(MIN, other)

    def max(self, other):
        return self._bin(MAX, other)

    def avg(self, other):
        return self._bin(AVG, other)

    def sadd(self, other):
        """Saturating add (clamps to the element type's range)."""
        return self._bin(SADD, other)

    def ssub(self, other):
        """Saturating subtract (clamps to the element type's range)."""
        return self._bin(SSUB, other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExprHandle({self.expr})"


@dataclass(frozen=True)
class ArrayHandle:
    """An array symbol that can be indexed with ``handle[offset]``."""

    decl: ArrayDecl

    def __getitem__(self, offset: int) -> ExprHandle:
        if not isinstance(offset, int):
            raise IRError("array index must be a constant element offset; the "
                          "loop counter i is implicit (a[k] means a[i+k])")
        return ExprHandle(Ref(self.decl, offset))

    @property
    def name(self) -> str:
        return self.decl.name


class LoopBuilder:
    """Accumulates declarations and statements, then builds a :class:`Loop`."""

    def __init__(self, trip: int | str, name: str = "loop"):
        self._trip = trip
        self._name = name
        self._arrays: dict[str, ArrayDecl] = {}
        self._scalars: list[str] = []
        self._statements: list[Statement] = []

    def array(
        self,
        name: str,
        dtype: DataType | str,
        length: int,
        align: int | None = 0,
    ) -> ArrayHandle:
        """Declare an array; ``align=None`` marks runtime-only base alignment."""
        if isinstance(dtype, str):
            dtype = type_by_name(dtype)
        if name in self._arrays:
            raise IRError(f"array {name!r} declared twice")
        decl = ArrayDecl(name, dtype, length, align)
        self._arrays[name] = decl
        return ArrayHandle(decl)

    def scalar(self, name: str) -> ExprHandle:
        """Declare a loop-invariant runtime scalar operand."""
        if name in self._scalars:
            raise IRError(f"scalar {name!r} declared twice")
        self._scalars.append(name)
        return ExprHandle(ScalarVar(name))

    def const(self, value: int) -> ExprHandle:
        return ExprHandle(Const(value))

    def index_value(self) -> ExprHandle:
        """The loop counter as a lane value (vectorized to iota streams)."""
        return ExprHandle(LoopIndex())

    def assign(self, target: ExprHandle, expr: "ExprHandle | ExprLike") -> None:
        """Append the statement ``target = expr``."""
        if not isinstance(target, ExprHandle) or not isinstance(target.expr, Ref):
            raise IRError("assignment target must be an array reference a[k]")
        rhs = expr.expr if isinstance(expr, ExprHandle) else as_expr(expr)
        self._statements.append(Statement(target.expr, rhs))

    def reduce(
        self,
        target: ArrayHandle,
        index: int,
        op: "BinaryOp | str",
        expr: "ExprHandle | ExprLike",
    ) -> None:
        """Append the reduction ``target[index] op= expr`` (extension)."""
        if isinstance(op, str):
            op = op_by_name(op)
        rhs = expr.expr if isinstance(expr, ExprHandle) else as_expr(expr)
        self._statements.append(Reduction(Ref(target.decl, index), op, rhs))

    def build(self) -> Loop:
        """Validate and return the finished loop."""
        return Loop(
            upper=self._trip,
            statements=list(self._statements),
            name=self._name,
            scalar_vars=tuple(self._scalars),
        )


def figure1_loop(trip: int = 100, length: int = 128) -> Loop:
    """The paper's running example (Figure 1): ``a[i+3] = b[i+1] + c[i+2]``.

    With 16-byte-aligned int32 array bases, the three references have
    byte offsets 12, 4 and 8 — all misaligned, so no peeling scheme can
    simdize this loop; it exercises the paper's core contribution.
    """
    lb = LoopBuilder(trip=trip, name="figure1")
    a = lb.array("a", "int32", length)
    b = lb.array("b", "int32", length)
    c = lb.array("c", "int32", length)
    lb.assign(a[3], b[1] + c[2])
    return lb.build()
