"""Exception hierarchy for the simdal reproduction library.

Every error raised by the library derives from :class:`SimdalError` so
that callers can catch library failures with a single ``except`` clause
while still distinguishing the phase that failed.
"""

from __future__ import annotations


class SimdalError(Exception):
    """Base class for all errors raised by this library."""


class IRError(SimdalError):
    """Malformed scalar loop IR (bad types, bad references, bad shapes)."""


class FrontendError(SimdalError):
    """Base class for mini-C frontend errors."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        if line is not None:
            message = f"{line}:{col if col is not None else '?'}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """Invalid character or token in mini-C source."""


class ParseError(FrontendError):
    """Syntactically invalid mini-C source."""


class SemanticError(FrontendError):
    """Mini-C source violates the Section 4.1 loop-shape assumptions."""


class AlignmentError(SimdalError):
    """Alignment analysis failure (e.g. offset outside [0, V))."""


class GraphError(SimdalError):
    """Invalid data reorganization graph (violates (C.2) or (C.3))."""


class PolicyError(SimdalError):
    """A shift-placement policy cannot be applied to the given graph.

    The canonical case is requesting the eager/lazy/dominant policies
    when some stream offset is only known at runtime (paper Section 4.4
    requires the zero-shift policy there).
    """


class CodegenError(SimdalError):
    """SIMD code generation failure."""


class MachineError(SimdalError):
    """Virtual SIMD machine failure (bad address, unbound array, ...)."""


class VerificationError(SimdalError):
    """Simdized execution did not match the scalar reference execution."""


class BenchError(SimdalError):
    """Benchmark synthesis or harness failure."""


class ExecutionError(SimdalError):
    """A measurement's execution failed on every tier (or timed out)."""


class WorkerError(SimdalError):
    """A sweep worker process died (or its pool broke) beyond recovery."""


class CacheError(SimdalError):
    """Disk-cache layer failure that could not be degraded silently."""


class SweepInterrupted(SimdalError):
    """A checkpointed sweep was stopped by SIGTERM/SIGINT.

    Raised at a journal-safe point (between supervised tasks, never
    mid-write), so the checkpoint holds every completed config intact
    and a ``--resume`` run reproduces the table byte-identically.  The
    CLI maps it to exit code 3: the sweep did not finish, but nothing
    was lost.
    """


class ServeError(SimdalError):
    """A request the serving layer could not turn into a clean response
    (bad payload, unknown endpoint parameters)."""


class FaultInjected(SimdalError):
    """An error injected by the ``REPRO_FAULT`` test harness.

    Carries the ``phase`` the fault was declared for so recovery code
    can attribute the failure exactly like a real one.
    """

    def __init__(self, phase: str, message: str | None = None):
        self.phase = phase
        super().__init__(message or f"injected fault at phase {phase!r}")
