"""SSE (x86, SSSE3/SSE4.1) intrinsics backend for the C exporter.

x86 SSE is the other major 16-byte SIMD family the paper discusses
("SSE2 supports some limited form of misaligned memory accesses which
incurs additional overhead"); emitting the *aligned-access + data
reorganization* style code for it exercises exactly the paper's
scheme on hardware everyone has.  Mappings:

=============== ====================================================
generic op      SSE realization
=============== ====================================================
vload           ``_mm_load_si128`` on the truncated address
vstore          ``_mm_store_si128`` on the truncated address
vshiftpair      ``_mm_alignr_epi8(b, a, k)`` for compile-time k
                (note the operand order: the *first* intrinsic operand
                supplies the high bytes); a two-vector stack buffer +
                unaligned load helper for runtime amounts
vsplice         byte-mask select helper (``pcmpgtb`` + and/andnot/or)
vsplat          ``_mm_set1_epi{8,16,32}``
viota           splat of the window base + a {0,1,2,…} constant
arith           ``_mm_add/sub/mullo/min/max/and/or/xor`` by width
=============== ====================================================

``avg`` and 8-bit ``mul`` have no exact SSE equivalent with our lane
semantics and are rejected with a clear error.
"""

from __future__ import annotations

from repro.errors import CodegenError
from repro.ir.types import DataType
from repro.export.cgen import Backend

_SUFFIX = {1: "epi8", 2: "epi16", 4: "epi32"}


class SseBackend(Backend):
    name = "sse"
    vector_type = "__m128i"

    def headers(self) -> list[str]:
        return ["#include <tmmintrin.h>  /* SSSE3: _mm_alignr_epi8 */",
                "#include <smmintrin.h>  /* SSE4.1: pmin/pmax/pmulld */"]

    def helpers(self, V: int, dtype: DataType) -> str:
        if V != 16:
            raise CodegenError("the SSE backend targets 16-byte vectors")
        return r"""
static inline __m128i simdal_shiftpair_rt(__m128i a, __m128i b, int64_t k) {
    /* select bytes k..k+15 of a++b for a runtime k in [0, 16] */
    uint8_t buf[32];
    _mm_storeu_si128((__m128i *)buf, a);
    _mm_storeu_si128((__m128i *)(buf + 16), b);
    return _mm_loadu_si128((const __m128i *)(buf + k));
}

static inline __m128i simdal_splice(__m128i a, __m128i b, int64_t point) {
    /* first `point` bytes from a, the rest from b (point in [0, 16]) */
    const __m128i lanes = _mm_setr_epi8(0, 1, 2, 3, 4, 5, 6, 7,
                                        8, 9, 10, 11, 12, 13, 14, 15);
    __m128i mask = _mm_cmpgt_epi8(_mm_set1_epi8((char)point), lanes);
    return _mm_or_si128(_mm_and_si128(mask, a), _mm_andnot_si128(mask, b));
}
"""

    def load(self, ptr: str) -> str:
        return f"_mm_load_si128((const __m128i *){ptr})"

    def store(self, ptr: str, value: str) -> str:
        return f"_mm_store_si128((__m128i *){ptr}, {value})"

    def shiftpair(self, a: str, b: str, shift: str, const_shift: int | None) -> str:
        if const_shift is not None:
            if const_shift == 0:
                return a
            if const_shift == 16:
                return b
            # alignr concatenates first:high second:low; our v1 is low.
            return f"_mm_alignr_epi8({b}, {a}, {const_shift})"
        return f"simdal_shiftpair_rt({a}, {b}, {shift})"

    def splice(self, a: str, b: str, point: str) -> str:
        return f"simdal_splice({a}, {b}, {point})"

    def splat(self, value: str, dtype: DataType) -> str:
        suffix = _SUFFIX[dtype.size]
        cast = {1: "(char)", 2: "(short)", 4: "(int)"}[dtype.size]
        return f"_mm_set1_{suffix}({cast}({value}))"

    def iota(self, counter_expr: str, dtype: DataType, V: int) -> str:
        B = V // dtype.size
        lanes = ", ".join(str(k) for k in range(B))
        setr = {1: "_mm_setr_epi8", 2: "_mm_setr_epi16", 4: "_mm_setr_epi32"}[dtype.size]
        suffix = _SUFFIX[dtype.size]
        # window base m*B with m = floor(counter / B); counters can be
        # negative in prologue displacements, so use a floor division.
        m = (f"(({counter_expr}) >= 0 ? ({counter_expr}) / {B} "
             f": ~((~({counter_expr})) / {B}))")
        base = self.splat(f"({m}) * {B}", dtype)
        return f"_mm_add_{suffix}({base}, {setr}({lanes}))"

    def binop(self, op_name: str, a: str, b: str, dtype: DataType) -> str:
        size = dtype.size
        suffix = _SUFFIX[size]
        if op_name in ("and", "or", "xor"):
            return f"_mm_{op_name}_si128({a}, {b})"
        if op_name in ("add", "sub"):
            return f"_mm_{op_name}_{suffix}({a}, {b})"
        if op_name == "mul":
            if size == 2:
                return f"_mm_mullo_epi16({a}, {b})"
            if size == 4:
                return f"_mm_mullo_epi32({a}, {b})"
            raise CodegenError("8-bit lane multiply has no exact SSE mapping")
        if op_name in ("min", "max"):
            sign = "epi" if dtype.signed else "epu"
            return f"_mm_{op_name}_{sign}{size * 8}({a}, {b})"
        if op_name in ("sadd", "ssub"):
            if size == 4:
                raise CodegenError("SSE has no 32-bit saturating add/sub")
            mn = "adds" if op_name == "sadd" else "subs"
            sign = "epi" if dtype.signed else "epu"
            return f"_mm_{mn}_{sign}{size * 8}({a}, {b})"
        if op_name == "avg":
            raise CodegenError(
                "avg has floor semantics here; SSE pavg rounds up — refusing "
                "to emit silently different code"
            )
        raise CodegenError(f"no SSE mapping for op {op_name!r}")
