"""C code export: AltiVec and SSE intrinsics backends + cross-validation."""

from repro.export.altivec import AltivecBackend
from repro.export.cgen import Backend, CEmitter
from repro.export.portable import PortableBackend
from repro.export.sse import SseBackend
from repro.export.validate import (
    BACKENDS,
    CrossValidationReport,
    cross_validate,
    export_c,
    find_compiler,
)

__all__ = [
    "AltivecBackend", "Backend", "CEmitter", "PortableBackend", "SseBackend",
    "BACKENDS", "CrossValidationReport", "cross_validate", "export_c",
    "find_compiler",
]
