"""Portable plain-C backend for the C exporter — and the native tier.

Unlike the SSE/AltiVec backends, which map vector operations onto a
specific ISA's intrinsics (and must *reject* ops the ISA cannot express
exactly, e.g. SSE ``pavg`` rounds up where our ``avg`` floors), this
backend emits standard C that any GCC/Clang-compatible compiler accepts
on any host: a vector is a ``struct { uint8_t b[V]; }`` and every op is
a per-lane loop with the virtual machine's exact semantics —

* ``add``/``sub``/``mul`` are modular on the unsigned lane bits
  (widened through ``uint64_t`` so C integer promotion can never make
  an intermediate product undefined);
* ``min``/``max`` compare signed or unsigned per the element type;
* ``avg`` widens per the element signedness and floors
  (``(a + b) >> 1`` on ``int64_t`` — an arithmetic shift on GCC/Clang);
* ``sadd``/``ssub`` widen, clip to the element range, and re-wrap;
* ``viota`` floor-divides the (possibly negative) counter exactly like
  :func:`repro.machine.vec.viota`.

At ``-O3`` the compilers auto-vectorize these lane loops, so the native
execution tier gets real SIMD instructions without this module ever
naming an ISA.  Every op is expressible, so — unlike SSE/AltiVec —
``CodegenError`` is never raised for an op/dtype combination, which is
what the native tier needs from its default dialect.

Little-endian hosts only (lane order in memory matters); the emitted
unit refuses to compile elsewhere rather than silently diverge.

The native tier has a second, preferred flavour of the same helper
set: :func:`simd_helpers` maps ``simdal_vec`` onto GCC/Clang
``__attribute__((vector_size(V)))`` types — true SIMD expressions,
``__builtin_shufflevector`` realignment, and
``__builtin_assume_aligned`` loads/stores — with byte-identical
semantics.  :func:`kernel_unit_prelude` selects between the two; the
exporter proper (``repro export``) always uses the scalar-lane
backend, which compiles anywhere.
"""

from __future__ import annotations

from repro.errors import CodegenError
from repro.ir.types import DataType
from repro.export.cgen import Backend, C_TYPES


class PortableBackend(Backend):
    name = "portable"
    vector_type = "simdal_vec"

    def headers(self) -> list[str]:
        return []

    def helpers(self, V: int, dtype: DataType) -> str:
        if V % dtype.size != 0:
            raise CodegenError(
                f"vector length {V} is not a multiple of lane size {dtype.size}"
            )
        B = V // dtype.size
        lane = C_TYPES[dtype.name]
        ulane = f"uint{dtype.size * 8}_t"
        lo, hi = dtype.min_value, dtype.max_value
        if dtype.signed:
            widen = f"(int64_t)(simdal_lane)"
        else:
            widen = f"(int64_t)"
        return f"""
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ != __ORDER_LITTLE_ENDIAN__
#error "the simdal portable backend assumes a little-endian host"
#endif

#define SIMDAL_V {V}
#define SIMDAL_B {B}
typedef {lane} simdal_lane;
typedef {ulane} simdal_ulane;
typedef struct {{ uint8_t b[SIMDAL_V]; }} simdal_vec;

static inline simdal_ulane simdal_lane_get(const uint8_t *p, int l) {{
    simdal_ulane x;
    memcpy(&x, p + (size_t)l * sizeof x, sizeof x);
    return x;
}}

static inline void simdal_lane_put(uint8_t *p, int l, simdal_ulane x) {{
    memcpy(p + (size_t)l * sizeof x, &x, sizeof x);
}}

static inline simdal_vec simdal_load(const void *p) {{
    simdal_vec v;
    memcpy(v.b, p, SIMDAL_V);
    return v;
}}

static inline void simdal_store(void *p, simdal_vec v) {{
    memcpy(p, v.b, SIMDAL_V);
}}

static inline simdal_vec simdal_shiftpair(simdal_vec a, simdal_vec b,
                                          int64_t k) {{
    /* bytes k..k+V-1 of the concatenation a++b, k in [0, V] */
    uint8_t buf[2 * SIMDAL_V];
    simdal_vec r;
    memcpy(buf, a.b, SIMDAL_V);
    memcpy(buf + SIMDAL_V, b.b, SIMDAL_V);
    memcpy(r.b, buf + k, SIMDAL_V);
    return r;
}}

static inline simdal_vec simdal_splice(simdal_vec a, simdal_vec b,
                                       int64_t point) {{
    /* first `point` bytes from a, the rest from b (point in [0, V]) */
    simdal_vec r;
    for (int l = 0; l < SIMDAL_V; l++)
        r.b[l] = (int64_t)l < point ? a.b[l] : b.b[l];
    return r;
}}

static inline simdal_vec simdal_splat(int64_t x) {{
    simdal_vec r;
    simdal_ulane z = (simdal_ulane)x;
    for (int l = 0; l < SIMDAL_B; l++)
        simdal_lane_put(r.b, l, z);
    return r;
}}

static inline simdal_vec simdal_iota(int64_t x) {{
    /* lanes of the V-aligned window holding element counter x; the
       counter can be negative in prologue displacements, so divide
       with floor semantics */
    int64_t m = x >= 0 ? x / SIMDAL_B : ~((~x) / SIMDAL_B);
    simdal_vec r;
    for (int l = 0; l < SIMDAL_B; l++)
        simdal_lane_put(r.b, l, (simdal_ulane)(m * SIMDAL_B + l));
    return r;
}}

static inline simdal_vec simdal_op_add(simdal_vec a, simdal_vec b) {{
    simdal_vec r;
    for (int l = 0; l < SIMDAL_B; l++) {{
        uint64_t x = simdal_lane_get(a.b, l), y = simdal_lane_get(b.b, l);
        simdal_lane_put(r.b, l, (simdal_ulane)(x + y));
    }}
    return r;
}}

static inline simdal_vec simdal_op_sub(simdal_vec a, simdal_vec b) {{
    simdal_vec r;
    for (int l = 0; l < SIMDAL_B; l++) {{
        uint64_t x = simdal_lane_get(a.b, l), y = simdal_lane_get(b.b, l);
        simdal_lane_put(r.b, l, (simdal_ulane)(x - y));
    }}
    return r;
}}

static inline simdal_vec simdal_op_mul(simdal_vec a, simdal_vec b) {{
    simdal_vec r;
    for (int l = 0; l < SIMDAL_B; l++) {{
        uint64_t x = simdal_lane_get(a.b, l), y = simdal_lane_get(b.b, l);
        simdal_lane_put(r.b, l, (simdal_ulane)(x * y));
    }}
    return r;
}}

static inline simdal_vec simdal_op_and(simdal_vec a, simdal_vec b) {{
    simdal_vec r;
    for (int l = 0; l < SIMDAL_V; l++)
        r.b[l] = a.b[l] & b.b[l];
    return r;
}}

static inline simdal_vec simdal_op_or(simdal_vec a, simdal_vec b) {{
    simdal_vec r;
    for (int l = 0; l < SIMDAL_V; l++)
        r.b[l] = a.b[l] | b.b[l];
    return r;
}}

static inline simdal_vec simdal_op_xor(simdal_vec a, simdal_vec b) {{
    simdal_vec r;
    for (int l = 0; l < SIMDAL_V; l++)
        r.b[l] = a.b[l] ^ b.b[l];
    return r;
}}

static inline simdal_vec simdal_op_min(simdal_vec a, simdal_vec b) {{
    simdal_vec r;
    for (int l = 0; l < SIMDAL_B; l++) {{
        simdal_ulane x = simdal_lane_get(a.b, l), y = simdal_lane_get(b.b, l);
        int64_t wx = {widen}x, wy = {widen}y;
        simdal_lane_put(r.b, l, wx < wy ? x : y);
    }}
    return r;
}}

static inline simdal_vec simdal_op_max(simdal_vec a, simdal_vec b) {{
    simdal_vec r;
    for (int l = 0; l < SIMDAL_B; l++) {{
        simdal_ulane x = simdal_lane_get(a.b, l), y = simdal_lane_get(b.b, l);
        int64_t wx = {widen}x, wy = {widen}y;
        simdal_lane_put(r.b, l, wx > wy ? x : y);
    }}
    return r;
}}

static inline simdal_vec simdal_op_avg(simdal_vec a, simdal_vec b) {{
    /* floor average on the widened lane values (arithmetic shift) */
    simdal_vec r;
    for (int l = 0; l < SIMDAL_B; l++) {{
        int64_t wx = {widen}simdal_lane_get(a.b, l);
        int64_t wy = {widen}simdal_lane_get(b.b, l);
        simdal_lane_put(r.b, l, (simdal_ulane)((wx + wy) >> 1));
    }}
    return r;
}}

static inline simdal_vec simdal_op_sadd(simdal_vec a, simdal_vec b) {{
    simdal_vec r;
    for (int l = 0; l < SIMDAL_B; l++) {{
        int64_t w = {widen}simdal_lane_get(a.b, l)
                  + {widen}simdal_lane_get(b.b, l);
        if (w < {lo}) w = {lo};
        if (w > {hi}) w = {hi};
        simdal_lane_put(r.b, l, (simdal_ulane)w);
    }}
    return r;
}}

static inline simdal_vec simdal_op_ssub(simdal_vec a, simdal_vec b) {{
    simdal_vec r;
    for (int l = 0; l < SIMDAL_B; l++) {{
        int64_t w = {widen}simdal_lane_get(a.b, l)
                  - {widen}simdal_lane_get(b.b, l);
        if (w < {lo}) w = {lo};
        if (w > {hi}) w = {hi};
        simdal_lane_put(r.b, l, (simdal_ulane)w);
    }}
    return r;
}}

/* Mode-compat aliases: the kernel emitter is emitter-mode-agnostic
   and always writes the aligned (_a) and constant-amount (_c) forms;
   in scalar-lane mode they are the plain helpers. */
#define simdal_load_a simdal_load
#define simdal_store_a simdal_store
#define simdal_shiftpair_c(a, b, k) simdal_shiftpair((a), (b), (k))
#define simdal_splice_c(a, b, p) simdal_splice((a), (b), (p))
"""

    def load(self, ptr: str) -> str:
        return f"simdal_load({ptr})"

    def store(self, ptr: str, value: str) -> str:
        return f"simdal_store({ptr}, {value})"

    def shiftpair(self, a: str, b: str, shift: str, const_shift: int | None) -> str:
        if const_shift == 0:
            return a
        return f"simdal_shiftpair({a}, {b}, {shift})"

    def splice(self, a: str, b: str, point: str) -> str:
        return f"simdal_splice({a}, {b}, {point})"

    def splat(self, value: str, dtype: DataType) -> str:
        return f"simdal_splat((int64_t)({value}))"

    def iota(self, counter_expr: str, dtype: DataType, V: int) -> str:
        return f"simdal_iota({counter_expr})"

    def binop(self, op_name: str, a: str, b: str, dtype: DataType) -> str:
        known = ("add", "sub", "mul", "and", "or", "xor", "min", "max",
                 "avg", "sadd", "ssub")
        if op_name not in known:
            raise CodegenError(f"no portable mapping for op {op_name!r}")
        return f"simdal_op_{op_name}({a}, {b})"


def simd_helpers(V: int, dtype: DataType) -> str:
    """The vector-extension twin of :meth:`PortableBackend.helpers`.

    Same helper names, same exact semantics, but ``simdal_vec`` is a
    GCC/Clang ``__attribute__((vector_size(V)))`` unsigned-lane vector
    so every op is a single vector expression the compiler lowers to
    real SIMD instructions instead of an auto-vectorization candidate.
    Differences that matter for exactness:

    * arithmetic runs on the *unsigned* lane vector (element-wise wrap
      is defined); the signed view ``simdal_svec`` appears only in
      comparisons and arithmetic right shifts, mirroring the scalar
      helpers' widen-then-wrap behaviour bit for bit —
      ``avg`` uses the carry-free identity ``(a & b) + ((a ^ b) >> 1)``
      (exact floor average, signed via arithmetic shift), ``sadd`` /
      ``ssub`` use overflow-mask saturation;
    * ``simdal_load_a``/``simdal_store_a`` wrap the pointer in
      ``__builtin_assume_aligned(p, V)`` — the native tier only emits
      them for addresses that are *provably* V-aligned (window bases
      and section bases are truncated to V, and every buffer base
      comes from :mod:`repro.machine.alignedbuf`);
    * constant-amount ``simdal_shiftpair_c``/``simdal_splice_c`` are
      ``__builtin_shufflevector`` macros (indices must be literals);
      the runtime-amount forms go through an aligned double-width
      buffer, which the optimizer folds to byte shifts.

    Lane order is memory order on a little-endian host (enforced by
    the same preprocessor guard as the scalar helpers), so results are
    byte-identical to the scalar-lane emitter and the bytes oracle.
    """
    if V % dtype.size != 0:
        raise CodegenError(
            f"vector length {V} is not a multiple of lane size {dtype.size}"
        )
    B = V // dtype.size
    lane = C_TYPES[dtype.name]
    ulane = f"uint{dtype.size * 8}_t"
    slane = f"int{dtype.size * 8}_t"
    hi = dtype.max_value
    sign_shift = dtype.size * 8 - 1
    iota_idx = ", ".join(str(l) for l in range(B))
    splice_idx = ", ".join(str(l) for l in range(V))
    shift_sel = ", ".join(f"(k) + {l}" for l in range(V))
    splice_sel = ", ".join(f"((p) > {l} ? {l} : SIMDAL_V + {l})"
                           for l in range(V))
    if dtype.signed:
        cmp_cast = "(simdal_svec)"
        avg = """\
    simdal_svec sa = (simdal_svec)a, sb = (simdal_svec)b;
    return (simdal_vec)((sa & sb) + ((sa ^ sb) >> 1));"""
        sadd = f"""\
    simdal_vec s = a + b;
    simdal_svec ovf = (simdal_svec)(~(a ^ b) & (s ^ a)) >> {sign_shift};
    simdal_vec sat = ((simdal_vec)((simdal_svec)a >> {sign_shift}))
                     ^ (simdal_ulane){hi};
    return (sat & (simdal_vec)ovf) | (s & ~(simdal_vec)ovf);"""
        ssub = f"""\
    simdal_vec d = a - b;
    simdal_svec ovf = (simdal_svec)((a ^ b) & (d ^ a)) >> {sign_shift};
    simdal_vec sat = ((simdal_vec)((simdal_svec)a >> {sign_shift}))
                     ^ (simdal_ulane){hi};
    return (sat & (simdal_vec)ovf) | (d & ~(simdal_vec)ovf);"""
    else:
        cmp_cast = ""
        avg = "    return (a & b) + ((a ^ b) >> 1);"
        sadd = """\
    simdal_vec s = a + b;
    return s | (simdal_vec)(s < a);"""
        ssub = """\
    simdal_vec d = a - b;
    return d & (simdal_vec)~(a < b);"""
    return f"""
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ != __ORDER_LITTLE_ENDIAN__
#error "the simdal portable backend assumes a little-endian host"
#endif

#define SIMDAL_V {V}
#define SIMDAL_B {B}
typedef {lane} simdal_lane;
typedef {ulane} simdal_ulane;
typedef {ulane} simdal_vec __attribute__((vector_size(SIMDAL_V)));
typedef {slane} simdal_svec __attribute__((vector_size(SIMDAL_V)));
typedef uint8_t simdal_bvec __attribute__((vector_size(SIMDAL_V)));
typedef int8_t simdal_sbvec __attribute__((vector_size(SIMDAL_V)));

static inline simdal_vec simdal_load(const void *p) {{
    simdal_vec v;
    memcpy(&v, p, SIMDAL_V);
    return v;
}}

static inline void simdal_store(void *p, simdal_vec v) {{
    memcpy(p, &v, SIMDAL_V);
}}

/* Aligned forms: the caller guarantees p is V-aligned (window and
   section bases are V-truncated offsets into 64-byte-aligned buffers);
   the promise lets -O3 emit aligned vector moves. */
static inline simdal_vec simdal_load_a(const void *p) {{
    simdal_vec v;
    memcpy(&v, __builtin_assume_aligned(p, SIMDAL_V), SIMDAL_V);
    return v;
}}

static inline void simdal_store_a(void *p, simdal_vec v) {{
    memcpy(__builtin_assume_aligned(p, SIMDAL_V), &v, SIMDAL_V);
}}

static inline simdal_vec simdal_shiftpair(simdal_vec a, simdal_vec b,
                                          int64_t k) {{
    /* bytes k..k+V-1 of the concatenation a++b, k in [0, V] */
    uint8_t buf[2 * SIMDAL_V] __attribute__((aligned(SIMDAL_V)));
    simdal_store_a(buf, a);
    simdal_store_a(buf + SIMDAL_V, b);
    return simdal_load(buf + k);
}}

/* Constant-shift form: a single byte shuffle (vperm/palignr class). */
#define simdal_shiftpair_c(a, b, k) \\
    ((simdal_vec)__builtin_shufflevector( \\
        (simdal_bvec)(a), (simdal_bvec)(b), {shift_sel}))

static const simdal_bvec simdal_splice_idx = {{{splice_idx}}};

static inline simdal_vec simdal_splice(simdal_vec a, simdal_vec b,
                                       int64_t point) {{
    /* first `point` bytes from a, the rest from b (point in [0, V]) */
    simdal_sbvec m = (simdal_sbvec)(simdal_splice_idx < (uint8_t)point);
    return (simdal_vec)(((simdal_bvec)a & (simdal_bvec)m)
                        | ((simdal_bvec)b & ~(simdal_bvec)m));
}}

/* Constant-point form: a compile-time blend. */
#define simdal_splice_c(a, b, p) \\
    ((simdal_vec)__builtin_shufflevector( \\
        (simdal_bvec)(a), (simdal_bvec)(b), {splice_sel}))

static inline simdal_vec simdal_splat(int64_t x) {{
    return ((simdal_vec){{0}}) + (simdal_ulane)x;
}}

static const simdal_vec simdal_iota_idx = {{{iota_idx}}};

static inline simdal_vec simdal_iota(int64_t x) {{
    /* lanes of the V-aligned window holding element counter x; the
       counter can be negative in prologue displacements, so divide
       with floor semantics */
    int64_t m = x >= 0 ? x / SIMDAL_B : ~((~x) / SIMDAL_B);
    return simdal_splat(m * SIMDAL_B) + simdal_iota_idx;
}}

static inline simdal_vec simdal_op_add(simdal_vec a, simdal_vec b) {{
    return a + b;
}}

static inline simdal_vec simdal_op_sub(simdal_vec a, simdal_vec b) {{
    return a - b;
}}

static inline simdal_vec simdal_op_mul(simdal_vec a, simdal_vec b) {{
    return a * b;
}}

static inline simdal_vec simdal_op_and(simdal_vec a, simdal_vec b) {{
    return a & b;
}}

static inline simdal_vec simdal_op_or(simdal_vec a, simdal_vec b) {{
    return a | b;
}}

static inline simdal_vec simdal_op_xor(simdal_vec a, simdal_vec b) {{
    return a ^ b;
}}

static inline simdal_vec simdal_op_min(simdal_vec a, simdal_vec b) {{
    simdal_svec m = (simdal_svec)({cmp_cast}a < {cmp_cast}b);
    return (a & (simdal_vec)m) | (b & ~(simdal_vec)m);
}}

static inline simdal_vec simdal_op_max(simdal_vec a, simdal_vec b) {{
    simdal_svec m = (simdal_svec)({cmp_cast}a > {cmp_cast}b);
    return (a & (simdal_vec)m) | (b & ~(simdal_vec)m);
}}

static inline simdal_vec simdal_op_avg(simdal_vec a, simdal_vec b) {{
    /* floor average via the carry-free identity (exact vs widening) */
{avg}
}}

static inline simdal_vec simdal_op_sadd(simdal_vec a, simdal_vec b) {{
{sadd}
}}

static inline simdal_vec simdal_op_ssub(simdal_vec a, simdal_vec b) {{
{ssub}
}}
"""


def kernel_unit_prelude(V: int, dtype: DataType, simd: bool = False) -> str:
    """The self-contained prelude of a steady-kernel translation unit.

    Standard includes plus the full helper block for one ``(V, dtype)``
    pair — the scalar-lane helpers by default, or the vector-extension
    helpers (:func:`simd_helpers`) when ``simd`` is true.  The kernel
    emitter's output is mode-agnostic (both helper sets export the same
    names, including the ``_a`` aligned and ``_c`` constant-amount
    forms), so the emitter mode lives entirely in this prelude and in
    the disk-cache key.  The helper names (``simdal_vec``, ``simdal_load``, …) are
    fixed and dtype-parameterized, so one prelude serves *every* kernel
    sharing the pair — the native compile pipeline batches all such
    kernels into a single ``.c`` file behind one prelude and compiles
    many signatures with one ``cc`` invocation.  Kernels with different
    lane types must land in different translation units (the typedefs
    would collide); all helpers are ``static inline`` so the resulting
    objects link together without symbol clashes.

    Each signature contributes three exported functions: the steady
    kernel ``simdal_steady_<digest>``, the whole-run driver
    ``simdal_run_<digest>`` (prologue/epilogue sections plus the
    steady call), and the class batch driver
    ``simdal_steady_batch_<digest>`` whose row loop calls the run
    driver once per config.  ``SIMDAL_NOINLINE`` marks the steady
    kernel and run driver so ``cc -O3`` optimizes each exported body
    exactly once instead of re-inlining the steady loop into every
    caller — the drivers' win is fewer ctypes crossings, not inlining,
    and duplicated inlining made batched translation units ~6x slower
    to compile.
    """
    helpers = simd_helpers(V, dtype) if simd \
        else PortableBackend().helpers(V, dtype)
    mode = "vector-ext" if simd else "scalar-lane"
    return (
        f"/* generated by simdal: steady-kernel translation unit "
        f"({mode}) */\n"
        "#include <stdint.h>\n"
        "#include <string.h>\n"
        "#if defined(__GNUC__) || defined(__clang__)\n"
        "#define SIMDAL_NOINLINE __attribute__((noinline))\n"
        "#else\n"
        "#define SIMDAL_NOINLINE\n"
        "#endif\n"
        + helpers.rstrip()
        + "\n"
    )
