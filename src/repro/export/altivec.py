"""AltiVec/VMX intrinsics backend for the C exporter.

This is the paper's own target ISA: the generic reorganization ops map
onto ``vec_perm`` (byte permute of two vectors), ``vec_sel``
(bit select), and ``vec_splat(s)`` exactly as Section 2.2 describes.
Compile-time shift amounts use ``vec_sld`` (shift left double by
octet immediate); runtime amounts build the permute vector by adding a
splat of the amount to the byte-index literal ``(0, 1, …, 15)`` — the
construction the paper spells out for ``vshiftpair``.

Emitted code targets big-endian classic AltiVec semantics and is not
compiled in this repository's test environment (x86); structural tests
keep it well-formed and the SSE backend provides the executable
cross-validation.
"""

from __future__ import annotations

from repro.errors import CodegenError
from repro.ir.types import DataType
from repro.export.cgen import Backend

_VEC_TYPES = {
    "int8": "vector signed char",
    "int16": "vector signed short",
    "int32": "vector signed int",
    "uint8": "vector unsigned char",
    "uint16": "vector unsigned short",
    "uint32": "vector unsigned int",
}


class AltivecBackend(Backend):
    name = "altivec"
    vector_type = "vector unsigned char"

    def headers(self) -> list[str]:
        return ["#include <altivec.h>"]

    def helpers(self, V: int, dtype: DataType) -> str:
        if V != 16:
            raise CodegenError("AltiVec vectors are 16 bytes")
        return r"""
static const vector unsigned char simdal_bytes =
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};

static inline vector unsigned char
simdal_shiftpair_rt(vector unsigned char a, vector unsigned char b, long k) {
    /* permute vector = splat(k) + (0..15), paper Section 2.2 */
    vector unsigned char perm =
        vec_add(vec_splats((unsigned char)k), simdal_bytes);
    return vec_perm(a, b, perm);
}

static inline vector unsigned char
simdal_splice(vector unsigned char a, vector unsigned char b, long point) {
    /* mask = bytes < point select a; paper Section 2.2 (vec_sel) */
    vector unsigned char mask =
        (vector unsigned char)vec_cmplt(simdal_bytes,
                                        vec_splats((unsigned char)point));
    return vec_sel(b, a, mask);
}
"""

    def _cast(self, expr: str, dtype: DataType) -> str:
        return f"(({_VEC_TYPES[dtype.name]}){expr})"

    def _uncast(self, expr: str) -> str:
        return f"((vector unsigned char){expr})"

    def load(self, ptr: str) -> str:
        return f"vec_ld(0, (const unsigned char *){ptr})"

    def store(self, ptr: str, value: str) -> str:
        return f"vec_st({value}, 0, (unsigned char *){ptr})"

    def shiftpair(self, a: str, b: str, shift: str, const_shift: int | None) -> str:
        if const_shift is not None:
            if const_shift == 0:
                return a
            if const_shift == 16:
                return b
            return f"vec_sld({a}, {b}, {const_shift})"
        return f"simdal_shiftpair_rt({a}, {b}, {shift})"

    def splice(self, a: str, b: str, point: str) -> str:
        return f"simdal_splice({a}, {b}, {point})"

    def splat(self, value: str, dtype: DataType) -> str:
        ctype = {1: "signed char", 2: "signed short", 4: "signed int"}[dtype.size]
        if not dtype.signed:
            ctype = "unsigned" + ctype[len("signed"):]
        return self._uncast(f"vec_splats(({ctype})({value}))")

    def iota(self, counter_expr: str, dtype: DataType, V: int) -> str:
        B = V // dtype.size
        m = (f"(({counter_expr}) >= 0 ? ({counter_expr}) / {B} "
             f": ~((~({counter_expr})) / {B}))")
        base = self._cast(self.splat(f"({m}) * {B}", dtype), dtype)
        lanes = ", ".join(str(k) for k in range(B))
        literal = f"(({_VEC_TYPES[dtype.name]}){{{lanes}}})"
        return self._uncast(f"vec_add({base}, {literal})")

    def binop(self, op_name: str, a: str, b: str, dtype: DataType) -> str:
        ca, cb = self._cast(a, dtype), self._cast(b, dtype)
        names = {"add": "vec_add", "sub": "vec_sub", "mul": "vec_mul",
                 "min": "vec_min", "max": "vec_max", "and": "vec_and",
                 "or": "vec_or", "xor": "vec_xor",
                 "sadd": "vec_adds", "ssub": "vec_subs"}
        if op_name == "avg":
            raise CodegenError(
                "avg has floor semantics here; vec_avg rounds up — refusing "
                "to emit silently different code"
            )
        if op_name not in names:
            raise CodegenError(f"no AltiVec mapping for op {op_name!r}")
        return self._uncast(f"{names[op_name]}({ca}, {cb})")
