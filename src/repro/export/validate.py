"""Compile-and-run cross-validation of exported C code.

The strongest evidence a reproduction can offer: the same simdized
program is executed twice —

* by the Python virtual SIMD machine, against the scalar reference
  (byte-verified as everywhere else), and
* as real SSE machine code: the exported C translation unit is
  compiled with a host C compiler and run on an arena whose array
  placement reproduces the virtual machine's base residues exactly;
  the resulting memory image must equal the scalar reference's,
  byte for byte.

Any divergence between the paper's algorithms as modelled here and
their behaviour on actual 16-byte SIMD hardware shows up as a
mismatch.  Used by ``tests/test_export.py`` (skipped when no C
compiler is available) and the ``export`` CLI command.
"""

from __future__ import annotations

import random
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.errors import VerificationError
from repro.export.altivec import AltivecBackend
from repro.export.cgen import CEmitter, C_TYPES, c_ident
from repro.export.portable import PortableBackend
from repro.export.sse import SseBackend
from repro.ir.expr import Loop
from repro.machine.scalar import RunBindings, run_scalar
from repro.simdize.driver import simdize
from repro.simdize.options import SimdOptions
from repro.simdize.verify import fill_random, make_space
from repro.vir.program import VProgram

BACKENDS = {"sse": SseBackend, "altivec": AltivecBackend,
            "portable": PortableBackend}


def export_c(program: VProgram, backend: str = "sse", name: str | None = None) -> str:
    """Emit a C translation unit (scalar + SIMD functions) for a program."""
    return CEmitter(program, BACKENDS[backend](), name).translation_unit()


def find_compiler() -> str | None:
    for cc in ("gcc", "cc", "clang"):
        if shutil.which(cc):
            return cc
    return None


@dataclass
class CrossValidationReport:
    compiler: str
    source: str
    output: str

    @property
    def passed(self) -> bool:
        return "SIMDAL_OK" in self.output


def _bytes_literal(data: bytes, per_line: int = 20) -> str:
    chunks = []
    for start in range(0, len(data), per_line):
        chunk = data[start:start + per_line]
        chunks.append(", ".join(str(b) for b in chunk))
    return ",\n    ".join(chunks)


def emit_harness(
    loop: Loop,
    emitter: CEmitter,
    bases: dict[str, int],
    initial: bytes,
    expected: bytes,
    trip: int,
    scalars: dict[str, int],
) -> str:
    """A ``main`` that reproduces the VM run and checks the memory image."""
    name = emitter.name
    ctype = emitter.ctype
    lines = [
        "#include <stdio.h>",
        "",
        f"static uint8_t arena[{len(initial)}] __attribute__((aligned(16)));",
        f"static const uint8_t simdal_initial[{len(initial)}] = {{",
        f"    {_bytes_literal(initial)}",
        "};",
        f"static const uint8_t simdal_expected[{len(expected)}] = {{",
        f"    {_bytes_literal(expected)}",
        "};",
        "",
        "int main(void) {",
        "    memcpy(arena, simdal_initial, sizeof arena);",
    ]
    args = []
    for arr in sorted(loop.store_arrays()):
        lines.append(f"    {ctype} *{arr} = ({ctype} *)(arena + {bases[arr]});")
        args.append(arr)
    for arr in sorted(loop.load_arrays() - loop.store_arrays()):
        lines.append(f"    const {ctype} *{arr} = "
                     f"(const {ctype} *)(arena + {bases[arr]});")
        args.append(arr)
    for scalar in loop.scalar_vars:
        if scalar == loop.upper:
            continue
        lines.append(f"    {ctype} {scalar} = ({ctype}){scalars[scalar]};")
        args.append(scalar)
    if loop.runtime_upper:
        args.append(str(trip))
    lines += [
        f"    {name}_simd({', '.join(args)});",
        "    for (size_t k = 0; k < sizeof arena; k++) {",
        "        if (arena[k] != simdal_expected[k]) {",
        '            printf("SIMDAL_MISMATCH at byte %zu: got %u want %u\\n",',
        "                   k, arena[k], simdal_expected[k]);",
        "            return 1;",
        "        }",
        "    }",
        '    printf("SIMDAL_OK\\n");',
        "    return 0;",
        "}",
    ]
    return "\n".join(lines) + "\n"


def cross_validate(
    loop: Loop,
    options: SimdOptions | None = None,
    V: int = 16,
    trip: int | None = None,
    scalars: dict[str, int] | None = None,
    seed: int = 0,
    backend: str = "sse",
    keep_source: bool = False,
) -> CrossValidationReport:
    """Simdize, export to C, compile, run, and byte-compare memories."""
    cc = find_compiler()
    if cc is None:
        raise VerificationError("no C compiler found for cross-validation")

    scalars = scalars or {}
    result = simdize(loop, V, options or SimdOptions())
    emitter = CEmitter(result.program, BACKENDS[backend]())

    rng = random.Random(seed)
    space = make_space(loop, V, rng)
    mem = space.make_memory()
    fill_random(space, mem, rng)
    initial = mem.snapshot()
    bindings = RunBindings(trip=trip, scalars=scalars)
    reference = mem.clone()
    run_scalar(loop, space, reference, bindings)
    expected = reference.snapshot()

    resolved_trip = bindings.resolve_trip(loop)
    source = emitter.translation_unit() + "\n" + emit_harness(
        loop, emitter, space.bases(), initial, expected, resolved_trip, scalars
    )

    with tempfile.TemporaryDirectory(prefix="simdal_cc_") as tmp:
        c_path = Path(tmp) / f"{emitter.name}.c"
        exe_path = Path(tmp) / emitter.name
        c_path.write_text(source)
        flags = ["-O2", "-Wall"]
        if backend == "sse":
            flags += ["-mssse3", "-msse4.1"]
        compile_cmd = [cc, *flags, str(c_path), "-o", str(exe_path)]
        compiled = subprocess.run(compile_cmd, capture_output=True, text=True)
        if compiled.returncode != 0:
            raise VerificationError(
                f"C compilation failed:\n{compiled.stderr}\n--- source ---\n{source}"
            )
        ran = subprocess.run([str(exe_path)], capture_output=True, text=True)
        output = ran.stdout + ran.stderr
        if keep_source:
            Path(f"{emitter.name}_generated.c").write_text(source)

    if "SIMDAL_OK" not in output:
        raise VerificationError(
            f"exported {backend} code diverges from scalar semantics: {output}"
        )
    return CrossValidationReport(compiler=cc, source=source, output=output.strip())
