"""simdal — Vectorization for SIMD Architectures with Alignment Constraints.

A from-scratch reproduction of Eichenberger, Wu & O'Brien (PLDI 2004):
automatic simdization of loops with misaligned stride-one memory
references for SIMD units that only load/store vector-aligned memory.

Quick start
-----------
>>> import repro
>>> loop = repro.compile_source('''
...     int a[128]; int b[128]; int c[128];
...     for (i = 0; i < 100; i++) { a[i+3] = b[i+1] + c[i+2]; }
... ''')
>>> result = repro.simdize(loop, V=16, options=repro.SimdOptions(policy="lazy"))
>>> print(repro.format_program(result.program))      # AltiVec-style code
... # doctest: +SKIP
>>> report = repro.run_and_verify(result.program)    # execute + verify
>>> report.speedup                                    # doctest: +SKIP

Package map
-----------
``repro.ir``       scalar loop IR and builder API
``repro.lang``     mini-C frontend
``repro.align``    stream-offset analysis
``repro.reorg``    data reorganization graphs + shift-placement policies
``repro.codegen``  SIMD code generation and vector-IR passes
``repro.vir``      the vector IR and its AltiVec-style printer
``repro.machine``  the virtual SIMD machine (memory, interpreter, counters)
``repro.simdize``  the end-to-end driver, options, and verification
``repro.baselines`` ideal scalar / loop peeling / VAST-equivalent baselines
``repro.bench``    the paper's evaluation: Tables 1-2, Figures 11-12, coverage
"""

from __future__ import annotations

import random

from repro.errors import SimdalError
from repro.ir import LoopBuilder, Loop, figure1_loop
from repro.lang import compile_source, simdize_source
from repro.machine import (
    ArraySpace,
    BACKEND_CHOICES,
    SCALAR_BACKEND_CHOICES,
    ExecutionBackend,
    Memory,
    RunBindings,
    ScalarBackend,
    get_backend,
    get_scalar_backend,
    numpy_available,
    run_scalar,
    run_vector,
)
from repro.simdize import (
    EquivalenceReport,
    SimdOptions,
    SimdizeResult,
    fill_random,
    make_space,
    simdize,
    verify_equivalence,
)
from repro.vir import VProgram, format_program

__version__ = "1.0.0"

__all__ = [
    "SimdalError", "LoopBuilder", "Loop", "figure1_loop",
    "compile_source", "simdize_source",
    "ArraySpace", "Memory", "RunBindings", "run_scalar", "run_vector",
    "BACKEND_CHOICES", "SCALAR_BACKEND_CHOICES",
    "ExecutionBackend", "ScalarBackend",
    "get_backend", "get_scalar_backend", "numpy_available",
    "EquivalenceReport", "SimdOptions", "SimdizeResult", "fill_random",
    "make_space", "simdize", "verify_equivalence",
    "VProgram", "format_program",
    "run_and_verify",
]


def run_and_verify(
    program: VProgram,
    seed: int = 0,
    trip: int | None = None,
    scalars: dict[str, int] | None = None,
    backend: str = "auto",
    scalar_backend: str = "auto",
    profile=None,
) -> EquivalenceReport:
    """Execute a simdized program on random data and verify it.

    Allocates the loop's arrays (choosing random in-page residues for
    runtime-aligned ones), fills them with random element values, runs
    both the scalar reference and the vector program, checks the
    memories are byte-identical, and returns the operation counts.
    ``backend`` picks the vector engine
    (``auto``/``bytes``/``numpy``/``jit``/``native``) and
    ``scalar_backend`` the scalar-reference engine
    (``auto``/``bytes``/``numpy``).  Passing a
    :class:`repro.profiling.PhaseProfile` accumulates execute/verify
    (and jit compile / native cc) phase timings into it.
    """
    rng = random.Random(seed)
    loop = program.source
    space = make_space(loop, program.V, rng)
    mem = space.make_memory()
    fill_random(space, mem, rng)
    bindings = RunBindings(trip=trip, scalars=scalars or {})
    return verify_equivalence(program, space, mem, bindings, backend=backend,
                              scalar_backend=scalar_backend, profile=profile)
