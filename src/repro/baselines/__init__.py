"""Comparison baselines: ideal scalar, loop peeling, VAST-equivalent."""

from repro.baselines.peeling import (
    PeelingMeasurement,
    measure_peeling,
    peeling_alignment,
    peeling_applicable,
)
from repro.baselines.scalar_seq import SeqMeasurement, measure_seq
from repro.baselines.vast import VAST_OPTIONS, vast_options

__all__ = [
    "PeelingMeasurement", "measure_peeling", "peeling_alignment",
    "peeling_applicable", "SeqMeasurement", "measure_seq",
    "VAST_OPTIONS", "vast_options",
]
