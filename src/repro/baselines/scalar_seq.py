"""The SEQ baseline: idealistic scalar execution.

The paper compares simdized dynamic instruction counts "to an ideal
scalar instruction count" — one operation per load, arithmetic node,
and store, with no address or loop overhead.  This module wraps the
scalar reference executor with that accounting (which the executor
already implements) under the benchmark-facing name.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.machine.scalar import RunBindings, run_scalar
from repro.simdize.verify import fill_random, make_space

if TYPE_CHECKING:  # avoid a baselines <-> bench import cycle
    from repro.bench.synth import SynthesizedLoop


@dataclass
class SeqMeasurement:
    ops: int
    data_count: int

    @property
    def opd(self) -> float:
        return self.ops / self.data_count


def measure_seq(syn: "SynthesizedLoop", V: int = 16, seed: int = 0) -> SeqMeasurement:
    """Execute the loop scalar-style and report SEQ operations per datum."""
    rng = random.Random(seed ^ 0x5EED)
    space = make_space(syn.loop, V, rng, syn.base_residues)
    mem = space.make_memory()
    fill_random(space, mem, rng)
    bindings = RunBindings(trip=syn.params.trip if syn.loop.runtime_upper else None)
    result = run_scalar(syn.loop, space, mem, bindings)
    return SeqMeasurement(ops=result.ops, data_count=result.data_count)
