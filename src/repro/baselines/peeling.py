"""The loop-peeling baseline (prior art: Larsen et al. / Bik et al.).

"One common technique is to peel the loop until all memory references
inside the loop become aligned.  …  However, this approach will not
simdize the loop in Figure 1 since any peeling scheme can only make at
most one reference in the loop aligned" — peeling applies **only**
when every reference has the *same* compile-time misalignment.

When applicable, the peeler runs ``k = (V − P)/D mod B`` original
iterations scalar, simdizes the now-fully-aligned middle (all stream
offsets 0, so no reorganization at all), and finishes the remainder
scalar.  :func:`peeling_applicable` is the coverage predicate the
comparison benchmarks use to show how rarely prior art fires on
misaligned suites.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.align.analysis import ref_offset
from repro.align.offsets import KnownOffset
from repro.errors import BenchError, VerificationError
from repro.ir.expr import ArrayDecl, Loop, Ref, Statement, BinOp, Const, Expr, ScalarVar
from repro.machine.counters import OpCounters
from repro.machine.interp import run_vector
from repro.machine.scalar import RunBindings, run_scalar
from repro.simdize.driver import simdize
from repro.simdize.options import SimdOptions
from repro.simdize.verify import fill_random, make_space

if TYPE_CHECKING:  # avoid a baselines <-> bench import cycle
    from repro.bench.synth import SynthesizedLoop


def peeling_alignment(loop: Loop, V: int) -> int | None:
    """The single shared compile-time misalignment, or ``None`` when
    references disagree (peeling inapplicable)."""
    seen: set[int] = set()
    for stmt in loop.statements:
        for ref in stmt.refs():
            off = ref_offset(ref, V)
            if not isinstance(off, KnownOffset):
                return None
            seen.add(off.value)
    if len(seen) != 1:
        return None
    return seen.pop()


def peeling_applicable(loop: Loop, V: int) -> bool:
    return peeling_alignment(loop, V) is not None


@dataclass
class PeelingMeasurement:
    ops: int
    data_count: int
    peeled: int

    @property
    def opd(self) -> float:
        return self.ops / self.data_count


def _displace_expr(expr: Expr, delta: int) -> Expr:
    if isinstance(expr, Ref):
        return Ref(expr.array, expr.offset + delta)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _displace_expr(expr.left, delta), _displace_expr(expr.right, delta))
    if isinstance(expr, (Const, ScalarVar)):
        return expr
    raise BenchError(f"unexpected expression {expr}")


def measure_peeling(syn: "SynthesizedLoop", V: int = 16, seed: int = 0) -> PeelingMeasurement:
    """Run the peeling simdizer on an applicable loop and count operations.

    The peeled head and the remainder tail execute scalar (counted with
    the ideal scalar cost); the aligned middle is simdized with no data
    reorganization and verified against the scalar reference.
    """
    loop = syn.loop
    if loop.runtime_upper:
        raise BenchError("the peeling baseline here supports compile-time trips")
    P = peeling_alignment(loop, V)
    if P is None:
        raise BenchError("peeling is not applicable: references disagree on alignment")
    D = loop.dtype.size
    B = V // D
    k = ((V - P) // D) % B
    trip: int = loop.upper  # type: ignore[assignment]

    counters = OpCounters()
    rng = random.Random(seed ^ 0x5EED)
    space = make_space(loop, V, rng, syn.base_residues)
    mem = space.make_memory()
    fill_random(space, mem, rng)
    reference = mem.clone()
    run_scalar(loop, space, reference)

    # Head: k scalar iterations.
    if k:
        head = Loop(upper=k, statements=loop.statements, name=f"{loop.name}_head",
                    scalar_vars=loop.scalar_vars)
        counters.merge(run_scalar(head, space, mem).counters)

    # Middle: displace the loop body by k, making every reference
    # 16-byte aligned, and simdize what is now a shift-free loop.
    middle_trip = ((trip - k) // B) * B
    if middle_trip > 3 * B:
        shifted = [
            Statement(Ref(s.target.array, s.target.offset + k), _displace_expr(s.expr, k))
            for s in loop.statements
        ]
        middle = Loop(upper=middle_trip, statements=shifted, name=f"{loop.name}_mid",
                      scalar_vars=loop.scalar_vars)
        options = SimdOptions(policy="lazy", reuse="sp", unroll=1)
        program = simdize(middle, V, options).program
        assert program.static_shift_count() == 0, "peeled middle must be shift-free"
        counters.merge(run_vector(program, space, mem).counters)
        done = k + middle_trip
    else:
        done = k

    # Tail: whatever is left runs scalar.
    if done < trip:
        tail_stmts = [
            Statement(Ref(s.target.array, s.target.offset + done), _displace_expr(s.expr, done))
            for s in loop.statements
        ]
        tail = Loop(upper=trip - done, statements=tail_stmts, name=f"{loop.name}_tail",
                    scalar_vars=loop.scalar_vars)
        counters.merge(run_scalar(tail, space, mem).counters)

    if mem.snapshot() != reference.snapshot():
        raise VerificationError(f"peeling execution diverged on {loop.name!r}")
    return PeelingMeasurement(
        ops=counters.total,
        data_count=trip * len(loop.statements),
        peeled=k,
    )
