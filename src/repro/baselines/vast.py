"""The VAST-compiler baseline (paper Section 5.5 / related work [7]).

"We can only conjecture, from the simdized codes produced by the
compiler, that VAST's scheme is equivalent to our zero-shift policy
combined with software pipelining."  This module pins that scheme as a
named preset so the figure harness can report the ``ZERO-sp`` bar as
the VAST-equivalent, exactly how the paper frames the comparison.
"""

from __future__ import annotations

from repro.simdize.options import SimdOptions

#: VAST ~= zero-shift placement + software-pipelined reuse.
VAST_OPTIONS = SimdOptions(policy="zero", reuse="sp")


def vast_options(unroll: int = 1) -> SimdOptions:
    """The VAST-equivalent scheme, optionally with unrolling applied."""
    return SimdOptions(policy="zero", reuse="sp", unroll=unroll)
