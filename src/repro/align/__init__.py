"""Alignment analysis: stream offsets and their lattice."""

from repro.align.analysis import (
    distinct_alignments,
    loop_offsets,
    misaligned_fraction,
    misaligned_stream_count,
    ref_offset,
    ref_offset_sexpr,
)
from repro.align.offsets import (
    ANY,
    AnyOffset,
    KnownOffset,
    Offset,
    RuntimeOffset,
    ZERO,
    compatible,
    merge,
    merge_all,
)

__all__ = [
    "distinct_alignments", "loop_offsets", "misaligned_fraction",
    "misaligned_stream_count", "ref_offset", "ref_offset_sexpr",
    "ANY", "AnyOffset", "KnownOffset", "Offset", "RuntimeOffset", "ZERO",
    "compatible", "merge", "merge_all",
]
