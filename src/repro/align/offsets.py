"""The stream-offset lattice.

A *stream offset* (paper Section 3.2) is the byte offset, within its
vector register, of the first desired value of a register stream.  We
track it symbolically with three shapes:

* :class:`KnownOffset` — a compile-time constant in ``[0, V)``;
* :class:`RuntimeOffset` — known only at runtime, identified by a key
  so that *relatively aligned* streams (same array, congruent element
  offsets) compare equal even though the concrete value is unknown;
* :class:`AnyOffset` — the paper's ⊥ for ``vsplat`` streams, whose
  lanes all hold the same value and therefore match any offset in
  constraints (C.2) and (C.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AlignmentError


class Offset:
    """Base class of stream offsets."""

    __slots__ = ()

    @property
    def is_known(self) -> bool:
        return isinstance(self, KnownOffset)

    @property
    def is_runtime(self) -> bool:
        return isinstance(self, RuntimeOffset)

    @property
    def is_any(self) -> bool:
        return isinstance(self, AnyOffset)


@dataclass(frozen=True)
class KnownOffset(Offset):
    """A compile-time stream offset in ``[0, V)``."""

    value: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise AlignmentError(f"negative stream offset {self.value}")

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class RuntimeOffset(Offset):
    """A runtime stream offset.

    ``array`` names the runtime-aligned array the offset derives from and
    ``residue`` is the element-offset residue modulo the blocking factor;
    two runtime offsets with equal fields denote the *same* runtime value
    (relative alignment), anything else must be assumed different.
    """

    array: str
    residue: int

    def __str__(self) -> str:
        return f"@{self.array}%{self.residue}"


@dataclass(frozen=True)
class AnyOffset(Offset):
    """The wildcard offset of replicated (splat) streams."""

    def __str__(self) -> str:
        return "⊥"


ANY = AnyOffset()
ZERO = KnownOffset(0)


def compatible(a: Offset, b: Offset) -> bool:
    """Do two stream offsets satisfy the matching constraint (C.3)?

    ``AnyOffset`` matches everything; otherwise the offsets must be
    identical (same known value, or provably the same runtime value).
    """
    if a.is_any or b.is_any:
        return True
    return a == b


def merge(a: Offset, b: Offset) -> Offset:
    """The common offset of two compatible streams (used by ``vop`` nodes)."""
    if not compatible(a, b):
        raise AlignmentError(f"offsets {a} and {b} are incompatible")
    return b if a.is_any else a


def merge_all(offsets: list[Offset]) -> Offset:
    """Fold :func:`merge` over a list; empty or all-splat lists yield ⊥."""
    result: Offset = ANY
    for off in offsets:
        result = merge(result, off)
    return result
