"""Alignment analysis: from stride-one references to stream offsets.

For a reference ``arr[i + c]`` with element size ``D`` on a machine
with vector length ``V``, the address at original iteration 0 is
``base(arr) + c*D``, so the stream offset (paper eq. 1) is

    O = (base(arr) + c*D) mod V.

When ``base mod V`` is declared at compile time this is a
:class:`~repro.align.offsets.KnownOffset`; otherwise it is a
:class:`~repro.align.offsets.RuntimeOffset` keyed by the array and the
residue ``c mod B`` — references into the same runtime-aligned array
whose element offsets are congruent modulo the blocking factor are
*relatively aligned* and compare equal.
"""

from __future__ import annotations

from repro.align.offsets import KnownOffset, Offset, RuntimeOffset
from repro.errors import AlignmentError
from repro.ir.expr import Loop, Ref
from repro.vir.vexpr import SBase, SConst, SExpr, s_add, s_and


def ref_offset(ref: Ref, V: int) -> Offset:
    """The stream offset of a stride-one reference on a ``V``-byte machine."""
    D = ref.array.dtype.size
    if V % D:
        raise AlignmentError(f"vector length {V} not a multiple of element size {D}")
    B = V // D
    if ref.array.align is not None:
        return KnownOffset((ref.array.align + ref.offset * D) % V)
    return RuntimeOffset(ref.array.name, ref.offset % B)


def ref_offset_sexpr(ref: Ref, V: int) -> SExpr:
    """A scalar expression computing the reference's stream offset at runtime.

    This is the paper's "anding memory addresses with literal V − 1"
    (Section 3.3): ``(base + c*D) & (V-1)``.  For compile-time-known
    alignments it constant-folds on the declared residue.
    """
    D = ref.array.dtype.size
    if ref.array.align is not None:
        return SConst((ref.array.align + ref.offset * D) % V)
    base: SExpr = SBase(ref.array.name)
    addr0 = s_add(base, SConst(ref.offset * D))
    return s_and(addr0, SConst(V - 1))


def loop_offsets(loop: Loop, V: int) -> dict[Ref, Offset]:
    """Stream offsets of every distinct reference in the loop."""
    table: dict[Ref, Offset] = {}
    for stmt in loop.statements:
        for ref in stmt.refs():
            if ref not in table:
                table[ref] = ref_offset(ref, V)
    return table


def misaligned_fraction(loop: Loop, V: int) -> float:
    """Fraction of static memory references that are misaligned.

    Runtime-aligned references count as misaligned (the compiler must
    assume the worst).  The paper's headline experiments report ~75 %
    (3/4 of int references) and ~87.5 % (7/8 of short references).
    """
    refs = [ref for stmt in loop.statements for ref in stmt.refs()]
    if not refs:
        return 0.0
    mis = sum(1 for ref in refs if ref_offset(ref, V) != KnownOffset(0))
    return mis / len(refs)


def distinct_alignments(loop: Loop, V: int, statement_index: int) -> int:
    """Number of distinct stream offsets among one statement's references.

    This is the ``n`` of the paper's lower-bound model (Section 5.3):
    a statement whose accesses span ``n`` distinct alignments needs at
    least ``n - 1`` ``vshiftpair`` operations.
    """
    stmt = loop.statements[statement_index]
    return len({ref_offset(ref, V) for ref in stmt.refs()})


def misaligned_stream_count(loop: Loop, V: int, statement_index: int) -> int:
    """Number of misaligned *distinct* streams in one statement (zero-shift's
    fully deterministic shift count, one per misaligned stream)."""
    stmt = loop.statements[statement_index]
    B = V // loop.dtype.size
    offsets = {}
    for ref in stmt.refs():
        # Congruent offsets into one array form a single shifted stream
        # (their shift results are the same stream at different register
        # indices, which reuse optimizations share).
        offsets[(ref.array.name, ref.offset % B)] = ref_offset(ref, V)
    return sum(1 for off in offsets.values() if off != KnownOffset(0))
