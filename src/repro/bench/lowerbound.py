"""The paper's operations-per-datum lower bound (Section 5.3).

"The lower bound is computed based on parameters (l, s, n, b, r).  It
accounts for the following factors.  It includes each distinct 16-byte
aligned load and store in the loop.  The bound also accounts for a
minimum number of data reorganizations per statement … for a statement
with accesses of n distinct alignments, a minimum of n − 1 vshiftpair
operations are required.  Note that for the shift-zero policy, the
number of vshiftpair operations is fully deterministic, namely one for
each of the m misaligned memory streams.  For that policy only, LB
reflects m instead of n − 1.  The bound also includes the data
computations in the loop, but explicitly ignores all architecture- and
compiler-dependent factors such as address computation, constant
generation, and loop overhead."

The bound is computed against the *actual* memory layout (like the
paper's, which knows the synthesizer's choices), so it also applies to
the runtime-alignment experiments: there the zero-shift policy must
shift **every** stream because none can be proven aligned, which is
what makes the runtime LB higher (e.g. Figure 11's 4.750 vs the
compile-time bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchError
from repro.ir.expr import BinOp, Loop, Ref
from repro.ir.types import DataType


@dataclass(frozen=True)
class LowerBound:
    """Per-datum lower bound and its components (all per datum)."""

    loads: float
    stores: float
    shifts: float
    arith: float

    @property
    def opd(self) -> float:
        return self.loads + self.stores + self.shifts + self.arith

    @property
    def reorg_opd(self) -> float:
        return self.shifts


def _residue(ref: Ref, residues: dict[str, int], V: int) -> int:
    base = residues.get(ref.array.name)
    if base is None:
        if ref.array.align is None:
            raise BenchError(
                f"array {ref.array.name!r} is runtime-aligned; supply its "
                "actual base residue to compute the lower bound"
            )
        base = ref.array.align % V
    return base % V


def _alignment(ref: Ref, residues: dict[str, int], V: int) -> int:
    D = ref.array.dtype.size
    return (_residue(ref, residues, V) + ref.offset * D) % V


def lower_bound(
    loop: Loop,
    V: int,
    zero_shift: bool = False,
    runtime_alignment: bool = False,
    residues: dict[str, int] | None = None,
) -> LowerBound:
    """The Section 5.3 OPD lower bound for a loop.

    ``zero_shift`` selects the deterministic per-misaligned-stream shift
    count; ``runtime_alignment`` marks that the compiler cannot prove
    any stream aligned (zero-shift then shifts all of them).
    ``residues`` gives the actual base residues of runtime-aligned
    arrays (from the synthesizer's ground truth).
    """
    residues = residues or {}
    D = loop.dtype.size
    B = V // D
    s = len(loop.statements)

    # Distinct aligned vector streams, deduplicated loop-wide: two
    # references share a stream of 16-byte loads when they hit the same
    # aligned vector at every (blocked) iteration.
    load_streams: set[tuple[str, int]] = set()
    shift_total = 0.0
    arith_total = 0

    for stmt in loop.statements:
        for ref in stmt.loads():
            window = (_residue(ref, residues, V) + ref.offset * D) // V
            load_streams.add((ref.array.name, window))
        arith_total += sum(1 for n in stmt.expr.walk() if isinstance(n, BinOp))

        if zero_shift:
            # One shift per misaligned stream (deduplicated per
            # statement by relative congruence: same array + congruent
            # offsets form one shifted stream).
            streams: dict[tuple[str, int], int] = {}
            for ref in stmt.refs():
                key = (ref.array.name, ref.offset % B)
                streams[key] = _alignment(ref, residues, V)
            if runtime_alignment:
                shift_total += len(streams)
            else:
                shift_total += sum(1 for a in streams.values() if a != 0)
        else:
            n_align = len({_alignment(ref, residues, V) for ref in stmt.refs()})
            shift_total += max(0, n_align - 1)

    data_per_iter = B * s
    return LowerBound(
        loads=len(load_streams) / data_per_iter,
        stores=s / data_per_iter,
        shifts=shift_total / data_per_iter,
        arith=arith_total / data_per_iter,
    )


def seq_opd(loop: Loop) -> float:
    """The ideal scalar (SEQ) operations per datum."""
    total = 0
    for stmt in loop.statements:
        total += len(stmt.loads())
        total += sum(1 for n in stmt.expr.walk() if isinstance(n, BinOp))
        total += 1
    return total / len(loop.statements)


def peak_speedup(dtype: DataType, V: int) -> int:
    """The paper's "peek speedup": data elements per vector register."""
    return V // dtype.size
