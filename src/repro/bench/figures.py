"""Reproduction of the paper's Figure 11 and Figure 12 (Section 5.5).

The figures evaluate policy × code-generation-optimization combinations
on 50 single-statement loops with six int32 loads each (bias 30 %),
reporting operations per datum broken into three stacked components:

* the Section 5.3 **lower bound** (bottom),
* the **shift overhead** the policy introduces above the bound
  (middle; identically zero for zero-shift, whose deterministic shift
  count is folded into its LB),
* the remaining **compiler overhead** (top).

Figure 11 runs with common-offset reassociation off, Figure 12 with it
on.  The ``SEQ`` bar is the ideal scalar OPD (12 for these loops) and
``ZERO(runtime)`` reverts to the zero-shift policy with alignments
hidden from the compiler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import (
    Measurement,
    SuiteResult,
    SweepConfig,
    measure_many,
)
from repro.errors import BenchError
from repro.bench.synth import SynthParams, synthesize_suite
from repro.ir.types import INT32
from repro.simdize.options import SimdOptions

#: Scheme bars of Figures 11/12: (label, policy, reuse).  Schemes
#: without PC/SP "introduce redundant operations and perform poorly"
#: — they are the paper's plain policy bars.
FIGURE_SCHEMES: tuple[tuple[str, str, str], ...] = (
    ("ZERO", "zero", "none"),
    ("EAGER", "eager", "none"),
    ("LAZY", "lazy", "none"),
    ("DOM", "dominant", "none"),
    ("ZERO-pc", "zero", "pc"),
    ("EAGER-pc", "eager", "pc"),
    ("LAZY-pc", "lazy", "pc"),
    ("DOM-pc", "dominant", "pc"),
    ("ZERO-sp", "zero", "sp"),
    ("EAGER-sp", "eager", "sp"),
    ("LAZY-sp", "lazy", "sp"),
    ("DOM-sp", "dominant", "sp"),
)

FIGURE_UNROLL = 4


@dataclass
class FigureBar:
    label: str
    lb: float
    shift_overhead: float
    other_overhead: float
    total: float

    def format(self) -> str:
        return (
            f"{self.label:16s} total={self.total:6.3f}  "
            f"[LB {self.lb:5.3f} | shift +{self.shift_overhead:5.3f} "
            f"| other +{self.other_overhead:5.3f}]"
        )


@dataclass
class FigureResult:
    title: str
    seq_opd: float
    bars: list[FigureBar]

    def format(self) -> str:
        lines = [self.title, f"SEQ (ideal scalar) opd = {self.seq_opd:.3f}"]
        lines += [bar.format() for bar in self.bars]
        return "\n".join(lines)

    def bar(self, label: str) -> FigureBar:
        for bar in self.bars:
            if bar.label == label:
                return bar
        raise KeyError(label)

    def best(self) -> FigureBar:
        return min(self.bars, key=lambda b: b.total)


def _bar(result: SuiteResult, label: str) -> FigureBar:
    return FigureBar(
        label=label,
        lb=result.lb_opd,
        shift_overhead=result.shift_overhead,
        other_overhead=result.other_overhead,
        total=result.opd,
    )


def figure_configs(
    offset_reassoc: bool,
    count: int = 50,
    trip: int = 997,
    V: int = 16,
    base_seed: int = 0,
    unroll: int = FIGURE_UNROLL,
    loads: int = 6,
) -> list[tuple[str, SweepConfig]]:
    """Every (bar label, sweep config) pair of a Figure 11/12 run.

    Exposed separately so callers (the speed benchmark, external
    sweeps) can schedule the exact figure workload themselves.
    """
    ct_params = SynthParams(loads=loads, statements=1, trip=trip,
                            bias=0.3, reuse=0.3, dtype=INT32)
    rt_params = SynthParams(loads=loads, statements=1, trip=trip, bias=0.3,
                            reuse=0.3, dtype=INT32, runtime_alignment=True)
    labelled: list[tuple[str, SweepConfig]] = []
    for label, policy, reuse in FIGURE_SCHEMES:
        options = SimdOptions(policy=policy, reuse=reuse,
                              offset_reassoc=offset_reassoc, unroll=unroll)
        for k in range(count):
            labelled.append(
                (label, SweepConfig(ct_params, base_seed + k, options, V, label))
            )
    for reuse in ("pc", "sp"):
        label = f"ZERO-{reuse}(runtime)"
        options = SimdOptions(policy="zero", reuse=reuse,
                              offset_reassoc=offset_reassoc, unroll=unroll)
        for k in range(count):
            labelled.append(
                (label, SweepConfig(rt_params, base_seed + k, options, V, label))
            )
    return labelled


def figure(
    offset_reassoc: bool,
    count: int = 50,
    trip: int = 997,
    V: int = 16,
    base_seed: int = 0,
    unroll: int = FIGURE_UNROLL,
    loads: int = 6,
    jobs: int = 1,
    backend: str = "auto",
    scalar_backend: str = "auto",
    profile=None,
    sweep_mode: str = "periter",
    run_policy=None,
) -> FigureResult:
    """Measure every Figure 11/12 scheme bar.

    All (scheme × loop) configurations go through one
    :func:`~repro.bench.runner.measure_many` call, so ``jobs > 1``
    parallelizes across the whole figure, not per bar, and
    ``sweep_mode="batched"`` executes each program-signature class of
    the figure as one batched kernel call (identical numbers, less
    wall clock).  ``run_policy`` is the sweep's
    :class:`~repro.bench.runner.RunPolicy`; configs that still fail
    after its retries are dropped from their bar's aggregate (a bar
    with no surviving configs raises).
    """
    labelled = figure_configs(offset_reassoc, count, trip, V, base_seed,
                              unroll, loads)
    measurements = measure_many([c for _, c in labelled], jobs=jobs,
                                backend=backend,
                                scalar_backend=scalar_backend,
                                profile=profile, sweep_mode=sweep_mode,
                                run_policy=run_policy)
    by_label: dict[str, list] = {}
    for (label, _), m in zip(labelled, measurements):
        if isinstance(m, Measurement):
            by_label.setdefault(label, []).append(m)
    empty = [label for label, _ in labelled if label not in by_label]
    if empty:
        raise BenchError(
            f"every config of scheme(s) {sorted(set(empty))} failed after "
            f"retries; see the failure summary above"
        )
    bars = [
        _bar(SuiteResult(scheme=label, measurements=ms), label)
        for label, ms in by_label.items()
    ]

    params = SynthParams(loads=loads, statements=1, trip=trip,
                         bias=0.3, reuse=0.3, dtype=INT32)
    suite = synthesize_suite(params, count, base_seed, V)
    title = (
        "Figure 12: operations per datum (OffsetReassoc ON)"
        if offset_reassoc
        else "Figure 11: operations per datum (OffsetReassoc OFF)"
    )
    return FigureResult(title=title, seq_opd=_seq_opd(suite), bars=bars)


def _seq_opd(suite) -> float:
    from repro.bench.lowerbound import seq_opd

    total = sum(seq_opd(s.loop) for s in suite)
    return total / len(suite)


def figure11(count: int = 50, trip: int = 997, **kwargs) -> FigureResult:
    """Figure 11: scheme comparison with OffsetReassoc off."""
    return figure(False, count, trip, **kwargs)


def figure12(count: int = 50, trip: int = 997, **kwargs) -> FigureResult:
    """Figure 12: scheme comparison with OffsetReassoc on."""
    return figure(True, count, trip, **kwargs)
