"""Synthesized loop benchmarks (paper Section 5.3).

"The loop benchmarks are synthesized based on a set of parameters:
``s``, the number of statements, ``l``, the number of load references
per statement, and ``n``, the iteration count. …  The alignment of
each memory reference is randomly selected, with a possible bias ``b``
(0 ≤ b ≤ 1) toward a single, randomly selected alignment.  Each memory
reference within a single statement accesses a distinct array, but
different statements can contain accesses to the same array.  The
amount of array reuse ``r`` (0 ≤ r ≤ 1) among multiple statements is
also parameterized."

``add`` is the sole arithmetic operation, as in the paper ("all
arithmetic operations are essentially the same for alignment
handling").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import BenchError
from repro.ir.expr import ArrayDecl, BinOp, Expr, Loop, Ref, Statement
from repro.ir.types import ADD, DataType, INT32

#: Largest element offset the synthesizer uses; the machine's guard
#: vectors must cover ``V + MAX_OFFSET*D`` bytes of slack.
MAX_OFFSET = 8


@dataclass(frozen=True)
class SynthParams:
    """The paper's ``(l, s, n, b, r)`` tuple plus element type and mode."""

    loads: int                      # l: load references per statement
    statements: int = 1             # s
    trip: int = 1000                # n
    bias: float = 0.3               # b: probability of the biased alignment
    reuse: float = 0.3              # r: probability of reusing a load array
    dtype: DataType = INT32
    runtime_alignment: bool = False  # hide alignments from the compiler
    runtime_trip: bool = False       # hide the trip count from the compiler

    def __post_init__(self) -> None:
        if self.loads < 1:
            raise BenchError("need at least one load per statement")
        if self.statements < 1:
            raise BenchError("need at least one statement")
        if not (0.0 <= self.bias <= 1.0 and 0.0 <= self.reuse <= 1.0):
            raise BenchError("bias and reuse must be in [0, 1]")

    @property
    def label(self) -> str:
        """The paper's row labels, e.g. ``S4*L8``."""
        return f"S{self.statements}*L{self.loads}"


@dataclass
class SynthesizedLoop:
    """A generated benchmark loop plus its ground-truth alignments."""

    loop: Loop
    params: SynthParams
    seed: int
    #: (array name, element offset) -> intended byte alignment of the ref.
    ref_alignments: dict[tuple[str, int], int] = field(default_factory=dict)
    #: actual base residues, for binding runtime-aligned arrays.
    base_residues: dict[str, int] = field(default_factory=dict)


def synthesize(params: SynthParams, seed: int, V: int = 16) -> SynthesizedLoop:
    """Generate one benchmark loop for a ``V``-byte machine."""
    rng = random.Random(seed)
    D = params.dtype.size
    if V % D:
        raise BenchError(f"V={V} not a multiple of element size {D}")
    alignments = list(range(0, V, D))
    biased = rng.choice(alignments)

    # Cover every element any reference can touch: offsets go up to
    # MAX_OFFSET for fresh arrays and up to B-1 when realizing a target
    # alignment on a reused array.
    length = params.trip + MAX_OFFSET + V // D + 1
    arrays: dict[str, ArrayDecl] = {}
    base_residues: dict[str, int] = {}
    ref_alignments: dict[tuple[str, int], int] = {}
    load_pool: list[str] = []  # arrays available for cross-statement reuse

    def pick_alignment() -> int:
        if rng.random() < params.bias:
            return biased
        return rng.choice(alignments)

    def declare(name: str, residue: int) -> ArrayDecl:
        decl = ArrayDecl(
            name,
            params.dtype,
            length,
            None if params.runtime_alignment else residue,
        )
        arrays[name] = decl
        base_residues[name] = residue
        return decl

    def new_load_ref(stmt_index: int, load_index: int, used: set[str]) -> Ref:
        want = pick_alignment()
        reusable = [a for a in load_pool if a not in used]
        if reusable and rng.random() < params.reuse:
            name = rng.choice(reusable)
            residue = base_residues[name]
            # Choose the element offset realizing the desired reference
            # alignment against the existing base residue.
            offset = ((want - residue) % V) // D
        else:
            name = f"in{len(load_pool)}"
            offset = rng.randint(0, MAX_OFFSET)
            residue = (want - offset * D) % V
            declare(name, residue)
            load_pool.append(name)
        ref_alignments[(name, offset)] = want
        used.add(name)
        return Ref(arrays[name], offset)

    statements: list[Statement] = []
    for s in range(params.statements):
        used: set[str] = set()
        refs = [new_load_ref(s, k, used) for k in range(params.loads)]
        expr: Expr = refs[0]
        for ref in refs[1:]:
            expr = BinOp(ADD, expr, ref)

        want = pick_alignment()
        offset = rng.randint(0, MAX_OFFSET)
        residue = (want - offset * D) % V
        store_decl = declare(f"out{s}", residue)
        ref_alignments[(store_decl.name, offset)] = want
        statements.append(Statement(Ref(store_decl, offset), expr))

    loop = Loop(
        upper="ub" if params.runtime_trip else params.trip,
        statements=statements,
        name=f"{params.label}_seed{seed}",
    )
    return SynthesizedLoop(
        loop=loop,
        params=params,
        seed=seed,
        ref_alignments=ref_alignments,
        base_residues=base_residues,
    )


def synthesize_suite(
    params: SynthParams, count: int = 50, base_seed: int = 0, V: int = 16
) -> list[SynthesizedLoop]:
    """A benchmark of ``count`` distinct loops with identical parameters,
    as used for each row/bar of the paper's evaluation."""
    return [synthesize(params, base_seed + k, V) for k in range(count)]
