"""Reproduction of the paper's coverage analysis (Section 5.4).

"More than a thousand loops were generated with varying (l, s, n, b, r)
parameters.  In particular, we tested up-to eight loads per statement,
four statements per loop, and a loop trip count in the range of
[997, 1000] (for 4-element vectors).  The loop count (n), alignment
bias (b), the reuse ratio (r) were all randomly selected.  Our compiler
simdized all the loops.  The generated binaries were simulated on a
cycle-accurate simulator, and the results were verified."

:func:`coverage_sweep` regenerates that experiment: random parameter
draws, every loop simdized (with a randomly drawn scheme to also cover
the policy space), executed on the virtual machine, and byte-verified
against the scalar reference.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bench.runner import measure_loop
from repro.bench.synth import SynthParams, synthesize
from repro.ir.types import INT32
from repro.simdize.options import SimdOptions


@dataclass
class CoverageResult:
    attempted: int
    simdized: int
    verified: int
    failures: list[str] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return self.verified == self.attempted and not self.failures

    def format(self) -> str:
        status = "ALL VERIFIED" if self.all_passed else "FAILURES PRESENT"
        lines = [
            f"Coverage sweep: {self.attempted} loops generated, "
            f"{self.simdized} simdized, {self.verified} verified — {status}"
        ]
        lines += [f"  FAIL: {f}" for f in self.failures[:20]]
        return "\n".join(lines)


def coverage_sweep(
    count: int = 1000,
    seed: int = 0,
    V: int = 16,
    trip_range: tuple[int, int] = (997, 1000),
    max_loads: int = 8,
    max_statements: int = 4,
) -> CoverageResult:
    """Generate, simdize, execute, and verify ``count`` random loops."""
    rng = random.Random(seed)
    simdized = verified = 0
    failures: list[str] = []

    for k in range(count):
        params = SynthParams(
            loads=rng.randint(1, max_loads),
            statements=rng.randint(1, max_statements),
            trip=rng.randint(*trip_range),
            bias=rng.random(),
            reuse=rng.random(),
            dtype=INT32,
            runtime_alignment=rng.random() < 0.25,
            runtime_trip=rng.random() < 0.25,
        )
        syn = synthesize(params, seed=seed * 100_003 + k, V=V)
        policy = "zero" if params.runtime_alignment else rng.choice(
            ["zero", "eager", "lazy", "dominant"]
        )
        options = SimdOptions(
            policy=policy,
            reuse=rng.choice(["none", "sp", "pc"]),
            offset_reassoc=rng.random() < 0.5,
            unroll=rng.choice([1, 2, 4]),
        )
        try:
            measure_loop(syn, options, V, seed=k)
            simdized += 1
            verified += 1
        except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
            failures.append(f"{syn.loop.name} ({options}): {exc}")
    return CoverageResult(
        attempted=count, simdized=simdized, verified=verified, failures=failures
    )
