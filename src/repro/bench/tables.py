"""Reproduction of the paper's Table 1 and Table 2 (Section 5.6).

Each table row is a 50-loop benchmark ``S{s}*L{l}`` (reuse and bias at
30 %, trip counts around 1000).  For every row we measure all policy ×
reuse schemes, pick the best performer — the paper reports only the
best — and print actual and LB speedups for both compile-time and
runtime alignment, exactly mirroring the table layout:

    Table 1: 4 int32 per vector (peak speedup 4)
    Table 2: 8 int16 per vector (peak speedup 8)

Speedups are dynamic-instruction-count ratios aggregated as the total
scalar operations over all loops divided by the total simdized
operations (the paper's footnote 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.runner import SuiteResult, measure_suite
from repro.bench.synth import SynthParams, synthesize_suite
from repro.ir.types import DataType, INT16, INT32
from repro.simdize.options import SimdOptions

#: The rows of Tables 1 and 2: (statements, loads).
TABLE_ROWS: tuple[tuple[int, int], ...] = (
    (1, 2), (1, 4), (1, 6), (2, 4), (4, 4), (4, 8),
)

#: Candidate schemes for compile-time alignment (policy, reuse).
COMPILE_TIME_SCHEMES: tuple[tuple[str, str], ...] = (
    ("eager", "pc"), ("eager", "sp"),
    ("lazy", "pc"), ("lazy", "sp"),
    ("dominant", "pc"), ("dominant", "sp"),
    ("zero", "pc"), ("zero", "sp"),
)

#: Candidate schemes under runtime alignment (zero-shift only).
RUNTIME_SCHEMES: tuple[tuple[str, str], ...] = (
    ("zero", "pc"), ("zero", "sp"),
)

#: The unroll factor all table measurements use (removes the SP/PC
#: copies and amortizes the modelled loop overhead, standing in for the
#: production compiler's unroller).
BENCH_UNROLL = 4


@dataclass
class TableRow:
    """One row of Table 1/2: best schemes for both alignment settings."""

    label: str
    compile_best: SuiteResult
    runtime_best: SuiteResult
    all_compile: dict[str, SuiteResult] = field(default_factory=dict)
    all_runtime: dict[str, SuiteResult] = field(default_factory=dict)

    def format(self) -> str:
        c, r = self.compile_best, self.runtime_best
        return (
            f"{self.label:7s} {c.scheme:12s} {c.speedup:5.2f} {c.lb_speedup:5.2f}   "
            f"{r.scheme:10s} {r.speedup:5.2f} {r.lb_speedup:5.2f}"
        )


@dataclass
class TableResult:
    title: str
    peak: int
    rows: list[TableRow]

    def format(self) -> str:
        lines = [
            self.title,
            f"(peak speedup is {self.peak})",
            f"{'Loop':7s} {'Best policy':12s} {'Act.':>5s} {'LB':>5s}   "
            f"{'Best rt':10s} {'Act.':>5s} {'LB':>5s}",
        ]
        lines += [row.format() for row in self.rows]
        return "\n".join(lines)


def _scheme_label(policy: str, reuse: str) -> str:
    short = {"zero": "ZERO", "eager": "EAGER", "lazy": "LAZY", "dominant": "DOM"}
    return f"{short[policy]}-{reuse}"


def measure_row(
    statements: int,
    loads: int,
    dtype: DataType,
    count: int = 50,
    trip: int = 997,
    V: int = 16,
    base_seed: int = 0,
    unroll: int = BENCH_UNROLL,
    jobs: int = 1,
    backend: str = "auto",
    scalar_backend: str = "auto",
    profile=None,
    sweep_mode: str = "periter",
    run_policy=None,
) -> TableRow:
    """Measure one ``S{s}*L{l}`` row under every candidate scheme."""
    common = dict(loads=loads, statements=statements, trip=trip,
                  bias=0.3, reuse=0.3, dtype=dtype)
    ct_suite = synthesize_suite(SynthParams(**common), count, base_seed, V)
    rt_suite = synthesize_suite(
        SynthParams(**common, runtime_alignment=True), count, base_seed, V
    )

    all_compile: dict[str, SuiteResult] = {}
    for policy, reuse in COMPILE_TIME_SCHEMES:
        label = _scheme_label(policy, reuse)
        options = SimdOptions(policy=policy, reuse=reuse, unroll=unroll)
        all_compile[label] = measure_suite(ct_suite, options, V, scheme=label,
                                           jobs=jobs, backend=backend,
                                           scalar_backend=scalar_backend,
                                           profile=profile,
                                           sweep_mode=sweep_mode,
                                           run_policy=run_policy)

    all_runtime: dict[str, SuiteResult] = {}
    for policy, reuse in RUNTIME_SCHEMES:
        label = _scheme_label(policy, reuse)
        options = SimdOptions(policy=policy, reuse=reuse, unroll=unroll)
        all_runtime[label] = measure_suite(rt_suite, options, V, scheme=label,
                                           jobs=jobs, backend=backend,
                                           scalar_backend=scalar_backend,
                                           profile=profile,
                                           sweep_mode=sweep_mode,
                                           run_policy=run_policy)

    best_ct = max(all_compile.values(), key=lambda r: r.speedup)
    best_rt = max(all_runtime.values(), key=lambda r: r.speedup)
    return TableRow(
        label=f"S{statements}*L{loads}",
        compile_best=best_ct,
        runtime_best=best_rt,
        all_compile=all_compile,
        all_runtime=all_runtime,
    )


def table1(count: int = 50, trip: int = 997, base_seed: int = 0,
           unroll: int = BENCH_UNROLL, jobs: int = 1,
           backend: str = "auto", scalar_backend: str = "auto",
           profile=None, sweep_mode: str = "periter",
           run_policy=None) -> TableResult:
    """Table 1: speedups with 4 int32 elements per 16-byte register."""
    rows = [
        measure_row(s, l, INT32, count, trip, 16, base_seed, unroll,
                    jobs=jobs, backend=backend, scalar_backend=scalar_backend,
                    profile=profile, sweep_mode=sweep_mode,
                    run_policy=run_policy)
        for s, l in TABLE_ROWS
    ]
    return TableResult(
        "Table 1: speedup of simdized vs scalar code (4 ints per register)",
        peak=4,
        rows=rows,
    )


def table2(count: int = 50, trip: int = 997, base_seed: int = 0,
           unroll: int = BENCH_UNROLL, jobs: int = 1,
           backend: str = "auto", scalar_backend: str = "auto",
           profile=None, sweep_mode: str = "periter",
           run_policy=None) -> TableResult:
    """Table 2: speedups with 8 int16 elements per 16-byte register."""
    rows = [
        measure_row(s, l, INT16, count, trip, 16, base_seed, unroll,
                    jobs=jobs, backend=backend, scalar_backend=scalar_backend,
                    profile=profile, sweep_mode=sweep_mode,
                    run_policy=run_policy)
        for s, l in TABLE_ROWS
    ]
    return TableResult(
        "Table 2: speedup of simdized vs scalar code (8 short ints per register)",
        peak=8,
        rows=rows,
    )
