"""Benchmark harness: synthesized loops, metrics, tables, and figures."""

from repro.bench.ablation import (
    OptionAblation,
    PeelingAblation,
    memnorm_ablation,
    peeling_ablation,
    reuse_ablation,
    unroll_ablation,
)
from repro.bench.coverage import CoverageResult, coverage_sweep
from repro.bench.figures import (
    FigureBar,
    FigureResult,
    figure,
    figure11,
    figure12,
    figure_configs,
)
from repro.bench.lowerbound import LowerBound, lower_bound, peak_speedup, seq_opd
from repro.bench.runner import (
    SWEEP_MODES,
    Measurement,
    SuiteResult,
    SweepConfig,
    measure_batch,
    measure_loop,
    measure_many,
    measure_suite,
)
from repro.bench.synth import (
    MAX_OFFSET,
    SynthParams,
    SynthesizedLoop,
    synthesize,
    synthesize_suite,
)
from repro.bench.tables import (
    TABLE_ROWS,
    TableResult,
    TableRow,
    measure_row,
    table1,
    table2,
)

__all__ = [
    "OptionAblation", "PeelingAblation", "memnorm_ablation",
    "peeling_ablation", "reuse_ablation", "unroll_ablation",
    "CoverageResult", "coverage_sweep",
    "FigureBar", "FigureResult", "figure", "figure11", "figure12",
    "figure_configs",
    "LowerBound", "lower_bound", "peak_speedup", "seq_opd",
    "SWEEP_MODES", "Measurement", "SuiteResult", "SweepConfig",
    "measure_batch", "measure_loop", "measure_many", "measure_suite",
    "MAX_OFFSET", "SynthParams", "SynthesizedLoop", "synthesize",
    "synthesize_suite",
    "TABLE_ROWS", "TableResult", "TableRow", "measure_row", "table1", "table2",
]
