"""Measurement runner: simdize, execute, verify, and score one loop.

Every measurement in the reproduction flows through
:func:`measure_loop`: it simdizes with the requested scheme, runs both
the scalar reference and the vector program on identical random
memories, *verifies byte equality*, and reports the paper's metrics
(operations per datum, dynamic-instruction speedup, and the Figure 11
three-component breakdown: LB / shift overhead / remaining overhead).

Three throughput levers sit on top:

* :func:`simdize` results are memoized per process in a bounded LRU,
  keyed on the loop's structural
  :meth:`~repro.ir.expr.Loop.signature` plus the ``(V, SimdOptions)``
  pair — policy ablations re-lowering the same front end hit the memo;
* memo misses consult the shared disk cache (:mod:`repro.cache`), so
  ``measure_many`` workers and repeated CLI invocations skip the
  lowering entirely once any process has done it;
* :func:`measure_many` fans :class:`SweepConfig` descriptions out over
  a ``ProcessPoolExecutor``.  Configs carry synthesis parameters and
  seeds rather than loop objects, so every worker re-synthesizes its
  loops deterministically and results are independent of worker count.

Every entry point takes an optional
:class:`~repro.profiling.PhaseProfile` that accumulates per-phase
wall-clock seconds and cache hit counters; workers ship their profiles
back with their measurements and the parent merges them.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import signal
import sys
import time
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from repro import faults
from repro.bench.lowerbound import LowerBound, lower_bound, seq_opd
from repro.bench.synth import SynthParams, SynthesizedLoop, synthesize
from repro.cache import current_cache_dir, get_cache, set_cache_dir
from repro.errors import BenchError, SweepInterrupted, WorkerError
from repro.machine.backend import numpy_available
from repro.machine.scalar import RunBindings
from repro.profiling import PhaseProfile, timed
from repro.simdize.driver import SimdizeResult, simdize
from repro.simdize.options import SimdOptions
from repro.simdize.verify import (
    fill_random,
    make_space,
    verify_equivalence,
    verify_equivalence_batch,
)

#: Accepted ``sweep_mode`` values: ``periter`` measures configs one at
#: a time (the historical path); ``batched`` groups configs by program
#: signature and executes each class as one batched kernel call.
SWEEP_MODES = ("periter", "batched")

#: Bump when SimdizeResult's shape (or anything it transitively pickles)
#: changes: stale disk entries must miss, not deserialize wrongly.
SIMDIZE_CACHE_VERSION = 1

#: Per-process simdize memo: (loop signature, V, options) -> result.
#: Bounded LRU — a hit moves the entry to the back, eviction takes the
#: front — so unbounded sweeps cannot grow it without limit and hot
#: schemes survive scans over many distinct loops.
_SIMDIZE_CACHE: OrderedDict[
    tuple[str, int, SimdOptions], SimdizeResult
] = OrderedDict()
_SIMDIZE_CACHE_MAX = 512


def _simdize_disk_key(signature: str, V: int, options: SimdOptions) -> str:
    from repro import __version__

    return (f"simdize:{__version__}:{SIMDIZE_CACHE_VERSION}:"
            f"V{V}:{options!r}:{signature}")


def _cached_simdize(
    loop,
    V: int,
    options: SimdOptions,
    profile: PhaseProfile | None = None,
) -> SimdizeResult:
    signature = loop.signature()
    key = (signature, V, options)
    result = _SIMDIZE_CACHE.get(key)
    if result is not None:
        _SIMDIZE_CACHE.move_to_end(key)  # LRU: refresh on hit
        if profile is not None:
            profile.count("simdize_memo_hits")
        return result
    if profile is not None:
        profile.count("simdize_memo_misses")
    disk = get_cache()
    if disk is not None:
        entry = disk.get(_simdize_disk_key(signature, V, options))
        if isinstance(entry, SimdizeResult):
            result = entry
            if profile is not None:
                profile.count("simdize_disk_hits")
        elif profile is not None:
            profile.count("simdize_disk_misses")
    if result is None:
        result = simdize(loop, V, options)
        if disk is not None:
            disk.put(_simdize_disk_key(signature, V, options), result)
    if len(_SIMDIZE_CACHE) >= _SIMDIZE_CACHE_MAX:
        _SIMDIZE_CACHE.popitem(last=False)
    _SIMDIZE_CACHE[key] = result
    return result


@dataclass
class Measurement:
    """One (loop, scheme) data point."""

    scheme: str
    policy: str
    opd: float
    seq_opd: float
    lb: LowerBound
    reorg_opd: float
    scalar_ops: int
    vector_ops: int
    data_count: int
    static_shifts: int

    @property
    def speedup(self) -> float:
        return self.scalar_ops / self.vector_ops

    @property
    def lb_speedup(self) -> float:
        """Upper-bound speedup implied by the OPD lower bound."""
        return self.seq_opd / self.lb.opd

    @property
    def shift_overhead(self) -> float:
        """Figure 11's middle bar: measured reorg OPD above the LB's."""
        return max(0.0, self.reorg_opd - self.lb.reorg_opd)

    @property
    def other_overhead(self) -> float:
        """Figure 11's top bar: everything above LB + shift overhead."""
        return max(0.0, self.opd - self.lb.opd - self.shift_overhead)


def measure_loop(
    syn: SynthesizedLoop,
    options: SimdOptions,
    V: int = 16,
    seed: int = 0,
    scheme: str | None = None,
    backend: str = "auto",
    scalar_backend: str = "auto",
    profile: PhaseProfile | None = None,
) -> Measurement:
    """Simdize + run + verify one synthesized loop under one scheme."""
    loop = syn.loop
    rng = random.Random(seed ^ 0x5EED)
    with timed(profile, "simdize"):
        result = _cached_simdize(loop, V, options, profile)

    space = make_space(loop, V, rng, syn.base_residues)
    mem = space.make_memory()
    fill_random(space, mem, rng)
    bindings = RunBindings(trip=syn.params.trip if loop.runtime_upper else None)
    report = verify_equivalence(result.program, space, mem, bindings,
                                backend=backend, scalar_backend=scalar_backend,
                                profile=profile)
    return _finish_measurement(syn, options, V, scheme, result, report)


def _finish_measurement(
    syn: SynthesizedLoop,
    options: SimdOptions,
    V: int,
    scheme: str | None,
    result: SimdizeResult,
    report,
) -> Measurement:
    """Score one verified run — shared by the per-config and batched
    paths so both produce field-identical Measurements."""
    loop = syn.loop
    lb = lower_bound(
        loop,
        V,
        zero_shift=(result.policy == "zero"),
        runtime_alignment=syn.params.runtime_alignment,
        residues=syn.base_residues,
    )
    reorg_opd = report.vector_ops.reorg_total / report.data_count
    if scheme is None:
        scheme = result.policy.upper()
        if options.reuse != "none":
            scheme += f"-{options.reuse}"
    return Measurement(
        scheme=scheme,
        policy=result.policy,
        opd=report.vector_opd,
        seq_opd=seq_opd(loop),
        lb=lb,
        reorg_opd=reorg_opd,
        scalar_ops=report.scalar_total,
        vector_ops=report.vector_total,
        data_count=report.data_count,
        static_shifts=result.shift_count,
    )


@dataclass
class SuiteResult:
    """Aggregated measurements over a suite of loops (one scheme)."""

    scheme: str
    measurements: list[Measurement]

    @property
    def opd(self) -> float:
        """Suite OPD: total operations over total data (ratio of sums,
        the paper's footnote-7 aggregation)."""
        ops = sum(m.vector_ops for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return ops / data

    @property
    def speedup(self) -> float:
        scalar = sum(m.scalar_ops for m in self.measurements)
        vector = sum(m.vector_ops for m in self.measurements)
        return scalar / vector

    @property
    def lb_opd(self) -> float:
        lb_ops = sum(m.lb.opd * m.data_count for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return lb_ops / data

    @property
    def lb_speedup(self) -> float:
        seq = sum(m.seq_opd * m.data_count for m in self.measurements)
        lb = sum(m.lb.opd * m.data_count for m in self.measurements)
        return seq / lb

    @property
    def seq_opd(self) -> float:
        seq = sum(m.seq_opd * m.data_count for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return seq / data

    @property
    def shift_overhead(self) -> float:
        extra = sum(m.shift_overhead * m.data_count for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return extra / data

    @property
    def other_overhead(self) -> float:
        return max(0.0, self.opd - self.lb_opd - self.shift_overhead)


def measure_suite(
    suite: list[SynthesizedLoop],
    options: SimdOptions,
    V: int = 16,
    scheme: str | None = None,
    jobs: int = 1,
    backend: str = "auto",
    scalar_backend: str = "auto",
    profile: PhaseProfile | None = None,
    sweep_mode: str = "periter",
    run_policy: "RunPolicy | None" = None,
) -> SuiteResult:
    """Measure every loop of a suite under one scheme.

    Configs that fail after the run policy's retries are dropped from the
    aggregate (with a stderr summary from :func:`measure_many`); if
    *every* config failed there is nothing to aggregate and a
    :class:`~repro.errors.BenchError` is raised.
    """
    if jobs > 1 or sweep_mode != "periter" or run_policy is not None:
        configs = [
            SweepConfig(syn.params, syn.seed, options, V, scheme) for syn in suite
        ]
        rows = measure_many(configs, jobs=jobs, backend=backend,
                            scalar_backend=scalar_backend,
                            profile=profile, sweep_mode=sweep_mode,
                            run_policy=run_policy)
        measurements = [m for m in rows if isinstance(m, Measurement)]
        if not measurements:
            raise BenchError(
                f"all {len(rows)} sweep configs failed after retries "
                f"(scheme {scheme!r}); see the failure summary above"
            )
    else:
        measurements = [
            measure_loop(syn, options, V, seed=syn.seed, scheme=scheme,
                         backend=backend, scalar_backend=scalar_backend,
                         profile=profile)
            for syn in suite
        ]
    return SuiteResult(scheme=measurements[0].scheme, measurements=measurements)


# ---------------------------------------------------------------------------
# Parallel sweeps
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepConfig:
    """One self-contained measurement job.

    Carries synthesis parameters and the seed instead of the loop
    object: :func:`~repro.bench.synth.synthesize` is deterministic in
    ``(params, seed, V)``, so any worker process reconstructs exactly
    the loop — and the random data seeds derive from ``seed`` — making
    sweep results identical for any worker count, one or many.
    """

    params: SynthParams
    seed: int
    options: SimdOptions
    V: int = 16
    scheme: str | None = None


# ---------------------------------------------------------------------------
# Fault-tolerant supervision
# ---------------------------------------------------------------------------

#: Exponential-backoff schedule for per-config retries (seconds).
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0
#: Pool deaths tolerated before degrading to in-process execution.
_POOL_DEATH_LIMIT = 2


@dataclass(frozen=True)
class RunPolicy:
    """How a sweep survives failing configs, workers, and restarts.

    ``max_retries`` bounds re-attempts of a single failing config (a
    failing multi-config task is first split back to per-config tasks,
    which does not consume a retry).  ``timeout`` is the per-chunk
    wall-clock budget when running on a pool; a chunk that exceeds it
    is treated like a worker death.  ``checkpoint`` names a JSONL
    journal appended to as configs complete; ``resume`` replays it,
    skipping journaled configs.
    """

    max_retries: int = 2
    timeout: float | None = None
    checkpoint: Path | str | None = None
    resume: bool = False


@dataclass
class FailedMeasurement:
    """A config that still failed after every retry.

    Sweeps return these in-place of :class:`Measurement` rows (same
    input order) instead of aborting; aggregation layers filter them
    and report the loss.
    """

    config: SweepConfig
    error: str
    message: str
    attempts: int

    @property
    def scheme(self) -> str:
        return self.config.scheme or "?"

    def describe(self) -> str:
        return (f"{self.scheme} seed={self.config.seed}: {self.error}: "
                f"{self.message} (after {self.attempts} attempts)")


def _config_key(config: SweepConfig) -> str:
    """Stable identity of a sweep config for checkpoint journals.

    Dataclass reprs of the carried params/options are deterministic, so
    the digest is stable across processes and runs.
    """
    material = repr((config.params, config.seed, config.options,
                     config.V, config.scheme))
    return hashlib.sha256(material.encode()).hexdigest()


def _measurement_to_json(m: Measurement) -> dict:
    return asdict(m)


def _measurement_from_json(data: dict) -> Measurement:
    data = dict(data)
    data["lb"] = LowerBound(**data["lb"])
    return Measurement(**data)


def _load_checkpoint(path: Path) -> dict[str, Measurement]:
    """Journaled measurements by config key; tolerates torn tail lines.

    A run killed mid-append can leave a truncated final line — those
    (and any other undecodable lines) are skipped, so resume replays
    every intact entry and simply re-measures the rest.
    """
    done: dict[str, Measurement] = {}
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return done
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
            done[entry["key"]] = _measurement_from_json(entry["measurement"])
        except Exception:
            continue
    return done


@dataclass
class _Task:
    """One unit of supervised work: config indices + attempt count."""

    indices: list[int]
    attempt: int = 0


# ---------------------------------------------------------------------------
# Graceful sweep interruption (checkpointed sweeps only)
# ---------------------------------------------------------------------------

#: Set by the SIGTERM/SIGINT handler armed around checkpointed sweeps.
#: The handler only flips this flag — it never raises — so a signal can
#: never tear a journal line mid-write; _supervise polls it at task
#: boundaries and raises SweepInterrupted at the next journal-safe
#: point.
_STOP_SIGNAL: int | None = None


def _request_stop(signum, frame) -> None:
    global _STOP_SIGNAL
    _STOP_SIGNAL = signum


def _interrupted() -> int | None:
    return _STOP_SIGNAL


def _arm_stop_signals() -> list[tuple[int, object]]:
    """Install flag-setting SIGTERM/SIGINT handlers; return the
    previous handlers for restoration (empty off the main thread,
    where ``signal.signal`` is unavailable)."""
    global _STOP_SIGNAL
    _STOP_SIGNAL = None
    installed: list[tuple[int, object]] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous = signal.signal(sig, _request_stop)
        except ValueError:
            continue
        installed.append((sig, previous))
    return installed


def _disarm_stop_signals(installed: list[tuple[int, object]]) -> None:
    for sig, previous in installed:
        try:
            signal.signal(sig, previous)
        except ValueError:
            pass


def _supervise(tasks, worker, make_job, jobs, policy, profile,
               on_done, on_failed) -> None:
    """Run tasks to completion under the fault policy.

    ``jobs > 1`` dispatches rounds of tasks onto a
    ``ProcessPoolExecutor`` and waits per-future with the policy
    timeout.  A worker death (``BrokenProcessPool``) or chunk timeout
    tears the pool down, requeues the unfinished tasks, and counts a
    ``pool_restart``; after :data:`_POOL_DEATH_LIMIT` deaths the
    remaining work degrades to in-process serial execution
    (``serial_fallbacks``) — worker faults cannot take the sweep down
    with them.  A task-level exception splits a multi-config task back
    to per-config tasks (``task_splits``); a single config retries
    with exponential backoff up to ``policy.max_retries`` and then
    reports through ``on_failed``.
    """
    pending = deque(tasks)
    pool_deaths = 0
    serial = jobs <= 1

    def task_failed(task: _Task, exc: BaseException) -> None:
        if len(task.indices) > 1:
            if profile is not None:
                profile.count("task_splits")
            for idx in task.indices:
                pending.append(_Task([idx], task.attempt + 1))
        elif task.attempt < policy.max_retries:
            if profile is not None:
                profile.count("retries")
            time.sleep(min(_BACKOFF_CAP, _BACKOFF_BASE * (2 ** task.attempt)))
            pending.append(_Task(task.indices, task.attempt + 1))
        else:
            on_failed(task.indices[0], exc, task.attempt + 1)

    while pending:
        signum = _interrupted()
        if signum is not None:
            raise SweepInterrupted(
                f"sweep stopped by signal {signum} with "
                f"{sum(len(t.indices) for t in pending)} configs pending "
                f"(journal intact; resume with --resume)"
            )
        if serial:
            task = pending.popleft()
            try:
                out, chunk_profile = worker(make_job(task.indices))
            except Exception as exc:
                task_failed(task, exc)
                continue
            if profile is not None:
                profile.merge(chunk_profile)
            on_done(task.indices, out)
            continue
        round_tasks = list(pending)
        pending.clear()
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(round_tasks)))
        futures = [(pool.submit(worker, make_job(t.indices)), t)
                   for t in round_tasks]
        broken = False
        for fut, task in futures:
            if broken or _interrupted() is not None:
                # The pool is gone (or a stop signal arrived); harvest
                # whatever already finished and requeue the rest
                # untouched (no attempt charged).
                harvested = None
                if fut.done():
                    try:
                        harvested = fut.result(timeout=0)
                    except Exception:
                        harvested = None
                if harvested is not None:
                    out, chunk_profile = harvested
                    if profile is not None:
                        profile.merge(chunk_profile)
                    on_done(task.indices, out)
                else:
                    pending.append(task)
                continue
            try:
                out, chunk_profile = fut.result(timeout=policy.timeout)
            except (BrokenProcessPool, FuturesTimeoutError, OSError) as exc:
                pool_deaths += 1
                if profile is not None:
                    profile.count("pool_restarts")
                broken = True
                task_failed(task, WorkerError(
                    f"worker pool failure: {type(exc).__name__}: {exc}"
                ))
                continue
            except Exception as exc:
                task_failed(task, exc)
                continue
            if profile is not None:
                profile.merge(chunk_profile)
            on_done(task.indices, out)
        pool.shutdown(wait=False, cancel_futures=True)
        if pool_deaths >= _POOL_DEATH_LIMIT and not serial:
            serial = True
            if profile is not None:
                profile.count("serial_fallbacks")


# ---------------------------------------------------------------------------
# Structure-batched sweeps
# ---------------------------------------------------------------------------

def _program_class_key(config: SweepConfig, result: SimdizeResult):
    """The signature-class grouping key for one simdized config.

    With NumPy present this is the jit engine's structural program
    signature — the exact key its kernel cache uses, so every config
    in a class shares one compiled kernel and one batched call.
    Without NumPy, batching degrades to per-run execution anyway
    (:func:`~repro.machine.backend.run_vector_batch`), so the loop
    signature tuple is key enough.
    """
    if numpy_available():
        from repro.machine.jit import _cached_signature

        return _cached_signature(result.program)
    return result.class_key()


def measure_batch(
    configs: list[SweepConfig],
    backend: str = "auto",
    scalar_backend: str = "auto",
    profile: PhaseProfile | None = None,
) -> list[Measurement]:
    """Measure sweep configs grouped into program-signature classes.

    Element-wise identical to :func:`measure_loop` per config — same
    synthesis, same seeded random memories, same verification oracle,
    same Measurement fields — but the vector executions of each
    signature class happen as ONE batched backend call
    (:func:`~repro.simdize.verify.verify_equivalence_batch`) instead
    of one per config.  Because batching is the whole point here,
    ``backend="auto"`` resolves to the jit engine (the only one with
    a native config-batch axis) when NumPy is available; its results
    are bit-identical to the bytes oracle, so the only observable
    difference is wall clock.  Results come back in input order.

    With a ``profile``, per-class stats accumulate under
    ``batch_classes`` / ``batch_configs`` / ``batch_fallbacks``.
    """
    if backend == "auto" and numpy_available():
        backend = "jit"
    syns: list[SynthesizedLoop] = []
    for config in configs:
        with timed(profile, "synthesize"):
            syns.append(synthesize(config.params, config.seed, config.V))
    simdized: list[SimdizeResult] = []
    classes: "OrderedDict[object, list[int]]" = OrderedDict()
    for idx, (config, syn) in enumerate(zip(configs, syns)):
        with timed(profile, "simdize"):
            result = _cached_simdize(syn.loop, config.V, config.options,
                                     profile)
        simdized.append(result)
        classes.setdefault(_program_class_key(config, result), []).append(idx)
    if backend == "native" and numpy_available():
        # Precompile-ahead: the signature classes are known before any
        # config runs, so every cold native kernel compiles in one (or
        # few) batched translation units instead of one cc per class.
        from repro.machine import compilequeue

        compilequeue.precompile(
            [simdized[indices[0]].program for indices in classes.values()],
            profile,
        )
    measurements: list[Measurement | None] = [None] * len(configs)
    for indices in classes.values():
        items = []
        for idx in indices:
            config, syn = configs[idx], syns[idx]
            # Exactly measure_loop's derivation: the data rng seeds
            # from the config seed, so batch composition cannot change
            # any config's memory image.
            rng = random.Random(config.seed ^ 0x5EED)
            space = make_space(syn.loop, config.V, rng, syn.base_residues)
            mem = space.make_memory()
            fill_random(space, mem, rng)
            bindings = RunBindings(
                trip=syn.params.trip if syn.loop.runtime_upper else None
            )
            items.append((simdized[idx].program, space, mem, bindings))
        reports = verify_equivalence_batch(
            items, backend=backend, scalar_backend=scalar_backend,
            profile=profile,
        )
        if profile is not None:
            profile.count("batch_classes")
            profile.count("batch_configs", len(indices))
            fallbacks = sum(1 for r in reports if r.used_fallback)
            if fallbacks:
                profile.count("batch_fallbacks", fallbacks)
        for idx, report in zip(indices, reports):
            measurements[idx] = _finish_measurement(
                syns[idx], configs[idx].options, configs[idx].V,
                configs[idx].scheme, simdized[idx], report,
            )
    return measurements


def _disk_stats_snapshot() -> dict:
    cache = get_cache()
    return cache.stats() if cache is not None else {}


def _fold_disk_stats(profile: PhaseProfile | None, before: dict) -> None:
    """Fold disk-tier stat *deltas* into a profile.

    :class:`~repro.cache.DiskCache` counters are cumulative per
    process, and pool workers are reused across chunks — shipping raw
    totals with every chunk profile would double-count them when the
    parent merges.  Snapshot before the chunk, fold the delta after.
    """
    if profile is None:
        return
    after = _disk_stats_snapshot()
    if not after:
        return
    for stat in after:
        delta = after.get(stat, 0) - before.get(stat, 0)
        if delta > 0:
            profile.count(f"disk_{stat}", delta)


def _measure_batch_chunk(
    job: tuple[list[SweepConfig], str, str, str | None, bool]
) -> tuple[list[Measurement], PhaseProfile | None]:
    """Worker entry point for batched sweeps: one or more whole
    signature classes per task (same job tuple as
    :func:`_measure_sweep_chunk`)."""
    faults.fault("worker")
    chunk, backend, scalar_backend, cache_dir, want_profile = job
    if cache_dir is not None:
        set_cache_dir(Path(cache_dir) if cache_dir else None)
    profile = PhaseProfile() if want_profile else None
    before = _disk_stats_snapshot() if want_profile else {}
    out = measure_batch(chunk, backend=backend,
                        scalar_backend=scalar_backend, profile=profile)
    _fold_disk_stats(profile, before)
    return out, profile


def _batched_bins(configs: list[SweepConfig], jobs: int) -> list[list[int]]:
    """Partition config indices into worker bins, whole families at a
    time.

    Families group by ``(params, V)`` — computable without synthesizing
    and coarser than any program-signature class (configs lowered from
    different param sets can't share a program; different *schemes* of
    one param set sometimes can) — so no class is ever split across
    processes and every worker batches maximally.  Runtime-trip params
    normalize ``trip`` out of the key: the trip count is a run-time
    binding there, so configs differing only in trip share program
    signatures.  Greedy largest-family-first balancing keeps bins even.
    """
    families: "OrderedDict[object, list[int]]" = OrderedDict()
    for idx, config in enumerate(configs):
        params = config.params
        if params.runtime_trip:
            params = replace(params, trip=0)
        families.setdefault((params, config.V), []).append(idx)
    bins: list[list[int]] = [[] for _ in range(min(jobs, len(families)))]
    loads = [0] * len(bins)
    for indices in sorted(families.values(), key=len, reverse=True):
        target = loads.index(min(loads))
        bins[target].extend(indices)
        loads[target] += len(indices)
    return [b for b in bins if b]


#: Most pending configs a parent will prewarm ahead of its workers:
#: past this, serial lowering in the parent would dominate the very
#: fan-out it is meant to accelerate.
_PREWARM_LIMIT = 4096


def _right_sized_jobs(jobs: int, policy: RunPolicy) -> int:
    """Cap worker fan-out at the host's real parallelism.

    Forking more workers than CPUs only adds dispatch and pickling
    overhead — the measured jobs=2 sweep on a 1-CPU host was *slower*
    than serial.  The cap stays out of the way whenever the pool is
    load-bearing rather than a throughput lever: with a per-chunk
    ``timeout`` or armed fault injection the caller wants process
    isolation (kill-ability, blast-radius control), so the requested
    fan-out passes through untouched.
    """
    if jobs <= 1 or policy.timeout is not None or faults.active():
        return jobs
    return max(1, min(jobs, os.cpu_count() or 1))


def _prewarm_pending(configs: list[SweepConfig], backend: str,
                     profile: PhaseProfile | None) -> None:
    """Lower every pending config once in the parent before forking.

    Workers fork from this process (and share its disk cache), so one
    parent pass over synthesize+simdize turns every per-worker
    lowering into a memo or disk hit instead of duplicated work — the
    fix for the jobs=2 "parallel slower than serial" regression.  For
    the native backend it then batch-precompiles all signature kernels
    through the compile pipeline: one ``cc`` invocation ahead of the
    sweep instead of one per signature per worker.

    The simdize calls deliberately pass no profile: prewarming is not
    a cache *lookup* made by any measurement, so it must not inflate
    the memo hit/miss counters the profile reports (its wall clock
    still lands in the synthesize/simdize phases via ``timed``).
    """
    programs = []
    for config in configs:
        with timed(profile, "synthesize"):
            syn = synthesize(config.params, config.seed, config.V)
        with timed(profile, "simdize"):
            result = _cached_simdize(syn.loop, config.V, config.options)
        programs.append(result.program)
    if backend == "native" and numpy_available():
        from repro.machine import compilequeue

        compilequeue.precompile(programs, profile)


def _measure_sweep_chunk(
    job: tuple[list[SweepConfig], str, str, str | None, bool]
) -> tuple[list[Measurement], PhaseProfile | None]:
    """Worker entry point: re-synthesize and measure a whole chunk.

    Module-level (picklable); taking a *list* of configs per task
    amortizes the executor's per-task pickling/dispatch overhead and
    lets consecutive configs share the worker's simdize memo.  The job
    carries the parent's cache directory (None = leave this process's
    setting alone, "" = disabled) so all workers share one disk cache,
    and a flag asking for a phase profile to ship back.
    """
    faults.fault("worker")
    chunk, backend, scalar_backend, cache_dir, want_profile = job
    if cache_dir is not None:
        set_cache_dir(Path(cache_dir) if cache_dir else None)
    profile = PhaseProfile() if want_profile else None
    before = _disk_stats_snapshot() if want_profile else {}
    out = []
    for config in chunk:
        with timed(profile, "synthesize"):
            syn = synthesize(config.params, config.seed, config.V)
        out.append(measure_loop(syn, config.options, config.V,
                                seed=config.seed, scheme=config.scheme,
                                backend=backend,
                                scalar_backend=scalar_backend,
                                profile=profile))
    _fold_disk_stats(profile, before)
    return out, profile


def measure_many(
    configs: list[SweepConfig],
    jobs: int = 1,
    backend: str = "auto",
    scalar_backend: str = "auto",
    profile: PhaseProfile | None = None,
    sweep_mode: str = "periter",
    run_policy: RunPolicy | None = None,
) -> list:
    """Measure many sweep configs, optionally fanned over processes.

    Results are returned in input order and element-wise identical in
    every ``sweep_mode`` — the modes only change *how* the vector
    executions are dispatched, never what any config computes.

    ``sweep_mode="periter"`` measures one config at a time.
    ``jobs <= 1`` runs serially in this process (and benefits from the
    shared simdize memo); larger ``jobs`` submits manually batched
    chunks to a ``ProcessPoolExecutor`` — one task per chunk, ~4 chunks
    per worker — so task pickling is amortized over many configs.

    ``sweep_mode="batched"`` routes through :func:`measure_batch`:
    configs grouped into program-signature classes, one config-batched
    kernel call per class.  With ``jobs > 1`` each worker receives
    whole config *families* (``(params, V, options)`` groups — a
    synthesis-free superset of the signature classes), so no class is
    ever split across processes and the per-task overhead that capped
    per-config scaling disappears with it.

    Each worker keeps its own memo but shares the parent's *disk* cache
    directory, so lowering done by one worker is a disk hit for the
    rest.  Determinism is per-config (seeded), not per-schedule.  When
    a ``profile`` is passed, workers time their phases and the parent
    merges every worker profile into it; cumulative disk-cache counters
    are folded as per-chunk deltas so reused pool workers never
    double-count.

    All execution runs under a :class:`RunPolicy` (default-constructed
    when none is passed): tasks are supervised per :func:`_supervise`,
    so worker deaths, chunk timeouts, and per-config errors degrade
    and retry instead of aborting the sweep.  A config that still
    fails after every retry yields a :class:`FailedMeasurement` in its
    slot — callers aggregating rows must filter on type.  With
    ``policy.checkpoint`` each completed config is journaled; with
    ``policy.resume`` journaled configs are spliced from the journal
    (``checkpoint_hits``) and only the rest are re-measured — the
    journal stores exact float values via JSON round-trip, so resumed
    tables are byte-identical to uninterrupted runs.

    While a checkpointed sweep runs, SIGTERM/SIGINT are held to the
    next task boundary: the journal is flushed and closed with every
    completed config intact, then :class:`~repro.errors.SweepInterrupted`
    propagates (the CLI maps it to exit code 3), so a later ``resume``
    run reproduces the full table byte-identically.
    """
    if sweep_mode not in SWEEP_MODES:
        raise BenchError(
            f"unknown sweep mode {sweep_mode!r}; choose from {SWEEP_MODES}"
        )
    # Parse REPRO_FAULT up front: a grammar error is a usage mistake
    # that should fail the sweep immediately, not be retried per config
    # in every worker.
    faults.active()
    policy = run_policy or RunPolicy()
    effective_jobs = _right_sized_jobs(jobs, policy)
    want_profile = profile is not None
    results: list = [None] * len(configs)

    journal = None
    keys: list[str] | None = None
    if policy.checkpoint is not None:
        path = Path(policy.checkpoint)
        keys = [_config_key(config) for config in configs]
        if policy.resume:
            done = _load_checkpoint(path)
            for idx, key in enumerate(keys):
                cached = done.get(key)
                if cached is not None:
                    results[idx] = cached
                    if profile is not None:
                        profile.count("checkpoint_hits")
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        journal = path.open("a", encoding="utf-8")

    # Checkpointed sweeps trade instant death for journal integrity:
    # SIGTERM/SIGINT set a flag the supervisor polls at task
    # boundaries, so every completed config is flushed before
    # SweepInterrupted propagates (the CLI maps it to exit code 3).
    stop_handlers = _arm_stop_signals() if journal is not None else []

    pending = [idx for idx in range(len(configs)) if results[idx] is None]

    def on_done(indices: list[int], out: list[Measurement]) -> None:
        for idx, measurement in zip(indices, out):
            results[idx] = measurement
            if journal is not None:
                journal.write(json.dumps({
                    "key": keys[idx],
                    "measurement": _measurement_to_json(measurement),
                }) + "\n")
        if journal is not None:
            journal.flush()

    def on_failed(idx: int, exc: BaseException, attempts: int) -> None:
        results[idx] = FailedMeasurement(
            config=configs[idx],
            error=type(exc).__name__,
            message=str(exc),
            attempts=attempts,
        )

    try:
        if pending:
            if effective_jobs <= 1:
                # Pure in-process run: leave the cache binding alone so
                # its counters (and degraded/disabled state) persist.
                cache_dir = None
            else:
                cache_root = current_cache_dir()
                cache_dir = str(cache_root) if cache_root is not None else ""
            if len(pending) <= _PREWARM_LIMIT and (
                    effective_jobs > 1
                    or (backend == "native" and sweep_mode == "periter")):
                # Batched+serial skips this: measure_batch precompiles
                # its own signature classes after grouping.
                _prewarm_pending([configs[i] for i in pending], backend,
                                 profile)
            if sweep_mode == "batched":
                worker = _measure_batch_chunk
                if effective_jobs <= 1 or len(pending) <= 1:
                    bins = [list(pending)]
                else:
                    sub = [configs[i] for i in pending]
                    bins = [[pending[i] for i in indices]
                            for indices in _batched_bins(sub, effective_jobs)]
            else:
                worker = _measure_sweep_chunk
                if effective_jobs <= 1 or len(pending) <= 1:
                    if policy.checkpoint is not None and len(pending) > 1:
                        # Serial checkpointed sweeps run one task per
                        # config: the journal then records progress at
                        # every config boundary, and a stop signal
                        # (SIGTERM/SIGINT) lands between configs
                        # instead of waiting out the whole sweep.
                        bins = [[idx] for idx in pending]
                    else:
                        bins = [list(pending)]
                else:
                    # One balanced chunk per worker by default — task
                    # dispatch/pickling is the scaling killer on small
                    # sweeps.  Under a chunk timeout or armed faults,
                    # finer chunks bound the blast radius of a kill or
                    # timeout to a few configs.
                    if policy.timeout is not None or faults.active():
                        chunks = effective_jobs * 4
                    else:
                        chunks = effective_jobs
                    chunksize = max(1, -(-len(pending) // chunks))
                    bins = [pending[i:i + chunksize]
                            for i in range(0, len(pending), chunksize)]

            def make_job(indices: list[int]):
                return ([configs[i] for i in indices], backend,
                        scalar_backend, cache_dir, want_profile)

            _supervise([_Task(b) for b in bins], worker, make_job,
                       effective_jobs, policy, profile, on_done, on_failed)
    finally:
        _disarm_stop_signals(stop_handlers)
        if journal is not None:
            journal.flush()
            journal.close()

    failures = [r for r in results if isinstance(r, FailedMeasurement)]
    if failures:
        if profile is not None:
            profile.count("failed_configs", len(failures))
        print(f"warning: {len(failures)}/{len(configs)} sweep configs "
              f"failed after retries:", file=sys.stderr)
        for failure in failures[:10]:
            print(f"  {failure.describe()}", file=sys.stderr)
        if len(failures) > 10:
            print(f"  ... and {len(failures) - 10} more", file=sys.stderr)
    return results
