"""Measurement runner: simdize, execute, verify, and score one loop.

Every measurement in the reproduction flows through
:func:`measure_loop`: it simdizes with the requested scheme, runs both
the scalar reference and the vector program on identical random
memories, *verifies byte equality*, and reports the paper's metrics
(operations per datum, dynamic-instruction speedup, and the Figure 11
three-component breakdown: LB / shift overhead / remaining overhead).

Three throughput levers sit on top:

* :func:`simdize` results are memoized per process in a bounded LRU,
  keyed on the loop's structural
  :meth:`~repro.ir.expr.Loop.signature` plus the ``(V, SimdOptions)``
  pair — policy ablations re-lowering the same front end hit the memo;
* memo misses consult the shared disk cache (:mod:`repro.cache`), so
  ``measure_many`` workers and repeated CLI invocations skip the
  lowering entirely once any process has done it;
* :func:`measure_many` fans :class:`SweepConfig` descriptions out over
  a ``ProcessPoolExecutor``.  Configs carry synthesis parameters and
  seeds rather than loop objects, so every worker re-synthesizes its
  loops deterministically and results are independent of worker count.

Every entry point takes an optional
:class:`~repro.profiling.PhaseProfile` that accumulates per-phase
wall-clock seconds and cache hit counters; workers ship their profiles
back with their measurements and the parent merges them.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.bench.lowerbound import LowerBound, lower_bound, seq_opd
from repro.bench.synth import SynthParams, SynthesizedLoop, synthesize
from repro.cache import current_cache_dir, get_cache, set_cache_dir
from repro.machine.scalar import RunBindings
from repro.profiling import PhaseProfile, timed
from repro.simdize.driver import SimdizeResult, simdize
from repro.simdize.options import SimdOptions
from repro.simdize.verify import fill_random, make_space, verify_equivalence

#: Bump when SimdizeResult's shape (or anything it transitively pickles)
#: changes: stale disk entries must miss, not deserialize wrongly.
SIMDIZE_CACHE_VERSION = 1

#: Per-process simdize memo: (loop signature, V, options) -> result.
#: Bounded LRU — a hit moves the entry to the back, eviction takes the
#: front — so unbounded sweeps cannot grow it without limit and hot
#: schemes survive scans over many distinct loops.
_SIMDIZE_CACHE: OrderedDict[
    tuple[str, int, SimdOptions], SimdizeResult
] = OrderedDict()
_SIMDIZE_CACHE_MAX = 512


def _simdize_disk_key(signature: str, V: int, options: SimdOptions) -> str:
    from repro import __version__

    return (f"simdize:{__version__}:{SIMDIZE_CACHE_VERSION}:"
            f"V{V}:{options!r}:{signature}")


def _cached_simdize(
    loop,
    V: int,
    options: SimdOptions,
    profile: PhaseProfile | None = None,
) -> SimdizeResult:
    signature = loop.signature()
    key = (signature, V, options)
    result = _SIMDIZE_CACHE.get(key)
    if result is not None:
        _SIMDIZE_CACHE.move_to_end(key)  # LRU: refresh on hit
        if profile is not None:
            profile.count("simdize_memo_hits")
        return result
    if profile is not None:
        profile.count("simdize_memo_misses")
    disk = get_cache()
    if disk is not None:
        entry = disk.get(_simdize_disk_key(signature, V, options))
        if isinstance(entry, SimdizeResult):
            result = entry
            if profile is not None:
                profile.count("simdize_disk_hits")
        elif profile is not None:
            profile.count("simdize_disk_misses")
    if result is None:
        result = simdize(loop, V, options)
        if disk is not None:
            disk.put(_simdize_disk_key(signature, V, options), result)
    if len(_SIMDIZE_CACHE) >= _SIMDIZE_CACHE_MAX:
        _SIMDIZE_CACHE.popitem(last=False)
    _SIMDIZE_CACHE[key] = result
    return result


@dataclass
class Measurement:
    """One (loop, scheme) data point."""

    scheme: str
    policy: str
    opd: float
    seq_opd: float
    lb: LowerBound
    reorg_opd: float
    scalar_ops: int
    vector_ops: int
    data_count: int
    static_shifts: int

    @property
    def speedup(self) -> float:
        return self.scalar_ops / self.vector_ops

    @property
    def lb_speedup(self) -> float:
        """Upper-bound speedup implied by the OPD lower bound."""
        return self.seq_opd / self.lb.opd

    @property
    def shift_overhead(self) -> float:
        """Figure 11's middle bar: measured reorg OPD above the LB's."""
        return max(0.0, self.reorg_opd - self.lb.reorg_opd)

    @property
    def other_overhead(self) -> float:
        """Figure 11's top bar: everything above LB + shift overhead."""
        return max(0.0, self.opd - self.lb.opd - self.shift_overhead)


def measure_loop(
    syn: SynthesizedLoop,
    options: SimdOptions,
    V: int = 16,
    seed: int = 0,
    scheme: str | None = None,
    backend: str = "auto",
    scalar_backend: str = "auto",
    profile: PhaseProfile | None = None,
) -> Measurement:
    """Simdize + run + verify one synthesized loop under one scheme."""
    loop = syn.loop
    rng = random.Random(seed ^ 0x5EED)
    with timed(profile, "simdize"):
        result = _cached_simdize(loop, V, options, profile)

    space = make_space(loop, V, rng, syn.base_residues)
    mem = space.make_memory()
    fill_random(space, mem, rng)
    bindings = RunBindings(trip=syn.params.trip if loop.runtime_upper else None)
    report = verify_equivalence(result.program, space, mem, bindings,
                                backend=backend, scalar_backend=scalar_backend,
                                profile=profile)

    lb = lower_bound(
        loop,
        V,
        zero_shift=(result.policy == "zero"),
        runtime_alignment=syn.params.runtime_alignment,
        residues=syn.base_residues,
    )
    reorg_opd = report.vector_ops.reorg_total / report.data_count
    if scheme is None:
        scheme = result.policy.upper()
        if options.reuse != "none":
            scheme += f"-{options.reuse}"
    return Measurement(
        scheme=scheme,
        policy=result.policy,
        opd=report.vector_opd,
        seq_opd=seq_opd(loop),
        lb=lb,
        reorg_opd=reorg_opd,
        scalar_ops=report.scalar_total,
        vector_ops=report.vector_total,
        data_count=report.data_count,
        static_shifts=result.shift_count,
    )


@dataclass
class SuiteResult:
    """Aggregated measurements over a suite of loops (one scheme)."""

    scheme: str
    measurements: list[Measurement]

    @property
    def opd(self) -> float:
        """Suite OPD: total operations over total data (ratio of sums,
        the paper's footnote-7 aggregation)."""
        ops = sum(m.vector_ops for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return ops / data

    @property
    def speedup(self) -> float:
        scalar = sum(m.scalar_ops for m in self.measurements)
        vector = sum(m.vector_ops for m in self.measurements)
        return scalar / vector

    @property
    def lb_opd(self) -> float:
        lb_ops = sum(m.lb.opd * m.data_count for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return lb_ops / data

    @property
    def lb_speedup(self) -> float:
        seq = sum(m.seq_opd * m.data_count for m in self.measurements)
        lb = sum(m.lb.opd * m.data_count for m in self.measurements)
        return seq / lb

    @property
    def seq_opd(self) -> float:
        seq = sum(m.seq_opd * m.data_count for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return seq / data

    @property
    def shift_overhead(self) -> float:
        extra = sum(m.shift_overhead * m.data_count for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return extra / data

    @property
    def other_overhead(self) -> float:
        return max(0.0, self.opd - self.lb_opd - self.shift_overhead)


def measure_suite(
    suite: list[SynthesizedLoop],
    options: SimdOptions,
    V: int = 16,
    scheme: str | None = None,
    jobs: int = 1,
    backend: str = "auto",
    scalar_backend: str = "auto",
    profile: PhaseProfile | None = None,
) -> SuiteResult:
    """Measure every loop of a suite under one scheme."""
    if jobs > 1:
        configs = [
            SweepConfig(syn.params, syn.seed, options, V, scheme) for syn in suite
        ]
        measurements = measure_many(configs, jobs=jobs, backend=backend,
                                    scalar_backend=scalar_backend,
                                    profile=profile)
    else:
        measurements = [
            measure_loop(syn, options, V, seed=syn.seed, scheme=scheme,
                         backend=backend, scalar_backend=scalar_backend,
                         profile=profile)
            for syn in suite
        ]
    return SuiteResult(scheme=measurements[0].scheme, measurements=measurements)


# ---------------------------------------------------------------------------
# Parallel sweeps
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepConfig:
    """One self-contained measurement job.

    Carries synthesis parameters and the seed instead of the loop
    object: :func:`~repro.bench.synth.synthesize` is deterministic in
    ``(params, seed, V)``, so any worker process reconstructs exactly
    the loop — and the random data seeds derive from ``seed`` — making
    sweep results identical for any worker count, one or many.
    """

    params: SynthParams
    seed: int
    options: SimdOptions
    V: int = 16
    scheme: str | None = None


def _measure_sweep_chunk(
    job: tuple[list[SweepConfig], str, str, str | None, bool]
) -> tuple[list[Measurement], PhaseProfile | None]:
    """Worker entry point: re-synthesize and measure a whole chunk.

    Module-level (picklable); taking a *list* of configs per task
    amortizes the executor's per-task pickling/dispatch overhead and
    lets consecutive configs share the worker's simdize memo.  The job
    carries the parent's cache directory (None = leave this process's
    setting alone, "" = disabled) so all workers share one disk cache,
    and a flag asking for a phase profile to ship back.
    """
    chunk, backend, scalar_backend, cache_dir, want_profile = job
    if cache_dir is not None:
        set_cache_dir(Path(cache_dir) if cache_dir else None)
    profile = PhaseProfile() if want_profile else None
    out = []
    for config in chunk:
        with timed(profile, "synthesize"):
            syn = synthesize(config.params, config.seed, config.V)
        out.append(measure_loop(syn, config.options, config.V,
                                seed=config.seed, scheme=config.scheme,
                                backend=backend,
                                scalar_backend=scalar_backend,
                                profile=profile))
    return out, profile


def measure_many(
    configs: list[SweepConfig],
    jobs: int = 1,
    backend: str = "auto",
    scalar_backend: str = "auto",
    profile: PhaseProfile | None = None,
) -> list[Measurement]:
    """Measure many sweep configs, optionally fanned over processes.

    Results are returned in input order.  ``jobs <= 1`` runs serially in
    this process (and benefits from the shared simdize memo); larger
    ``jobs`` submits manually batched chunks to a
    ``ProcessPoolExecutor`` — one task per chunk, ~4 chunks per worker
    — so task pickling is amortized over many configs.  Each worker
    keeps its own memo but shares the parent's *disk* cache directory,
    so lowering done by one worker is a disk hit for the rest.
    Determinism is per-config (seeded), not per-schedule.  When a
    ``profile`` is passed, workers time their phases and the parent
    merges every worker profile into it.
    """
    want_profile = profile is not None
    if jobs <= 1 or len(configs) <= 1:
        results, chunk_profile = _measure_sweep_chunk(
            (configs, backend, scalar_backend, None, want_profile)
        )
        if profile is not None:
            profile.merge(chunk_profile)
        return results
    cache_root = current_cache_dir()
    cache_dir = str(cache_root) if cache_root is not None else ""
    chunksize = max(1, -(-len(configs) // (jobs * 4)))
    chunks = [
        (configs[i:i + chunksize], backend, scalar_backend, cache_dir,
         want_profile)
        for i in range(0, len(configs), chunksize)
    ]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        results: list[Measurement] = []
        for chunk_result, chunk_profile in pool.map(_measure_sweep_chunk,
                                                    chunks):
            results.extend(chunk_result)
            if profile is not None:
                profile.merge(chunk_profile)
        return results
