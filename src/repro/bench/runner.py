"""Measurement runner: simdize, execute, verify, and score one loop.

Every measurement in the reproduction flows through
:func:`measure_loop`: it simdizes with the requested scheme, runs both
the scalar reference and the vector program on identical random
memories, *verifies byte equality*, and reports the paper's metrics
(operations per datum, dynamic-instruction speedup, and the Figure 11
three-component breakdown: LB / shift overhead / remaining overhead).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.lowerbound import LowerBound, lower_bound, seq_opd
from repro.bench.synth import SynthesizedLoop
from repro.machine.scalar import RunBindings
from repro.simdize.driver import simdize
from repro.simdize.options import SimdOptions
from repro.simdize.verify import fill_random, make_space, verify_equivalence


@dataclass
class Measurement:
    """One (loop, scheme) data point."""

    scheme: str
    policy: str
    opd: float
    seq_opd: float
    lb: LowerBound
    reorg_opd: float
    scalar_ops: int
    vector_ops: int
    data_count: int
    static_shifts: int

    @property
    def speedup(self) -> float:
        return self.scalar_ops / self.vector_ops

    @property
    def lb_speedup(self) -> float:
        """Upper-bound speedup implied by the OPD lower bound."""
        return self.seq_opd / self.lb.opd

    @property
    def shift_overhead(self) -> float:
        """Figure 11's middle bar: measured reorg OPD above the LB's."""
        return max(0.0, self.reorg_opd - self.lb.reorg_opd)

    @property
    def other_overhead(self) -> float:
        """Figure 11's top bar: everything above LB + shift overhead."""
        return max(0.0, self.opd - self.lb.opd - self.shift_overhead)


def measure_loop(
    syn: SynthesizedLoop,
    options: SimdOptions,
    V: int = 16,
    seed: int = 0,
    scheme: str | None = None,
) -> Measurement:
    """Simdize + run + verify one synthesized loop under one scheme."""
    loop = syn.loop
    rng = random.Random(seed ^ 0x5EED)
    result = simdize(loop, V, options)

    space = make_space(loop, V, rng, syn.base_residues)
    mem = space.make_memory()
    fill_random(space, mem, rng)
    bindings = RunBindings(trip=syn.params.trip if loop.runtime_upper else None)
    report = verify_equivalence(result.program, space, mem, bindings)

    lb = lower_bound(
        loop,
        V,
        zero_shift=(result.policy == "zero"),
        runtime_alignment=syn.params.runtime_alignment,
        residues=syn.base_residues,
    )
    reorg_opd = report.vector_ops.reorg_total / report.data_count
    if scheme is None:
        scheme = result.policy.upper()
        if options.reuse != "none":
            scheme += f"-{options.reuse}"
    return Measurement(
        scheme=scheme,
        policy=result.policy,
        opd=report.vector_opd,
        seq_opd=seq_opd(loop),
        lb=lb,
        reorg_opd=reorg_opd,
        scalar_ops=report.scalar_total,
        vector_ops=report.vector_total,
        data_count=report.data_count,
        static_shifts=result.shift_count,
    )


@dataclass
class SuiteResult:
    """Aggregated measurements over a suite of loops (one scheme)."""

    scheme: str
    measurements: list[Measurement]

    @property
    def opd(self) -> float:
        """Suite OPD: total operations over total data (ratio of sums,
        the paper's footnote-7 aggregation)."""
        ops = sum(m.vector_ops for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return ops / data

    @property
    def speedup(self) -> float:
        scalar = sum(m.scalar_ops for m in self.measurements)
        vector = sum(m.vector_ops for m in self.measurements)
        return scalar / vector

    @property
    def lb_opd(self) -> float:
        lb_ops = sum(m.lb.opd * m.data_count for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return lb_ops / data

    @property
    def lb_speedup(self) -> float:
        seq = sum(m.seq_opd * m.data_count for m in self.measurements)
        lb = sum(m.lb.opd * m.data_count for m in self.measurements)
        return seq / lb

    @property
    def seq_opd(self) -> float:
        seq = sum(m.seq_opd * m.data_count for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return seq / data

    @property
    def shift_overhead(self) -> float:
        extra = sum(m.shift_overhead * m.data_count for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return extra / data

    @property
    def other_overhead(self) -> float:
        return max(0.0, self.opd - self.lb_opd - self.shift_overhead)


def measure_suite(
    suite: list[SynthesizedLoop],
    options: SimdOptions,
    V: int = 16,
    scheme: str | None = None,
) -> SuiteResult:
    """Measure every loop of a suite under one scheme."""
    measurements = [
        measure_loop(syn, options, V, seed=syn.seed, scheme=scheme)
        for syn in suite
    ]
    return SuiteResult(scheme=measurements[0].scheme, measurements=measurements)
