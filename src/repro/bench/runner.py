"""Measurement runner: simdize, execute, verify, and score one loop.

Every measurement in the reproduction flows through
:func:`measure_loop`: it simdizes with the requested scheme, runs both
the scalar reference and the vector program on identical random
memories, *verifies byte equality*, and reports the paper's metrics
(operations per datum, dynamic-instruction speedup, and the Figure 11
three-component breakdown: LB / shift overhead / remaining overhead).

Three throughput levers sit on top:

* :func:`simdize` results are memoized per process in a bounded LRU,
  keyed on the loop's structural
  :meth:`~repro.ir.expr.Loop.signature` plus the ``(V, SimdOptions)``
  pair — policy ablations re-lowering the same front end hit the memo;
* memo misses consult the shared disk cache (:mod:`repro.cache`), so
  ``measure_many`` workers and repeated CLI invocations skip the
  lowering entirely once any process has done it;
* :func:`measure_many` fans :class:`SweepConfig` descriptions out over
  a ``ProcessPoolExecutor``.  Configs carry synthesis parameters and
  seeds rather than loop objects, so every worker re-synthesizes its
  loops deterministically and results are independent of worker count.

Every entry point takes an optional
:class:`~repro.profiling.PhaseProfile` that accumulates per-phase
wall-clock seconds and cache hit counters; workers ship their profiles
back with their measurements and the parent merges them.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path

from repro.bench.lowerbound import LowerBound, lower_bound, seq_opd
from repro.bench.synth import SynthParams, SynthesizedLoop, synthesize
from repro.cache import current_cache_dir, get_cache, set_cache_dir
from repro.errors import BenchError
from repro.machine.backend import numpy_available
from repro.machine.scalar import RunBindings
from repro.profiling import PhaseProfile, timed
from repro.simdize.driver import SimdizeResult, simdize
from repro.simdize.options import SimdOptions
from repro.simdize.verify import (
    fill_random,
    make_space,
    verify_equivalence,
    verify_equivalence_batch,
)

#: Accepted ``sweep_mode`` values: ``periter`` measures configs one at
#: a time (the historical path); ``batched`` groups configs by program
#: signature and executes each class as one batched kernel call.
SWEEP_MODES = ("periter", "batched")

#: Bump when SimdizeResult's shape (or anything it transitively pickles)
#: changes: stale disk entries must miss, not deserialize wrongly.
SIMDIZE_CACHE_VERSION = 1

#: Per-process simdize memo: (loop signature, V, options) -> result.
#: Bounded LRU — a hit moves the entry to the back, eviction takes the
#: front — so unbounded sweeps cannot grow it without limit and hot
#: schemes survive scans over many distinct loops.
_SIMDIZE_CACHE: OrderedDict[
    tuple[str, int, SimdOptions], SimdizeResult
] = OrderedDict()
_SIMDIZE_CACHE_MAX = 512


def _simdize_disk_key(signature: str, V: int, options: SimdOptions) -> str:
    from repro import __version__

    return (f"simdize:{__version__}:{SIMDIZE_CACHE_VERSION}:"
            f"V{V}:{options!r}:{signature}")


def _cached_simdize(
    loop,
    V: int,
    options: SimdOptions,
    profile: PhaseProfile | None = None,
) -> SimdizeResult:
    signature = loop.signature()
    key = (signature, V, options)
    result = _SIMDIZE_CACHE.get(key)
    if result is not None:
        _SIMDIZE_CACHE.move_to_end(key)  # LRU: refresh on hit
        if profile is not None:
            profile.count("simdize_memo_hits")
        return result
    if profile is not None:
        profile.count("simdize_memo_misses")
    disk = get_cache()
    if disk is not None:
        entry = disk.get(_simdize_disk_key(signature, V, options))
        if isinstance(entry, SimdizeResult):
            result = entry
            if profile is not None:
                profile.count("simdize_disk_hits")
        elif profile is not None:
            profile.count("simdize_disk_misses")
    if result is None:
        result = simdize(loop, V, options)
        if disk is not None:
            disk.put(_simdize_disk_key(signature, V, options), result)
    if len(_SIMDIZE_CACHE) >= _SIMDIZE_CACHE_MAX:
        _SIMDIZE_CACHE.popitem(last=False)
    _SIMDIZE_CACHE[key] = result
    return result


@dataclass
class Measurement:
    """One (loop, scheme) data point."""

    scheme: str
    policy: str
    opd: float
    seq_opd: float
    lb: LowerBound
    reorg_opd: float
    scalar_ops: int
    vector_ops: int
    data_count: int
    static_shifts: int

    @property
    def speedup(self) -> float:
        return self.scalar_ops / self.vector_ops

    @property
    def lb_speedup(self) -> float:
        """Upper-bound speedup implied by the OPD lower bound."""
        return self.seq_opd / self.lb.opd

    @property
    def shift_overhead(self) -> float:
        """Figure 11's middle bar: measured reorg OPD above the LB's."""
        return max(0.0, self.reorg_opd - self.lb.reorg_opd)

    @property
    def other_overhead(self) -> float:
        """Figure 11's top bar: everything above LB + shift overhead."""
        return max(0.0, self.opd - self.lb.opd - self.shift_overhead)


def measure_loop(
    syn: SynthesizedLoop,
    options: SimdOptions,
    V: int = 16,
    seed: int = 0,
    scheme: str | None = None,
    backend: str = "auto",
    scalar_backend: str = "auto",
    profile: PhaseProfile | None = None,
) -> Measurement:
    """Simdize + run + verify one synthesized loop under one scheme."""
    loop = syn.loop
    rng = random.Random(seed ^ 0x5EED)
    with timed(profile, "simdize"):
        result = _cached_simdize(loop, V, options, profile)

    space = make_space(loop, V, rng, syn.base_residues)
    mem = space.make_memory()
    fill_random(space, mem, rng)
    bindings = RunBindings(trip=syn.params.trip if loop.runtime_upper else None)
    report = verify_equivalence(result.program, space, mem, bindings,
                                backend=backend, scalar_backend=scalar_backend,
                                profile=profile)
    return _finish_measurement(syn, options, V, scheme, result, report)


def _finish_measurement(
    syn: SynthesizedLoop,
    options: SimdOptions,
    V: int,
    scheme: str | None,
    result: SimdizeResult,
    report,
) -> Measurement:
    """Score one verified run — shared by the per-config and batched
    paths so both produce field-identical Measurements."""
    loop = syn.loop
    lb = lower_bound(
        loop,
        V,
        zero_shift=(result.policy == "zero"),
        runtime_alignment=syn.params.runtime_alignment,
        residues=syn.base_residues,
    )
    reorg_opd = report.vector_ops.reorg_total / report.data_count
    if scheme is None:
        scheme = result.policy.upper()
        if options.reuse != "none":
            scheme += f"-{options.reuse}"
    return Measurement(
        scheme=scheme,
        policy=result.policy,
        opd=report.vector_opd,
        seq_opd=seq_opd(loop),
        lb=lb,
        reorg_opd=reorg_opd,
        scalar_ops=report.scalar_total,
        vector_ops=report.vector_total,
        data_count=report.data_count,
        static_shifts=result.shift_count,
    )


@dataclass
class SuiteResult:
    """Aggregated measurements over a suite of loops (one scheme)."""

    scheme: str
    measurements: list[Measurement]

    @property
    def opd(self) -> float:
        """Suite OPD: total operations over total data (ratio of sums,
        the paper's footnote-7 aggregation)."""
        ops = sum(m.vector_ops for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return ops / data

    @property
    def speedup(self) -> float:
        scalar = sum(m.scalar_ops for m in self.measurements)
        vector = sum(m.vector_ops for m in self.measurements)
        return scalar / vector

    @property
    def lb_opd(self) -> float:
        lb_ops = sum(m.lb.opd * m.data_count for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return lb_ops / data

    @property
    def lb_speedup(self) -> float:
        seq = sum(m.seq_opd * m.data_count for m in self.measurements)
        lb = sum(m.lb.opd * m.data_count for m in self.measurements)
        return seq / lb

    @property
    def seq_opd(self) -> float:
        seq = sum(m.seq_opd * m.data_count for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return seq / data

    @property
    def shift_overhead(self) -> float:
        extra = sum(m.shift_overhead * m.data_count for m in self.measurements)
        data = sum(m.data_count for m in self.measurements)
        return extra / data

    @property
    def other_overhead(self) -> float:
        return max(0.0, self.opd - self.lb_opd - self.shift_overhead)


def measure_suite(
    suite: list[SynthesizedLoop],
    options: SimdOptions,
    V: int = 16,
    scheme: str | None = None,
    jobs: int = 1,
    backend: str = "auto",
    scalar_backend: str = "auto",
    profile: PhaseProfile | None = None,
    sweep_mode: str = "periter",
) -> SuiteResult:
    """Measure every loop of a suite under one scheme."""
    if jobs > 1 or sweep_mode != "periter":
        configs = [
            SweepConfig(syn.params, syn.seed, options, V, scheme) for syn in suite
        ]
        measurements = measure_many(configs, jobs=jobs, backend=backend,
                                    scalar_backend=scalar_backend,
                                    profile=profile, sweep_mode=sweep_mode)
    else:
        measurements = [
            measure_loop(syn, options, V, seed=syn.seed, scheme=scheme,
                         backend=backend, scalar_backend=scalar_backend,
                         profile=profile)
            for syn in suite
        ]
    return SuiteResult(scheme=measurements[0].scheme, measurements=measurements)


# ---------------------------------------------------------------------------
# Parallel sweeps
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepConfig:
    """One self-contained measurement job.

    Carries synthesis parameters and the seed instead of the loop
    object: :func:`~repro.bench.synth.synthesize` is deterministic in
    ``(params, seed, V)``, so any worker process reconstructs exactly
    the loop — and the random data seeds derive from ``seed`` — making
    sweep results identical for any worker count, one or many.
    """

    params: SynthParams
    seed: int
    options: SimdOptions
    V: int = 16
    scheme: str | None = None


# ---------------------------------------------------------------------------
# Structure-batched sweeps
# ---------------------------------------------------------------------------

def _program_class_key(config: SweepConfig, result: SimdizeResult):
    """The signature-class grouping key for one simdized config.

    With NumPy present this is the jit engine's structural program
    signature — the exact key its kernel cache uses, so every config
    in a class shares one compiled kernel and one batched call.
    Without NumPy, batching degrades to per-run execution anyway
    (:func:`~repro.machine.backend.run_vector_batch`), so the loop
    signature tuple is key enough.
    """
    if numpy_available():
        from repro.machine.jit import _cached_signature

        return _cached_signature(result.program)
    return (result.program.source.signature(), config.V, config.options)


def measure_batch(
    configs: list[SweepConfig],
    backend: str = "auto",
    scalar_backend: str = "auto",
    profile: PhaseProfile | None = None,
) -> list[Measurement]:
    """Measure sweep configs grouped into program-signature classes.

    Element-wise identical to :func:`measure_loop` per config — same
    synthesis, same seeded random memories, same verification oracle,
    same Measurement fields — but the vector executions of each
    signature class happen as ONE batched backend call
    (:func:`~repro.simdize.verify.verify_equivalence_batch`) instead
    of one per config.  Because batching is the whole point here,
    ``backend="auto"`` resolves to the jit engine (the only one with
    a native config-batch axis) when NumPy is available; its results
    are bit-identical to the bytes oracle, so the only observable
    difference is wall clock.  Results come back in input order.

    With a ``profile``, per-class stats accumulate under
    ``batch_classes`` / ``batch_configs`` / ``batch_fallbacks``.
    """
    if backend == "auto" and numpy_available():
        backend = "jit"
    syns: list[SynthesizedLoop] = []
    for config in configs:
        with timed(profile, "synthesize"):
            syns.append(synthesize(config.params, config.seed, config.V))
    simdized: list[SimdizeResult] = []
    classes: "OrderedDict[object, list[int]]" = OrderedDict()
    for idx, (config, syn) in enumerate(zip(configs, syns)):
        with timed(profile, "simdize"):
            result = _cached_simdize(syn.loop, config.V, config.options,
                                     profile)
        simdized.append(result)
        classes.setdefault(_program_class_key(config, result), []).append(idx)
    measurements: list[Measurement | None] = [None] * len(configs)
    for indices in classes.values():
        items = []
        for idx in indices:
            config, syn = configs[idx], syns[idx]
            # Exactly measure_loop's derivation: the data rng seeds
            # from the config seed, so batch composition cannot change
            # any config's memory image.
            rng = random.Random(config.seed ^ 0x5EED)
            space = make_space(syn.loop, config.V, rng, syn.base_residues)
            mem = space.make_memory()
            fill_random(space, mem, rng)
            bindings = RunBindings(
                trip=syn.params.trip if syn.loop.runtime_upper else None
            )
            items.append((simdized[idx].program, space, mem, bindings))
        reports = verify_equivalence_batch(
            items, backend=backend, scalar_backend=scalar_backend,
            profile=profile,
        )
        if profile is not None:
            profile.count("batch_classes")
            profile.count("batch_configs", len(indices))
            fallbacks = sum(1 for r in reports if r.used_fallback)
            if fallbacks:
                profile.count("batch_fallbacks", fallbacks)
        for idx, report in zip(indices, reports):
            measurements[idx] = _finish_measurement(
                syns[idx], configs[idx].options, configs[idx].V,
                configs[idx].scheme, simdized[idx], report,
            )
    return measurements


def _disk_stats_snapshot() -> dict:
    cache = get_cache()
    return cache.stats() if cache is not None else {}


def _fold_disk_stats(profile: PhaseProfile | None, before: dict) -> None:
    """Fold disk-tier stat *deltas* into a profile.

    :class:`~repro.cache.DiskCache` counters are cumulative per
    process, and pool workers are reused across chunks — shipping raw
    totals with every chunk profile would double-count them when the
    parent merges.  Snapshot before the chunk, fold the delta after.
    """
    if profile is None:
        return
    after = _disk_stats_snapshot()
    if not after:
        return
    for stat in ("evictions",):
        delta = after.get(stat, 0) - before.get(stat, 0)
        if delta:
            profile.count(f"disk_{stat}", delta)


def _measure_batch_chunk(
    job: tuple[list[SweepConfig], str, str, str | None, bool]
) -> tuple[list[Measurement], PhaseProfile | None]:
    """Worker entry point for batched sweeps: one or more whole
    signature classes per task (same job tuple as
    :func:`_measure_sweep_chunk`)."""
    chunk, backend, scalar_backend, cache_dir, want_profile = job
    if cache_dir is not None:
        set_cache_dir(Path(cache_dir) if cache_dir else None)
    profile = PhaseProfile() if want_profile else None
    before = _disk_stats_snapshot() if want_profile else {}
    out = measure_batch(chunk, backend=backend,
                        scalar_backend=scalar_backend, profile=profile)
    _fold_disk_stats(profile, before)
    return out, profile


def _batched_bins(configs: list[SweepConfig], jobs: int) -> list[list[int]]:
    """Partition config indices into worker bins, whole families at a
    time.

    Families group by ``(params, V)`` — computable without synthesizing
    and coarser than any program-signature class (configs lowered from
    different param sets can't share a program; different *schemes* of
    one param set sometimes can) — so no class is ever split across
    processes and every worker batches maximally.  Runtime-trip params
    normalize ``trip`` out of the key: the trip count is a run-time
    binding there, so configs differing only in trip share program
    signatures.  Greedy largest-family-first balancing keeps bins even.
    """
    families: "OrderedDict[object, list[int]]" = OrderedDict()
    for idx, config in enumerate(configs):
        params = config.params
        if params.runtime_trip:
            params = replace(params, trip=0)
        families.setdefault((params, config.V), []).append(idx)
    bins: list[list[int]] = [[] for _ in range(min(jobs, len(families)))]
    loads = [0] * len(bins)
    for indices in sorted(families.values(), key=len, reverse=True):
        target = loads.index(min(loads))
        bins[target].extend(indices)
        loads[target] += len(indices)
    return [b for b in bins if b]


def _measure_sweep_chunk(
    job: tuple[list[SweepConfig], str, str, str | None, bool]
) -> tuple[list[Measurement], PhaseProfile | None]:
    """Worker entry point: re-synthesize and measure a whole chunk.

    Module-level (picklable); taking a *list* of configs per task
    amortizes the executor's per-task pickling/dispatch overhead and
    lets consecutive configs share the worker's simdize memo.  The job
    carries the parent's cache directory (None = leave this process's
    setting alone, "" = disabled) so all workers share one disk cache,
    and a flag asking for a phase profile to ship back.
    """
    chunk, backend, scalar_backend, cache_dir, want_profile = job
    if cache_dir is not None:
        set_cache_dir(Path(cache_dir) if cache_dir else None)
    profile = PhaseProfile() if want_profile else None
    before = _disk_stats_snapshot() if want_profile else {}
    out = []
    for config in chunk:
        with timed(profile, "synthesize"):
            syn = synthesize(config.params, config.seed, config.V)
        out.append(measure_loop(syn, config.options, config.V,
                                seed=config.seed, scheme=config.scheme,
                                backend=backend,
                                scalar_backend=scalar_backend,
                                profile=profile))
    _fold_disk_stats(profile, before)
    return out, profile


def measure_many(
    configs: list[SweepConfig],
    jobs: int = 1,
    backend: str = "auto",
    scalar_backend: str = "auto",
    profile: PhaseProfile | None = None,
    sweep_mode: str = "periter",
) -> list[Measurement]:
    """Measure many sweep configs, optionally fanned over processes.

    Results are returned in input order and element-wise identical in
    every ``sweep_mode`` — the modes only change *how* the vector
    executions are dispatched, never what any config computes.

    ``sweep_mode="periter"`` measures one config at a time.
    ``jobs <= 1`` runs serially in this process (and benefits from the
    shared simdize memo); larger ``jobs`` submits manually batched
    chunks to a ``ProcessPoolExecutor`` — one task per chunk, ~4 chunks
    per worker — so task pickling is amortized over many configs.

    ``sweep_mode="batched"`` routes through :func:`measure_batch`:
    configs grouped into program-signature classes, one config-batched
    kernel call per class.  With ``jobs > 1`` each worker receives
    whole config *families* (``(params, V, options)`` groups — a
    synthesis-free superset of the signature classes), so no class is
    ever split across processes and the per-task overhead that capped
    per-config scaling disappears with it.

    Each worker keeps its own memo but shares the parent's *disk* cache
    directory, so lowering done by one worker is a disk hit for the
    rest.  Determinism is per-config (seeded), not per-schedule.  When
    a ``profile`` is passed, workers time their phases and the parent
    merges every worker profile into it; cumulative disk-cache counters
    are folded as per-chunk deltas so reused pool workers never
    double-count.
    """
    if sweep_mode not in SWEEP_MODES:
        raise BenchError(
            f"unknown sweep mode {sweep_mode!r}; choose from {SWEEP_MODES}"
        )
    want_profile = profile is not None
    if sweep_mode == "batched":
        if jobs <= 1 or len(configs) <= 1:
            results, chunk_profile = _measure_batch_chunk(
                (configs, backend, scalar_backend, None, want_profile)
            )
            if profile is not None:
                profile.merge(chunk_profile)
            return results
        cache_root = current_cache_dir()
        cache_dir = str(cache_root) if cache_root is not None else ""
        bins = _batched_bins(configs, jobs)
        chunks = [
            ([configs[i] for i in indices], backend, scalar_backend,
             cache_dir, want_profile)
            for indices in bins
        ]
        measurements: list[Measurement | None] = [None] * len(configs)
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            for indices, (chunk_result, chunk_profile) in zip(
                    bins, pool.map(_measure_batch_chunk, chunks)):
                for idx, measurement in zip(indices, chunk_result):
                    measurements[idx] = measurement
                if profile is not None:
                    profile.merge(chunk_profile)
        return measurements
    if jobs <= 1 or len(configs) <= 1:
        results, chunk_profile = _measure_sweep_chunk(
            (configs, backend, scalar_backend, None, want_profile)
        )
        if profile is not None:
            profile.merge(chunk_profile)
        return results
    cache_root = current_cache_dir()
    cache_dir = str(cache_root) if cache_root is not None else ""
    chunksize = max(1, -(-len(configs) // (jobs * 4)))
    chunks = [
        (configs[i:i + chunksize], backend, scalar_backend, cache_dir,
         want_profile)
        for i in range(0, len(configs), chunksize)
    ]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        results: list[Measurement] = []
        for chunk_result, chunk_profile in pool.map(_measure_sweep_chunk,
                                                    chunks):
            results.extend(chunk_result)
            if profile is not None:
                profile.merge(chunk_profile)
        return results
