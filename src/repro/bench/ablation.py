"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper, but direct quantifications of its claims:

* **peeling-vs-prologue** — how often prior art's loop peeling is even
  applicable on misaligned suites, and what our scheme delivers on the
  same loops (paper Section 1: "any peeling scheme can only make at
  most one reference in the loop aligned");
* **reuse ablation** — the cost of not exploiting stream reuse
  ("without exploiting the reuse, there can be a performance slowdown
  of more than a factor of 2", Section 6);
* **memnorm ablation** — the ~0.5 % across-the-board improvement of
  memory normalization (Section 5.5);
* **unroll ablation** — how unrolling removes the software-pipelining
  copies (Section 4.5: "the copy operation can be easily removed by
  unrolling the loop twice").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.peeling import measure_peeling, peeling_applicable
from repro.bench.runner import measure_suite
from repro.bench.synth import SynthParams, SynthesizedLoop, synthesize_suite
from repro.ir.types import INT32
from repro.simdize.options import SimdOptions


@dataclass
class PeelingAblation:
    total: int
    peeling_applicable_count: int
    peeling_opd: float | None
    ours_opd_on_all: float

    def format(self) -> str:
        frac = self.peeling_applicable_count / self.total
        lines = [
            "Ablation: loop peeling (prior art) vs data-reorganization simdization",
            f"  loops where peeling applies: {self.peeling_applicable_count}/{self.total}"
            f" ({frac:.0%})",
        ]
        if self.peeling_opd is not None:
            lines.append(f"  peeling opd on applicable loops: {self.peeling_opd:.3f}")
        lines.append(f"  our (DOM-sp) opd on ALL loops:   {self.ours_opd_on_all:.3f}")
        return "\n".join(lines)


def peeling_ablation(
    count: int = 50, trip: int = 509, loads: int = 4, bias: float = 0.3,
    V: int = 16, base_seed: int = 0,
) -> PeelingAblation:
    """How often does prior-art peeling fire, and what do we get instead?"""
    params = SynthParams(loads=loads, statements=1, trip=trip,
                         bias=bias, reuse=0.3, dtype=INT32)
    suite = synthesize_suite(params, count, base_seed, V)

    applicable: list[SynthesizedLoop] = [
        syn for syn in suite if peeling_applicable(syn.loop, V)
    ]
    peel_opd = None
    if applicable:
        total_ops = total_data = 0
        for syn in applicable:
            m = measure_peeling(syn, V, seed=syn.seed)
            total_ops += m.ops
            total_data += m.data_count
        peel_opd = total_ops / total_data

    ours = measure_suite(suite, SimdOptions(policy="dominant", reuse="sp", unroll=4), V)
    return PeelingAblation(
        total=len(suite),
        peeling_applicable_count=len(applicable),
        peeling_opd=peel_opd,
        ours_opd_on_all=ours.opd,
    )


@dataclass
class OptionAblation:
    label: str
    baseline_opd: float
    variant_opd: float

    @property
    def ratio(self) -> float:
        return self.variant_opd / self.baseline_opd

    def format(self) -> str:
        return (
            f"Ablation: {self.label}: {self.baseline_opd:.3f} -> "
            f"{self.variant_opd:.3f} opd (x{self.ratio:.2f})"
        )


def _suite(count: int, trip: int, V: int, base_seed: int):
    params = SynthParams(loads=6, statements=1, trip=trip, bias=0.3,
                         reuse=0.3, dtype=INT32)
    return synthesize_suite(params, count, base_seed, V)


def reuse_ablation(count: int = 25, trip: int = 509, V: int = 16,
                   base_seed: int = 0) -> OptionAblation:
    """SP reuse on vs off — the >2x slowdown claim of Section 6."""
    suite = _suite(count, trip, V, base_seed)
    with_reuse = measure_suite(suite, SimdOptions(policy="zero", reuse="sp", unroll=4), V)
    without = measure_suite(suite, SimdOptions(policy="zero", reuse="none", unroll=4), V)
    return OptionAblation("stream reuse (ZERO-sp vs ZERO)", with_reuse.opd, without.opd)


def memnorm_ablation(count: int = 25, trip: int = 509, V: int = 16,
                     base_seed: int = 0) -> OptionAblation:
    """MemNorm on vs off — the small always-beneficial effect.

    Normalization pays off when different statements reference the same
    array at nearby offsets (their loads hit the same aligned vector),
    so the ablation uses a high-reuse multi-statement suite.
    """
    params = SynthParams(loads=4, statements=4, trip=trip, bias=0.3,
                         reuse=0.9, dtype=INT32)
    suite = synthesize_suite(params, count, base_seed, V)
    on = measure_suite(suite, SimdOptions(policy="lazy", reuse="pc", unroll=4, memnorm=True), V)
    off = measure_suite(suite, SimdOptions(policy="lazy", reuse="pc", unroll=4, memnorm=False), V)
    return OptionAblation("memory normalization (off vs on)", on.opd, off.opd)


def unroll_ablation(count: int = 25, trip: int = 509, V: int = 16,
                    base_seed: int = 0) -> OptionAblation:
    """Unroll 2 vs 1 under SP — the copy-removal claim of Section 4.5."""
    suite = _suite(count, trip, V, base_seed)
    unrolled = measure_suite(suite, SimdOptions(policy="dominant", reuse="sp", unroll=2), V)
    rolled = measure_suite(suite, SimdOptions(policy="dominant", reuse="sp", unroll=1), V)
    return OptionAblation("unrolling (rolled vs unroll=2, DOM-sp)", unrolled.opd, rolled.opd)
