"""Rendering of benchmark results: ASCII charts and Markdown tables.

The paper presents Figure 11/12 as stacked bar charts (lower bound /
shift overhead / remaining overhead).  :func:`figure_chart` renders the
same stacking in a terminal; :func:`table_markdown` and
:func:`figure_markdown` produce Markdown for reports such as
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from repro.bench.figures import FigureResult
from repro.bench.tables import TableResult

#: glyphs for the three stacked components
LB_CHAR = "█"
SHIFT_CHAR = "▓"
OTHER_CHAR = "░"


def figure_chart(fig: FigureResult, width: int = 56) -> str:
    """An ASCII stacked-bar rendering of a Figure 11/12 result."""
    top = max(bar.total for bar in fig.bars)
    scale = width / top if top else 1.0
    lines = [fig.title,
             f"SEQ (ideal scalar) = {fig.seq_opd:.1f} opd; "
             f"{LB_CHAR} lower bound  {SHIFT_CHAR} shift overhead  "
             f"{OTHER_CHAR} other overhead"]
    for bar in fig.bars:
        lb_w = round(bar.lb * scale)
        sh_w = round(bar.shift_overhead * scale)
        ot_w = max(0, round(bar.total * scale) - lb_w - sh_w)
        body = LB_CHAR * lb_w + SHIFT_CHAR * sh_w + OTHER_CHAR * ot_w
        lines.append(f"{bar.label:>17s} |{body} {bar.total:.3f}")
    return "\n".join(lines)


def figure_markdown(fig: FigureResult) -> str:
    """A Markdown table of a Figure 11/12 result."""
    lines = [
        f"**{fig.title}** (SEQ = {fig.seq_opd:.1f} opd)",
        "",
        "| scheme | total opd | lower bound | shift overhead | other |",
        "|---|---|---|---|---|",
    ]
    for bar in fig.bars:
        lines.append(
            f"| {bar.label} | {bar.total:.3f} | {bar.lb:.3f} "
            f"| +{bar.shift_overhead:.3f} | +{bar.other_overhead:.3f} |"
        )
    return "\n".join(lines)


def table_markdown(table: TableResult) -> str:
    """A Markdown rendering of a Table 1/2 result."""
    lines = [
        f"**{table.title}** (peak speedup {table.peak})",
        "",
        "| loop | best policy | speedup | LB speedup "
        "| best (runtime) | speedup | LB speedup |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in table.rows:
        c, r = row.compile_best, row.runtime_best
        lines.append(
            f"| {row.label} | {c.scheme} | {c.speedup:.2f} | {c.lb_speedup:.2f} "
            f"| {r.scheme} | {r.speedup:.2f} | {r.lb_speedup:.2f} |"
        )
    return "\n".join(lines)


def comparison_markdown(
    label: str,
    paper_rows: dict[str, float],
    measured_rows: dict[str, float],
) -> str:
    """Paper-vs-measured table for EXPERIMENTS.md-style records."""
    lines = [
        f"**{label}**",
        "",
        "| quantity | paper | this reproduction | ratio |",
        "|---|---|---|---|",
    ]
    for key, paper_value in paper_rows.items():
        measured = measured_rows.get(key)
        if measured is None:
            lines.append(f"| {key} | {paper_value} | — | — |")
        else:
            ratio = measured / paper_value if paper_value else float("nan")
            lines.append(
                f"| {key} | {paper_value:.3f} | {measured:.3f} | {ratio:.2f} |"
            )
    return "\n".join(lines)
