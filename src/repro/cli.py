"""Command-line interface: ``python -m repro <command> …``.

Commands
--------
``simdize FILE``
    Compile a mini-C loop and print the simdized vector program
    (AltiVec-style by default).
``run FILE``
    Simdize, execute on the virtual SIMD machine, verify against the
    scalar reference, and print operation counts and speedup.
``export FILE``
    Emit a compilable C translation unit (SSE or AltiVec intrinsics);
    ``--validate`` additionally compiles and runs it against scalar
    semantics (needs a host C compiler).
``explain FILE``
    Show the loop's alignment table, dependence report, stream
    diagrams, and the shift counts of every placement policy.
``bench NAME``
    Regenerate one of the paper's evaluation artifacts
    (``table1``, ``table2``, ``fig11``, ``fig12``, ``coverage``).
``serve``
    Run the long-lived simdization service (``/simdize``, ``/verify``,
    ``/sweep``, ``/healthz``, ``/stats``) until SIGTERM, then drain
    gracefully.  See DESIGN.md §7.

Every command reads the loop from a mini-C source file (see
``repro.lang``), or from stdin when FILE is ``-``.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import SimdalError, SweepInterrupted, VerificationError
from repro.lang import compile_source
from repro.machine.backend import BACKEND_CHOICES, SCALAR_BACKEND_CHOICES
from repro.simdize.options import SimdOptions


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _options(args: argparse.Namespace) -> SimdOptions:
    return SimdOptions(
        policy=args.policy,
        reuse=args.reuse,
        unroll=args.unroll,
        offset_reassoc=args.reassoc,
    )


def _add_simd_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--policy", default="auto",
                        choices=["auto", "zero", "eager", "lazy", "dominant"],
                        help="stream-shift placement policy")
    parser.add_argument("--reuse", default="sp",
                        choices=["none", "sp", "pc", "sp+pc"],
                        help="cross-iteration reuse optimization")
    parser.add_argument("--unroll", type=int, default=1, metavar="U",
                        help="steady-loop unroll factor")
    parser.add_argument("--reassoc", action="store_true",
                        help="enable common-offset reassociation")
    parser.add_argument("--vector-bytes", type=int, default=16, dest="V",
                        help="vector register length in bytes")


def _add_perf_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default="auto", dest="exec_backend",
                        choices=list(BACKEND_CHOICES),
                        help="execution engine (auto = numpy when available; "
                             "jit compiles each program once and caches it; "
                             "native additionally compiles kernels to machine "
                             "code with the host C compiler, degrading to jit "
                             "when no compiler is found)")
    parser.add_argument("--scalar-backend", default="auto",
                        dest="scalar_backend",
                        choices=list(SCALAR_BACKEND_CHOICES),
                        help="scalar-reference engine (auto = numpy when "
                             "available)")
    parser.add_argument("--profile", action="store_true",
                        help="print per-phase wall-clock timings and cache "
                             "hit rates")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="disk cache for compiled artifacts (default "
                             "~/.cache/repro or $REPRO_CACHE_DIR; '' disables)")
    parser.add_argument("--async-compile", action="store_true",
                        dest="async_compile",
                        help="compile native kernels on a background thread "
                             "and hot-swap them in as they land; runs start "
                             "immediately on the jit tier (same as "
                             "REPRO_NATIVE_ASYNC=1)")


def _apply_cache_dir(args: argparse.Namespace) -> None:
    if args.cache_dir is not None:
        from repro.cache import set_cache_dir

        set_cache_dir(args.cache_dir if args.cache_dir else None)
    if getattr(args, "async_compile", False):
        from repro.machine import compilequeue

        compilequeue.set_async_compile(True)


def _drain_async_compiles() -> None:
    """Wait out queued background native compiles before exiting.

    Their hot-swaps can no longer help this invocation, but the
    compiled artifacts land in the shared disk cache so the *next*
    process starts warm — the whole point of compiling ahead.
    """
    from repro.machine import compilequeue

    if compilequeue.async_enabled():
        compilequeue.drain(timeout=60.0)


def _make_profile(args: argparse.Namespace):
    if not args.profile:
        return None
    from repro.profiling import PhaseProfile

    return PhaseProfile()


def _bindings(args: argparse.Namespace) -> tuple[int | None, dict[str, int]]:
    scalars: dict[str, int] = {}
    for binding in args.set or []:
        name, _, value = binding.partition("=")
        if not value:
            raise SimdalError(f"--set needs name=value, got {binding!r}")
        scalars[name] = int(value)
    return args.trip, scalars


def cmd_simdize(args: argparse.Namespace) -> int:
    from repro.simdize.driver import simdize
    from repro.vir.printer import format_program

    loop = compile_source(_read_source(args.file), name=args.name)
    result = simdize(loop, args.V, _options(args))
    print(f"// policy: {result.policy}, stream shifts: {result.shift_count}")
    print(format_program(result.program, altivec=(args.dialect == "altivec")))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro import run_and_verify
    from repro.simdize.driver import simdize

    _apply_cache_dir(args)
    profile = _make_profile(args)
    loop = compile_source(_read_source(args.file), name=args.name)
    result = simdize(loop, args.V, _options(args))
    trip, scalars = _bindings(args)
    report = run_and_verify(result.program, seed=args.seed, trip=trip,
                            scalars=scalars, backend=args.exec_backend,
                            scalar_backend=args.scalar_backend,
                            profile=profile)
    print(f"verified: simdized execution matches scalar semantics "
          f"(trip {report.trip})")
    print(f"policy {result.policy}, static stream shifts {result.shift_count}")
    print(f"scalar ops   {report.scalar_total:>10d}   "
          f"({report.scalar_opd:.2f} per datum)")
    print(f"simdized ops {report.vector_total:>10d}   "
          f"({report.vector_opd:.2f} per datum)")
    print(f"speedup      {report.speedup:>10.2f}x")
    if report.used_fallback:
        print("note: the engine took a fallback path (guarded scalar run "
              "for small trips, or per-iteration steady execution)")
    if report.fallback is not None:
        fb = report.fallback
        print(f"note: backend degraded to {fb['tier']!r} after a "
              f"{fb['phase']} failure in {'/'.join(fb['failed'])} "
              f"({fb['reason']})")
    _drain_async_compiles()
    if profile is not None:
        print()
        print(profile.format())
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.export import cross_validate, export_c
    from repro.simdize.driver import simdize

    loop = compile_source(_read_source(args.file), name=args.name)
    result = simdize(loop, args.V, _options(args))
    source = export_c(result.program, backend=args.backend)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(f"wrote {args.output} ({args.backend} backend)")
    else:
        print(source)
    if args.validate:
        trip, scalars = _bindings(args)
        report = cross_validate(loop, _options(args), args.V, trip=trip,
                                scalars=scalars, backend=args.backend)
        print(f"cross-validation: {report.output} (compiled with {report.compiler})")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.deps.analysis import dependence_report
    from repro.reorg import apply_policy, build_loop_graph
    from repro.viz.streams import loop_alignment_table, memory_stream

    loop = compile_source(_read_source(args.file), name=args.name)
    print(loop)
    print()
    print("alignment of each reference:")
    print(loop_alignment_table(loop, args.V))
    print()
    print("dependences:")
    print(dependence_report(loop.statements))
    print()
    if not loop.has_reductions:
        graph = build_loop_graph(loop, args.V)
        print("stream shifts per placement policy:")
        for policy in ("zero", "eager", "lazy", "dominant"):
            try:
                count = apply_policy(graph, policy).shift_count()
                print(f"  {policy:9s} {count}")
            except SimdalError as exc:
                print(f"  {policy:9s} not applicable ({exc})")
        print()
    first = loop.statements[0]
    refs = list(first.loads())[:2]
    for ref in refs:
        try:
            print(memory_stream(ref, args.V).text)
            print()
        except SimdalError:
            pass
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import coverage_sweep, figure11, figure12, table1, table2

    from repro.bench.runner import RunPolicy

    _apply_cache_dir(args)
    profile = _make_profile(args)
    policy = RunPolicy(
        max_retries=args.max_retries,
        timeout=args.timeout,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    sweep = dict(count=args.count, trip=args.trip_count, jobs=args.jobs,
                 backend=args.exec_backend,
                 scalar_backend=args.scalar_backend, profile=profile,
                 sweep_mode=args.sweep_mode, run_policy=policy)
    builders = {
        "table1": lambda: table1(**sweep),
        "table2": lambda: table2(**sweep),
        "fig11": lambda: figure11(**sweep),
        "fig12": lambda: figure12(**sweep),
        "coverage": lambda: coverage_sweep(count=args.count * 10),
    }
    result = builders[args.name]()
    print(result.format())
    _drain_async_compiles()
    if profile is not None:
        print()
        print(profile.format())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeConfig, serve_forever

    _apply_cache_dir(args)
    config = ServeConfig.from_env()
    overrides = {
        "host": args.host, "port": args.port, "workers": args.workers,
        "max_inflight": args.max_inflight, "max_queue": args.max_queue,
        "deadline": args.deadline, "compile_budget": args.compile_budget,
        "breaker_threshold": args.breaker_threshold,
        "breaker_cooldown": args.breaker_cooldown,
        "drain_timeout": args.drain_timeout,
    }
    for name, value in overrides.items():
        if value is not None:
            setattr(config, name, value)
    return asyncio.run(serve_forever(config))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="simdal: simdization with alignment constraints "
                    "(PLDI 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common_file = dict(help="mini-C source file ('-' for stdin)")

    p = sub.add_parser("simdize", help="print the simdized vector program")
    p.add_argument("file", **common_file)
    p.add_argument("--name", default="loop")
    p.add_argument("--dialect", default="altivec", choices=["altivec", "generic"])
    _add_simd_options(p)
    p.set_defaults(func=cmd_simdize)

    p = sub.add_parser("run", help="execute on the VM, verify, report metrics")
    p.add_argument("file", **common_file)
    p.add_argument("--name", default="loop")
    p.add_argument("--trip", type=int, default=None,
                   help="runtime trip count (for 'int n;' bounds)")
    p.add_argument("--set", action="append", metavar="NAME=VALUE",
                   help="bind a runtime scalar")
    p.add_argument("--seed", type=int, default=0)
    _add_perf_options(p)
    _add_simd_options(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("export", help="emit C intrinsics code")
    p.add_argument("file", **common_file)
    p.add_argument("--name", default="loop")
    p.add_argument("--backend", default="sse", choices=["sse", "altivec"])
    p.add_argument("-o", "--output", default=None, help="write to a file")
    p.add_argument("--validate", action="store_true",
                   help="compile and run the exported code against scalar "
                        "semantics (needs a C compiler)")
    p.add_argument("--trip", type=int, default=None)
    p.add_argument("--set", action="append", metavar="NAME=VALUE")
    _add_simd_options(p)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("explain", help="alignments, dependences, policies")
    p.add_argument("file", **common_file)
    p.add_argument("--name", default="loop")
    p.add_argument("--vector-bytes", type=int, default=16, dest="V")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("bench", help="regenerate a paper table/figure")
    p.add_argument("name", choices=["table1", "table2", "fig11", "fig12",
                                    "coverage"])
    p.add_argument("--count", type=int, default=10,
                   help="loops per suite (paper uses 50)")
    p.add_argument("--trip-count", type=int, default=509,
                   help="loop trip count (paper uses ~1000)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the sweep (1 = serial)")
    p.add_argument("--sweep-mode", default="periter", dest="sweep_mode",
                   choices=["periter", "batched"],
                   help="sweep execution strategy: periter measures one "
                        "config at a time; batched runs each program-"
                        "signature class as one batched kernel call "
                        "(identical output, less wall clock)")
    p.add_argument("--max-retries", type=int, default=2, dest="max_retries",
                   help="re-attempts per failing sweep config before it is "
                        "reported as failed (default 2)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-chunk wall-clock budget when --jobs > 1; an "
                        "overrunning chunk is treated like a worker death")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="journal completed configs to a JSONL file as the "
                        "sweep runs")
    p.add_argument("--resume", action="store_true",
                   help="skip configs already journaled in --checkpoint "
                        "(tables stay byte-identical to an uninterrupted run)")
    _add_perf_options(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("serve", help="run the simdization HTTP service")
    p.add_argument("--host", default=None,
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=None,
                   help="bind port (default 8787; 0 picks a free port, "
                        "printed on the ready line)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker threads for CPU-bound request work")
    p.add_argument("--max-inflight", type=int, default=None,
                   dest="max_inflight",
                   help="concurrent requests admitted (default 8)")
    p.add_argument("--max-queue", type=int, default=None, dest="max_queue",
                   help="waiting requests beyond which the server sheds "
                        "load with 429 (default 32)")
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="default per-request budget; requests may lower or "
                        "raise theirs with an X-Repro-Deadline header")
    p.add_argument("--compile-budget", type=float, default=None,
                   dest="compile_budget", metavar="SECONDS",
                   help="native warmup budget before the circuit breaker "
                        "counts a failure")
    p.add_argument("--breaker-threshold", type=int, default=None,
                   dest="breaker_threshold",
                   help="consecutive compile failures that trip the breaker")
    p.add_argument("--breaker-cooldown", type=float, default=None,
                   dest="breaker_cooldown", metavar="SECONDS",
                   help="open time before a half-open probe is admitted")
    p.add_argument("--drain-timeout", type=float, default=None,
                   dest="drain_timeout", metavar="SECONDS",
                   help="grace for in-flight requests on SIGTERM")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="disk cache for compiled artifacts (default "
                        "~/.cache/repro or $REPRO_CACHE_DIR; '' disables)")
    p.set_defaults(func=cmd_serve, async_compile=False)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Run one CLI command.

    Exit codes: 0 success, 1 any library error
    (:class:`~repro.errors.SimdalError`), 2 usage errors (argparse),
    3 a verification mismatch — the one failure a reproduction must
    never paper over, so scripts can tell it apart from I/O or
    configuration problems.  A checkpointed sweep stopped by
    SIGTERM/SIGINT also exits 3 (:class:`~repro.errors.SweepInterrupted`):
    the journal is intact and ``--resume`` completes the table
    byte-identically, so scripts must not mistake it for success or for
    a data-loss failure.  Library errors print one ``error:`` line,
    never a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except VerificationError as exc:
        print(f"verification mismatch: {exc}", file=sys.stderr)
        return 3
    except SweepInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return 3
    except SimdalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. `repro explain … | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
