"""Dependence analysis for stride-one loops (extension).

The paper assumes its input loops are dependence-free ("the
simdization phase occurs after … loop transformations that enhance
simdization by removing loop-carried dependences").  This module
supplies the missing analysis for our frontend: it classifies every
dependence between a store ``A[i + ks]`` and a load ``A[i + kl]`` of
the same array and decides whether blocked (vectorized) execution
preserves scalar semantics.

For a store in statement ``s`` and a load in statement ``l`` the
*dependence distance* is ``d = kl − ks`` elements:

==========  =====================  ========================================
``d``       scalar meaning         blocked execution
==========  =====================  ========================================
``d < 0``   flow dependence        **unsafe** — iteration ``j`` consumes a
            carried over |d|       value produced ``|d|`` iterations
            iterations             earlier; a block computes all its lanes
                                   from pre-block memory
``d == 0``  same-element,          safe iff the load's statement does not
            same-iteration         come *after* the store's (loads are
                                   emitted before stores, per statement)
``d > 0``   anti dependence        safe iff the load's statement does not
            (reads a future        come after the store's: every read —
            iteration's target)    including the software-pipelined
                                   next-block lookahead — still sees the
                                   pre-store value, exactly like the
                                   scalar loop
==========  =====================  ========================================

The unsafe "load statement after store statement" cases fail because a
block's store updates lanes for *all B iterations at once*, so a later
statement in the same block would read values that scalar execution
would not have produced yet.  The analysis reports each dependence with
its kind and distance so rejections are actionable diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.expr import Reduction, Statement


@dataclass(frozen=True)
class Dependence:
    """One store→load relation on a shared array."""

    array: str
    kind: str           # "flow" | "anti" | "same-iteration"
    distance: int       # kl - ks, in elements/iterations
    store_statement: int
    load_statement: int
    store_offset: int
    load_offset: int
    safe: bool
    reason: str

    def describe(self) -> str:
        return (
            f"{self.kind} dependence on {self.array!r} "
            f"(store {self.array}[i+{self.store_offset}] in statement "
            f"{self.store_statement}, load {self.array}[i+{self.load_offset}] "
            f"in statement {self.load_statement}, distance {self.distance}): "
            f"{self.reason}"
        )


def analyze_dependences(statements: list) -> list[Dependence]:
    """All store→load dependences among the given statements."""
    out: list[Dependence] = []
    for s_idx, store_stmt in enumerate(statements):
        if isinstance(store_stmt, Reduction):
            continue  # fixed-index targets are handled separately
        store_ref = store_stmt.target
        for l_idx, load_stmt in enumerate(statements):
            for load_ref in load_stmt.loads():
                if load_ref.array.name != store_ref.array.name:
                    continue
                out.append(_classify(store_ref, load_ref, s_idx, l_idx))
    return out


def _classify(store_ref, load_ref, s_idx: int, l_idx: int) -> Dependence:
    ks, kl = store_ref.offset, load_ref.offset
    d = kl - ks
    array = store_ref.array.name

    if d < 0:
        return Dependence(
            array, "flow", d, s_idx, l_idx, ks, kl, safe=False,
            reason=f"iteration j reads the value written {-d} iteration(s) "
                   "earlier; blocked execution computes whole blocks from "
                   "pre-block memory",
        )
    kind = "same-iteration" if d == 0 else "anti"
    if l_idx > s_idx:
        return Dependence(
            array, kind, d, s_idx, l_idx, ks, kl, safe=False,
            reason="the loading statement follows the storing statement, so "
                   "a block store would expose values for iterations the "
                   "scalar loop has not reached yet",
        )
    reason = (
        "read-before-write within each iteration; block loads precede the "
        "block store" if d == 0 else
        "reads target elements of future iterations; every blocked read "
        "(including pipelined lookahead) still sees the pre-store value"
    )
    return Dependence(array, kind, d, s_idx, l_idx, ks, kl, safe=True,
                      reason=reason)


def blocking_dependences(statements: list) -> list[Dependence]:
    """The dependences that make blocked execution unsafe."""
    return [dep for dep in analyze_dependences(statements) if not dep.safe]


def dependence_report(statements: list) -> str:
    """Human-readable summary of every dependence found."""
    deps = analyze_dependences(statements)
    if not deps:
        return "no store/load dependences: statements access disjoint arrays"
    lines = []
    for dep in deps:
        status = "safe" if dep.safe else "BLOCKS VECTORIZATION"
        lines.append(f"[{status}] {dep.describe()}")
    return "\n".join(lines)
