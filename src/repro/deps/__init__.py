"""Dependence analysis for stride-one loops."""

from repro.deps.analysis import (
    Dependence,
    analyze_dependences,
    blocking_dependences,
    dependence_report,
)

__all__ = [
    "Dependence", "analyze_dependences", "blocking_dependences",
    "dependence_report",
]
