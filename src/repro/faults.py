"""Deterministic fault injection for the resilience layer.

Every recovery path in the execution and sweep stack — the backend
degradation chain, the supervised worker pool, the cache quarantine —
exists to survive events that are rare in healthy runs.  This module
makes those events reproducible on demand so the paths can be tested
end to end instead of trusted: set ``REPRO_FAULT`` and the hook points
sprinkled through the pipeline start failing in controlled ways.

Grammar (comma-separated specs)::

    REPRO_FAULT = spec[,spec...]
    spec        = phase:kind[:prob[:seed]]
    phase       = compile | execute | worker | cache | serve
    kind        = raise | kill | corrupt | timeout
                | reject | delay | disconnect
    prob        = float in [0, 1] (default 1), or the token "once"
    seed        = int seeding the per-process decision stream (default 0)

Examples: ``compile:raise`` (every jit kernel compile raises),
``worker:kill:0.5:42`` (half of all worker chunks die, seeded),
``worker:raise:once`` (the first chunk in each process raises, later
ones succeed — deterministic retry testing), ``cache:corrupt`` (every
disk-cache read comes back mangled), ``serve:disconnect:0.3:7`` (the
server hangs up on ~30 % of requests, seeded).

Kinds:

* ``raise`` — the hook raises :class:`~repro.errors.FaultInjected`.
* ``kill`` — the hook hard-kills the *worker* process (``os._exit``);
  in the main process it is a no-op, so pool-death recovery can be
  tested without shooting the supervisor.
* ``timeout`` — the hook sleeps ``REPRO_FAULT_SLEEP`` seconds
  (default 5), long enough to trip any per-chunk ``--timeout``.
* ``corrupt`` — only meaningful for the ``cache`` phase: bytes read
  from the disk cache are mangled before unpickling
  (:func:`mangle`), driving the corrupt-entry quarantine.
* ``reject`` / ``delay`` / ``disconnect`` — the serving layer's fault
  surface (:mod:`repro.serve`), consumed through :func:`decision`
  rather than :func:`fault`: ``reject`` sheds the request with a 429
  before admission, ``delay`` stalls the handler inside its admission
  slot for ``REPRO_FAULT_SLEEP`` seconds (driving deadline and
  overload paths), and ``disconnect`` drops the connection without a
  response.  These kinds are inert in every non-serve phase.

Cost discipline: when ``REPRO_FAULT`` is unset the hooks must be free.
The spec table is parsed lazily once per process; after that every
:func:`fault` call is a single falsy-dict check.  Worker processes
inherit the environment, so pool workers see the same faults as the
parent that spawned them.
"""

from __future__ import annotations

import os
import random
import time

from repro.errors import FaultInjected, SimdalError

#: Recognized hook-point names.
PHASES = ("compile", "execute", "worker", "cache", "serve")
#: Recognized failure kinds.
KINDS = ("raise", "kill", "corrupt", "timeout",
         "reject", "delay", "disconnect")

#: Kinds the generic :func:`fault` hook acts on; the rest are
#: interpreted by their phase's own consumer (serve uses
#: :func:`decision`, cache reads ``corrupt`` through :func:`mangle`).
_GENERIC_KINDS = ("raise", "kill", "timeout")

#: Seconds a ``timeout`` fault sleeps (override for fast tests).
_SLEEP_ENV = "REPRO_FAULT_SLEEP"
_DEFAULT_SLEEP = 5.0


class _Spec:
    """One armed fault: kind + its per-process decision stream."""

    __slots__ = ("phase", "kind", "prob", "once", "fired", "rng")

    def __init__(self, phase: str, kind: str, prob: float, once: bool,
                 seed: int):
        self.phase = phase
        self.kind = kind
        self.prob = prob
        self.once = once
        self.fired = False
        self.rng = random.Random(seed)

    def should_fire(self) -> bool:
        if self.once:
            if self.fired:
                return False
            self.fired = True
            return True
        if self.prob >= 1.0:
            return True
        return self.rng.random() < self.prob


def _parse(text: str) -> dict[str, list[_Spec]]:
    table: dict[str, list[_Spec]] = {}
    for raw in text.split(","):
        raw = raw.strip()
        if not raw:
            continue
        parts = raw.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise SimdalError(
                f"bad REPRO_FAULT spec {raw!r}: want phase:kind[:prob[:seed]]"
            )
        phase, kind = parts[0], parts[1]
        if phase not in PHASES:
            raise SimdalError(
                f"bad REPRO_FAULT phase {phase!r}; choose from {PHASES}"
            )
        if kind not in KINDS:
            raise SimdalError(
                f"bad REPRO_FAULT kind {kind!r}; choose from {KINDS}"
            )
        prob, once = 1.0, False
        if len(parts) >= 3:
            if parts[2] == "once":
                once = True
            else:
                try:
                    prob = float(parts[2])
                except ValueError:
                    raise SimdalError(
                        f"bad REPRO_FAULT probability {parts[2]!r}"
                    ) from None
        seed = 0
        if len(parts) == 4:
            try:
                seed = int(parts[3])
            except ValueError:
                raise SimdalError(f"bad REPRO_FAULT seed {parts[3]!r}") from None
        table.setdefault(phase, []).append(_Spec(phase, kind, prob, once, seed))
    return table


#: None = env not parsed yet; {} = parsed, nothing armed.
_ACTIVE: dict[str, list[_Spec]] | None = None


def _specs() -> dict[str, list[_Spec]]:
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _parse(os.environ.get("REPRO_FAULT", ""))
    return _ACTIVE


def reload() -> None:
    """Re-read ``REPRO_FAULT`` on the next hook (tests change the env)."""
    global _ACTIVE
    _ACTIVE = None


def _in_worker_process() -> bool:
    import multiprocessing

    return multiprocessing.parent_process() is not None


def fault(phase: str) -> None:
    """Hook point: fail here in whatever way ``REPRO_FAULT`` armed.

    Free when no faults are configured.  ``corrupt`` specs are handled
    by :func:`mangle`, not here.
    """
    specs = _specs()
    if not specs:
        return
    for spec in specs.get(phase, ()):
        if spec.kind not in _GENERIC_KINDS or not spec.should_fire():
            continue
        if spec.kind == "raise":
            raise FaultInjected(phase)
        if spec.kind == "kill":
            if _in_worker_process():
                os._exit(77)
            continue  # never kill the supervisor
        if spec.kind == "timeout":
            time.sleep(sleep_seconds())


def mangle(phase: str, data: bytes) -> bytes:
    """Corrupt ``data`` if a ``corrupt`` fault is armed for ``phase``.

    Free when no faults are configured; the corruption (truncate and
    flip the first byte) reliably breaks both the pickle framing and
    the stored-key self check.
    """
    specs = _specs()
    if not specs:
        return data
    for spec in specs.get(phase, ()):
        if spec.kind == "corrupt" and spec.should_fire():
            mangled = bytearray(data[: max(1, len(data) // 2)])
            mangled[0] ^= 0xFF
            return bytes(mangled)
    return data


def decision(phase: str) -> str | None:
    """Which armed fault kind fires for ``phase``, or None.

    The caller interprets the kind instead of this module acting on it
    — the serving layer maps ``reject``/``delay``/``disconnect`` (and
    ``raise``) onto protocol behaviour at the right points of the
    request lifecycle.  At most one kind is returned per call, in spec
    order, so arming several kinds on one phase exercises them in a
    deterministic sequence.  Free when no faults are configured.
    """
    specs = _specs()
    if not specs:
        return None
    for spec in specs.get(phase, ()):
        if spec.should_fire():
            return spec.kind
    return None


def sleep_seconds() -> float:
    """The armed ``timeout``/``delay`` stall length (REPRO_FAULT_SLEEP)."""
    return float(os.environ.get(_SLEEP_ENV, _DEFAULT_SLEEP))


def active() -> bool:
    """True when any fault spec is armed (used by tests/diagnostics)."""
    return bool(_specs())
