"""Lightweight phase-timing profile for the measurement pipeline.

A :class:`PhaseProfile` accumulates wall-clock seconds per pipeline
phase — ``synthesize`` / ``simdize`` / ``compile`` / ``execute`` /
``verify`` — plus event counters (cache hits and misses), so a sweep
can report *where* its time went and how well the compile-side caches
worked instead of asserting it.  Everything is optional: every
pipeline entry point takes ``profile=None`` and skips all bookkeeping
when no profile is passed, so the hot path pays nothing by default.

Profiles merge, which is how ``measure_many`` aggregates the profiles
its worker processes send back with their measurements.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Pipeline phases in reporting order.  ``cc`` and ``native_load``
#: only appear when the native tier runs: C-compiler wall time and
#: shared-object load/validate time, re-attributed out of ``execute``
#: the same way lazy jit codegen is.
PHASES = ("synthesize", "simdize", "compile", "cc", "native_load",
          "execute", "verify")


@dataclass
class PhaseProfile:
    """Accumulated seconds per phase and event counters."""

    seconds: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def add(self, phase: str, dt: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + dt

    def count(self, name: str, k: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + k

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def merge(self, other: "PhaseProfile | None") -> None:
        if other is None:
            return
        for phase, dt in other.seconds.items():
            self.add(phase, dt)
        for name, k in other.counts.items():
            self.count(name, k)

    def hit_rate(self, name: str) -> float | None:
        """Hits over lookups for counter pair ``{name}_hits``/``{name}_misses``."""
        hits = self.counts.get(f"{name}_hits", 0)
        misses = self.counts.get(f"{name}_misses", 0)
        total = hits + misses
        return hits / total if total else None

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (used by ``BENCH_interp.json``)."""
        return {
            "seconds": {k: round(v, 4) for k, v in self.seconds.items()},
            "counts": dict(self.counts),
        }

    def format(self) -> str:
        """A human-readable phase table with cache hit rates."""
        lines = ["phase timings:"]
        known = [p for p in PHASES if p in self.seconds]
        extra = sorted(set(self.seconds) - set(known))
        total = self.total_seconds
        for phase in known + extra:
            dt = self.seconds[phase]
            share = f"{dt / total * 100:5.1f}%" if total else "     -"
            lines.append(f"  {phase:<12s} {dt:9.4f} s  {share}")
        lines.append(f"  {'total':<12s} {total:9.4f} s")
        cache_lines = []
        for name in ("simdize_memo", "simdize_disk", "kernel_memory",
                     "kernel_disk", "native_memory", "native_disk"):
            rate = self.hit_rate(name)
            if rate is not None:
                hits = self.counts.get(f"{name}_hits", 0)
                misses = self.counts.get(f"{name}_misses", 0)
                cache_lines.append(
                    f"  {name:<14s} {hits}/{hits + misses} hits "
                    f"({rate * 100:.0f}%)"
                )
        if cache_lines:
            lines.append("cache hit rates:")
            lines.extend(cache_lines)
        evictions = self.counts.get("disk_evictions", 0)
        if evictions:
            lines.append(f"  disk cache     {evictions} evictions "
                         f"(REPRO_CACHE_MAX_BYTES)")
        mode_simd = self.counts.get("native_mode_simd", 0)
        mode_scalar = self.counts.get("native_mode_scalar", 0)
        if mode_simd or mode_scalar:
            # Kernel acquisitions per emitter mode (disk-key
            # resolutions, so warm loads count too) plus the probe
            # outcomes that picked the mode.
            mode = "vector-ext" if mode_simd >= mode_scalar else "scalar-lane"
            line = (f"native emitter: {mode} "
                    f"({mode_simd} vector-ext / {mode_scalar} scalar-lane "
                    f"kernel acquisitions)")
            probes = self.counts.get("native_simd_probes", 0)
            failures = self.counts.get("native_simd_probe_failures", 0)
            if probes:
                line += f", {probes} simd probe{'s' if probes != 1 else ''}"
                if failures:
                    line += f" ({failures} failed)"
            flag_probes = self.counts.get("native_flag_probes", 0)
            if flag_probes:
                line += f", {flag_probes} flag probe{'s' if flag_probes != 1 else ''}"
            lines.append(line)
        invocations = self.counts.get("native_cc_invocations", 0)
        if invocations:
            kernels = self.counts.get("native_tu_kernels", 0)
            tus = self.counts.get("native_tus", 0)
            line = (f"native pipeline: {kernels} kernels in {tus} "
                    f"translation units via {invocations} cc "
                    f"invocation{'s' if invocations != 1 else ''}")
            lines.append(line)
            detail = []
            for name, label in (("native_precompiled", "precompiled"),
                                ("native_hot_swaps", "hot swaps"),
                                ("native_async_compiles", "async compiles"),
                                ("native_async_failures", "async failures"),
                                ("native_queue_depth_max", "queue depth max")):
                k = self.counts.get(name, 0)
                if k:
                    detail.append(f"  {label:<16s} {k}")
            lines.extend(detail)
        classes = self.counts.get("batch_classes", 0)
        if classes:
            configs = self.counts.get("batch_configs", 0)
            fallbacks = self.counts.get("batch_fallbacks", 0)
            avg = configs / classes if classes else 0.0
            line = (f"batched sweep: {configs} configs in {classes} "
                    f"signature classes ({avg:.1f} configs/class)")
            if fallbacks:
                line += f", {fallbacks} fallbacks"
            lines.append(line)
            batch_calls = self.counts.get("native_batch_calls", 0)
            whole_runs = self.counts.get("native_whole_runs", 0)
            if batch_calls or whole_runs:
                batch_rows = self.counts.get("native_batch_rows", 0)
                lines.append(
                    f"  native batch driver: {batch_calls} class "
                    f"call{'s' if batch_calls != 1 else ''} covering "
                    f"{batch_rows} configs, {whole_runs} whole-run calls"
                )
                marshal_us = self.counts.get("native_batch_marshal_us", 0)
                copy_us = self.counts.get("native_batch_copy_us", 0)
                c_us = self.counts.get("native_batch_c_us", 0)
                if marshal_us or copy_us or c_us:
                    # Attribution of where batched-class wall time goes:
                    # Python-side marshalling, the O(total-mem) flat
                    # gather/scatter copies, and the C driver itself —
                    # the copy share explains why small-memory classes
                    # can run slower batched than per-iter.
                    lines.append(
                        f"    marshal {marshal_us / 1e3:.1f} ms, "
                        f"gather/scatter {copy_us / 1e3:.1f} ms, "
                        f"C driver {c_us / 1e3:.1f} ms"
                    )
        resilience = []
        degraded_to = sorted(
            k for k in self.counts if k.startswith("degraded_to_")
        )
        batch_degraded_from = sorted(
            k for k in self.counts if k.startswith("batch_degraded_from_")
        )
        for name in ("degraded", *degraded_to,
                     "batch_degraded", *batch_degraded_from,
                     "scalar_degraded", "retries",
                     "task_splits", "pool_restarts", "serial_fallbacks",
                     "failed_configs", "checkpoint_hits",
                     "disk_corrupt_quarantined"):
            k = self.counts.get(name, 0)
            if k:
                resilience.append(f"  {name:<24s} {k}")
        if resilience:
            lines.append("resilience:")
            lines.extend(resilience)
        return "\n".join(lines)


@contextmanager
def timed(profile: PhaseProfile | None, phase: str):
    """Time a block into ``profile``; no-op when ``profile`` is None."""
    if profile is None:
        yield
        return
    with profile.phase(phase):
        yield
