"""ASCII visualizations of streams and benchmark results."""

from repro.viz.streams import (
    StreamDiagram,
    loop_alignment_table,
    memory_stream,
    register_stream,
    shifted_stream,
    statement_diagram,
)

__all__ = [
    "StreamDiagram", "loop_alignment_table", "memory_stream",
    "register_stream", "shifted_stream", "statement_diagram",
]
