"""ASCII visualization of memory and register streams.

Renders the diagrams the paper uses throughout Sections 1–3 (Figures
2–5): an array's memory stream with 16-byte boundaries marked, the
register stream a ``vload`` produces for a misaligned reference, and
the effect of a stream shift — so users can *see* a stream offset
instead of computing it.

Example (``b[i+1]`` on 16-byte-aligned int32 ``b``)::

    memory  |b0  b1  b2  b3 |b4  b5  b6  b7 |b8  ...
    stream       ^ desired values start at byte offset 4
    vload   [b0  b1  b2  b3]  offset = 4
    shifted [b1  b2  b3  b4]  offset = 0   (vshiftpair with next, 4)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.analysis import ref_offset
from repro.align.offsets import KnownOffset
from repro.errors import SimdalError
from repro.ir.expr import Loop, Ref, Statement


@dataclass
class StreamDiagram:
    """A rendered diagram plus the numbers it depicts."""

    text: str
    offset: int | None

    def __str__(self) -> str:
        return self.text


def _cell(name: str, index: int, width: int = 4) -> str:
    return f"{name}{index}".ljust(width)


def memory_stream(ref: Ref, V: int = 16, vectors: int = 3) -> StreamDiagram:
    """The memory stream of a stride-one reference (paper Figure 2a/4b)."""
    decl = ref.array
    D = decl.dtype.size
    B = V // D
    off = ref_offset(ref, V)
    if not isinstance(off, KnownOffset):
        raise SimdalError(
            f"{ref} has a runtime alignment; concrete diagrams need a "
            "compile-time base (pick a residue and declare it)"
        )
    align_elems = (decl.align or 0) // D

    rows = []
    header = []
    first_elem = -align_elems  # element index at the first vector boundary
    for v in range(vectors):
        cells = [
            _cell(decl.name, first_elem + v * B + k)
            if first_elem + v * B + k >= 0 else " .  "
            for k in range(B)
        ]
        header.append("".join(cells))
    rows.append("memory  |" + "|".join(header) + "|")
    marker_pos = 9 + off.value // D * 4
    rows.append(" " * marker_pos + f"^ {ref} starts at byte offset {off.value}")
    return StreamDiagram("\n".join(rows), off.value)


def register_stream(ref: Ref, V: int = 16, registers: int = 3) -> StreamDiagram:
    """The registers successive truncating vloads produce (Figure 2b/2c)."""
    decl = ref.array
    D = decl.dtype.size
    B = V // D
    off = ref_offset(ref, V)
    if not isinstance(off, KnownOffset):
        raise SimdalError(f"{ref} has a runtime alignment")
    lead = off.value // D  # extra values before the first desired one
    first = ref.offset - lead

    rows = []
    for r in range(registers):
        cells = []
        for k in range(B):
            elem = first + r * B + k
            cells.append(_cell(decl.name, elem) if elem >= 0 else " .  ")
        note = f"  offset = {off.value}" if r == 0 else ""
        rows.append(f"vload #{r} [" + " ".join(cells) + "]" + note)
    return StreamDiagram("\n".join(rows), off.value)


def shifted_stream(ref: Ref, to_offset: int, V: int = 16,
                   registers: int = 3) -> StreamDiagram:
    """The register stream after ``vshiftstream(.., to_offset)`` (Fig. 4b/4d)."""
    decl = ref.array
    D = decl.dtype.size
    B = V // D
    if to_offset % D:
        raise SimdalError(f"target offset {to_offset} is not a lane boundary")
    lead = to_offset // D
    first = ref.offset - lead

    rows = []
    for r in range(registers):
        cells = []
        for k in range(B):
            elem = first + r * B + k
            cells.append(_cell(decl.name, elem) if elem >= ref.offset - lead else " .  ")
        note = f"  offset = {to_offset}" if r == 0 else ""
        rows.append(f"shift #{r} [" + " ".join(cells) + "]" + note)
    return StreamDiagram("\n".join(rows), to_offset)


def statement_diagram(stmt: Statement, V: int = 16) -> str:
    """All streams of one statement, annotated with their offsets —
    a compact rendering of the paper's Figure 3/4 panels."""
    parts = [f"statement: {stmt}"]
    for ref in stmt.loads():
        parts.append(f"-- load {ref}")
        parts.append(memory_stream(ref, V).text)
        parts.append(register_stream(ref, V, registers=2).text)
    parts.append(f"-- store {stmt.target}")
    parts.append(memory_stream(stmt.target, V).text)
    return "\n".join(parts)


def loop_alignment_table(loop: Loop, V: int = 16) -> str:
    """One line per reference: its stream offset and mis/alignment."""
    from repro.ir.expr import Reduction

    rows = [f"{'reference':>14s}  {'offset':>6s}  aligned?"]
    for stmt in loop.statements:
        entries = [(str(ref), ref) for ref in stmt.loads()]
        if isinstance(stmt, Reduction):
            label = f"{stmt.target.array.name}[{stmt.target.offset}]"
            entries.append((label, stmt.target))
        else:
            entries.append((str(stmt.target), stmt.target))
        for label, ref in entries:
            off = ref_offset(ref, V)
            aligned = ("yes" if off == KnownOffset(0)
                       else "runtime" if not off.is_known else "no")
            rows.append(f"{label:>14s}  {str(off):>6s}  {aligned}")
    return "\n".join(rows)
