"""End-to-end simdization: driver, options, verification."""

from repro.simdize.driver import SimdizeResult, simdize
from repro.simdize.options import REUSE_MODES, SimdOptions, scheme_name
from repro.simdize.verify import (
    EquivalenceReport,
    fill_random,
    make_space,
    verify_equivalence,
    verify_equivalence_batch,
)

__all__ = [
    "SimdizeResult", "simdize", "REUSE_MODES", "SimdOptions", "scheme_name",
    "EquivalenceReport", "fill_random", "make_space", "verify_equivalence",
    "verify_equivalence_batch",
]
