"""Equivalence verification: simdized execution vs scalar reference.

This is the reproduction of the paper's coverage methodology
(Section 5.4): "The generated binaries were simulated on a
cycle-accurate simulator, and the results were verified."  We run the
scalar loop and the vector program on two identical memories and
require the *entire* memory images to match byte-for-byte — which
checks both that every stream byte got its correct value and that
nothing outside the streams (guard zones included) was clobbered.
"""

from __future__ import annotations

from dataclasses import dataclass
import random

from repro.errors import VerificationError
from repro.ir.expr import Loop
from repro.machine.arrays import ArraySpace
from repro.machine.backend import (
    ExecutionBackend,
    ScalarBackend,
    get_resilient_backend,
    get_resilient_scalar_backend,
    jit_compile_stats,
    run_vector_batch,
)
from repro.machine.counters import OpCounters
from repro.machine.memory import Memory
from repro.machine.scalar import RunBindings
from repro.profiling import PhaseProfile, timed
from repro.vir.program import VProgram


@dataclass
class EquivalenceReport:
    """Counts from a verified pair of executions."""

    scalar_ops: OpCounters
    vector_ops: OpCounters
    trip: int
    data_count: int
    used_fallback: bool
    #: Structured backend degradation, or None when the requested tier
    #: ran clean: ``{"tier": ran, "phase": failing phase, "reason":
    #: first error, "failed": tiers that failed}``.
    fallback: dict | None = None
    #: Same, for the scalar-reference axis (``numpy`` -> ``bytes``).
    scalar_fallback: dict | None = None
    #: Batch-level degradation: set when this config belonged to a
    #: batched class whose primary tier lacked (or failed) batch
    #: execution and ran config-by-config instead:
    #: ``{"tier": primary, "phase": "batch", "reason": why}``.
    batch_fallback: dict | None = None

    @property
    def scalar_total(self) -> int:
        return self.scalar_ops.total

    @property
    def vector_total(self) -> int:
        return self.vector_ops.total

    @property
    def speedup(self) -> float:
        """Dynamic-instruction-count speedup (the paper's Table 1/2 metric)."""
        return self.scalar_total / self.vector_total

    @property
    def vector_opd(self) -> float:
        """Operations per datum of the simdized code (Figure 11/12 metric)."""
        return self.vector_total / self.data_count

    @property
    def scalar_opd(self) -> float:
        return self.scalar_total / self.data_count


def make_space(
    loop: Loop,
    V: int,
    rng: random.Random | None = None,
    runtime_residues: dict[str, int] | None = None,
) -> ArraySpace:
    """Place the loop's arrays; random residues for runtime-aligned ones."""
    rng = rng or random.Random(0)
    space = ArraySpace(V)
    residues = dict(runtime_residues or {})
    for decl in loop.arrays():
        if decl.runtime_aligned and decl.name not in residues:
            residues[decl.name] = rng.randrange(0, V, decl.dtype.size)
    space.place_all(loop.arrays(), residues)
    return space


def fill_random(space: ArraySpace, mem: Memory, rng: random.Random) -> None:
    """Give every array random in-range element values.

    Element values are uniform over the dtype's full range, so the fill
    is one bulk byte draw per array: every byte pattern *is* an
    in-range two's-complement value.  Deterministic for a given ``rng``
    state (but a different stream than the historical per-element
    ``randint`` loop, so seeds pin different — equally random — data).
    """
    for arr in space.arrays():
        mem.write(arr.base, rng.randbytes(arr.size_bytes))


def verify_equivalence(
    program: VProgram,
    space: ArraySpace,
    mem: Memory,
    bindings: RunBindings | None = None,
    backend: str | ExecutionBackend = "auto",
    scalar_backend: str | ScalarBackend = "auto",
    profile: PhaseProfile | None = None,
) -> EquivalenceReport:
    """Run both executions on clones of ``mem``; raise on any mismatch.

    ``backend`` selects the vector execution engine and
    ``scalar_backend`` the scalar-reference engine (names accepted by
    :func:`repro.machine.backend.get_backend` /
    :func:`~repro.machine.backend.get_scalar_backend`, or engine
    instances).  Counters and memory are backend-invariant on both
    axes, so the report is the same whichever engines ran — only the
    wall-clock differs.  With a ``profile``, the executions are timed
    into the ``execute`` phase — minus any jit kernel-compilation time,
    which is re-attributed to ``compile`` along with the kernel cache
    hit/miss counters — and the byte comparison into ``verify``.
    """
    bindings = bindings or RunBindings()
    loop = program.source
    engine = (
        get_resilient_backend(backend) if isinstance(backend, str) else backend
    )
    scalar_engine = (
        get_resilient_scalar_backend(scalar_backend)
        if isinstance(scalar_backend, str)
        else scalar_backend
    )

    scalar_mem = mem.clone()
    vector_mem = mem.clone()
    before = jit_compile_stats() if profile is not None else {}
    with timed(profile, "execute"):
        scalar_result = scalar_engine.run(loop, space, scalar_mem, bindings)
        vector_result = engine.run(program, space, vector_mem, bindings)
    if profile is not None:
        _attribute_jit_compile(profile, before, jit_compile_stats())
        _count_degradations(profile, vector_result, scalar_result)

    with timed(profile, "verify"):
        matched = scalar_mem.snapshot() == vector_mem.snapshot()
    if not matched:
        detail = _first_mismatch(scalar_mem, vector_mem, space)
        raise VerificationError(
            f"simdized execution diverges from scalar reference for loop "
            f"{loop.name!r}: {detail}"
        )
    return EquivalenceReport(
        scalar_ops=scalar_result.counters,
        vector_ops=vector_result.counters,
        trip=scalar_result.trip,
        data_count=scalar_result.data_count,
        used_fallback=vector_result.used_fallback,
        fallback=vector_result.fallback,
        scalar_fallback=scalar_result.fallback,
    )


def verify_equivalence_batch(
    items: list,
    backend: str | ExecutionBackend = "auto",
    scalar_backend: str | ScalarBackend = "auto",
    profile: PhaseProfile | None = None,
) -> list[EquivalenceReport]:
    """Batched :func:`verify_equivalence` over one signature class.

    ``items`` holds ``(program, space, mem, bindings)`` per config;
    all programs must share one structural signature so the vector
    side can execute as a single config-batched kernel call
    (:func:`repro.machine.backend.run_vector_batch`).  The scalar
    reference still runs per config — it is the per-config oracle the
    batch is checked against — and each config's memory images are
    compared independently, so a single diverging config raises with
    the same diagnostics :func:`verify_equivalence` gives it.  Reports
    come back in input order, field-identical to per-config calls.
    """
    engine = (
        get_resilient_backend(backend) if isinstance(backend, str) else backend
    )
    scalar_engine = (
        get_resilient_scalar_backend(scalar_backend)
        if isinstance(scalar_backend, str)
        else scalar_backend
    )
    scalar_mems = [mem.clone() for _, _, mem, _ in items]
    vector_mems = [mem.clone() for _, _, mem, _ in items]
    before = jit_compile_stats() if profile is not None else {}
    with timed(profile, "execute"):
        scalar_results = [
            scalar_engine.run(program.source, space, smem,
                              bindings or RunBindings())
            for (program, space, _, bindings), smem
            in zip(items, scalar_mems)
        ]
        vector_results = run_vector_batch(engine, [
            (program, space, vmem, bindings or RunBindings())
            for (program, space, _, bindings), vmem
            in zip(items, vector_mems)
        ])
    if profile is not None:
        _attribute_jit_compile(profile, before, jit_compile_stats())
        for scalar_result, vector_result in zip(scalar_results,
                                                vector_results):
            _count_degradations(profile, vector_result, scalar_result)

    reports = []
    for (program, space, _, _), smem, vmem, scalar_result, vector_result \
            in zip(items, scalar_mems, vector_mems,
                   scalar_results, vector_results):
        with timed(profile, "verify"):
            matched = smem.snapshot() == vmem.snapshot()
        if not matched:
            detail = _first_mismatch(smem, vmem, space)
            raise VerificationError(
                f"simdized execution diverges from scalar reference for "
                f"loop {program.source.name!r}: {detail}"
            )
        reports.append(EquivalenceReport(
            scalar_ops=scalar_result.counters,
            vector_ops=vector_result.counters,
            trip=scalar_result.trip,
            data_count=scalar_result.data_count,
            used_fallback=vector_result.used_fallback,
            fallback=vector_result.fallback,
            scalar_fallback=scalar_result.fallback,
            batch_fallback=getattr(vector_result, "batch_fallback", None),
        ))
    return reports


def _count_degradations(
    profile: PhaseProfile, vector_result, scalar_result
) -> None:
    """Fold backend-degradation records into the profile counters."""
    if vector_result.fallback is not None:
        profile.count("degraded")
        profile.count(f"degraded_to_{vector_result.fallback['tier']}")
    batch_fb = getattr(vector_result, "batch_fallback", None)
    if batch_fb is not None:
        profile.count("batch_degraded")
        profile.count(f"batch_degraded_from_{batch_fb['tier']}")
    if scalar_result.fallback is not None:
        profile.count("scalar_degraded")


def _attribute_jit_compile(
    profile: PhaseProfile, before: dict, after: dict
) -> None:
    """Move jit kernel-compile time out of ``execute`` into ``compile``.

    The jit engine compiles lazily inside ``run()``, so without this
    the first execution of each program would charge codegen to the
    execute phase and hide the compile-once win the profile exists to
    show.  Also folds the engine's kernel-cache counters (process-wide
    deltas) into the profile's counter namespace.

    The stat dict is treated as open-ended: any ``*_s`` key is a
    lazily-incurred wall-clock phase to re-attribute out of
    ``execute`` (``_PHASE_FOR`` maps it to its reporting phase), and
    any other key is a counter delta.  Counters already namespaced
    (``native_*``) pass through unchanged so ``hit_rate()`` pairs line
    up; bare jit counters gain the historical ``kernel_`` prefix.  New
    engine tiers thus flow through without this function growing a
    fixed phase list.
    """
    if not after:
        return
    for stat in after:
        if stat.endswith("_s"):
            phase = _PHASE_FOR.get(stat)
            if phase is None:
                continue
            dt = after.get(stat, 0.0) - before.get(stat, 0.0)
            if dt > 0:
                profile.add(phase, dt)
                profile.add("execute", -dt)
        else:
            delta = after.get(stat, 0) - before.get(stat, 0)
            if not delta:
                continue
            name = stat if stat.startswith("native_") else f"kernel_{stat}"
            profile.count(name, delta)


#: Lazily-timed engine stats (``*_s`` keys from ``jit_compile_stats``)
#: and the profile phase each one reports under.
_PHASE_FOR = {
    "compile_s": "compile",
    "native_cc_s": "cc",
    "native_load_s": "native_load",
}


def _first_mismatch(a: Memory, b: Memory, space: ArraySpace) -> str:
    sa, sb = a.snapshot(), b.snapshot()
    for addr in range(len(sa)):
        if sa[addr] != sb[addr]:
            where = "outside any array"
            for arr in space.arrays():
                if arr.base <= addr < arr.base + arr.size_bytes:
                    idx = (addr - arr.base) // arr.decl.dtype.size
                    where = f"array {arr.name!r} element {idx}"
                    break
            return (
                f"first differing byte at address {addr} ({where}): "
                f"scalar={sa[addr]:#x} simdized={sb[addr]:#x}"
            )
    return "memories equal?"  # pragma: no cover - only called on mismatch
