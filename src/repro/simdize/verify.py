"""Equivalence verification: simdized execution vs scalar reference.

This is the reproduction of the paper's coverage methodology
(Section 5.4): "The generated binaries were simulated on a
cycle-accurate simulator, and the results were verified."  We run the
scalar loop and the vector program on two identical memories and
require the *entire* memory images to match byte-for-byte — which
checks both that every stream byte got its correct value and that
nothing outside the streams (guard zones included) was clobbered.
"""

from __future__ import annotations

from dataclasses import dataclass
import random

from repro.errors import VerificationError
from repro.ir.expr import Loop
from repro.machine.arrays import ArraySpace
from repro.machine.backend import ExecutionBackend, get_backend
from repro.machine.counters import OpCounters
from repro.machine.memory import Memory
from repro.machine.scalar import RunBindings, run_scalar
from repro.vir.program import VProgram


@dataclass
class EquivalenceReport:
    """Counts from a verified pair of executions."""

    scalar_ops: OpCounters
    vector_ops: OpCounters
    trip: int
    data_count: int
    used_fallback: bool

    @property
    def scalar_total(self) -> int:
        return self.scalar_ops.total

    @property
    def vector_total(self) -> int:
        return self.vector_ops.total

    @property
    def speedup(self) -> float:
        """Dynamic-instruction-count speedup (the paper's Table 1/2 metric)."""
        return self.scalar_total / self.vector_total

    @property
    def vector_opd(self) -> float:
        """Operations per datum of the simdized code (Figure 11/12 metric)."""
        return self.vector_total / self.data_count

    @property
    def scalar_opd(self) -> float:
        return self.scalar_total / self.data_count


def make_space(
    loop: Loop,
    V: int,
    rng: random.Random | None = None,
    runtime_residues: dict[str, int] | None = None,
) -> ArraySpace:
    """Place the loop's arrays; random residues for runtime-aligned ones."""
    rng = rng or random.Random(0)
    space = ArraySpace(V)
    residues = dict(runtime_residues or {})
    for decl in loop.arrays():
        if decl.runtime_aligned and decl.name not in residues:
            residues[decl.name] = rng.randrange(0, V, decl.dtype.size)
    space.place_all(loop.arrays(), residues)
    return space


def fill_random(space: ArraySpace, mem: Memory, rng: random.Random) -> None:
    """Give every array random in-range element values."""
    for arr in space.arrays():
        dtype = arr.decl.dtype
        values = [rng.randint(dtype.min_value, dtype.max_value) for _ in range(arr.decl.length)]
        arr.write_all(mem, values)


def verify_equivalence(
    program: VProgram,
    space: ArraySpace,
    mem: Memory,
    bindings: RunBindings | None = None,
    backend: str | ExecutionBackend = "auto",
) -> EquivalenceReport:
    """Run both executions on clones of ``mem``; raise on any mismatch.

    ``backend`` selects the vector execution engine (a name accepted by
    :func:`repro.machine.backend.get_backend`, or an engine instance).
    Counters and memory are backend-invariant, so the report is the
    same whichever engine ran — only the wall-clock differs.
    """
    bindings = bindings or RunBindings()
    loop = program.source
    engine = get_backend(backend) if isinstance(backend, str) else backend

    scalar_mem = mem.clone()
    vector_mem = mem.clone()
    scalar_result = run_scalar(loop, space, scalar_mem, bindings)
    vector_result = engine.run(program, space, vector_mem, bindings)

    if scalar_mem.snapshot() != vector_mem.snapshot():
        detail = _first_mismatch(scalar_mem, vector_mem, space)
        raise VerificationError(
            f"simdized execution diverges from scalar reference for loop "
            f"{loop.name!r}: {detail}"
        )
    return EquivalenceReport(
        scalar_ops=scalar_result.counters,
        vector_ops=vector_result.counters,
        trip=scalar_result.trip,
        data_count=scalar_result.data_count,
        used_fallback=vector_result.used_fallback,
    )


def _first_mismatch(a: Memory, b: Memory, space: ArraySpace) -> str:
    sa, sb = a.snapshot(), b.snapshot()
    for addr in range(len(sa)):
        if sa[addr] != sb[addr]:
            where = "outside any array"
            for arr in space.arrays():
                if arr.base <= addr < arr.base + arr.size_bytes:
                    idx = (addr - arr.base) // arr.decl.dtype.size
                    where = f"array {arr.name!r} element {idx}"
                    break
            return (
                f"first differing byte at address {addr} ({where}): "
                f"scalar={sa[addr]:#x} simdized={sb[addr]:#x}"
            )
    return "memories equal?"  # pragma: no cover - only called on mismatch
