"""End-to-end simdization driver.

Mirrors the paper's two-phase structure:

1. **Data reorganization phase** — build the bare graph ("simdize as if
   there were no alignment constraints"), optionally reassociate
   common offsets, place stream shifts per the chosen policy, and
   validate constraints (C.2)/(C.3);
2. **SIMD code generation phase** — lower the graph to a vector
   program (bounds, prologue/epilogue, software pipelining), then run
   the vector-IR optimization passes (memory normalization, CSE,
   predictive commoning, unrolling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.loopgen import GenOptions, generate_program
from repro.codegen.passes import run_passes
from repro.codegen.reduction import generate_reduction_program
from repro.errors import PolicyError
from repro.ir.expr import Loop
from repro.reorg.build import build_loop_graph
from repro.reorg.graph import LoopGraph
from repro.reorg.policies import apply_policy, default_policy
from repro.reorg.reassoc import reassociate
from repro.reorg.validate import validate_graph
from repro.simdize.options import SimdOptions
from repro.vir.program import VProgram


@dataclass
class SimdizeResult:
    """Everything a caller may want to inspect after simdization."""

    program: VProgram
    graph: LoopGraph
    options: SimdOptions
    policy: str

    @property
    def shift_count(self) -> int:
        """Static stream-shift count chosen by the placement policy."""
        return self.graph.shift_count()

    def class_key(self) -> tuple:
        """A NumPy-free structural grouping key for this result.

        Two results with equal keys lowered the same source structure
        the same way; sweep batching uses this when the jit engine's
        finer program signature is unavailable (no NumPy).
        """
        return (self.program.source.signature(), self.program.V,
                self.options)


def simdize(loop: Loop, V: int = 16, options: SimdOptions | None = None) -> SimdizeResult:
    """Simdize ``loop`` for a ``V``-byte machine with alignment constraints."""
    options = options or SimdOptions()
    if loop.has_reductions:
        return _simdize_reduction(loop, V, options)

    bare = build_loop_graph(loop, V)
    if options.offset_reassoc:
        bare = reassociate(bare)

    policy = options.policy
    if policy == "auto":
        policy = default_policy(bare)
    elif policy != "zero" and loop.runtime_alignment():
        raise PolicyError(
            f"policy {policy!r} needs compile-time alignments; this loop has "
            "runtime-aligned arrays — use policy='zero' or 'auto'"
        )
    graph = apply_policy(bare, policy)
    validate_graph(graph)

    gen_options = GenOptions(
        software_pipeline=options.software_pipeline,
        bounds_scheme=options.bounds_scheme,
    )
    program = generate_program(graph, gen_options)
    program = run_passes(program, options)
    return SimdizeResult(program=program, graph=graph, options=options, policy=policy)


def _simdize_reduction(loop: Loop, V: int, options: SimdOptions) -> SimdizeResult:
    """The reduction vectorizer (extension; see codegen.reduction).

    Accumulator blocks want offset 0, so operand streams are placed
    with the zero-shift rule against a virtual vector-aligned store —
    which also keeps the scheme valid under runtime alignments.
    """
    from repro.ir.expr import ArrayDecl, Ref
    from repro.reorg.build import build_expr
    from repro.reorg.graph import RStore, StatementGraph
    from repro.reorg.policies import zero_shift_expr
    from repro.reorg.reassoc import reassociate

    if options.policy not in ("auto", "zero"):
        raise PolicyError(
            f"reduction loops use the zero-shift accumulator scheme; "
            f"policy {options.policy!r} does not apply"
        )
    B = V // loop.dtype.size
    graph = LoopGraph(loop=loop, V=V)
    for index, stmt in enumerate(loop.statements):
        virtual = ArrayDecl(f"__acc{index}", loop.dtype, max(B, 1), align=0)
        graph.statements.append(
            StatementGraph(RStore(Ref(virtual, 0), build_expr(stmt.expr, loop)), index)
        )
    if options.offset_reassoc:
        graph = reassociate(graph)
    for k, sg in enumerate(graph.statements):
        graph.statements[k] = StatementGraph(
            RStore(sg.store.ref, zero_shift_expr(sg.store.src, V)), sg.statement_index
        )
    validate_graph(graph)

    program = generate_reduction_program(graph, options.software_pipeline)
    program = run_passes(program, options)
    return SimdizeResult(program=program, graph=graph, options=options, policy="zero")
