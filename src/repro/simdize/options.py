"""User-facing simdization options."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import PolicyError
from repro.reorg.policies import POLICY_NAMES

REUSE_MODES = ("none", "sp", "pc", "sp+pc")


@dataclass(frozen=True)
class SimdOptions:
    """Configuration of a simdization run.

    ``policy``
        Stream-shift placement: ``"zero"``, ``"eager"``, ``"lazy"``,
        ``"dominant"``, or ``"auto"`` (dominant when all alignments are
        compile-time, zero otherwise — the paper's Section 4.4 rule).
    ``reuse``
        How consecutive-iteration reuse of misaligned streams is
        exploited: ``"sp"`` = software-pipelined generation
        (Figure 10), ``"pc"`` = the predictive-commoning IR pass,
        ``"sp+pc"`` = both, ``"none"`` = neither (redundant loads
        remain, as in the paper's unoptimized schemes).
    ``memnorm``
        Memory normalization: canonicalize vector-load addresses to
        their aligned vector so redundancy elimination can merge loads
        that hit the same 16-byte location (paper Section 5.5).
    ``offset_reassoc``
        Common-offset reassociation of associative-commutative
        expression chains before shift placement (paper Section 5.5).
    ``cse``
        Local common-subexpression elimination on the steady body.
    ``unroll``
        Steady-loop unroll factor (1 = none).  Factors >= 2 also rotate
        the software-pipelining copies away, as the paper removes them
        "by unrolling the loop twice and forward propagating the copy".
    ``bounds_scheme``
        ``"auto"`` (default), or force ``"single"`` (eq. 10/11) /
        ``"general"`` (eq. 12/15/16).
    """

    policy: str = "auto"
    reuse: str = "sp"
    memnorm: bool = True
    offset_reassoc: bool = False
    cse: bool = True
    unroll: int = 1
    bounds_scheme: str = "auto"

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES + ("auto",):
            raise PolicyError(f"unknown policy {self.policy!r}")
        if self.reuse not in REUSE_MODES:
            raise PolicyError(f"unknown reuse mode {self.reuse!r}")
        if self.unroll < 1:
            raise PolicyError(f"unroll factor must be >= 1, got {self.unroll}")
        if self.bounds_scheme not in ("auto", "single", "general"):
            raise PolicyError(f"unknown bounds scheme {self.bounds_scheme!r}")

    @property
    def software_pipeline(self) -> bool:
        return "sp" in self.reuse.split("+")

    @property
    def predictive_commoning(self) -> bool:
        return "pc" in self.reuse.split("+")

    def with_(self, **kwargs) -> "SimdOptions":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)


#: The paper's benchmark scheme names, e.g. ``LAZY-pc`` / ``DOM-sp``.
def scheme_name(options: SimdOptions) -> str:
    policy = options.policy.upper()
    if options.reuse == "none":
        return policy
    return f"{policy}-{options.reuse}"
