"""Tests for the scalar reference executor and ideal op accounting."""

import pytest

from repro.errors import MachineError
from repro.ir import LoopBuilder, figure1_loop
from repro.machine import ArraySpace, RunBindings, ideal_scalar_opd, ideal_scalar_ops, run_scalar

from conftest import sequential_memory


class TestRunScalar:
    def test_figure1_values(self):
        loop = figure1_loop(trip=10, length=32)
        space, mem = sequential_memory(loop)
        run_scalar(loop, space, mem)
        a = space["a"].read_all(mem)
        # a[i+3] = b[i+1] + c[i+2] = (i+1) + (i+2)
        for i in range(10):
            assert a[i + 3] == 2 * i + 3
        # untouched elements keep their initial values
        assert a[0:3] == [0, 1, 2]
        assert a[13] == 13

    def test_op_counts_match_ideal(self):
        loop = figure1_loop(trip=10, length=32)
        space, mem = sequential_memory(loop)
        result = run_scalar(loop, space, mem)
        # per iteration: 2 loads + 1 add + 1 store = 4
        assert result.ops == 40
        assert result.ops == ideal_scalar_ops(loop, 10)
        assert ideal_scalar_opd(loop) == 4.0
        assert result.data_count == 10

    def test_six_load_loop_opd_is_twelve(self):
        # The paper's Section 5.5 reference point: 6 loads, 5 adds,
        # 1 store -> 12 operations per datum.
        lb = LoopBuilder(trip=20)
        out = lb.array("out", "int32", 40)
        refs = [lb.array(f"in{k}", "int32", 40)[k % 3] for k in range(6)]
        expr = refs[0]
        for r in refs[1:]:
            expr = expr + r
        lb.assign(out[1], expr)
        assert ideal_scalar_opd(lb.build()) == 12.0

    def test_invariants_and_consts_are_free(self):
        lb = LoopBuilder(trip=10)
        a = lb.array("a", "int32", 32)
        b = lb.array("b", "int32", 32)
        alpha = lb.scalar("alpha")
        lb.assign(a[0], b[0] * alpha + 7)
        loop = lb.build()
        space, mem = sequential_memory(loop)
        result = run_scalar(loop, space, mem, RunBindings(scalars={"alpha": 3}))
        # 1 load + 2 arith + 1 store per iteration; splat operands free.
        assert result.ops == 40
        assert space["a"].read_all(mem)[0] == 0 * 3 + 7

    def test_wrapping_matches_type(self):
        lb = LoopBuilder(trip=4)
        a = lb.array("a", "int8", 16)
        b = lb.array("b", "int8", 16)
        lb.assign(a[0], b[0] + 100)
        loop = lb.build()
        space, mem = sequential_memory(loop)
        space["b"].write_all(mem, [100, 50, 0, -100] + [0] * 12)
        run_scalar(loop, space, mem)
        assert space["a"].read_all(mem)[:4] == [-56, -106, 100, 0]

    def test_runtime_trip_binding(self):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int32", 64)
        b = lb.array("b", "int32", 64)
        lb.assign(a[0], b[0])
        loop = lb.build()
        space, mem = sequential_memory(loop)
        with pytest.raises(MachineError, match="unbound"):
            run_scalar(loop, space, mem)
        result = run_scalar(loop, space, mem, RunBindings(trip=5))
        assert result.trip == 5

    def test_trip_mismatch_rejected(self):
        loop = figure1_loop(trip=10, length=32)
        space, mem = sequential_memory(loop)
        with pytest.raises(MachineError, match="mismatch"):
            run_scalar(loop, space, mem, RunBindings(trip=11))

    def test_unbound_scalar_rejected(self):
        lb = LoopBuilder(trip=4)
        a = lb.array("a", "int32", 16)
        b = lb.array("b", "int32", 16)
        x = lb.scalar("x")
        lb.assign(a[0], b[0] + x)
        loop = lb.build()
        space, mem = sequential_memory(loop)
        with pytest.raises(MachineError, match="unbound"):
            run_scalar(loop, space, mem)
