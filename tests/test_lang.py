"""Tests for the mini-C frontend: lexer, parser, semantic analysis."""

import pytest

from repro.errors import LexError, ParseError, SemanticError
from repro.ir import INT16, INT32, UINT8
from repro.lang import compile_source, simdize_source, tokenize
from repro.lang.parser import parse

FIG1 = """
int a[128];
int b[128];
int c[128];
for (i = 0; i < 100; i++) {
    a[i + 3] = b[i + 1] + c[i + 2];
}
"""


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("for (i = 0; i < n; i++) { a[i] = 1; }")
        kinds = [t.kind for t in toks]
        assert kinds[0] == "keyword"
        assert "++" in [t.text for t in toks]
        assert kinds[-1] == "eof"

    def test_comments_skipped(self):
        toks = tokenize("int a; // line comment\n/* block\ncomment */ int b;")
        idents = [t.text for t in toks if t.kind == "ident"]
        assert idents == ["a", "b"]

    def test_line_numbers(self):
        toks = tokenize("int a;\nint b;")
        b_tok = [t for t in toks if t.text == "b"][0]
        assert b_tok.line == 2

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("int a @ b;")

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")


class TestParser:
    def test_figure1_parses(self):
        ast = parse(FIG1)
        assert len(ast.arrays) == 3
        assert ast.loop.bound == 100
        assert len(ast.loop.body) == 1

    def test_alignment_attributes(self):
        ast = parse("int a[64] align 8; int b[64] align ?; "
                    "for (i = 0; i < 10; i++) { a[i] = b[i]; }")
        assert ast.arrays[0].align == 8
        assert ast.arrays[1].align is None

    def test_typedef_style_types(self):
        ast = parse("int16_t a[64]; uint8_t b[64]; int n;"
                    "for (i = 0; i < n; i++) { a[i] = a[i+1] & 3; }")
        assert ast.arrays[0].type_name == "int16"
        assert ast.arrays[1].type_name == "uint8"

    def test_unsigned_types(self):
        ast = parse("unsigned short a[64]; "
                    "for (i = 0; i < 10; i++) { a[i] = 1; }")
        assert ast.arrays[0].type_name == "unsigned short"

    def test_plus_equals_one_step(self):
        parse("int a[64]; for (i = 0; i += 1 ; ) { a[i] = 1; }") if False else None
        ast = parse("int a[64]; for (i = 0; i < 10; i += 1) { a[i] = 1; }")
        assert ast.loop.bound == 10

    @pytest.mark.parametrize("src,msg", [
        ("int a[8]; for (i = 1; i < 4; i++) { a[i] = 1; }", "normalized"),
        ("int a[8]; for (i = 0; i < 4; i += 2) { a[i] = 1; }", "stride-one"),
        ("int a[8]; for (i = 0; i < 4; j++) { a[i] = 1; }", "loop variable"),
        ("int a[8]; for (i = 0; j < 4; i++) { a[i] = 1; }", "loop variable"),
        ("int a[8]; for (i = 0; i < 4; i++) { }", "empty"),
        ("int a[8]; for (i = 0; i < 4; i++) { a[2*i] = 1; }", "stride-one"),
        ("int a[8]; for (i = 0; i < 4; i++) { a[i] = 1; } extra", "trailing"),
        ("int a[8]; for (i = 0; i < 4.5; i++) { a[i] = 1; }", "unexpected character"),
    ])
    def test_parse_errors(self, src, msg):
        with pytest.raises((ParseError, LexError), match=msg):
            parse(src)

    def test_operator_precedence(self):
        loop = compile_source(
            "int a[64]; int b[64]; int c[64]; int d[64];"
            "for (i = 0; i < 10; i++) { a[i] = b[i] + c[i] * d[i]; }"
        )
        # mul binds tighter: add(b, mul(c, d))
        expr = loop.statements[0].expr
        assert expr.op.name == "add"
        assert expr.right.op.name == "mul"

    def test_parentheses_override(self):
        loop = compile_source(
            "int a[64]; int b[64]; int c[64]; int d[64];"
            "for (i = 0; i < 10; i++) { a[i] = (b[i] + c[i]) * d[i]; }"
        )
        assert loop.statements[0].expr.op.name == "mul"

    def test_min_max_avg_calls(self):
        loop = compile_source(
            "int a[64]; int b[64];"
            "for (i = 0; i < 10; i++) { a[i] = min(b[i], max(b[i+1], 3)); }"
        )
        assert "min" in str(loop.statements[0])


class TestSema:
    def test_figure1_ir(self):
        loop = compile_source(FIG1, name="fig1")
        assert loop.name == "fig1"
        assert loop.upper == 100
        assert loop.dtype is INT32
        assert str(loop.statements[0]) == "a[i+3] = (b[i+1] + c[i+2]);"

    def test_types_resolved(self):
        loop = compile_source(
            "short a[64]; short b[64];"
            "for (i = 0; i < 10; i++) { a[i] = b[i+1]; }"
        )
        assert loop.dtype is INT16
        loop = compile_source(
            "unsigned char a[64]; unsigned char b[64];"
            "for (i = 0; i < 10; i++) { a[i] = b[i+1]; }"
        )
        assert loop.dtype is UINT8

    def test_runtime_bound_must_be_declared(self):
        with pytest.raises(SemanticError, match="declared scalar"):
            compile_source("int a[64]; for (i = 0; i < n; i++) { a[i] = 1; }")

    def test_runtime_bound_declared_ok(self):
        loop = compile_source(
            "int a[64]; int n; for (i = 0; i < n; i++) { a[i] = 1; }"
        )
        assert loop.upper == "n"

    def test_loop_counter_as_value_is_an_extension(self):
        # Section 4.1 forbids it; this reproduction vectorizes it (iota).
        from repro.ir.expr import LoopIndex

        loop = compile_source(
            "int a[8]; for (i = 0; i < 4; i++) { a[i] = i; }")
        assert any(isinstance(n, LoopIndex)
                   for n in loop.statements[0].expr.walk())

    @pytest.mark.parametrize("src,msg", [
        ("int a[8]; short b[8]; for (i = 0; i < 4; i++) { a[i] = b[i]; }",
         "mixed element types"),
        ("int a[8] align 3; for (i = 0; i < 4; i++) { a[i] = 1; }", "naturally"),
        ("int a[8]; for (i = 0; i < 4; i++) { a[i] = zz; }", "undeclared"),
        ("int a[8]; for (i = 0; i < 4; i++) { zz[i] = 1; }", "not a declared array"),
        ("int a[8]; int b[8]; for (i = 0; i < 4; i++) { a[i] = b; }",
         "without a subscript"),
        ("int a[8]; int a[8]; for (i = 0; i < 4; i++) { a[i] = 1; }", "twice"),
        ("int a[8]; for (i = 0; i < 4; i++) { a[i+1] = a[i]; }", "loop-carried"),
        ("int a[4]; int b[16]; for (i = 0; i < 9; i++) { a[i] = b[i]; }", "outside"),
    ])
    def test_semantic_errors(self, src, msg):
        with pytest.raises(SemanticError, match=msg):
            compile_source(src)


class TestFrontendIntegration:
    def test_simdize_source_end_to_end(self):
        result = simdize_source(FIG1)
        assert result.policy == "dominant"
        from repro import run_and_verify

        report = run_and_verify(result.program)
        assert report.speedup > 1.0

    def test_runtime_alignment_source(self):
        result = simdize_source(
            "int a[256] align ?; int b[256] align ?; int n;"
            "for (i = 0; i < n; i++) { a[i] = b[i+1]; }"
        )
        assert result.policy == "zero"
        assert result.program.guard_min_trip == 12
