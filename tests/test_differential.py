"""Differential property test: bytes, numpy, jit, and native agree.

Hypothesis draws random synthesized loops, alignments, trip counts,
and scheme combinations; for every draw all engines of **both backend
axes** — the vector-program executors (bytes / numpy / jit, plus
native when a host C compiler exists) and the scalar-reference
executors (bytes / numpy) — must produce byte-identical final memory
**and** identical operation counters.  This is the property that
keeps the batched NumPy engine, the compile-once jit engine, and the
cc-compiled native tier honest against their byte oracles — including
the guarded scalar fallback, batched reductions, and colliding-window
batches.
"""

import random

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.bench.synth import SynthParams, synthesize
from repro.errors import PolicyError
from repro.ir import INT8, INT16, INT32
from repro.machine import (
    RunBindings,
    get_backend,
    get_scalar_backend,
    numpy_available,
)
from repro.simdize import SimdOptions, fill_random, make_space, simdize

pytestmark = pytest.mark.skipif(not numpy_available(),
                                reason="numpy not installed")

if numpy_available():
    from repro.machine import native
    _HAVE_CC = native._compiler_identity()[0] is not None
else:
    _HAVE_CC = False

#: The vector-executor axis; native joins only on hosts with a cc (a
#: compiler-less host would silently test jit twice).
VECTOR_ENGINES = ("bytes", "numpy", "jit") + (("native",) if _HAVE_CC else ())


@st.composite
def differential_case(draw):
    runtime_alignment = draw(st.booleans())
    params = SynthParams(
        loads=draw(st.integers(1, 5)),
        statements=draw(st.integers(1, 3)),
        trip=draw(st.integers(13, 120)),
        bias=draw(st.floats(0, 1)),
        reuse=draw(st.floats(0, 1)),
        dtype=draw(st.sampled_from([INT8, INT16, INT32])),
        runtime_alignment=runtime_alignment,
        runtime_trip=draw(st.booleans()),
    )
    syn = synthesize(params, seed=draw(st.integers(0, 2**20)))
    policy = "zero" if runtime_alignment else draw(
        st.sampled_from(["zero", "eager", "lazy", "dominant"])
    )
    options = SimdOptions(
        policy=policy,
        reuse=draw(st.sampled_from(["none", "sp", "pc", "sp+pc"])),
        offset_reassoc=draw(st.booleans()),
        unroll=draw(st.sampled_from([1, 2, 4])),
    )
    return syn, options


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(differential_case())
def test_backends_agree_on_random_loops(case):
    syn, options = case
    try:
        result = simdize(syn.loop, 16, options)
    except PolicyError:
        # eager/lazy/dominant legitimately reject some alignment shapes
        assume(False)

    rand = random.Random(syn.seed ^ 0xD1FF)
    space = make_space(syn.loop, 16, rand, syn.base_residues)
    base = space.make_memory()
    fill_random(space, base, rand)
    trip = syn.params.trip if syn.loop.runtime_upper else None
    bindings = RunBindings(trip=trip)

    outcomes = {}
    for name in VECTOR_ENGINES:
        mem = base.clone()
        run = get_backend(name).run(result.program, space, mem, bindings)
        outcomes[name] = (mem.snapshot(), run.counters.as_dict(),
                          run.trip, run.used_fallback)

    b = outcomes["bytes"]
    for name in VECTOR_ENGINES[1:]:
        n = outcomes[name]
        assert b[0] == n[0], f"final memory differs (bytes vs {name})"
        assert b[1] == n[1], \
            f"operation counters differ (bytes vs {name}):\n{b[1]}\n{n[1]}"
        assert b[2:] == n[2:]

    # Second axis: the scalar-reference engines must agree too.
    scalar_outcomes = {}
    for name in ("bytes", "numpy"):
        mem = base.clone()
        run = get_scalar_backend(name).run(syn.loop, space, mem, bindings)
        scalar_outcomes[name] = (mem.snapshot(), run.counters.as_dict(),
                                 run.trip, run.data_count)
    sb, sn = scalar_outcomes["bytes"], scalar_outcomes["numpy"]
    assert sb[0] == sn[0], "final memory differs between scalar engines"
    assert sb[1] == sn[1], f"scalar counters differ:\n{sb[1]}\n{sn[1]}"
    assert sb[2:] == sn[2:]
