"""Property tests of the paper's hard guarantees, measured on traces.

These check the claims the paper states as absolutes, on real executed
addresses rather than op counts:

* the **no-reload guarantee** — "never load the same data associated
  with a single static access twice" (steady state, with reuse);
* **store exactness** — every aligned vector of each store stream is
  written, each exactly once, and no other address is written;
* **boundary preservation** — bytes around every store stream survive
  the prologue/epilogue partial stores.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.synth import SynthParams, synthesize
from repro.ir import Reduction
from repro.machine import RunBindings, Trace, run_vector
from repro.simdize import SimdOptions, fill_random, make_space, simdize


def run_traced(syn, options, V=16):
    loop = syn.loop
    result = simdize(loop, V, options)
    rng = random.Random(syn.seed)
    space = make_space(loop, V, rng, syn.base_residues)
    mem = space.make_memory()
    fill_random(space, mem, rng)
    trace = Trace()
    bindings = RunBindings(trip=syn.params.trip if loop.runtime_upper else None)
    run_vector(result.program, space, mem, bindings, trace=trace)
    return result, space, trace


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 100_000), st.integers(1, 6), st.integers(1, 3),
       st.sampled_from(["sp", "pc"]))
def test_no_reload_guarantee(seed, loads, stmts, reuse):
    """With reuse, no static access loads the same aligned address twice
    in steady state — the paper's guarantee, verified on real traces."""
    params = SynthParams(loads=loads, statements=stmts, trip=77,
                         bias=0.4, reuse=0.4)
    syn = synthesize(params, seed=seed)
    _, _, trace = run_traced(syn, SimdOptions(policy="zero", reuse=reuse))
    assert trace.steady_reload_count() == 0


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 100_000), st.integers(1, 4), st.integers(2, 3))
def test_pc_cross_site_reuse_never_worse_than_sp(seed, loads, stmts):
    """Predictive commoning can exceed the paper's per-access guarantee:
    its displacement chains span access sites, which the per-site
    software-pipelined generator cannot do.  (It is not total — chains
    with a missing intermediate displacement stay split — so the
    property is <=, with the strict win pinned exactly below.)"""
    params = SynthParams(loads=loads, statements=stmts, trip=77,
                         bias=0.4, reuse=0.9)
    syn = synthesize(params, seed=seed)
    _, _, pc_trace = run_traced(syn, SimdOptions(policy="zero", reuse="pc"))
    _, _, sp_trace = run_traced(syn, SimdOptions(policy="zero", reuse="sp"))
    assert (pc_trace.steady_cross_site_reload_count()
            <= sp_trace.steady_cross_site_reload_count())


def test_pc_dedupes_adjacent_congruent_accesses_exactly():
    """Two statements loading one array at offsets k and k+B: SP loads
    the shared vectors twice per iteration, PC loads them once."""
    from repro.ir import LoopBuilder

    lb = LoopBuilder(trip=77)
    o1 = lb.array("o1", "int32", 96)
    o2 = lb.array("o2", "int32", 96)
    src = lb.array("src", "int32", 96)
    lb.assign(o1[0], src[1] + 1)
    lb.assign(o2[0], src[5] + 2)  # 5 = 1 + B

    class _Syn:
        loop = lb.build()
        base_residues = {}
        seed = 0
        params = type("P", (), {"trip": 77})

    _, _, pc_trace = run_traced(_Syn, SimdOptions(policy="zero", reuse="pc"))
    _, _, sp_trace = run_traced(_Syn, SimdOptions(policy="zero", reuse="sp"))
    assert pc_trace.steady_cross_site_reload_count() == 0
    assert sp_trace.steady_cross_site_reload_count() > 0


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 100_000), st.integers(1, 4), st.integers(1, 3),
       st.sampled_from(["zero", "eager", "lazy", "dominant"]),
       st.sampled_from([1, 2, 4]))
def test_store_exactness(seed, loads, stmts, policy, unroll):
    """Every aligned vector of every store stream is stored, and only
    store-stream vectors are stored."""
    params = SynthParams(loads=loads, statements=stmts, trip=61,
                         bias=0.4, reuse=0.4)
    syn = synthesize(params, seed=seed)
    result, space, trace = run_traced(
        syn, SimdOptions(policy=policy, reuse="sp", unroll=unroll))
    loop = syn.loop
    V = 16
    expected: set[int] = set()
    for stmt in loop.statements:
        if isinstance(stmt, Reduction):
            continue
        arr = space[stmt.target.array.name]
        first = arr.addr(stmt.target.offset)
        last = arr.addr(stmt.target.offset + loop.upper - 1) + arr.decl.dtype.size
        expected.update(range(first - first % V, last, V))
    stored = set(trace.store_addresses())
    assert stored == expected


def test_trace_formatting():
    params = SynthParams(loads=2, statements=1, trip=61)
    syn = synthesize(params, seed=0)
    _, _, trace = run_traced(syn, SimdOptions(reuse="sp"))
    text = trace.format_trace(limit=10)
    assert "vload" in text and "steady" in text
    assert "more events" in text


def test_reload_count_positive_without_reuse():
    # Without reuse, each misaligned stream's current/next loads hit
    # every aligned vector twice (as distinct static subexpressions -
    # the cross-site counter sees them).
    params = SynthParams(loads=4, statements=1, trip=101)
    syn = synthesize(params, seed=3)
    _, _, trace = run_traced(syn, SimdOptions(policy="zero", reuse="none",
                                              cse=False, memnorm=False))
    assert trace.steady_cross_site_reload_count() > 0
