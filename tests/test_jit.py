"""The compile-once jit engine: kernel cache, disk persistence, parity.

``test_backend.py`` / ``test_differential.py`` already hold the jit
engine to bit-exact parity with the byte oracle; this file pins the
caching machinery around it — structural signatures, the in-process
LRU, the versioned disk cache (stale-version recompiles, corrupted
entries degrade to silent misses), the profile attribution, and the
Figure 11/12 sweep acceptance criterion (byte-identical memories and
bit-identical counters against the bytes oracle).
"""

import copy
import random

import pytest

from repro.machine import RunBindings, get_backend, numpy_available
from repro.machine.backend import jit_compile_stats
from repro.simdize import SimdOptions, fill_random, make_space, simdize

from conftest import build_fig1

pytestmark = pytest.mark.skipif(not numpy_available(),
                                reason="numpy not installed")

if numpy_available():
    from repro.machine import jit


@pytest.fixture(autouse=True)
def _fresh_kernel_cache():
    jit.clear_memory_cache()
    yield
    jit.clear_memory_cache()


def fig1_program(trip: int = 100, policy: str = "zero"):
    return simdize(build_fig1(trip=trip), 16,
                   SimdOptions(policy=policy, reuse="sp")).program


class TestSignature:
    def test_same_structure_same_signature(self):
        """Signatures are structural: a distinct but identical program
        object (register names included — simdize gensyms fresh names
        per call, so we copy) hashes the same."""
        program = fig1_program()
        twin = copy.deepcopy(program)
        assert program is not twin
        assert (jit.program_signature(program)
                == jit.program_signature(twin))

    def test_different_programs_differ(self):
        assert (jit.program_signature(fig1_program(policy="zero"))
                != jit.program_signature(fig1_program(policy="lazy")))
        assert (jit.program_signature(fig1_program(trip=100))
                != jit.program_signature(fig1_program(trip=101)))

    def test_signature_memoized_on_program(self):
        program = fig1_program()
        sig = jit._cached_signature(program)
        assert program._jit_sig == sig
        assert jit._cached_signature(program) is sig


class TestKernelCache:
    def test_same_signature_shares_kernel_object(self):
        """Two structurally identical programs compile exactly once and
        get the very same kernel closure back."""
        p1 = fig1_program()
        p2 = copy.deepcopy(p1)
        assert p1 is not p2
        before = dict(jit.STATS)
        k1 = jit.get_kernel(p1)
        k2 = jit.get_kernel(p2)
        assert k1 is k2
        assert jit.STATS["codegens"] == before["codegens"] + 1
        assert jit.STATS["memory_hits"] == before["memory_hits"] + 1

    def test_memory_cache_is_lru(self, monkeypatch):
        monkeypatch.setattr(jit, "_KERNEL_CACHE_MAX", 2)
        programs = [fig1_program(trip=t) for t in (30, 40, 50)]
        jit.get_kernel(programs[0])
        jit.get_kernel(programs[1])
        jit.get_kernel(programs[0])          # touch: 0 is now most recent
        jit.get_kernel(programs[2])          # evicts 1, not 0
        sigs = list(jit._KERNEL_CACHE)
        assert jit._cached_signature(programs[0]) in sigs
        assert jit._cached_signature(programs[1]) not in sigs
        assert jit._cached_signature(programs[2]) in sigs

    def test_disk_roundtrip_skips_codegen(self):
        """A cleared memory cache reloads the spec from disk instead of
        re-deriving it."""
        program = fig1_program()
        before = dict(jit.STATS)
        jit.get_kernel(program)
        assert jit.STATS["codegens"] == before["codegens"] + 1
        jit.clear_memory_cache()
        jit.get_kernel(program)
        assert jit.STATS["codegens"] == before["codegens"] + 1  # unchanged
        assert jit.STATS["disk_hits"] == before["disk_hits"] + 1

    def test_stale_code_version_recompiles(self, monkeypatch):
        """Bumping KERNEL_CODE_VERSION invalidates every disk entry."""
        program = fig1_program()
        before = dict(jit.STATS)
        jit.get_kernel(program)
        jit.clear_memory_cache()
        monkeypatch.setattr(jit, "KERNEL_CODE_VERSION",
                            jit.KERNEL_CODE_VERSION + 1)
        jit.get_kernel(program)
        assert jit.STATS["codegens"] == before["codegens"] + 2
        assert jit.STATS["disk_misses"] == before["disk_misses"] + 2

    def test_corrupted_disk_entry_is_silent_miss(self):
        from repro.cache import get_cache

        program = fig1_program()
        jit.get_kernel(program)
        cache = get_cache()
        path = cache._path(jit._disk_key(jit._cached_signature(program)))
        assert path.exists()
        path.write_bytes(b"this is not a pickle")
        jit.clear_memory_cache()
        before = dict(jit.STATS)
        kernel = jit.get_kernel(program)         # must not raise
        assert kernel.fn is not None or kernel.spec is not None
        assert jit.STATS["disk_misses"] == before["disk_misses"] + 1
        assert jit.STATS["codegens"] == before["codegens"] + 1

    def test_disk_loaded_kernel_still_bit_exact(self):
        """A kernel materialized from a pickled spec (not fresh codegen)
        reproduces the byte oracle exactly."""
        program = fig1_program(trip=77)
        jit.get_kernel(program)
        jit.clear_memory_cache()

        loop = program.source
        rand = random.Random(9)
        space = make_space(loop, 16, rand)
        base = space.make_memory()
        fill_random(space, base, rand)
        runs = {}
        for name in ("bytes", "jit"):
            mem = base.clone()
            run = get_backend(name).run(program, space, mem, RunBindings())
            runs[name] = (mem.snapshot(), run.counters.as_dict())
        assert runs["bytes"] == runs["jit"]

    def test_compile_stats_shape(self):
        stats = jit_compile_stats()
        assert isinstance(stats, dict)
        for key in ("codegens", "memory_hits", "memory_misses",
                    "disk_hits", "disk_misses", "compile_s"):
            assert key in stats


class TestProfileIntegration:
    def test_jit_compile_attributed_to_compile_phase(self):
        from repro import run_and_verify
        from repro.profiling import PhaseProfile

        profile = PhaseProfile()
        run_and_verify(fig1_program(), backend="jit", profile=profile)
        assert profile.seconds.get("compile", 0.0) > 0.0
        assert profile.counts.get("kernel_memory_misses", 0) >= 1
        text = profile.format()
        assert "compile" in text and "kernel" in text


class TestFigureSweepParity:
    """Acceptance criterion: --backend jit is byte-identical and
    counter-identical to the bytes oracle across the Figure 11/12
    sweep space (every scheme × compile-time/runtime alignment)."""

    @pytest.mark.parametrize("offset_reassoc", [False, True],
                             ids=["fig11", "fig12"])
    def test_sweep_matches_bytes_oracle(self, offset_reassoc):
        from repro.bench import figure_configs
        from repro.bench.runner import _cached_simdize
        from repro.bench.synth import synthesize

        for label, config in figure_configs(offset_reassoc, count=1, trip=67):
            syn = synthesize(config.params, config.seed, config.V)
            result = _cached_simdize(syn.loop, config.V, config.options)
            rand = random.Random(config.seed ^ 0x5EED)
            space = make_space(syn.loop, config.V, rand, syn.base_residues)
            base = space.make_memory()
            fill_random(space, base, rand)
            trip = config.params.trip if syn.loop.runtime_upper else None
            runs = {}
            for name in ("bytes", "jit"):
                mem = base.clone()
                run = get_backend(name).run(result.program, space, mem,
                                            RunBindings(trip=trip))
                runs[name] = (mem.snapshot(), run.counters.as_dict(),
                              run.trip, run.used_fallback)
            assert runs["bytes"] == runs["jit"], f"{label} diverged"
