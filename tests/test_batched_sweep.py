"""Structure-batched sweep execution: parity, grouping, and caching.

The batched sweep engine (``measure_many(sweep_mode="batched")``)
groups configs into program-signature classes and executes each class
as one config-batched jit kernel call.  Everything here pins the
contract that batching changes *wall clock only*: memory images,
counters, OPD, and every Measurement field are element-wise identical
to the per-config path, independent of batch composition and worker
count.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.figures import figure_configs
from repro.bench.runner import (
    SWEEP_MODES,
    SweepConfig,
    _batched_bins,
    measure_batch,
    measure_many,
)
from repro.bench.synth import SynthParams, synthesize
from repro.cache import DiskCache
from repro.errors import BenchError, MachineError
from repro.ir.types import INT16, INT32
from repro.machine.backend import get_backend, numpy_available, run_vector_batch
from repro.machine.scalar import RunBindings
from repro.profiling import PhaseProfile
from repro.simdize import SimdOptions, fill_random, make_space, simdize

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="batched sweeps need numpy"
)

if numpy_available():
    from repro.machine import native as _native

HAVE_CC = numpy_available() and _native._compiler_identity()[0] is not None
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no host C compiler")


def _ragged_class(trips, seed=3, loads=3, policy="eager", unroll=1):
    """Configs guaranteed to share one program signature.

    Runtime-trip loops bind the trip count at run time, so configs
    differing only in ``trip`` synthesize structurally identical loops
    (array extents differ, but extents are not part of the program) —
    one signature class with ragged trip counts.
    """
    options = SimdOptions(policy=policy, reuse="sp", unroll=unroll)
    return [
        SweepConfig(
            SynthParams(loads=loads, statements=1, trip=trip, bias=0.3,
                        reuse=0.3, dtype=INT32, runtime_trip=True),
            seed, options, 16, "test",
        )
        for trip in trips
    ]


def _run_items(configs):
    """The (program, space, mem, bindings) quadruples measure_batch builds."""
    items = []
    for config in configs:
        syn = synthesize(config.params, config.seed, config.V)
        result = simdize(syn.loop, config.V, config.options)
        rng = random.Random(config.seed ^ 0x5EED)
        space = make_space(syn.loop, config.V, rng, syn.base_residues)
        mem = space.make_memory()
        fill_random(space, mem, rng)
        bindings = RunBindings(
            trip=syn.params.trip if syn.loop.runtime_upper else None
        )
        items.append((result.program, space, mem, bindings))
    return items


class TestRunBatch:
    """The jit engine's config-batch axis against its own per-run path."""

    def _assert_batch_matches_per_run(self, items):
        from repro.machine.jit import _cached_signature

        signatures = {_cached_signature(program) for program, _, _, _ in items}
        assert len(signatures) == 1, "premise: one signature class"

        jit = get_backend("jit")
        bytes_engine = get_backend("bytes")
        batch_mems = [mem.clone() for _, _, mem, _ in items]
        solo_mems = [mem.clone() for _, _, mem, _ in items]
        oracle_mems = [mem.clone() for _, _, mem, _ in items]

        batch = jit.run_batch([
            (program, space, mem, bindings)
            for (program, space, _, bindings), mem in zip(items, batch_mems)
        ])
        solo = [jit.run(program, space, mem, bindings)
                for (program, space, _, bindings), mem
                in zip(items, solo_mems)]
        oracle = [bytes_engine.run(program, space, mem, bindings)
                  for (program, space, _, bindings), mem
                  in zip(items, oracle_mems)]

        for bres, sres, ores, bmem, smem, omem in zip(
                batch, solo, oracle, batch_mems, solo_mems, oracle_mems):
            assert bmem.snapshot() == smem.snapshot() == omem.snapshot()
            assert bres.counters == sres.counters == ores.counters
            assert bres.trip == sres.trip == ores.trip
            assert bres.used_fallback == sres.used_fallback

    def test_ragged_trips_one_class(self):
        self._assert_batch_matches_per_run(
            _run_items(_ragged_class((45, 61, 75))))

    def test_ragged_trips_unrolled(self):
        self._assert_batch_matches_per_run(
            _run_items(_ragged_class((40, 64, 52, 88), unroll=4)))

    def test_guard_fallback_inside_batch(self):
        # trip=2 is below the guard threshold: that config falls back to
        # the scalar path while its classmates run in the batched kernel.
        items = _run_items(_ragged_class((2, 61, 75)))
        self._assert_batch_matches_per_run(items)
        jit = get_backend("jit")
        results = jit.run_batch(
            [(p, s, m.clone(), b) for p, s, m, b in items])
        assert results[0].used_fallback
        assert not results[1].used_fallback

    def test_singleton_batch(self):
        self._assert_batch_matches_per_run(_run_items(_ragged_class((61,))))

    def test_mixed_signatures_rejected(self):
        items = _run_items(_ragged_class((45,), loads=2)
                           + _ragged_class((45,), loads=3))
        with pytest.raises(MachineError, match="one structural signature"):
            get_backend("jit").run_batch(items)

    def test_run_vector_batch_degrades_without_native_support(self):
        items = _run_items(_ragged_class((45, 61)))
        bytes_engine = get_backend("bytes")
        assert not hasattr(bytes_engine, "run_batch")
        batch_mems = [mem.clone() for _, _, mem, _ in items]
        results = run_vector_batch(bytes_engine, [
            (p, s, m, b)
            for (p, s, _, b), m in zip(items, batch_mems)
        ])
        solo_mems = [mem.clone() for _, _, mem, _ in items]
        solo = [bytes_engine.run(p, s, m, b)
                for (p, s, _, b), m in zip(items, solo_mems)]
        for res, ref, rmem, smem in zip(results, solo, batch_mems, solo_mems):
            assert res.counters == ref.counters
            assert rmem.snapshot() == smem.snapshot()


@needs_cc
class TestNativeRunBatch:
    """The native tier's C batch driver against jit and the oracle."""

    def _counts(self):
        return {k: v for k, v in _native.STATS.items() if isinstance(v, int)}

    def _assert_three_way(self, items):
        native_engine = get_backend("native")
        jit_engine = get_backend("jit")
        bytes_engine = get_backend("bytes")
        nat_mems = [mem.clone() for _, _, mem, _ in items]
        jit_mems = [mem.clone() for _, _, mem, _ in items]
        ora_mems = [mem.clone() for _, _, mem, _ in items]
        nat = native_engine.run_batch([
            (p, s, m, b) for (p, s, _, b), m in zip(items, nat_mems)])
        jit_res = jit_engine.run_batch([
            (p, s, m, b) for (p, s, _, b), m in zip(items, jit_mems)])
        ora = [bytes_engine.run(p, s, m, b)
               for (p, s, _, b), m in zip(items, ora_mems)]
        for nres, jres, ores, nmem, jmem, omem in zip(
                nat, jit_res, ora, nat_mems, jit_mems, ora_mems):
            assert nmem.snapshot() == jmem.snapshot() == omem.snapshot()
            assert nres.counters == jres.counters == ores.counters
            assert nres.trip == jres.trip == ores.trip
            assert nres.used_fallback == jres.used_fallback
        return nat

    def test_ragged_class_through_c_driver(self):
        items = _run_items(_ragged_class((45, 61, 75)))
        before = self._counts()
        self._assert_three_way(items)
        after = self._counts()
        # The class must have executed through the C batch driver —
        # a silent bail to the classic path would still pass the
        # byte-equality above but void the perf claim.
        assert after["batch_calls"] == before["batch_calls"] + 1
        assert after["batch_rows"] == before["batch_rows"] + len(items)

    def test_guard_row_degrades_alone(self):
        # trip=2 falls to the guarded scalar path; its classmates must
        # still batch through the driver with identical bytes.
        items = _run_items(_ragged_class((2, 61, 75)))
        before = self._counts()
        results = self._assert_three_way(items)
        after = self._counts()
        assert results[0].used_fallback
        assert not results[1].used_fallback
        assert after["batch_calls"] == before["batch_calls"] + 1
        assert after["batch_rows"] == before["batch_rows"] + 2

    def test_singleton_class_takes_whole_run_path(self):
        items = _run_items(_ragged_class((61,)))
        before = self._counts()
        self._assert_three_way(items)
        after = self._counts()
        assert after["whole_runs"] == before["whole_runs"] + 1
        assert after["batch_calls"] == before["batch_calls"]

    def test_measure_batch_native_matches_jit_measurements(self):
        configs = _ragged_class((45, 61, 75)) + _ragged_class(
            (40, 56), loads=2, policy="lazy")
        assert (measure_batch(configs, backend="native")
                == measure_batch(configs, backend="jit"))


class TestBatchFallthroughRecorded:
    """Satellite: leaving the batch path is never silent."""

    def test_batchless_tier_records_batch_fallback(self):
        from repro.machine.backend import get_resilient_backend

        items = _run_items(_ragged_class((45, 61)))
        engine = get_resilient_backend("bytes")
        results = engine.run_batch(
            [(p, s, m.clone(), b) for p, s, m, b in items])
        for result in results:
            assert result.batch_fallback == {
                "tier": "bytes", "phase": "batch",
                "reason": "tier has no batch execution",
            }

    def test_batch_tier_success_leaves_no_record(self):
        from repro.machine.backend import get_resilient_backend

        items = _run_items(_ragged_class((45, 61)))
        results = get_resilient_backend("jit").run_batch(
            [(p, s, m.clone(), b) for p, s, m, b in items])
        for result in results:
            assert result.batch_fallback is None

    def test_batch_failure_restores_memory_and_records(self):
        from repro.machine.backend import get_resilient_backend

        items = _run_items(_ragged_class((45, 61)))
        engine = get_resilient_backend("jit")

        class _Boom:
            def run_batch(self, runs):
                for _, _, mem, _ in runs:
                    mem.raw()[:1] = b"\xAA"
                raise MachineError("injected batch failure")

            def run(self, program, space, mem, bindings=None, trace=None):
                return get_backend("jit").run(program, space, mem, bindings)

        engine._chain._engines[engine._chain.tiers[0]] = _Boom()
        ref_mems = [mem.clone() for _, _, mem, _ in items]
        refs = [get_backend("bytes").run(p, s, m, b)
                for (p, s, _, b), m in zip(items, ref_mems)]
        run_mems = [mem.clone() for _, _, mem, _ in items]
        results = engine.run_batch(
            [(p, s, m, b) for (p, s, _, b), m in zip(items, run_mems)])
        for result, ref, rmem, refmem in zip(results, refs, run_mems,
                                             ref_mems):
            assert result.batch_fallback is not None
            assert result.batch_fallback["phase"] == "batch"
            assert "injected batch failure" in result.batch_fallback["reason"]
            assert result.counters == ref.counters
            assert rmem.snapshot() == refmem.snapshot()

    def test_batch_fallback_surfaces_in_profile(self):
        profile = PhaseProfile()
        measure_batch(_ragged_class((45, 61)), backend="bytes",
                      profile=profile)
        assert profile.counts["batch_degraded"] == 2
        assert profile.counts["batch_degraded_from_bytes"] == 2
        text = profile.format()
        assert "batch_degraded" in text


class TestMeasureBatchParity:
    def test_figure_subset_matches_periter(self):
        configs = [c for _, c in figure_configs(False, count=2, trip=53)]
        periter = measure_many(configs, sweep_mode="periter")
        batched = measure_many(configs, sweep_mode="batched")
        assert periter == batched

    def test_composition_independent(self):
        # The same config measures identically whatever batch it rides in.
        configs = _ragged_class((45, 61, 75)) + _ragged_class(
            (40, 56), loads=2, policy="lazy")
        alone = [measure_batch([c])[0] for c in configs]
        together = measure_batch(configs)
        shuffled_order = [3, 0, 4, 2, 1]
        shuffled = measure_batch([configs[i] for i in shuffled_order])
        assert together == alone
        assert [shuffled[shuffled_order.index(i)] for i in range(5)] == alone

    def test_worker_count_independent(self):
        configs = [c for _, c in figure_configs(True, count=2, trip=53)]
        serial = measure_many(configs, sweep_mode="batched", jobs=1)
        parallel = measure_many(configs, sweep_mode="batched", jobs=2)
        assert serial == parallel

    def test_unknown_sweep_mode_rejected(self):
        with pytest.raises(BenchError, match="unknown sweep mode"):
            measure_many(_ragged_class((45,)), sweep_mode="chunked")
        assert SWEEP_MODES == ("periter", "batched")

    def test_batch_profile_counters(self):
        configs = _ragged_class((45, 61, 75))
        profile = PhaseProfile()
        measure_batch(configs, profile=profile)
        assert profile.counts["batch_classes"] == 1
        assert profile.counts["batch_configs"] == 3
        text = profile.format()
        assert "batched sweep: 3 configs in 1 signature classes" in text


class TestWorkerProfileMerge:
    """Satellite: worker cache counters must aggregate, not overwrite."""

    def test_batched_worker_profiles_aggregate(self):
        configs = [c for _, c in figure_configs(False, count=2, trip=53)]
        serial_profile = PhaseProfile()
        measure_many(configs, sweep_mode="batched", jobs=1,
                     profile=serial_profile)
        pooled_profile = PhaseProfile()
        measure_many(configs, sweep_mode="batched", jobs=2,
                     profile=pooled_profile)
        # Every config is looked up in the simdize memo and counted in a
        # batch exactly once, in whichever process it ran; a merge that
        # overwrote one worker's counters with another's would lose some.
        for profile in (serial_profile, pooled_profile):
            lookups = (profile.counts.get("simdize_memo_hits", 0)
                       + profile.counts.get("simdize_memo_misses", 0))
            assert lookups == len(configs)
            assert profile.counts["batch_configs"] == len(configs)

    def test_periter_worker_profiles_aggregate(self):
        configs = [c for _, c in figure_configs(False, count=1, trip=53)]
        profile = PhaseProfile()
        measure_many(configs, sweep_mode="periter", jobs=2, profile=profile)
        lookups = (profile.counts.get("simdize_memo_hits", 0)
                   + profile.counts.get("simdize_memo_misses", 0))
        assert lookups == len(configs)


class TestBatchedBins:
    def test_families_stay_whole(self):
        configs = [c for _, c in figure_configs(False, count=3, trip=53)]
        bins = _batched_bins(configs, 2)
        assert sorted(i for b in bins for i in b) == list(range(len(configs)))
        assert len(bins) == 2
        # Same-params configs (any scheme) always land in one bin.
        by_bin = {}
        for bin_no, indices in enumerate(bins):
            for i in indices:
                by_bin.setdefault(
                    (configs[i].params, configs[i].V), set()).add(bin_no)
        assert all(len(bins_hit) == 1 for bins_hit in by_bin.values())

    def test_runtime_trip_normalized(self):
        configs = _ragged_class((45, 61, 75))
        assert len(_batched_bins(configs, 4)) == 1

    def test_more_jobs_than_families(self):
        configs = _ragged_class((45,))
        assert _batched_bins(configs, 8) == [[0]]


DTYPES = (INT16, INT32)


@st.composite
def batch_case(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    configs = []
    for _ in range(n):
        runtime_trip = draw(st.booleans())
        params = SynthParams(
            loads=draw(st.integers(min_value=1, max_value=4)),
            statements=draw(st.integers(min_value=1, max_value=2)),
            trip=draw(st.integers(min_value=13, max_value=90)),
            bias=draw(st.sampled_from((0.0, 0.3))),
            reuse=draw(st.sampled_from((0.0, 0.3))),
            dtype=draw(st.sampled_from(DTYPES)),
            runtime_alignment=draw(st.booleans()),
            runtime_trip=runtime_trip,
        )
        policy = ("zero" if params.runtime_alignment
                  else draw(st.sampled_from(("zero", "eager", "lazy"))))
        options = SimdOptions(
            policy=policy,
            reuse=draw(st.sampled_from(("none", "sp", "pc"))),
            unroll=draw(st.sampled_from((1, 2, 4))),
        )
        configs.append(SweepConfig(
            params, draw(st.integers(min_value=0, max_value=7)),
            options, 16, "hyp",
        ))
    backends = ("auto", "jit", "numpy", "bytes")
    if HAVE_CC:
        backends += ("native",)
    backend = draw(st.sampled_from(backends))
    return configs, backend


class TestDifferentialBatching:
    """Satellite: random batches are element-wise identical to periter."""

    @given(case=batch_case())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_batched_equals_periter(self, case):
        configs, backend = case
        periter = measure_many(configs, sweep_mode="periter",
                               backend=backend)
        batched = measure_many(configs, sweep_mode="batched",
                               backend=backend)
        assert periter == batched


class TestDiskCacheEviction:
    """Satellite: the disk tier stays under REPRO_CACHE_MAX_BYTES."""

    def _fill(self, cache, keys, payload=2048):
        """Write entries with strictly increasing mtimes, evictions off."""
        import os
        import time

        budget, cache.max_bytes = cache.max_bytes, 0
        for i, key in enumerate(keys):
            cache.put(key, b"x" * payload)
            # Distinct mtimes make LRU order deterministic on coarse
            # filesystem timestamps.
            os.utime(cache._path(key), (time.time() + i, time.time() + i))
        cache.max_bytes = budget

    def test_eviction_keeps_size_under_budget(self, tmp_path):
        cache = DiskCache(tmp_path / "cache", max_bytes=8192)
        self._fill(cache, [f"k{i}" for i in range(8)])
        cache.put("k8", b"x" * 2048)
        total = sum(p.stat().st_size
                    for p in (tmp_path / "cache").glob("??/*.pkl"))
        assert total <= 8192
        assert cache.evictions > 0
        assert cache.stats()["evictions"] == cache.evictions

    def test_oldest_evicted_newest_survives(self, tmp_path):
        cache = DiskCache(tmp_path / "cache", max_bytes=6144)
        self._fill(cache, ["old", "mid", "new"])
        cache.put("push", b"x" * 2048)
        assert cache.get("old") is None
        assert cache.get("new") == b"x" * 2048

    def test_get_touch_refreshes_recency(self, tmp_path):
        import os
        import time

        cache = DiskCache(tmp_path / "cache", max_bytes=6144)
        self._fill(cache, ["a", "b", "c"])
        # Make "a" the most recently used despite being written first.
        assert cache.get("a") is not None
        now = time.time() + 100
        os.utime(cache._path("a"), (now, now))
        cache.put("push", b"x" * 2048)
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_zero_budget_means_unlimited(self, tmp_path):
        cache = DiskCache(tmp_path / "cache", max_bytes=0)
        self._fill(cache, [f"k{i}" for i in range(20)])
        assert cache.evictions == 0
        assert all(cache.get(f"k{i}") is not None for i in range(20))

    def test_env_var_controls_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "4096")
        assert DiskCache(tmp_path).max_bytes == 4096
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
        assert DiskCache(tmp_path).max_bytes == 0
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "not-a-number")
        from repro.cache import DEFAULT_CACHE_MAX_BYTES

        assert DiskCache(tmp_path).max_bytes == DEFAULT_CACHE_MAX_BYTES
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES")
        assert DiskCache(tmp_path).max_bytes == DEFAULT_CACHE_MAX_BYTES
        assert DiskCache(tmp_path, max_bytes=123).max_bytes == 123

    def test_evictions_surface_in_profile(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "tiny"))
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1")
        from repro.cache import reset_cache_dir

        reset_cache_dir()
        try:
            profile = PhaseProfile()
            # A seed no other test uses: the in-process memos must miss
            # so the disk tier actually sees puts to evict.
            measure_many(_ragged_class((45, 61), seed=991),
                         sweep_mode="batched", profile=profile)
            assert profile.counts.get("disk_evictions", 0) > 0
            assert "evictions" in profile.format()
        finally:
            reset_cache_dir()
