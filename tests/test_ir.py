"""Tests for the scalar loop IR and its builder."""

import pytest

from repro.errors import IRError
from repro.ir import (
    ArrayDecl,
    Const,
    INT16,
    INT32,
    LoopBuilder,
    Loop,
    Ref,
    ScalarVar,
    Statement,
    figure1_loop,
)
from repro.ir.types import ADD


class TestArrayDecl:
    def test_natural_alignment_enforced(self):
        ArrayDecl("a", INT32, 10, align=4)
        with pytest.raises(IRError):
            ArrayDecl("a", INT32, 10, align=2)
        with pytest.raises(IRError):
            ArrayDecl("a", INT16, 10, align=5)

    def test_runtime_alignment(self):
        decl = ArrayDecl("a", INT32, 10, align=None)
        assert decl.runtime_aligned

    def test_bad_decls(self):
        with pytest.raises(IRError):
            ArrayDecl("not an ident!", INT32, 10)
        with pytest.raises(IRError):
            ArrayDecl("a", INT32, 0)
        with pytest.raises(IRError):
            ArrayDecl("a", INT32, 10, align=-4)


class TestBuilder:
    def test_figure1(self):
        loop = figure1_loop()
        assert loop.upper == 100
        assert len(loop.statements) == 1
        assert str(loop.statements[0]) == "a[i+3] = (b[i+1] + c[i+2]);"
        assert loop.dtype is INT32
        assert [a.name for a in loop.arrays()] == ["a", "b", "c"]

    def test_operator_overloads(self):
        lb = LoopBuilder(trip=50)
        a = lb.array("a", "int32", 64)
        b = lb.array("b", "int32", 64)
        alpha = lb.scalar("alpha")
        lb.assign(a[0], (b[1] * alpha + 3).min(b[2]))
        loop = lb.build()
        stmt = loop.statements[0]
        assert "min" in str(stmt)
        assert any(isinstance(n, ScalarVar) for n in stmt.expr.walk())
        assert any(isinstance(n, Const) and n.value == 3 for n in stmt.expr.walk())

    def test_reflected_operators(self):
        lb = LoopBuilder(trip=10)
        a = lb.array("a", "int32", 32)
        b = lb.array("b", "int32", 32)
        lb.assign(a[0], 5 + b[0])
        lb2 = lb.build()
        assert "5" in str(lb2.statements[0])

    def test_non_ref_target_rejected(self):
        lb = LoopBuilder(trip=10)
        a = lb.array("a", "int32", 32)
        with pytest.raises(IRError):
            lb.assign(a[0] + a[1], a[2])

    def test_non_constant_index_rejected(self):
        lb = LoopBuilder(trip=10)
        a = lb.array("a", "int32", 32)
        with pytest.raises(IRError):
            a["i"]

    def test_duplicate_declarations_rejected(self):
        lb = LoopBuilder(trip=10)
        lb.array("a", "int32", 32)
        with pytest.raises(IRError):
            lb.array("a", "int32", 32)
        lb.scalar("x")
        with pytest.raises(IRError):
            lb.scalar("x")


class TestLoopValidation:
    def _stmt(self, target_arr, expr_arr, off=0):
        return Statement(Ref(target_arr, off), Ref(expr_arr, 0))

    def test_store_load_overlap_rejected(self):
        a = ArrayDecl("a", INT32, 64)
        with pytest.raises(IRError, match="loop-carried"):
            Loop(upper=10, statements=[Statement(Ref(a, 1), Ref(a, 0))])

    def test_double_store_rejected(self):
        a = ArrayDecl("a", INT32, 64)
        b = ArrayDecl("b", INT32, 64)
        stmts = [self._stmt(a, b), self._stmt(a, b, off=1)]
        with pytest.raises(IRError, match="stored by two"):
            Loop(upper=10, statements=stmts)

    def test_mixed_types_rejected(self):
        a = ArrayDecl("a", INT32, 64)
        b = ArrayDecl("b", INT16, 64)
        with pytest.raises(IRError, match="mixed element types"):
            Loop(upper=10, statements=[self._stmt(a, b)])

    def test_out_of_bounds_rejected(self):
        a = ArrayDecl("a", INT32, 8)
        b = ArrayDecl("b", INT32, 64)
        with pytest.raises(IRError, match="outside"):
            Loop(upper=10, statements=[self._stmt(a, b)])
        with pytest.raises(IRError, match="outside"):
            Loop(upper=10, statements=[Statement(Ref(b, 0), Ref(a, -1))])

    def test_undeclared_scalar_rejected(self):
        a = ArrayDecl("a", INT32, 64)
        b = ArrayDecl("b", INT32, 64)
        from repro.ir.expr import BinOp

        stmt = Statement(Ref(a, 0), BinOp(ADD, Ref(b, 0), ScalarVar("mystery")))
        with pytest.raises(IRError, match="undeclared"):
            Loop(upper=10, statements=[stmt])
        Loop(upper=10, statements=[stmt], scalar_vars=("mystery",))

    def test_empty_and_nonpositive(self):
        with pytest.raises(IRError):
            Loop(upper=10, statements=[])
        a = ArrayDecl("a", INT32, 64)
        b = ArrayDecl("b", INT32, 64)
        with pytest.raises(IRError):
            Loop(upper=0, statements=[self._stmt(a, b)])

    def test_runtime_upper_symbol(self):
        a = ArrayDecl("a", INT32, 64)
        b = ArrayDecl("b", INT32, 64)
        loop = Loop(upper="n", statements=[self._stmt(a, b)])
        assert loop.runtime_upper
        with pytest.raises(IRError):
            Loop(upper="not an ident!", statements=[self._stmt(a, b)])

    def test_introspection_helpers(self):
        loop = figure1_loop()
        assert loop.store_arrays() == {"a"}
        assert loop.load_arrays() == {"b", "c"}
        assert not loop.runtime_alignment()
        assert loop.min_index() == 1
        assert loop.max_index_excl(100) == 103
        stmt = loop.statements[0]
        assert len(stmt.loads()) == 2
        assert len(stmt.refs()) == 3
        assert stmt.invariants() == []
