"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.ir import LoopBuilder, Loop
from repro.machine import ArraySpace, RunBindings
from repro.simdize import SimdOptions, fill_random, make_space, simdize, verify_equivalence


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def build_fig1(trip: int = 100, length: int = 128) -> Loop:
    lb = LoopBuilder(trip=trip, name="fig1")
    a = lb.array("a", "int32", length)
    b = lb.array("b", "int32", length)
    c = lb.array("c", "int32", length)
    lb.assign(a[3], b[1] + c[2])
    return lb.build()


def check_loop(
    loop: Loop,
    options: SimdOptions | None = None,
    V: int = 16,
    seed: int = 0,
    trip: int | None = None,
    scalars: dict[str, int] | None = None,
    residues: dict[str, int] | None = None,
):
    """Simdize + execute + byte-verify; return (SimdizeResult, report)."""
    options = options or SimdOptions()
    result = simdize(loop, V, options)
    rand = random.Random(seed)
    space = make_space(loop, V, rand, residues)
    mem = space.make_memory()
    fill_random(space, mem, rand)
    bindings = RunBindings(trip=trip, scalars=scalars or {})
    report = verify_equivalence(result.program, space, mem, bindings)
    return result, report


def sequential_memory(loop: Loop, V: int = 16, residues: dict[str, int] | None = None):
    """An ArraySpace + memory where array[k] == k (handy for exact checks)."""
    space = ArraySpace(V)
    rand = random.Random(1)
    res = dict(residues or {})
    for decl in loop.arrays():
        if decl.runtime_aligned and decl.name not in res:
            res[decl.name] = rand.randrange(0, V, decl.dtype.size)
    space.place_all(loop.arrays(), res)
    mem = space.make_memory()
    for arr in space.arrays():
        arr.write_all(mem, [arr.decl.dtype.wrap(k) for k in range(arr.decl.length)])
    return space, mem


@pytest.fixture(autouse=True)
def _isolated_disk_cache(tmp_path, monkeypatch):
    """Point the artifact disk cache at a per-test tmpdir.

    Keeps test runs from reading or polluting ~/.cache/repro, and makes
    cache-behavior tests deterministic (every test starts cold).
    """
    from repro.cache import reset_cache_dir

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    reset_cache_dir()
    yield
    reset_cache_dir()
