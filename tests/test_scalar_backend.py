"""Scalar-backend registry and bytes/numpy reference-engine parity.

The per-iteration interpreter (``run_scalar``) is the semantic oracle;
the whole-array NumPy engine must reproduce its final memory image
*and* its operation counters exactly — the counters are structural
properties of the loop, not of the engine (DESIGN.md §5).  These tests
pin the registry contract, the parity on hand-picked deterministic
cases, and the analytic counter derivation; ``test_differential.py``
extends the parity property to random loops.
"""

import random

import pytest

from repro.errors import MachineError
from repro.ir import LoopBuilder
from repro.machine import (
    SCALAR_BACKEND_CHOICES,
    BytesScalarBackend,
    RunBindings,
    ScalarBackend,
    default_backend_name,
    get_scalar_backend,
    numpy_available,
    reference_counters,
    run_scalar,
)
from repro.simdize import fill_random, make_space

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy not installed")

ALL_OP_NAMES = ("add", "sub", "mul", "min", "max",
                "and", "or", "xor", "avg", "sadd", "ssub")
REDUCTION_OPS = ("add", "mul", "min", "max", "and", "or", "xor")


class TestRegistry:
    def test_bytes_backend(self):
        engine = get_scalar_backend("bytes")
        assert isinstance(engine, BytesScalarBackend)
        assert engine.name == "bytes"
        assert isinstance(engine, ScalarBackend)

    @needs_numpy
    def test_numpy_backend(self):
        engine = get_scalar_backend("numpy")
        assert engine.name == "numpy"
        assert isinstance(engine, ScalarBackend)

    def test_auto_resolution(self):
        assert get_scalar_backend("auto").name == default_backend_name()
        assert get_scalar_backend().name == default_backend_name()

    def test_unknown_backend_rejected(self):
        with pytest.raises(MachineError, match="unknown scalar backend"):
            get_scalar_backend("cuda")
        assert set(SCALAR_BACKEND_CHOICES) == {"auto", "bytes", "numpy"}

    def test_without_numpy_auto_falls_back(self, monkeypatch):
        import repro.machine.backend as backend_mod

        monkeypatch.setattr(backend_mod, "numpy_available", lambda: False)
        assert backend_mod.get_scalar_backend("auto").name == "bytes"
        with pytest.raises(MachineError, match="needs numpy"):
            backend_mod.get_scalar_backend("numpy")


def run_both(loop, seed=0, trip=None, scalars=None):
    """Run one loop under both scalar engines; assert exact parity."""
    rand = random.Random(seed)
    space = make_space(loop, 16, rand)
    base = space.make_memory()
    fill_random(space, base, rand)
    bindings = RunBindings(trip=trip, scalars=scalars or {})

    outcomes = {}
    for name in ("bytes", "numpy"):
        mem = base.clone()
        run = get_scalar_backend(name).run(loop, space, mem, bindings)
        outcomes[name] = (mem.snapshot(), run.counters.as_dict(),
                          run.trip, run.data_count)
    b, n = outcomes["bytes"], outcomes["numpy"]
    assert b[0] == n[0], "memory images differ between scalar engines"
    assert b[1] == n[1], f"counters differ: {b[1]} vs {n[1]}"
    assert b[2:] == n[2:]
    return outcomes["bytes"]


def binop_loop(op, dtype="int16", trip=41):
    lb = LoopBuilder(trip=trip)
    a = lb.array("a", dtype, 96)
    b = lb.array("b", dtype, 96)
    c = lb.array("c", dtype, 96)
    pair = {
        "add": lambda: b[1] + c[5], "sub": lambda: b[1] - c[5],
        "mul": lambda: b[1] * c[5], "and": lambda: b[1] & c[5],
        "or": lambda: b[1] | c[5], "xor": lambda: b[1] ^ c[5],
        "min": lambda: b[1].min(c[5]), "max": lambda: b[1].max(c[5]),
        "avg": lambda: b[1].avg(c[5]), "sadd": lambda: b[1].sadd(c[5]),
        "ssub": lambda: b[1].ssub(c[5]),
    }[op]()
    lb.assign(a[2], pair)
    return lb.build()


@needs_numpy
class TestEngineParity:
    @pytest.mark.parametrize("op", ALL_OP_NAMES)
    @pytest.mark.parametrize("dtype", ["int8", "int32", "uint16"])
    def test_every_op(self, op, dtype):
        run_both(binop_loop(op, dtype), seed=3)

    @pytest.mark.parametrize("op", REDUCTION_OPS)
    def test_reductions(self, op):
        lb = LoopBuilder(trip=67)
        out = lb.array("out", "int16", 8)
        b = lb.array("b", "int16", 96)
        c = lb.array("c", "int16", 96)
        lb.reduce(out, 2, op, b[1] * c[4])
        run_both(lb.build(), seed=5)

    def test_index_and_scalar_operands(self):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int16", 300)
        b = lb.array("b", "int16", 300)
        k = lb.scalar("k")
        lb.assign(a[1], (b[4] * k).sadd(lb.index_value()))
        run_both(lb.build(), seed=7, trip=257, scalars={"k": 12345})

    def test_stored_array_also_loaded(self):
        """Loads must observe pre-loop values, not the batch's writes."""
        lb = LoopBuilder(trip=61)
        a = lb.array("a", "int32", 96)
        b = lb.array("b", "int32", 96)
        lb.assign(a[0], a[3] + b[1])
        run_both(lb.build(), seed=9)

    def test_multi_statement_cross_store(self):
        lb = LoopBuilder(trip=50)
        a = lb.array("a", "int32", 96)
        b = lb.array("b", "int32", 96)
        c = lb.array("c", "int32", 96)
        lb.assign(c[1], a[2] + b[0])
        lb.assign(a[2], b[3] + b[7])
        run_both(lb.build(), seed=11)

    def test_zero_trip(self):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int32", 64)
        b = lb.array("b", "int32", 64)
        lb.assign(a[1], b[2])
        _, counters, trip, data_count = run_both(lb.build(), trip=0)
        assert trip == 0 and data_count == 0 and counters == {}

    def test_out_of_range_matches_oracle(self):
        """Unbatchable shapes delegate: the oracle's error surfaces."""
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int32", 96)
        b = lb.array("b", "int32", 40)  # b[5 + 79] is out of range
        lb.assign(a[0], b[5])
        loop = lb.build()
        rand = random.Random(0)
        space = make_space(loop, 16, rand)
        mem = space.make_memory()
        fill_random(space, mem, rand)
        for name in ("bytes", "numpy"):
            with pytest.raises(MachineError):
                get_scalar_backend(name).run(loop, space, mem.clone(),
                                             RunBindings(trip=80))


class TestReferenceCounters:
    """The analytic tally must equal run_scalar's dynamic one."""

    @pytest.mark.parametrize("trip", [0, 1, 17])
    def test_plain_statements(self, trip):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int16", 64)
        b = lb.array("b", "int16", 64)
        c = lb.array("c", "int16", 64)
        lb.assign(a[1], (b[2] + c[3]).min(b[5]))
        loop = lb.build()
        space = make_space(loop, 16, random.Random(0))
        mem = space.make_memory()
        result = run_scalar(loop, space, mem, RunBindings(trip=trip))
        assert reference_counters(loop, trip).counts == result.counters.counts

    @pytest.mark.parametrize("trip", [0, 1, 23])
    def test_reduction(self, trip):
        lb = LoopBuilder(trip="n")
        out = lb.array("out", "int32", 8)
        b = lb.array("b", "int32", 64)
        lb.reduce(out, 0, "add", b[1] * b[9])
        loop = lb.build()
        space = make_space(loop, 16, random.Random(1))
        mem = space.make_memory()
        result = run_scalar(loop, space, mem, RunBindings(trip=trip))
        assert reference_counters(loop, trip).counts == result.counters.counts

    def test_data_count_field(self):
        lb = LoopBuilder(trip=13)
        a = lb.array("a", "int32", 64)
        b = lb.array("b", "int32", 64)
        c = lb.array("c", "int32", 64)
        lb.assign(a[0], b[1])
        lb.assign(c[2], b[5])
        space = make_space(lb.build(), 16, random.Random(2))
        result = run_scalar(lb.build(), space, space.make_memory())
        assert result.data_count == 26
        assert result.trip == 13
