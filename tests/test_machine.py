"""Tests for the virtual machine substrate: memory, arrays, vector ops."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MachineError
from repro.ir import ArrayDecl, INT8, INT16, INT32, UINT8
from repro.ir.types import ADD, MUL
from repro.machine import (
    ArraySpace,
    GUARD_VECTORS,
    Memory,
    from_lanes,
    lanes,
    vbinop,
    vshiftpair,
    vsplat,
    vsplice,
)


class TestMemory:
    def test_read_write_roundtrip(self):
        mem = Memory(256)
        mem.write(10, b"hello")
        assert mem.read(10, 5) == b"hello"

    def test_fill_pattern(self):
        mem = Memory(16, fill=0xAB)
        assert mem.read(0, 16) == b"\xab" * 16

    def test_vload_truncates_address(self):
        mem = Memory(256)
        mem.write(16, bytes(range(16)))
        for addr in (16, 17, 23, 31):
            assert mem.vload(addr, 16) == bytes(range(16))
        assert mem.vload(32, 16) != bytes(range(16))

    def test_vstore_truncates_address(self):
        mem = Memory(256)
        data = bytes(range(16))
        mem.vstore(37, data, 16)
        assert mem.read(32, 16) == data

    def test_vstore_requires_full_vector(self):
        mem = Memory(256)
        with pytest.raises(MachineError):
            mem.vstore(0, b"short", 16)

    def test_bounds_checked(self):
        mem = Memory(64)
        with pytest.raises(MachineError):
            mem.read(60, 8)
        with pytest.raises(MachineError):
            mem.write(-1, b"x")

    def test_clone_is_independent(self):
        mem = Memory(64)
        copy = mem.clone()
        mem.write(0, b"x")
        assert copy.read(0, 1) != b"x"
        assert len(mem.snapshot()) == 64


class TestArraySpace:
    def test_compile_time_residue_honoured(self):
        for residue in (0, 4, 8, 12):
            space = ArraySpace(16)
            space.place(ArrayDecl("a", INT32, 10, align=residue))
            assert space["a"].base % 16 == residue

    def test_runtime_residue_honoured(self):
        space = ArraySpace(16)
        space.place(ArrayDecl("a", INT32, 10, align=None), runtime_residue=8)
        assert space["a"].base % 16 == 8

    def test_runtime_residue_only_for_runtime_arrays(self):
        space = ArraySpace(16)
        with pytest.raises(MachineError):
            space.place(ArrayDecl("a", INT32, 10, align=0), runtime_residue=8)

    def test_unnatural_runtime_residue_rejected(self):
        space = ArraySpace(16)
        with pytest.raises(MachineError):
            space.place(ArrayDecl("a", INT32, 10, align=None), runtime_residue=2)

    def test_guard_zone_between_arrays(self):
        space = ArraySpace(16)
        a = ArrayDecl("a", INT32, 10)
        b = ArrayDecl("b", INT32, 10)
        space.place_all([a, b])
        gap = space["b"].base - (space["a"].base + space["a"].size_bytes)
        assert gap >= GUARD_VECTORS * 16

    def test_element_access(self):
        space = ArraySpace(16)
        space.place(ArrayDecl("a", INT16, 8))
        mem = space.make_memory()
        arr = space["a"]
        arr.store(mem, 3, -7)
        assert arr.load(mem, 3) == -7
        arr.write_all(mem, range(8))
        assert arr.read_all(mem) == list(range(8))
        with pytest.raises(MachineError):
            arr.load(mem, 8)
        with pytest.raises(MachineError):
            arr.write_all(mem, [1, 2])

    def test_double_place_and_missing(self):
        space = ArraySpace(16)
        a = ArrayDecl("a", INT32, 4)
        space.place(a)
        with pytest.raises(MachineError):
            space.place(a)
        with pytest.raises(MachineError):
            space["zzz"]
        assert "a" in space and "zzz" not in space

    def test_non_power_of_two_v_rejected(self):
        with pytest.raises(MachineError):
            ArraySpace(12)


class TestVectorOps:
    def test_vsplat(self):
        assert vsplat(1, INT32, 16) == b"\x01\x00\x00\x00" * 4
        assert vsplat(-1, INT16, 16) == b"\xff" * 16

    def test_vshiftpair_basic(self):
        v1 = bytes(range(16))
        v2 = bytes(range(16, 32))
        assert vshiftpair(v1, v2, 0, 16) == v1
        assert vshiftpair(v1, v2, 16, 16) == v2
        assert vshiftpair(v1, v2, 4, 16) == bytes(range(4, 20))

    def test_vshiftpair_bounds(self):
        v = bytes(16)
        with pytest.raises(MachineError):
            vshiftpair(v, v, 17, 16)
        with pytest.raises(MachineError):
            vshiftpair(v, v, -1, 16)
        with pytest.raises(MachineError):
            vshiftpair(v[:8], v, 0, 16)

    def test_vsplice_partition(self):
        v1 = b"\xaa" * 16
        v2 = b"\xbb" * 16
        assert vsplice(v1, v2, 0, 16) == v2
        assert vsplice(v1, v2, 16, 16) == v1
        out = vsplice(v1, v2, 5, 16)
        assert out == v1[:5] + v2[5:]

    def test_vbinop_lanewise(self):
        a = from_lanes([1, 2, 3, 4], INT32)
        b = from_lanes([10, 20, 30, 40], INT32)
        assert lanes(vbinop(ADD, a, b, INT32, 16), INT32) == [11, 22, 33, 44]

    def test_vbinop_wraps_like_hardware(self):
        a = from_lanes([127] * 16, INT8)
        b = from_lanes([1] * 16, INT8)
        assert lanes(vbinop(ADD, a, b, INT8, 16), INT8) == [-128] * 16
        ua = from_lanes([200] * 16, UINT8)
        assert lanes(vbinop(MUL, ua, ua, UINT8, 16), UINT8) == [(200 * 200) % 256] * 16

    def test_lanes_roundtrip(self):
        values = [-1, 0, 1, 2**31 - 1]
        assert lanes(from_lanes(values, INT32), INT32) == values
        with pytest.raises(MachineError):
            lanes(b"\x00" * 15, INT32)

    # -- property tests ----------------------------------------------------

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16),
           st.integers(0, 16))
    def test_vsplice_is_byte_partition(self, v1, v2, point):
        out = vsplice(v1, v2, point, 16)
        assert out[:point] == v1[:point]
        assert out[point:] == v2[point:]

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16),
           st.integers(0, 16))
    def test_vshiftpair_window(self, v1, v2, shift):
        out = vshiftpair(v1, v2, shift, 16)
        assert out == (v1 + v2)[shift:shift + 16]

    @given(st.binary(min_size=16, max_size=16), st.integers(0, 15), st.integers(0, 15))
    def test_shift_composition(self, v, s1, s2):
        # Shifting twice within one register == shifting once by the sum
        # (when the sum stays in range), with zero fill coming from the
        # second operand.
        zero = bytes(16)
        if s1 + s2 <= 15:
            once = vshiftpair(v, zero, s1 + s2, 16)
            twice = vshiftpair(vshiftpair(v, zero, s1, 16), zero, s2, 16)
            # twice loses bytes shifted in from `zero`, which are zero anyway
            assert once == twice

    @given(st.lists(st.integers(-128, 127), min_size=16, max_size=16))
    def test_from_lanes_inverse(self, values):
        assert lanes(from_lanes(values, INT8), INT8) == values
