"""The native codegen tier: cc-compiled kernels, artifacts, degradation.

``test_differential.py`` holds the native engine to bit-exact parity
with the byte oracle on random draws; this file pins the machinery
around it — the two-tier kernel cache (in-process LRU + compiler-
identity-versioned disk artifacts), tampered/corrupt artifact
quarantine, the jit-delegation path for programs the C emitter
declines, degradation on hosts without a compiler or under injected
compile faults, profile attribution of the new ``cc``/``native_load``
phases, and the Figure 11/12 sweep acceptance criterion
(byte-identical memories and bit-identical counters against the bytes
oracle).  Everything needing a real compiler is guarded by
``needs_cc``; the degradation tests run anywhere numpy does.
"""

import random
import types

import pytest

from repro import faults
from repro.machine import RunBindings, get_backend, numpy_available
from repro.simdize import SimdOptions, fill_random, make_space, simdize

from conftest import build_fig1

pytestmark = pytest.mark.skipif(not numpy_available(),
                                reason="numpy not installed")

if numpy_available():
    from repro.cache import get_cache
    from repro.machine import compilequeue, jit, native

HAVE_CC = numpy_available() and native._compiler_identity()[0] is not None
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no host C compiler")


@pytest.fixture(autouse=True)
def _fresh_caches():
    jit.clear_memory_cache()
    native.clear_memory_cache()
    yield
    jit.clear_memory_cache()
    native.clear_memory_cache()


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT", raising=False)
    faults.reload()
    yield
    faults.reload()


def fig1_program(trip: int = 100, policy: str = "zero"):
    return simdize(build_fig1(trip=trip), 16,
                   SimdOptions(policy=policy, reuse="sp")).program


def run_engines(program, names, seed: int = 9, trip: int | None = None):
    """Execute ``program`` once per engine on clones of one random image."""
    loop = program.source
    rand = random.Random(seed)
    space = make_space(loop, program.V, rand)
    base = space.make_memory()
    fill_random(space, base, rand)
    runs = {}
    for name in names:
        mem = base.clone()
        run = get_backend(name).run(program, space, mem,
                                    RunBindings(trip=trip))
        runs[name] = (mem.snapshot(), run.counters.as_dict(),
                      run.trip, run.used_fallback)
    return runs


class TestNativeParity:
    @needs_cc
    @pytest.mark.parametrize("policy", ["zero", "eager", "lazy", "dominant"])
    def test_fig1_matches_bytes(self, policy):
        runs = run_engines(fig1_program(policy=policy), ("bytes", "native"))
        assert runs["bytes"] == runs["native"]

    @needs_cc
    def test_kernel_actually_ran_in_c(self):
        """Parity must come from the compiled kernel, not silent jit
        delegation: the cached kernel carries a live ctypes function."""
        program = fig1_program()
        runs = run_engines(program, ("bytes", "native"))
        assert runs["bytes"] == runs["native"]
        kernel = native.get_native_kernel(program)
        assert kernel.cfn is not None
        assert kernel.meta.so_sha256

    @needs_cc
    @pytest.mark.parametrize("offset_reassoc", [False, True],
                             ids=["fig11", "fig12"])
    def test_sweep_matches_bytes_oracle(self, offset_reassoc):
        """Acceptance criterion: --backend native is byte-identical and
        counter-identical to the bytes oracle across the Figure 11/12
        sweep space (every scheme × compile-time/runtime alignment)."""
        from repro.bench import figure_configs
        from repro.bench.runner import _cached_simdize
        from repro.bench.synth import synthesize

        for label, config in figure_configs(offset_reassoc, count=1, trip=67):
            syn = synthesize(config.params, config.seed, config.V)
            result = _cached_simdize(syn.loop, config.V, config.options)
            rand = random.Random(config.seed ^ 0x5EED)
            space = make_space(syn.loop, config.V, rand, syn.base_residues)
            base = space.make_memory()
            fill_random(space, base, rand)
            trip = config.params.trip if syn.loop.runtime_upper else None
            runs = {}
            for name in ("bytes", "native"):
                mem = base.clone()
                run = get_backend(name).run(result.program, space, mem,
                                            RunBindings(trip=trip))
                runs[name] = (mem.snapshot(), run.counters.as_dict(),
                              run.trip, run.used_fallback)
            assert runs["bytes"] == runs["native"], f"{label} diverged"


class TestKernelCache:
    @needs_cc
    def test_disk_roundtrip_skips_cc(self):
        """A cleared memory cache reloads the .so from disk instead of
        re-invoking the compiler."""
        program = fig1_program()
        before = dict(native.STATS)
        native.get_native_kernel(program)
        assert native.STATS["codegens"] == before["codegens"] + 1
        native.clear_memory_cache()
        kernel = native.get_native_kernel(program)
        assert kernel.cfn is not None
        assert native.STATS["codegens"] == before["codegens"] + 1  # unchanged
        assert native.STATS["disk_hits"] == before["disk_hits"] + 1

    @needs_cc
    def test_disk_loaded_kernel_still_bit_exact(self):
        program = fig1_program(trip=77)
        native.get_native_kernel(program)
        native.clear_memory_cache()
        runs = run_engines(program, ("bytes", "native"))
        assert runs["bytes"] == runs["native"]

    @needs_cc
    def test_stale_code_version_recompiles(self, monkeypatch):
        """Bumping NATIVE_CODE_VERSION invalidates every disk entry."""
        program = fig1_program()
        before = dict(native.STATS)
        native.get_native_kernel(program)
        native.clear_memory_cache()
        monkeypatch.setattr(native, "NATIVE_CODE_VERSION",
                            native.NATIVE_CODE_VERSION + 1)
        native.get_native_kernel(program)
        assert native.STATS["codegens"] == before["codegens"] + 2
        assert native.STATS["disk_misses"] == before["disk_misses"] + 2

    @needs_cc
    def test_tampered_so_is_quarantined_and_recompiled(self):
        """A .so whose digest no longer matches its meta entry is a
        silent miss: the whole entry group is quarantined and the
        kernel recompiles from scratch."""
        program = fig1_program()
        before = dict(native.STATS)
        native.get_native_kernel(program)
        cache = get_cache()
        sig = jit._cached_signature(program)
        key = native._disk_key(sig, native._compiler_identity()[1])
        so_path = cache.artifact_path(key, ".so")
        assert so_path is not None
        so_path.write_bytes(b"\x7fELF but not really")
        native.clear_memory_cache()
        kernel = native.get_native_kernel(program)   # must not raise
        assert kernel.cfn is not None
        assert native.STATS["codegens"] == before["codegens"] + 2
        assert list(cache.root.glob("??/*.so.corrupt"))
        runs = run_engines(program, ("bytes", "native"))
        assert runs["bytes"] == runs["native"]

    @needs_cc
    def test_corrupt_meta_pickle_is_silent_miss(self):
        program = fig1_program()
        before = dict(native.STATS)
        native.get_native_kernel(program)
        cache = get_cache()
        sig = jit._cached_signature(program)
        key = native._disk_key(sig, native._compiler_identity()[1])
        cache._path(key).write_bytes(b"this is not a pickle")
        native.clear_memory_cache()
        kernel = native.get_native_kernel(program)   # must not raise
        assert kernel.cfn is not None
        assert native.STATS["codegens"] == before["codegens"] + 2

    @needs_cc
    def test_memory_cache_hit_after_first_load(self):
        program = fig1_program()
        before = dict(native.STATS)
        k1 = native.get_native_kernel(program)
        k2 = native.get_native_kernel(program)
        assert k1 is k2
        assert native.STATS["memory_hits"] == before["memory_hits"] + 1

    def test_emitter_decline_delegates_to_jit(self, monkeypatch):
        """When the C emitter declines a steady form, the native tier
        runs jit's own path (cfn=None) instead of degrading."""
        def decline(program, spec):
            raise native._CantEmit("outside the C subset")

        monkeypatch.setattr(native, "emit_kernel", decline)
        program = fig1_program()
        kernel = native.get_native_kernel(program)
        assert kernel.cfn is None
        runs = run_engines(program, ("bytes", "native"))
        assert runs["bytes"] == runs["native"]
        assert runs["native"][3] is False   # no per-iteration fallback


class TestDegradation:
    def test_missing_compiler_degrades_to_jit(self, monkeypatch):
        """A host without cc warns once and files a native → jit
        degradation under the compile phase; results are unchanged."""
        from repro import run_and_verify

        clean = run_and_verify(fig1_program(), backend="jit")
        monkeypatch.setattr(native, "_CC", (native._cc_env(), (None, "none")))
        monkeypatch.setattr(native, "_WARNED", False)
        jit.clear_memory_cache()
        native.clear_memory_cache()
        with pytest.warns(RuntimeWarning, match="no C compiler"):
            report = run_and_verify(fig1_program(), backend="native")
        assert report.fallback is not None
        assert report.fallback["tier"] == "jit"
        assert report.fallback["phase"] == "compile"
        assert report.fallback["failed"] == ("native",)
        assert "compiler" in report.fallback["reason"]
        assert (report.vector_ops, report.scalar_ops) == \
            (clean.vector_ops, clean.scalar_ops)

    def test_missing_compiler_warns_only_once(self, monkeypatch, recwarn):
        from repro import run_and_verify

        monkeypatch.setattr(native, "_CC", (native._cc_env(), (None, "none")))
        monkeypatch.setattr(native, "_WARNED", False)
        run_and_verify(fig1_program(), backend="native")
        native.clear_memory_cache()
        run_and_verify(fig1_program(), backend="native")
        warned = [w for w in recwarn.list
                  if "no C compiler" in str(w.message)]
        assert len(warned) == 1

    def test_compile_fault_degrades_down_the_chain(self, monkeypatch):
        """REPRO_FAULT=compile:raise kills kernel construction in both
        the native and jit tiers; the chain lands on numpy with the
        full failure trail and identical numbers."""
        from repro import run_and_verify
        from repro.profiling import PhaseProfile

        monkeypatch.setenv("REPRO_FAULT", "compile:raise")
        faults.reload()
        profile = PhaseProfile()
        report = run_and_verify(fig1_program(), backend="native",
                                profile=profile)
        monkeypatch.delenv("REPRO_FAULT")
        faults.reload()
        clean = run_and_verify(fig1_program(), backend="native")
        assert report.fallback is not None
        assert report.fallback["tier"] == "numpy"
        assert report.fallback["phase"] == "compile"
        assert report.fallback["failed"] == ("native", "jit")
        assert "FaultInjected" in report.fallback["reason"]
        assert (report.vector_ops, report.scalar_ops) == \
            (clean.vector_ops, clean.scalar_ops)
        assert profile.counts["degraded"] == 1
        assert profile.counts["degraded_to_numpy"] == 1
        assert clean.fallback is None

    @needs_cc
    def test_cc_failure_is_memoized(self, monkeypatch):
        """A failing compiler raises NativeUnavailable; the signature is
        memoized so later runs skip the doomed subprocess."""
        calls = {"n": 0}

        def broken_cc(cmd, **kwargs):
            calls["n"] += 1
            return types.SimpleNamespace(returncode=1, stdout="",
                                         stderr="ICE: exploding compiler")

        monkeypatch.setattr(compilequeue, "_run_cc", broken_cc)
        program = fig1_program()
        with pytest.raises(native.NativeUnavailable, match="exploding"):
            native.get_native_kernel(program)
        assert calls["n"] == 1
        with pytest.raises(native.NativeUnavailable, match="exploding"):
            native.get_native_kernel(program)
        assert calls["n"] == 1   # memoized: no second subprocess

    @needs_cc
    def test_cc_failure_still_degrades_per_run(self, monkeypatch):
        from repro import run_and_verify

        def broken_cc(cmd, **kwargs):
            return types.SimpleNamespace(returncode=1, stdout="", stderr="")

        monkeypatch.setattr(compilequeue, "_run_cc", broken_cc)
        report = run_and_verify(fig1_program(), backend="native")
        assert report.fallback is not None
        assert report.fallback["tier"] == "jit"
        assert report.fallback["phase"] == "compile"


class TestProfileIntegration:
    @needs_cc
    def test_cc_time_attributed_to_cc_phase(self):
        from repro import run_and_verify
        from repro.profiling import PhaseProfile

        profile = PhaseProfile()
        run_and_verify(fig1_program(), backend="native", profile=profile)
        assert profile.seconds.get("cc", 0.0) > 0.0
        assert profile.seconds.get("native_load", 0.0) > 0.0
        assert profile.counts.get("native_memory_misses", 0) >= 1
        text = profile.format()
        assert "cc" in text and "native_memory" in text

    @needs_cc
    def test_warm_run_reports_native_disk_hit(self):
        from repro import run_and_verify
        from repro.profiling import PhaseProfile

        program = fig1_program()
        run_and_verify(program, backend="native")
        native.clear_memory_cache()
        profile = PhaseProfile()
        run_and_verify(program, backend="native", profile=profile)
        assert profile.counts.get("native_disk_hits", 0) >= 1
        assert profile.hit_rate("native_disk") == 1.0


class TestArtifactStore:
    """DiskCache sibling-artifact semantics (no compiler needed)."""

    def test_artifact_roundtrip(self, tmp_path):
        from repro.cache import DiskCache

        cache = DiskCache(tmp_path / "cache")
        cache.put_artifact("k", ".so", b"\x00\x01")
        cache.put_artifact("k", ".c", b"int x;")
        path = cache.artifact_path("k", ".so")
        assert path is not None and path.read_bytes() == b"\x00\x01"
        assert cache.artifact_path("k", ".nope") is None

    def test_entry_group_evicts_as_a_unit(self, tmp_path):
        """LRU eviction removes a key's pickle and artifacts together —
        a surviving .so must never outlive its validating metadata."""
        import os

        from repro.cache import DiskCache

        cache = DiskCache(tmp_path / "cache", max_bytes=6000)
        cache.put_artifact("old", ".so", bytes(4000))
        cache.put("old", {"meta": 1})
        for path in cache.root.glob("??/*"):
            os.utime(path, (1, 1))   # make the first group clearly LRU
        cache.put_artifact("new", ".so", bytes(4000))
        cache.put("new", {"meta": 2})
        assert cache.get("old") is None
        assert cache.artifact_path("old", ".so") is None
        assert cache.get("new") == {"meta": 2}
        assert cache.artifact_path("new", ".so") is not None
        assert cache.stats()["evictions"] == 1

    def test_quarantine_covers_the_whole_group(self, tmp_path):
        from repro.cache import DiskCache

        cache = DiskCache(tmp_path / "cache")
        cache.put("k", {"meta": 1})
        cache.put_artifact("k", ".so", b"\x00")
        cache.put_artifact("k", ".c", b"int x;")
        cache.quarantine_artifacts("k")
        assert cache.get("k") is None
        assert cache.artifact_path("k", ".so") is None
        corrupt = sorted(p.name.split(".", 1)[1]
                         for p in cache.root.glob("??/*.corrupt"))
        assert corrupt == ["c.corrupt", "corrupt", "so.corrupt"]

    def test_artifacts_count_toward_size_budget(self, tmp_path):
        from repro.cache import DiskCache

        cache = DiskCache(tmp_path / "cache", max_bytes=1000)
        for k in range(4):
            cache.put_artifact(f"key{k}", ".so", bytes(600))
        survivors = [p for p in cache.root.glob("??/*")
                     if not p.name.endswith(".tmp")]
        assert sum(p.stat().st_size for p in survivors) <= 1000
        assert cache.stats()["evictions"] >= 2
