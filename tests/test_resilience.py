"""Fault-tolerant sweep execution (DESIGN.md §6).

Every recovery path is driven end to end with injected faults
(``repro.faults``) and must reproduce the *exact* numbers of a
fault-free run: the degradation chain re-executes on a byte-identical
tier, the supervised pool re-runs deterministic configs, and resumed
checkpoints splice JSON-exact measurements.  Resilience must never
buy survival with different results.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import faults
from repro.bench.runner import (
    FailedMeasurement,
    Measurement,
    RunPolicy,
    SweepConfig,
    measure_many,
)
from repro.bench.synth import SynthParams
from repro.cache import DiskCache
from repro.errors import FaultInjected, MachineError, VerificationError
from repro.machine.backend import (
    get_resilient_backend,
    get_resilient_scalar_backend,
    numpy_available,
)
from repro.machine.scalar import RunBindings
from repro.profiling import PhaseProfile
from repro.simdize import SimdOptions, fill_random, make_space, simdize
from repro.simdize.verify import verify_equivalence

from conftest import build_fig1

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy not installed")


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT", raising=False)
    faults.reload()
    yield
    faults.reload()


def _arm(monkeypatch, spec: str) -> None:
    monkeypatch.setenv("REPRO_FAULT", spec)
    faults.reload()


def _verify(backend="auto", scalar_backend="auto", profile=None):
    loop = build_fig1()
    space = make_space(loop, 16)
    mem = space.make_memory()
    fill_random(space, mem, random.Random(3))
    result = simdize(loop, 16, SimdOptions())
    return verify_equivalence(result.program, space, mem,
                              backend=backend,
                              scalar_backend=scalar_backend,
                              profile=profile)


def _sweep_configs(n=4, trip=35):
    params = SynthParams(loads=2, statements=1, trip=trip)
    return [SweepConfig(params, seed, SimdOptions(), 16, "EAGER")
            for seed in range(n)]


class TestDegradationChain:
    @needs_numpy
    def test_compile_fault_degrades_jit_to_numpy(self, monkeypatch):
        # Faulted run first: a clean run would warm the kernel cache
        # and the cached kernel would never reach the compile hook.
        _arm(monkeypatch, "compile:raise")
        profile = PhaseProfile()
        report = _verify(backend="jit", profile=profile)
        monkeypatch.delenv("REPRO_FAULT")
        faults.reload()
        clean = _verify(backend="jit")
        assert report.fallback is not None
        assert report.fallback["tier"] == "numpy"
        assert report.fallback["phase"] == "compile"
        assert report.fallback["failed"] == ("jit",)
        assert "FaultInjected" in report.fallback["reason"]
        assert (report.vector_ops, report.scalar_ops) == \
            (clean.vector_ops, clean.scalar_ops)
        assert profile.counts["degraded"] == 1
        assert profile.counts["degraded_to_numpy"] == 1

    @needs_numpy
    def test_double_fault_degrades_to_bytes_oracle(self, monkeypatch):
        _arm(monkeypatch, "compile:raise,execute:raise")
        report = _verify(backend="jit")
        monkeypatch.delenv("REPRO_FAULT")
        faults.reload()
        clean = _verify(backend="jit")
        assert report.fallback is not None
        assert report.fallback["tier"] == "bytes"
        assert report.fallback["failed"] == ("jit", "numpy")
        assert (report.vector_ops, report.scalar_ops) == \
            (clean.vector_ops, clean.scalar_ops)

    def test_clean_run_records_no_fallback(self):
        report = _verify()
        assert report.fallback is None
        assert report.scalar_fallback is None

    @needs_numpy
    def test_scalar_reference_degrades_too(self, monkeypatch):
        from repro.machine import npscalar

        clean = _verify(scalar_backend="numpy")

        def boom(self, loop, space, mem, bindings=None):
            raise RuntimeError("scalar engine down")

        monkeypatch.setattr(npscalar.NumpyScalarBackend, "run", boom)
        profile = PhaseProfile()
        report = _verify(scalar_backend="numpy", profile=profile)
        assert report.scalar_fallback is not None
        assert report.scalar_fallback["tier"] == "bytes"
        assert report.scalar_ops == clean.scalar_ops
        assert profile.counts["scalar_degraded"] == 1

    def test_last_tier_errors_propagate(self, monkeypatch):
        from repro.machine import backend as backend_mod

        def boom(self, program, space, mem, bindings=None, trace=None):
            raise MachineError("oracle is broken")

        monkeypatch.setattr(backend_mod.BytesBackend, "run", boom)
        engine = get_resilient_backend("bytes")
        loop = build_fig1()
        space = make_space(loop, 16)
        mem = space.make_memory()
        result = simdize(loop, 16, SimdOptions())
        with pytest.raises(MachineError, match="oracle is broken"):
            engine.run(result.program, space, mem, RunBindings())

    def test_unknown_names_still_rejected(self):
        with pytest.raises(MachineError, match="unknown execution backend"):
            get_resilient_backend("cuda")
        with pytest.raises(MachineError, match="unknown scalar backend"):
            get_resilient_scalar_backend("cuda")

    @needs_numpy
    def test_memory_restored_between_tiers(self, monkeypatch):
        # The failing tier may have partially executed; the next tier
        # must start from the pre-attempt image or bytes would diverge.
        _arm(monkeypatch, "execute:raise")
        report = _verify(backend="numpy")  # verifies memory equality
        assert report.fallback["tier"] == "bytes"


class TestSupervisedSweep:
    def test_worker_kill_degrades_to_serial_with_same_rows(self, monkeypatch):
        configs = _sweep_configs()
        clean = measure_many(configs, jobs=2)
        _arm(monkeypatch, "worker:kill")
        profile = PhaseProfile()
        rows = measure_many(configs, jobs=2, profile=profile)
        assert rows == clean
        assert profile.counts["pool_restarts"] >= 1
        assert profile.counts["serial_fallbacks"] == 1

    def test_transient_fault_is_retried_away(self, monkeypatch):
        configs = _sweep_configs()
        clean = measure_many(configs, jobs=1)
        _arm(monkeypatch, "worker:raise:once")
        profile = PhaseProfile()
        rows = measure_many(configs, jobs=1, profile=profile)
        assert rows == clean
        assert profile.counts["task_splits"] + \
            profile.counts.get("retries", 0) >= 1

    def test_persistent_fault_yields_failed_rows(self, monkeypatch, capsys):
        configs = _sweep_configs(n=2)
        _arm(monkeypatch, "worker:raise")
        policy = RunPolicy(max_retries=1)
        profile = PhaseProfile()
        rows = measure_many(configs, jobs=1, run_policy=policy, profile=profile)
        assert all(isinstance(r, FailedMeasurement) for r in rows)
        assert all(r.error == "FaultInjected" for r in rows)
        assert all(r.attempts == 2 for r in rows)  # initial + 1 retry
        assert profile.counts["failed_configs"] == 2
        err = capsys.readouterr().err
        assert "2/2 sweep configs failed" in err
        assert "FaultInjected" in err

    def test_failed_rows_expose_their_config(self, monkeypatch):
        configs = _sweep_configs(n=1)
        _arm(monkeypatch, "worker:raise")
        rows = measure_many(configs, jobs=1, run_policy=RunPolicy(max_retries=0))
        assert rows[0].config == configs[0]
        assert rows[0].scheme == "EAGER"
        assert "worker" in rows[0].message

    @needs_numpy
    def test_batched_sweep_survives_compile_faults(self, monkeypatch):
        configs = _sweep_configs()
        clean = measure_many(configs, jobs=1, sweep_mode="periter")
        _arm(monkeypatch, "compile:raise")
        rows = measure_many(configs, jobs=1, sweep_mode="batched")
        assert rows == clean

    def test_bad_fault_grammar_fails_fast(self, monkeypatch):
        from repro.errors import SimdalError

        _arm(monkeypatch, "nope")
        with pytest.raises(SimdalError, match="REPRO_FAULT"):
            measure_many(_sweep_configs(n=1), jobs=1)

    def test_all_configs_failing_raises_from_suite(self, monkeypatch):
        from repro.bench.runner import measure_suite
        from repro.bench.synth import synthesize_suite
        from repro.errors import BenchError

        suite = synthesize_suite(SynthParams(loads=2, trip=35), 2, 0, 16)
        _arm(monkeypatch, "worker:raise")
        with pytest.raises(BenchError, match="failed after retries"):
            measure_suite(suite, SimdOptions(), scheme="EAGER",
                          run_policy=RunPolicy(max_retries=0))


class TestCheckpointResume:
    def test_resume_splices_journaled_rows(self, tmp_path):
        configs = _sweep_configs()
        clean = measure_many(configs, jobs=1)
        journal = tmp_path / "sweep.jsonl"
        half = measure_many(configs[:2], jobs=1,
                            run_policy=RunPolicy(checkpoint=journal))
        assert half == clean[:2]
        assert len(journal.read_text().splitlines()) == 2
        profile = PhaseProfile()
        rows = measure_many(configs, jobs=1, profile=profile,
                            run_policy=RunPolicy(checkpoint=journal, resume=True))
        assert rows == clean  # JSON round-trip must be float-exact
        assert profile.counts["checkpoint_hits"] == 2
        assert len(journal.read_text().splitlines()) == 4

    def test_without_resume_everything_is_remeasured(self, tmp_path):
        configs = _sweep_configs(n=2)
        journal = tmp_path / "sweep.jsonl"
        measure_many(configs, jobs=1, run_policy=RunPolicy(checkpoint=journal))
        profile = PhaseProfile()
        measure_many(configs, jobs=1, profile=profile,
                     run_policy=RunPolicy(checkpoint=journal))
        assert "checkpoint_hits" not in profile.counts

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        configs = _sweep_configs()
        clean = measure_many(configs, jobs=1)
        journal = tmp_path / "sweep.jsonl"
        measure_many(configs[:2], jobs=1,
                     run_policy=RunPolicy(checkpoint=journal))
        with journal.open("a") as handle:
            handle.write('{"key": "deadbeef", "measu')  # killed mid-append
        profile = PhaseProfile()
        rows = measure_many(configs, jobs=1, profile=profile,
                            run_policy=RunPolicy(checkpoint=journal, resume=True))
        assert rows == clean
        assert profile.counts["checkpoint_hits"] == 2

    def test_failures_are_never_journaled(self, tmp_path, monkeypatch):
        configs = _sweep_configs(n=2)
        journal = tmp_path / "sweep.jsonl"
        _arm(monkeypatch, "worker:raise")
        rows = measure_many(configs, jobs=1,
                            run_policy=RunPolicy(max_retries=0,
                                             checkpoint=journal))
        assert all(isinstance(r, FailedMeasurement) for r in rows)
        assert journal.read_text() == ""
        # After the fault clears, resume re-measures them for real.
        monkeypatch.delenv("REPRO_FAULT")
        faults.reload()
        rows = measure_many(configs, jobs=1,
                            run_policy=RunPolicy(checkpoint=journal, resume=True))
        assert all(isinstance(r, Measurement) for r in rows)


class TestCacheQuarantine:
    def test_corrupt_entry_is_quarantined(self, tmp_path, monkeypatch):
        cache = DiskCache(tmp_path / "cache")
        cache.put("key", {"v": 1})
        assert cache.get("key") == {"v": 1}
        _arm(monkeypatch, "cache:corrupt")
        assert cache.get("key") is None  # miss, not a crash
        assert cache.stats()["corrupt_quarantined"] == 1
        corrupt = list((tmp_path / "cache").glob("??/*.corrupt"))
        assert len(corrupt) == 1
        assert not list((tmp_path / "cache").glob("??/*.pkl"))
        # The slot freed up: a clean re-put repairs the entry.
        monkeypatch.delenv("REPRO_FAULT")
        faults.reload()
        cache.put("key", {"v": 2})
        assert cache.get("key") == {"v": 2}

    def test_quarantine_population_is_bounded(self, tmp_path, monkeypatch):
        from repro import cache as cache_mod

        monkeypatch.setattr(cache_mod, "QUARANTINE_MAX", 2)
        cache = DiskCache(tmp_path / "cache")
        _arm(monkeypatch, "cache:corrupt")
        for k in range(4):
            faults.reload()  # fresh stream so every read corrupts
            cache.put(f"key{k}", k)
            assert cache.get(f"key{k}") is None
        assert cache.stats()["corrupt_quarantined"] == 4
        assert len(list((tmp_path / "cache").glob("??/*.corrupt"))) == 2

    def test_unwritable_cache_degrades_with_warning(self, tmp_path):
        # Tests run as root, so permission bits cannot make a directory
        # unwritable; a regular file in the root's path position fails
        # every mkdir/write the same way.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = DiskCache(blocker / "cache")
        with pytest.warns(RuntimeWarning, match="unwritable"):
            for k in range(5):
                cache.put(f"key{k}", k)  # must never raise
        stats = cache.stats()
        assert stats["disabled"] == 1
        assert stats["puts"] == 0
        assert cache.get("key0") is None  # reads stay silent misses

    def test_successful_put_resets_failure_streak(self, tmp_path,
                                                  monkeypatch):
        from repro import cache as cache_mod

        cache = DiskCache(tmp_path / "cache")
        calls = {"n": 0}
        real_mkstemp = cache_mod.tempfile.mkstemp

        def flaky_mkstemp(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] % 2:
                raise OSError("transient")
            return real_mkstemp(*args, **kwargs)

        monkeypatch.setattr(cache_mod.tempfile, "mkstemp", flaky_mkstemp)
        for k in range(8):  # alternating failure never hits the limit
            cache.put(f"key{k}", k)
        assert not cache.disabled
        assert cache.stats()["puts"] == 4


class TestExitCodes:
    def test_usage_error_exits_2(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as err:
            main(["bench", "nosuch"])
        assert err.value.code == 2

    def test_library_error_exits_1_without_traceback(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "dep.c"
        path.write_text("int a[128];"
                        "for (i = 0; i < 100; i++) { a[i+1] = a[i]; }")
        assert main(["run", str(path)]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_verification_mismatch_exits_3(self, tmp_path, capsys,
                                           monkeypatch):
        import repro
        from repro.cli import main

        def mismatch(*args, **kwargs):
            raise VerificationError("byte 12 differs")

        monkeypatch.setattr(repro, "run_and_verify", mismatch)
        path = tmp_path / "ok.c"
        path.write_text("int a[128]; int b[128];"
                        "for (i = 0; i < 100; i++) { a[i] = b[i]; }")
        assert main(["run", str(path)]) == 3
        captured = capsys.readouterr()
        assert "verification mismatch" in captured.err
        assert "Traceback" not in captured.err

    def test_fault_grammar_error_exits_1(self, tmp_path, capsys,
                                         monkeypatch):
        from repro.cli import main

        _arm(monkeypatch, "warp:raise")
        assert main(["bench", "fig11", "--count", "1",
                     "--trip-count", "35"]) == 1
        assert "REPRO_FAULT" in capsys.readouterr().err

class TestConcurrentDegradation:
    """One shared ResilientBackend under concurrent fire (PR 10).

    The serve tier keeps a single resilient engine per process and
    hammers it from a worker pool; degradation must stay a per-run
    property — every thread gets byte-identical results and exactly
    one structured fallback record for its own run, never a shared or
    accumulated one.
    """

    @needs_numpy
    @settings(deadline=None, max_examples=6,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(threads=st.integers(min_value=2, max_value=6),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_threads_degrade_independently_and_identically(
            self, threads, seed):
        import os
        import threading

        from repro.machine import jit
        from repro.machine.backend import get_backend

        loop = build_fig1()
        program = simdize(loop, 16, SimdOptions()).program

        def fresh_memory():
            rng = random.Random(seed)
            space = make_space(loop, 16, rng)
            mem = space.make_memory()
            fill_random(space, mem, rng)
            return space, mem

        # Clean oracle on the tier the chain will land on.
        space, mem = fresh_memory()
        get_backend("numpy").run(program, space, mem, RunBindings())
        oracle = mem.snapshot()

        engine = get_resilient_backend("jit")
        barrier = threading.Barrier(threads)
        results: list = [None] * threads

        def worker(idx: int) -> None:
            space, mem = fresh_memory()
            barrier.wait(timeout=30.0)
            run = engine.run(program, space, mem, RunBindings())
            results[idx] = (mem.snapshot(), run.fallback,
                            run.counters.as_dict())

        os.environ["REPRO_FAULT"] = "compile:raise"
        faults.reload()
        try:
            jit.clear_memory_cache()  # force every thread through compile
            pool = [threading.Thread(target=worker, args=(i,))
                    for i in range(threads)]
            for t in pool:
                t.start()
            for t in pool:
                t.join(timeout=60.0)
        finally:
            os.environ.pop("REPRO_FAULT", None)
            faults.reload()

        assert all(r is not None for r in results), "a worker never finished"
        snapshots = {snap for snap, _, _ in results}
        assert snapshots == {oracle}  # byte-identical across all threads
        counter_sets = {tuple(sorted(c.items())) for _, _, c in results}
        assert len(counter_sets) == 1
        # Exactly one fallback record per degraded run: present, fresh
        # per run (not one shared dict), and correctly shaped.
        records = [fb for _, fb, _ in results]
        assert all(fb is not None for fb in records)
        assert len({id(fb) for fb in records}) == threads
        for fb in records:
            assert fb["tier"] == "numpy"
            assert fb["phase"] == "compile"
            assert fb["failed"] == ("jit",)
            assert "FaultInjected" in fb["reason"]


class TestSweepInterrupt:
    """SIGTERM/SIGINT during a checkpointed sweep (PR 10 satellite).

    The stop must be journal-safe: flag-only signal handlers, a
    SweepInterrupted raised at the next task boundary, a flushed
    journal whose rows splice back byte-identically under --resume,
    and CLI exit code 3.
    """

    def test_signal_stops_at_task_boundary_with_journal_intact(
            self, tmp_path, monkeypatch):
        import signal
        import threading

        from repro.errors import SweepInterrupted

        configs = _sweep_configs(n=12)
        clean = measure_many(configs, jobs=1)
        journal = tmp_path / "sweep.jsonl"

        # Slow each config down so the timer reliably lands mid-sweep.
        monkeypatch.setenv("REPRO_FAULT_SLEEP", "0.05")
        _arm(monkeypatch, "execute:timeout")
        # Park a no-op handler in case the timer beats the arm/disarm
        # window inside measure_many (it would otherwise kill pytest).
        previous = signal.signal(signal.SIGTERM, signal.SIG_IGN)
        timer = threading.Timer(
            0.2, signal.raise_signal, [signal.SIGTERM])
        try:
            timer.start()
            with pytest.raises(SweepInterrupted, match="resume"):
                measure_many(configs, jobs=1,
                             run_policy=RunPolicy(checkpoint=journal))
            # measure_many restored the handler it found installed.
            assert signal.getsignal(signal.SIGTERM) is signal.SIG_IGN
        finally:
            timer.cancel()
            signal.signal(signal.SIGTERM, previous)

        lines = journal.read_text().splitlines()
        assert 0 < len(lines) < len(configs)  # partial, flushed
        import json as _json
        for line in lines:
            _json.loads(line)  # every journaled row is complete JSON

        # Resume splices the journaled rows back float-exactly.
        monkeypatch.delenv("REPRO_FAULT")
        faults.reload()
        profile = PhaseProfile()
        rows = measure_many(configs, jobs=1, profile=profile,
                            run_policy=RunPolicy(checkpoint=journal,
                                                 resume=True))
        assert rows == clean
        assert profile.counts["checkpoint_hits"] == len(lines)

    def test_cli_exits_3_and_resume_is_byte_identical(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        import time
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        journal = tmp_path / "ck.jsonl"
        env = dict(os.environ,
                   PYTHONPATH=str(root / "src"),
                   REPRO_CACHE_DIR=str(tmp_path / "cache"),
                   REPRO_FAULT="execute:timeout",
                   REPRO_FAULT_SLEEP="0.05")
        argv = [sys.executable, "-m", "repro", "bench", "fig11",
                "--count", "2", "--trip-count", "35",
                "--checkpoint", str(journal)]
        proc = subprocess.Popen(argv, stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE, text=True, env=env,
                                cwd=str(root))
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if journal.exists() and journal.read_text().count("\n") >= 1:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.02)
            assert proc.poll() is None, proc.communicate()[1]
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 3, stderr
        assert "interrupted:" in stderr
        assert "resume" in stderr

        # The fault-free oracle...
        env.pop("REPRO_FAULT")
        env.pop("REPRO_FAULT_SLEEP")
        oracle = subprocess.run(
            [sys.executable, "-m", "repro", "bench", "fig11",
             "--count", "2", "--trip-count", "35"],
            capture_output=True, text=True, env=env, cwd=str(root),
            timeout=300)
        assert oracle.returncode == 0, oracle.stderr
        # ...equals the resumed run spliced from the partial journal.
        resumed = subprocess.run(
            argv + ["--resume"], capture_output=True, text=True, env=env,
            cwd=str(root), timeout=300)
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == oracle.stdout
