"""Tests for reorganization-graph construction, offsets, and validation."""

import pytest

from repro.align import ANY, KnownOffset
from repro.errors import GraphError
from repro.ir import Const, INT32, LoopBuilder, figure1_loop
from repro.ir.types import ADD
from repro.reorg import (
    RLoad,
    ROp,
    RShiftStream,
    RSplat,
    RStore,
    build_loop_graph,
    is_valid,
    validate_graph,
    validate_statement,
)
from repro.reorg.graph import StatementGraph


def fig1_graph(V=16):
    return build_loop_graph(figure1_loop(), V)


class TestBuild:
    def test_bare_graph_shape(self):
        graph = fig1_graph()
        assert len(graph.statements) == 1
        store = graph.statements[0].store
        assert isinstance(store, RStore)
        assert isinstance(store.src, ROp)
        assert all(isinstance(c, RLoad) for c in store.src.inputs)
        assert graph.B == 4
        assert graph.shift_count() == 0

    def test_splat_nodes_for_invariants(self):
        lb = LoopBuilder(trip=10)
        a = lb.array("a", "int32", 32)
        b = lb.array("b", "int32", 32)
        alpha = lb.scalar("alpha")
        lb.assign(a[0], b[0] * alpha + 2)
        graph = build_loop_graph(lb.build(), 16)
        splats = [n for n in graph.statements[0].store.walk() if isinstance(n, RSplat)]
        assert len(splats) == 2

    def test_splat_rejects_non_invariant(self):
        loop = figure1_loop()
        ref = loop.statements[0].loads()[0]
        with pytest.raises(GraphError):
            RSplat(ref)


class TestOffsets:
    def test_node_offsets(self):
        graph = fig1_graph()
        store = graph.statements[0].store
        assert store.offset(16) == KnownOffset(12)
        b_node, c_node = store.src.inputs
        assert b_node.offset(16) == KnownOffset(4)
        assert c_node.offset(16) == KnownOffset(8)

    def test_op_offset_is_first_defined_input(self):
        graph = fig1_graph()
        op = graph.statements[0].store.src
        assert op.offset(16) == KnownOffset(4)

    def test_splat_offset_is_any(self):
        assert RSplat(Const(1)).offset(16) == ANY

    def test_shift_offset_is_target(self):
        graph = fig1_graph()
        load = graph.statements[0].store.src.inputs[0]
        shifted = RShiftStream(load, KnownOffset(0))
        assert shifted.offset(16) == KnownOffset(0)

    def test_shift_to_any_rejected(self):
        graph = fig1_graph()
        load = graph.statements[0].store.src.inputs[0]
        with pytest.raises(GraphError):
            RShiftStream(load, ANY)


class TestValidate:
    def test_bare_misaligned_graph_is_invalid(self):
        graph = fig1_graph()
        assert not is_valid(graph)
        with pytest.raises(GraphError, match=r"C\.[23]"):
            validate_graph(graph)

    def test_c2_violation_reported(self):
        # aligned operands, misaligned store -> (C.2)
        lb = LoopBuilder(trip=20)
        a = lb.array("a", "int32", 64)
        b = lb.array("b", "int32", 64)
        lb.assign(a[1], b[0] + b[4])
        graph = build_loop_graph(lb.build(), 16)
        with pytest.raises(GraphError, match=r"C\.2"):
            validate_graph(graph)

    def test_c3_violation_reported(self):
        lb = LoopBuilder(trip=20)
        a = lb.array("a", "int32", 64)
        b = lb.array("b", "int32", 64)
        c = lb.array("c", "int32", 64)
        lb.assign(a[0], b[1] + c[2])
        graph = build_loop_graph(lb.build(), 16)
        with pytest.raises(GraphError, match=r"C\.3"):
            validate_graph(graph)

    def test_aligned_graph_is_valid(self):
        lb = LoopBuilder(trip=20)
        a = lb.array("a", "int32", 64)
        b = lb.array("b", "int32", 64)
        c = lb.array("c", "int32", 64)
        lb.assign(a[0], b[4] + c[8])
        graph = build_loop_graph(lb.build(), 16)
        validate_graph(graph)

    def test_splat_matches_any_store(self):
        lb = LoopBuilder(trip=20)
        a = lb.array("a", "int32", 64)
        lb.assign(a[1], 7)
        graph = build_loop_graph(lb.build(), 16)
        validate_graph(graph)  # splat-only RHS is valid at any alignment

    def test_shifting_a_splat_rejected(self):
        shift = RShiftStream(RSplat(Const(3)), KnownOffset(12))
        sg = StatementGraph(RStore(figure1_loop().statements[0].target, shift), 0)
        with pytest.raises(GraphError, match="splat"):
            validate_statement(sg, 16)

    def test_out_of_range_shift_target(self):
        graph = fig1_graph()
        load = graph.statements[0].store.src.inputs[0]
        bad = RShiftStream(load, KnownOffset(16))
        sg = StatementGraph(RStore(figure1_loop().statements[0].target, bad), 0)
        with pytest.raises(GraphError, match="outside"):
            validate_statement(sg, 16)

    def test_statement_introspection(self):
        graph = fig1_graph()
        sg = graph.statements[0]
        assert len(sg.load_nodes()) == 2
        assert sg.shift_nodes() == []
        assert sg.shift_count() == 0
