"""Targeted tests of pass and codegen internals."""

import pytest
from hypothesis import given, strategies as st

from repro.codegen import CodegenCtx
from repro.ir import ArrayDecl, INT16, INT32, LoopBuilder, Ref, figure1_loop
from repro.machine import ArraySpace
from repro.simdize import SimdOptions, simdize
from repro.vir import SConst, SReg, VLoadE, VRegE, VShiftPairE, VSpliceE, walk
from repro.vir.vexpr import Addr, SBin, S_OPS, displace, is_pure, s_bin
from repro.vir.vstmt import SetV
from repro.errors import CodegenError


class TestScalarExprAlgebra:
    @given(st.sampled_from(sorted(S_OPS)), st.integers(-50, 50),
           st.integers(1, 50))
    def test_fold_matches_semantics(self, op, a, b):
        folded = s_bin(op, SConst(a), SConst(b))
        assert isinstance(folded, SConst)
        assert folded.value == S_OPS[op](a, b)

    def test_fold_keeps_symbolic(self):
        expr = s_bin("add", SReg("x"), SConst(1))
        assert isinstance(expr, SBin)

    def test_unknown_scalar_op_rejected(self):
        with pytest.raises(CodegenError):
            SBin("pow", SConst(1), SConst(2))


class TestVExprHelpers:
    def test_displace_requires_purity(self):
        with pytest.raises(CodegenError):
            displace(VRegE("r"), 4)

    def test_displace_zero_is_identity(self):
        expr = VLoadE(Addr("a", 3))
        assert displace(expr, 0) is expr

    def test_is_pure(self):
        load = VLoadE(Addr("a", 0))
        assert is_pure(load)
        assert not is_pure(VShiftPairE(load, VRegE("r"), 4))

    def test_walk_covers_all_nodes(self):
        expr = VSpliceE(VLoadE(Addr("a", 0)), VLoadE(Addr("b", 1)), 4)
        kinds = [type(n).__name__ for n in walk(expr)]
        assert kinds == ["VSpliceE", "VLoadE", "VLoadE"]


class TestCodegenContext:
    def test_hoisting_is_idempotent(self):
        ctx = CodegenCtx(figure1_loop(), 16)
        from repro.vir.vexpr import SBase, s_and

        expr = s_and(SBase("b"), SConst(15))
        r1 = ctx.hoist("k", "h_", expr)
        r2 = ctx.hoist("k", "h_", expr)
        assert r1 == r2
        assert len(ctx.preheader) == 1

    def test_constants_not_hoisted(self):
        ctx = CodegenCtx(figure1_loop(), 16)
        assert ctx.hoist("k", "h_", SConst(5)) == SConst(5)
        assert ctx.preheader == []


class TestMemNormSemantics:
    """Normalized load addresses must truncate to the same vector."""

    @given(st.integers(0, 3), st.integers(0, 12), st.integers(0, 3),
           st.integers(0, 6), st.sampled_from([INT16, INT32]))
    def test_normalized_address_equivalent(self, align_idx, elem, residue,
                                           block, dtype):
        V = 16
        D = dtype.size
        B = V // D
        align = align_idx * D
        decl = ArrayDecl("arr", dtype, 128, align=align)
        space = ArraySpace(V)
        space.place(decl)
        base = space["arr"].base
        lane = (align // D + elem + residue) % B
        norm_elem = elem - lane
        i = residue + block * B  # any counter ≡ residue (mod B)
        addr = base + (i + elem) * D
        norm_addr = base + (i + norm_elem) * D
        assert addr - addr % V == norm_addr - norm_addr % V


class TestUnrollInternals:
    def _steady(self, options):
        return simdize(figure1_loop(trip=100), options=options).program.steady

    def test_versioned_registers_unique(self):
        steady = self._steady(SimdOptions(reuse="sp", unroll=4))
        defs = [s.reg for s in steady.body if isinstance(s, SetV)]
        assert len(defs) == len(set(defs))

    def test_rotation_reassigns_carried_names(self):
        steady = self._steady(SimdOptions(reuse="sp", unroll=2))
        defs = {s.reg for s in steady.body if isinstance(s, SetV)}
        # the carried names are re-defined directly in the body
        assert any(reg.startswith("vold") for reg in defs)
        assert steady.bottom == []

    def test_fixups_conditional_on_runtime_leftover(self):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int32", 4096)
        b = lb.array("b", "int32", 4096)
        lb.assign(a[1], b[2])
        program = simdize(lb.build(), options=SimdOptions(reuse="sp", unroll=4)).program
        fixups = [s for s in program.epilogue if s.label.startswith("unroll_fixup")]
        assert len(fixups) == 3
        assert all(s.cond is not None for s in fixups)


class TestProgramIntrospection:
    def test_count_static(self):
        program = simdize(figure1_loop(), options=SimdOptions(
            policy="zero", reuse="none", cse=False, memnorm=False)).program
        assert program.count_static(VShiftPairE) >= 3
        assert program.count_static(VLoadE) > 0

    def test_body_addrs_include_stores(self):
        program = simdize(figure1_loop()).program
        arrays = {a.array for a in program.body_addrs()}
        assert arrays == {"a", "b", "c"}
