"""Tests for software pipelining, PC, CSE, MemNorm, unrolling, and DCE."""

from repro.ir import LoopBuilder, figure1_loop
from repro.machine import run_vector
from repro.simdize import SimdOptions, simdize
from repro.vir import VLoadE, VShiftPairE, walk
from repro.vir.vstmt import SetV, VStoreS

from conftest import check_loop, sequential_memory


def body_loads(program):
    loads = []
    for stmt in program.steady.body:
        expr = stmt.expr if isinstance(stmt, SetV) else stmt.src
        loads += [n for n in walk(expr) if isinstance(n, VLoadE)]
    return loads


def bottom_copies(program):
    return [s for s in program.steady.bottom if isinstance(s, SetV) and s.is_copy]


class TestSoftwarePipelining:
    def test_no_reload_guarantee(self):
        """Data of a static stream is loaded once per steady iteration.

        The paper: "Our code generation scheme guarantees to never load
        the same data associated with a single static access twice."
        """
        loop = figure1_loop(trip=100)
        result = simdize(loop, options=SimdOptions(policy="zero", reuse="sp"))
        # steady body: exactly one load per misaligned stream (b and c)
        assert len(body_loads(result.program)) == 2

    def test_dynamic_load_count_is_minimal(self):
        loop = figure1_loop(trip=100)
        result = simdize(loop, options=SimdOptions(policy="zero", reuse="sp"))
        space, mem = sequential_memory(loop)
        out = run_vector(result.program, space, mem)
        # streams cover ~100 elements = ~25 vectors each; allow the
        # prologue/epilogue/init boundary vectors.
        steady_iters = len(range(1, 97, 4))
        assert out.counters["vload"] <= 2 * steady_iters + 20

    def test_without_reuse_loads_double(self):
        loop = figure1_loop(trip=100)
        sp = simdize(loop, options=SimdOptions(policy="zero", reuse="sp"))
        none = simdize(loop, options=SimdOptions(policy="zero", reuse="none"))
        assert len(body_loads(none.program)) >= 2 * len(body_loads(sp.program))

    def test_bottom_copies_present_without_unroll(self):
        loop = figure1_loop(trip=100)
        result = simdize(loop, options=SimdOptions(policy="zero", reuse="sp", unroll=1))
        assert len(bottom_copies(result.program)) == 3  # b, c, and the add

    def test_init_section_at_steady_lower_bound(self):
        loop = figure1_loop(trip=100)
        result = simdize(loop, options=SimdOptions(policy="zero", reuse="sp", unroll=1))
        init = [s for s in result.program.prologue if s.label == "swp_init"]
        assert len(init) == 1
        assert init[0].i_expr == result.program.steady.lb

    def test_shared_shift_across_statements(self):
        # Two statements using the same misaligned reference share one
        # carried register pair (and thus one load per iteration).
        lb = LoopBuilder(trip=64)
        a = lb.array("a", "int32", 96)
        b = lb.array("b", "int32", 96)
        x = lb.array("x", "int32", 96)
        y = lb.array("y", "int32", 96)
        lb.assign(a[0], x[1] + y[2])
        lb.assign(b[0], x[1] + y[3])
        loop = lb.build()
        result = simdize(loop, options=SimdOptions(policy="zero", reuse="sp", unroll=1))
        loads = body_loads(result.program)
        # x loaded once, y twice (different offsets congruence classes)
        arrays = sorted(l.addr.array for l in loads)
        assert arrays.count("x") == 1
        check_loop(loop, SimdOptions(policy="zero", reuse="sp"))


class TestPredictiveCommoning:
    def test_pc_matches_sp_counts(self):
        """The paper: PC in addition to SP brings no additional benefit —
        both exploit the same reuse; our counts must agree."""
        loop = figure1_loop(trip=100)
        space1, mem1 = sequential_memory(loop)
        space2, mem2 = sequential_memory(loop)
        sp = simdize(loop, options=SimdOptions(policy="zero", reuse="sp"))
        pc = simdize(loop, options=SimdOptions(policy="zero", reuse="pc"))
        out_sp = run_vector(sp.program, space1, mem1)
        out_pc = run_vector(pc.program, space2, mem2)
        assert out_sp.counters.total == out_pc.counters.total
        assert mem1.snapshot() == mem2.snapshot()

    def test_sp_plus_pc_no_extra_benefit(self):
        loop = figure1_loop(trip=100)
        space1, mem1 = sequential_memory(loop)
        space2, mem2 = sequential_memory(loop)
        sp = simdize(loop, options=SimdOptions(policy="lazy", reuse="sp"))
        both = simdize(loop, options=SimdOptions(policy="lazy", reuse="sp+pc"))
        a = run_vector(sp.program, space1, mem1).counters.total
        b = run_vector(both.program, space2, mem2).counters.total
        assert b <= a + 2

    def test_pc_init_section_created(self):
        loop = figure1_loop(trip=100)
        result = simdize(loop, options=SimdOptions(policy="zero", reuse="pc", unroll=1))
        assert any(s.label == "pc_init" for s in result.program.prologue)


class TestUnrolling:
    def test_unroll2_removes_sp_copies(self):
        loop = figure1_loop(trip=100)
        rolled = simdize(loop, options=SimdOptions(reuse="sp", unroll=1))
        unrolled = simdize(loop, options=SimdOptions(reuse="sp", unroll=2))
        assert len(bottom_copies(rolled.program)) > 0
        assert len(bottom_copies(unrolled.program)) == 0
        assert unrolled.program.steady.step == 8
        assert unrolled.program.unroll == 2

    def test_unroll_equivalence_all_factors(self):
        loop = figure1_loop(trip=103, length=140)
        for factor in (1, 2, 3, 4, 5, 8):
            check_loop(loop, SimdOptions(reuse="sp", unroll=factor))
            check_loop(loop, SimdOptions(reuse="pc", unroll=factor))
            check_loop(loop, SimdOptions(reuse="none", unroll=factor))

    def test_fixup_sections_cover_leftovers(self):
        # steady iterations = 24 (i = 1..97 step 4); unroll 5 leaves 4.
        loop = figure1_loop(trip=100)
        result = simdize(loop, options=SimdOptions(reuse="sp", unroll=5))
        fixups = [s for s in result.program.epilogue if s.label.startswith("unroll_fixup")]
        assert len(fixups) == 4
        check_loop(loop, SimdOptions(reuse="sp", unroll=5))


class TestMemNormAndCse:
    def test_memnorm_merges_same_vector_loads(self):
        lb = LoopBuilder(trip=64)
        a = lb.array("a", "int32", 96)
        c = lb.array("c", "int32", 96)
        b = lb.array("b", "int32", 96)
        lb.assign(a[0], b[0] + 1)
        lb.assign(c[0], b[1] + 2)   # b[0] and b[1] share a 16-byte line
        loop = lb.build()
        on = simdize(loop, options=SimdOptions(reuse="none", memnorm=True))
        off = simdize(loop, options=SimdOptions(reuse="none", memnorm=False))
        assert len(body_loads(on.program)) < len(body_loads(off.program))
        check_loop(loop, SimdOptions(reuse="none", memnorm=True))

    def test_cse_dedupes_identical_loads(self):
        lb = LoopBuilder(trip=64)
        a = lb.array("a", "int32", 96)
        c = lb.array("c", "int32", 96)
        b = lb.array("b", "int32", 96)
        lb.assign(a[0], b[4] + b[4])
        lb.assign(c[0], b[4] + 3)
        loop = lb.build()
        result = simdize(loop, options=SimdOptions(reuse="none", cse=True))
        assert len(body_loads(result.program)) == 1

    def test_invariants_hoisted_to_preheader(self):
        lb = LoopBuilder(trip=64)
        a = lb.array("a", "int32", 96)
        b = lb.array("b", "int32", 96)
        alpha = lb.scalar("alpha")
        lb.assign(a[0], b[0] * alpha + 7)
        loop = lb.build()
        result = simdize(loop, options=SimdOptions(cse=True))
        preheader_defs = [s for s in result.program.preheader if isinstance(s, SetV)]
        assert len(preheader_defs) == 2  # vsplat(alpha), vsplat(7)
        check_loop(loop, scalars={"alpha": 3})

    def test_dce_removes_dead_defs(self):
        from repro.codegen.passes.dce import eliminate_dead_code
        from repro.vir import VProgram, SteadyLoop, SConst

        loop = figure1_loop(trip=100)
        result = simdize(loop, options=SimdOptions(reuse="sp"))
        program = result.program
        program.steady.body.insert(0, SetV("dead_reg", VLoadE(program.body_addrs()[0])))
        before = len(program.steady.body)
        eliminate_dead_code(program)
        assert len(program.steady.body) == before - 1
