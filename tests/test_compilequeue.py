"""The batched, asynchronous native compile pipeline.

``test_native.py`` pins the per-kernel acquisition machinery; this
file pins the pipeline that amortizes it — multi-kernel translation
units behind one ``cc`` invocation (:func:`compile_requests` /
:func:`precompile`), per-signature artifact groups that stay
individually evictable, the background compile queue with hot-swap and
silent jit degradation, compiler re-resolution under ``REPRO_CC``, the
concurrent-writer atomicity of artifact groups, and the worker
right-sizing that fixed the jobs=2 sweep regression.  The differential
property at the bottom holds every acquisition mode — per-kernel sync,
batched precompile, async hot-swap — byte-identical to the bytes
oracle on random sweep configs.
"""

from __future__ import annotations

import multiprocessing
import random
import tempfile
import threading
import types
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import faults
from repro.bench.figures import figure_configs
from repro.bench.runner import RunPolicy, _right_sized_jobs
from repro.bench.synth import synthesize
from repro.cache import DiskCache, get_cache, set_cache_dir
from repro.machine import RunBindings, get_backend, numpy_available
from repro.simdize import SimdOptions, fill_random, make_space, simdize

from conftest import build_fig1

pytestmark = pytest.mark.skipif(not numpy_available(),
                                reason="the native tier needs numpy")

if numpy_available():
    from repro.machine import compilequeue, jit, native

HAVE_CC = numpy_available() and native._compiler_identity()[0] is not None
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no host C compiler")


@pytest.fixture(autouse=True)
def _fresh_pipeline():
    jit.clear_memory_cache()
    native.clear_memory_cache()
    compilequeue.set_async_compile(None)
    yield
    compilequeue.reset_queue()
    compilequeue.set_async_compile(None)
    jit.clear_memory_cache()
    native.clear_memory_cache()


def sweep_programs(count=2, trip=67, offset_reassoc=False):
    """Distinct-signature programs drawn from the fig11/fig12 space."""
    programs, seen = [], set()
    for _scheme, cfg in figure_configs(offset_reassoc, count=count,
                                       trip=trip):
        syn = synthesize(cfg.params, cfg.seed, cfg.V)
        result = simdize(syn.loop, cfg.V, cfg.options)
        sig = jit._cached_signature(result.program)
        if sig not in seen:
            seen.add(sig)
            programs.append(result.program)
    return programs


def run_native(program, seed=9):
    loop = program.source
    rand = random.Random(seed)
    space = make_space(loop, program.V, rand)
    mem = space.make_memory()
    fill_random(space, mem, rand)
    run = get_backend("native").run(program, space, mem, RunBindings())
    return mem.snapshot(), run.counters.as_dict(), run.used_fallback


class TestBatchedTranslationUnits:
    @needs_cc
    def test_precompile_batches_into_one_cc_invocation(self):
        """N cold signatures sharing (V, dtype) cost exactly one cc
        launch, and every kernel lands live in the memory cache."""
        programs = sweep_programs(count=2)
        assert len(programs) > 4
        before = dict(native.STATS)
        compiled = compilequeue.precompile(programs)
        assert compiled == len(programs)
        assert native.STATS["cc_invocations"] == \
            before["cc_invocations"] + 1
        assert native.STATS["tus"] == before["tus"] + 1
        assert native.STATS["tu_kernels"] == \
            before["tu_kernels"] + len(programs)
        for program in programs:
            kernel = native.get_native_kernel(program)
            assert kernel.cfn is not None
            assert kernel.meta.so_sha256

    @needs_cc
    def test_precompiled_kernels_match_bytes_oracle(self):
        programs = sweep_programs(count=1)
        compilequeue.precompile(programs)
        for program in programs:
            loop = program.source
            rand = random.Random(5)
            space = make_space(loop, program.V, rand)
            base = space.make_memory()
            fill_random(space, base, rand)
            runs = {}
            for name in ("bytes", "native"):
                mem = base.clone()
                run = get_backend(name).run(program, space, mem,
                                            RunBindings())
                runs[name] = (mem.snapshot(), run.counters.as_dict())
            assert runs["bytes"] == runs["native"]

    @needs_cc
    def test_per_signature_disk_entries_survive_memory_clear(self):
        """Each batch-mate reloads from its own disk group — zero
        further cc invocations after the batch compile."""
        programs = sweep_programs(count=1)
        compilequeue.precompile(programs)
        native.clear_memory_cache()
        before = dict(native.STATS)
        for program in programs:
            kernel = native.get_native_kernel(program)
            assert kernel.cfn is not None
        assert native.STATS["cc_invocations"] == before["cc_invocations"]
        assert native.STATS["disk_hits"] == \
            before["disk_hits"] + len(programs)

    @needs_cc
    def test_evicting_one_group_leaves_batch_mates_loadable(self):
        """The shared object is *copied* per signature group: dropping
        one signature's files cannot strand the others."""
        programs = sweep_programs(count=1)
        assert len(programs) >= 2
        compilequeue.precompile(programs)
        cache = get_cache()
        identity = native._compiler_identity()[1]
        victim_key = native._disk_key(
            jit._cached_signature(programs[0]), identity)
        stem = cache._path(victim_key)
        for path in stem.parent.glob(stem.stem + "*"):
            path.unlink()
        native.clear_memory_cache()
        survivor = native.get_native_kernel(programs[1])   # disk load
        assert survivor.cfn is not None
        before = dict(native.STATS)
        evicted = native.get_native_kernel(programs[0])    # recompile
        assert evicted.cfn is not None
        assert native.STATS["cc_invocations"] == \
            before["cc_invocations"] + 1

    @needs_cc
    def test_batch_failure_isolates_the_culprit(self):
        """One unlowerable kernel in a batch falls back to singleton
        recompiles: batch-mates still land, only the culprit fails."""
        programs = sweep_programs(count=1)[:3]
        disk = get_cache()
        identity = native._compiler_identity()[1]
        requests = []
        for program in programs:
            signature = jit._cached_signature(program)
            key = native._disk_key(signature, identity)
            requests.append(native.build_request(
                signature, key, jit.get_kernel(program), program))
        requests[1].kernel_src = "void broken(void) { this is not C; }"
        loaded, failures, cc_s, _load_s = compilequeue.compile_requests(
            requests, disk)
        assert set(loaded) == {requests[0].signature,
                               requests[2].signature}
        assert set(failures) == {requests[1].signature}
        assert "exit" in failures[requests[1].signature]
        # one failed batch attempt + one singleton per request
        assert cc_s > 0.0


class TestAsyncQueue:
    @needs_cc
    def test_hot_swap_lands_after_drain(self):
        program = simdize(build_fig1(trip=83), 16,
                          SimdOptions(policy="zero", reuse="sp")).program
        compilequeue.set_async_compile(True)
        before = dict(native.STATS)
        kernel = native.get_native_kernel(program)
        assert kernel.pending and kernel.cfn is None
        assert compilequeue.drain(timeout=60.0)
        assert kernel.cfn is not None and not kernel.pending
        assert native.STATS["hot_swaps"] == before["hot_swaps"] + 1
        assert native.STATS["async_compiles"] == \
            before["async_compiles"] + 1
        snap, counters, fallback = run_native(program)
        assert not fallback

    @needs_cc
    def test_inflight_dedup_returns_one_placeholder(self):
        program = simdize(build_fig1(trip=89), 16,
                          SimdOptions(policy="zero", reuse="sp")).program
        compilequeue.set_async_compile(True)
        before = dict(native.STATS)
        k1 = native.get_native_kernel(program)
        k2 = native.get_native_kernel(program)
        assert k1 is k2
        assert native.STATS["async_compiles"] == \
            before["async_compiles"] + 1
        assert compilequeue.drain(timeout=60.0)

    @needs_cc
    def test_pending_kernel_executes_on_jit_immediately(self, monkeypatch):
        """While the compile is in flight the kernel delegates to jit —
        same bytes, no degradation, no waiting."""
        gate = threading.Event()
        real = compilequeue.compile_requests

        def gated(requests, disk):
            gate.wait(timeout=60.0)
            return real(requests, disk)

        monkeypatch.setattr(compilequeue, "compile_requests", gated)
        program = simdize(build_fig1(trip=97), 16,
                          SimdOptions(policy="zero", reuse="sp")).program
        compilequeue.set_async_compile(True)
        kernel = native.get_native_kernel(program)
        assert kernel.pending
        jit_run = get_backend("jit")
        loop = program.source
        rand = random.Random(3)
        space = make_space(loop, program.V, rand)
        base = space.make_memory()
        fill_random(space, base, rand)
        mem_native, mem_jit = base.clone(), base.clone()
        native_run = get_backend("native").run(program, space, mem_native,
                                               RunBindings())
        jitted = jit_run.run(program, space, mem_jit, RunBindings())
        assert mem_native.snapshot() == mem_jit.snapshot()
        assert native_run.counters.as_dict() == jitted.counters.as_dict()
        gate.set()
        assert compilequeue.drain(timeout=60.0)
        assert kernel.cfn is not None

    @needs_cc
    def test_async_failure_is_silent_and_memoized(self, monkeypatch):
        """A broken compiler in the background queue leaves the kernel
        a permanent jit delegate — results intact, failure memoized,
        nothing raised anywhere near the run."""
        def broken_cc(cmd, **kwargs):
            return types.SimpleNamespace(returncode=1, stdout="",
                                         stderr="ICE: exploding compiler")

        monkeypatch.setattr(compilequeue, "_run_cc", broken_cc)
        program = simdize(build_fig1(trip=101), 16,
                          SimdOptions(policy="zero", reuse="sp")).program
        compilequeue.set_async_compile(True)
        before = dict(native.STATS)
        kernel = native.get_native_kernel(program)
        assert compilequeue.drain(timeout=60.0)
        assert kernel.cfn is None and not kernel.pending
        assert native.STATS["async_failures"] == \
            before["async_failures"] + 1
        key = native._disk_key(jit._cached_signature(program),
                               native._compiler_identity()[1])
        assert key in native._FAILED
        snap, counters, fallback = run_native(program)
        assert not fallback   # jit delegation is not a degradation

    @needs_cc
    def test_precompile_is_a_noop_in_async_mode(self):
        compilequeue.set_async_compile(True)
        programs = sweep_programs(count=1)[:2]
        assert compilequeue.precompile(programs) == 0

    def test_precompile_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_PRECOMPILE", "0")
        assert not compilequeue.precompile_enabled()
        programs = sweep_programs(count=1)[:1]
        assert compilequeue.precompile(programs) == 0


class TestCompilerResolution:
    @needs_cc
    def test_repro_cc_override_wins_and_tracks_env(self, monkeypatch):
        """REPRO_CC names the compiler; changing it mid-process
        re-resolves instead of serving the stale memo."""
        cc, _identity = native._compiler_identity()
        monkeypatch.setenv("REPRO_CC", cc)
        native.reset_compiler_cache()
        assert native._compiler_identity()[0] == cc
        monkeypatch.delenv("REPRO_CC")
        # memo keyed on the env request: deleting the var re-probes
        assert native._compiler_identity()[0] is not None

    @needs_cc
    def test_reset_compiler_cache_unpoisons_failures(self, monkeypatch):
        def broken_cc(cmd, **kwargs):
            return types.SimpleNamespace(returncode=1, stdout="",
                                         stderr="transient tool failure")

        program = simdize(build_fig1(trip=103), 16,
                          SimdOptions(policy="zero", reuse="sp")).program
        monkeypatch.setattr(compilequeue, "_run_cc", broken_cc)
        with pytest.raises(native.NativeUnavailable):
            native.get_native_kernel(program)
        assert native._FAILED
        monkeypatch.undo()
        native.reset_compiler_cache()
        assert not native._FAILED
        native.clear_memory_cache()
        kernel = native.get_native_kernel(program)
        assert kernel.cfn is not None


# ---------------------------------------------------------------------------
# Concurrent artifact-group writers (multi-process put_artifact race)
# ---------------------------------------------------------------------------

def _race_writer(root: str, key: str, worker: int, rounds: int) -> None:
    cache = DiskCache(root)
    payload = (b"/* worker %d */\n" % worker) * 64
    with tempfile.NamedTemporaryFile(dir=root, delete=False) as tmp:
        tmp.write(b"SO-%d" % worker * 256)
        src = Path(tmp.name)
    for _ in range(rounds):
        cache.put_artifact(key, ".c", payload)
        cache.put_artifact_file(key, ".so", src)
        cache.put(key, {"worker": worker})


class TestArtifactRaces:
    def test_concurrent_group_writers_never_corrupt(self, tmp_path):
        """N processes hammering one key's artifact group leave exactly
        one intact group: every surviving file is some writer's
        complete payload (os.replace atomicity — no interleaving, no
        torn pairs, no stray tmp files)."""
        root = tmp_path / "race-cache"
        root.mkdir()
        key = "deadbeef" * 8
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_race_writer,
                        args=(str(root), key, w, 25))
            for w in range(4)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        cache = DiskCache(root)
        entry = cache.get(key)
        assert entry is not None and entry["worker"] in range(4)
        c_path = cache.artifact_path(key, ".c")
        so_path = cache.artifact_path(key, ".so")
        assert c_path is not None and so_path is not None
        c_bytes = c_path.read_bytes()
        assert c_bytes in [(b"/* worker %d */\n" % w) * 64
                           for w in range(4)]
        so_bytes = so_path.read_bytes()
        assert so_bytes in [b"SO-%d" % w * 256 for w in range(4)]
        leftovers = list(root.rglob("*.tmp"))
        assert leftovers == []
        # exactly one group under the key's digest stem
        stem = cache._path(key)
        group = sorted(p.name for p in stem.parent.iterdir()
                       if not p.name.endswith(".tmp"))
        assert group == sorted([stem.name, stem.stem + ".c",
                                stem.stem + ".so"])


# ---------------------------------------------------------------------------
# Worker right-sizing (the jobs=2 < serial fix)
# ---------------------------------------------------------------------------

class TestRightSizedJobs:
    def test_caps_at_cpu_count(self, monkeypatch):
        from repro.bench import runner

        monkeypatch.setattr(runner.os, "cpu_count", lambda: 2)
        assert _right_sized_jobs(8, RunPolicy()) == 2
        assert _right_sized_jobs(2, RunPolicy()) == 2
        assert _right_sized_jobs(1, RunPolicy()) == 1

    def test_timeout_policy_passes_through(self, monkeypatch):
        from repro.bench import runner

        monkeypatch.setattr(runner.os, "cpu_count", lambda: 1)
        assert _right_sized_jobs(4, RunPolicy(timeout=5.0)) == 4

    def test_armed_faults_pass_through(self, monkeypatch):
        from repro.bench import runner

        monkeypatch.setattr(runner.os, "cpu_count", lambda: 1)
        monkeypatch.setenv("REPRO_FAULT", "compile:raise")
        faults.reload()
        try:
            assert _right_sized_jobs(4, RunPolicy()) == 4
        finally:
            monkeypatch.delenv("REPRO_FAULT")
            faults.reload()

    def test_none_cpu_count_degrades_to_serial(self, monkeypatch):
        from repro.bench import runner

        monkeypatch.setattr(runner.os, "cpu_count", lambda: None)
        assert _right_sized_jobs(4, RunPolicy()) == 1


# ---------------------------------------------------------------------------
def _class_items(trips, seed=11, loads=3):
    """One signature class of (program, space, mem, bindings) rows.

    Runtime-trip configs differing only in trip share a structural
    signature, so they batch as one class with ragged trip counts.
    """
    from repro.bench.synth import SynthParams
    from repro.ir.types import INT32

    options = SimdOptions(policy="eager", reuse="sp")
    items = []
    for trip in trips:
        params = SynthParams(loads=loads, statements=1, trip=trip,
                             bias=0.3, reuse=0.3, dtype=INT32,
                             runtime_trip=True)
        syn = synthesize(params, seed, 16)
        result = simdize(syn.loop, 16, options)
        rand = random.Random(seed ^ 0x5EED)
        space = make_space(syn.loop, 16, rand, syn.base_residues)
        mem = space.make_memory()
        fill_random(space, mem, rand)
        items.append((result.program, space, mem, RunBindings(trip=trip)))
    return items


@needs_cc
class TestBatchAcquisitionModes:
    """run_batch across acquisition modes: pending classes batch on the
    jit tier, landed classes batch through the C driver — same bytes."""

    def _oracle(self, items):
        mems = [mem.clone() for _, _, mem, _ in items]
        runs = [get_backend("bytes").run(p, s, m, b)
                for (p, s, _, b), m in zip(items, mems)]
        return [(m.snapshot(), r.counters.as_dict(), r.trip)
                for m, r in zip(mems, runs)]

    def _native_batch(self, items):
        mems = [mem.clone() for _, _, mem, _ in items]
        runs = get_backend("native").run_batch([
            (p, s, m, b) for (p, s, _, b), m in zip(items, mems)])
        return [(m.snapshot(), r.counters.as_dict(), r.trip)
                for m, r in zip(mems, runs)]

    def test_pending_class_batches_on_jit_then_hot_swaps(self, monkeypatch):
        gate = threading.Event()
        real = compilequeue.compile_requests

        def gated(requests, disk):
            gate.wait(timeout=60.0)
            return real(requests, disk)

        monkeypatch.setattr(compilequeue, "compile_requests", gated)
        items = _class_items((51, 67, 83))
        oracle = self._oracle(items)
        compilequeue.set_async_compile(True)
        kernel = native.get_native_kernel(items[0][0])
        assert kernel.pending and kernel.bcfn is None
        before = dict(native.STATS)
        # In-flight compile: the class batches on jit's kernel, byte-
        # identical, and the C driver is untouched.
        assert self._native_batch(items) == oracle
        assert native.STATS["batch_calls"] == before["batch_calls"]
        gate.set()
        assert compilequeue.drain(timeout=60.0)
        assert kernel.rfn is not None and kernel.bcfn is not None
        before = dict(native.STATS)
        assert self._native_batch(items) == oracle
        assert native.STATS["batch_calls"] == before["batch_calls"] + 1
        assert native.STATS["batch_rows"] == before["batch_rows"] + 3

    def test_precompiled_class_batches_through_driver(self):
        items = _class_items((45, 61), seed=13)
        assert compilequeue.precompile([items[0][0]]) == 1
        kernel = native.get_native_kernel(items[0][0])
        assert kernel.rfn is not None and kernel.bcfn is not None
        oracle = self._oracle(items)
        before = dict(native.STATS)
        assert self._native_batch(items) == oracle
        assert native.STATS["batch_calls"] == before["batch_calls"] + 1

    def test_disk_loaded_kernel_drives_batches(self):
        with tempfile.TemporaryDirectory() as tmp:
            set_cache_dir(Path(tmp))
            try:
                items = _class_items((45, 61), seed=17)
                oracle = self._oracle(items)
                assert self._native_batch(items) == oracle
                # A fresh process image: the memory cache clears, the
                # .so reloads from the artifact group with all three
                # symbols bound.
                native.clear_memory_cache()
                before = dict(native.STATS)
                assert self._native_batch(items) == oracle
                assert native.STATS["disk_hits"] == before["disk_hits"] + 1
                assert (native.STATS["batch_calls"]
                        == before["batch_calls"] + 1)
            finally:
                set_cache_dir(None)


# Differential: every acquisition mode is byte-identical
# ---------------------------------------------------------------------------

@needs_cc
class TestModeDifferential:
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(offset_reassoc=st.booleans(),
           trip=st.integers(min_value=17, max_value=257),
           index=st.integers(min_value=0, max_value=23))
    def test_acquisition_mode_never_changes_bytes(self, tmp_path_factory,
                                                  offset_reassoc, trip,
                                                  index):
        """per-kernel sync vs batched precompile vs async hot-swap:
        identical memory images and counters, all equal to the bytes
        oracle, on random fig11/fig12 configs."""
        pairs = figure_configs(offset_reassoc, count=1, trip=trip)
        _scheme, cfg = pairs[index % len(pairs)]
        syn = synthesize(cfg.params, cfg.seed, cfg.V)
        program = simdize(syn.loop, cfg.V, cfg.options).program
        loop = program.source
        rand = random.Random(cfg.seed ^ 0x5EED)
        space = make_space(loop, cfg.V, rand, syn.base_residues)
        base = space.make_memory()
        fill_random(space, base, rand)
        bindings = RunBindings(
            trip=cfg.params.trip if loop.runtime_upper else None)

        def run_once(name):
            mem = base.clone()
            run = get_backend(name).run(program, space, mem, bindings)
            return mem.snapshot(), run.counters.as_dict(), run.trip

        oracle = run_once("bytes")
        results = {}
        for mode in ("per-kernel", "batched", "async"):
            set_cache_dir(tmp_path_factory.mktemp(f"mode-{mode}"))
            jit.clear_memory_cache()
            native.clear_memory_cache()
            try:
                if mode == "batched":
                    assert compilequeue.precompile([program]) == 1
                elif mode == "async":
                    compilequeue.set_async_compile(True)
                    native.get_native_kernel(program)
                    assert compilequeue.drain(timeout=60.0)
                results[mode] = run_once("native")
                kernel = native.get_native_kernel(program)
                assert kernel.cfn is not None, mode
            finally:
                compilequeue.set_async_compile(None)
        for mode, got in results.items():
            assert got == oracle, f"{mode} diverged from bytes oracle"


# ---------------------------------------------------------------------------
# The cc wall-clock budget (REPRO_CC_TIMEOUT)
# ---------------------------------------------------------------------------

class TestCcTimeout:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_CC_TIMEOUT", raising=False)
        assert native.cc_timeout() == native._CC_TIMEOUT_DEFAULT
        monkeypatch.setenv("REPRO_CC_TIMEOUT", "7.5")
        assert native.cc_timeout() == 7.5
        for bad in ("0", "-3", "junk", ""):
            monkeypatch.setenv("REPRO_CC_TIMEOUT", bad)
            assert native.cc_timeout() == native._CC_TIMEOUT_DEFAULT

    @needs_cc
    def test_hung_cc_is_killed_and_run_degrades(self, tmp_path, monkeypatch):
        """A compiler that hangs is killed at the budget: the whole
        process group dies, the signature is charged as an ordinary cc
        failure (memoized, degradable), and the stats record the kill."""
        from repro import run_and_verify

        fake = tmp_path / "hangcc"
        fake.write_text(
            '#!/bin/sh\n'
            'for a in "$@"; do\n'
            '  [ "$a" = --version ] && { echo fakecc 1.0; exit 0; }\n'
            'done\n'
            'sleep 30\n')
        fake.chmod(0o755)
        monkeypatch.setenv("REPRO_CC", str(fake))
        monkeypatch.setenv("REPRO_CC_TIMEOUT", "0.3")
        native.reset_compiler_cache()
        before = native.STATS["cc_timeouts"]
        program = simdize(build_fig1(trip=107), 16,
                          SimdOptions(policy="zero", reuse="sp")).program
        with pytest.raises(native.NativeUnavailable, match="timed out"):
            native.get_native_kernel(program)
        assert native.STATS["cc_timeouts"] > before
        # Same toolchain, resilient chain: the run degrades to jit and
        # still verifies instead of hanging for the sleep's 30 s.
        report = run_and_verify(program, backend="native")
        assert report.fallback is not None
        assert report.fallback["phase"] == "compile"
        assert report.fallback["tier"] == "jit"
        monkeypatch.undo()
        native.reset_compiler_cache()


# ---------------------------------------------------------------------------
# Deterministic queue shutdown (atexit) — PR 10 satellite
# ---------------------------------------------------------------------------

class TestQueueShutdown:
    def test_shutdown_is_idempotent(self):
        assert compilequeue.shutdown(timeout=5.0)
        assert compilequeue.shutdown(timeout=5.0)   # second call: no-op True

    @needs_cc
    def test_submit_after_shutdown_finalizes_jit_delegate(self):
        """Work arriving during interpreter teardown is not orphaned in
        a pending state: the placeholder becomes a permanent jit
        delegate and runs stay byte-correct."""
        program = simdize(build_fig1(trip=109), 16,
                          SimdOptions(policy="zero", reuse="sp")).program
        compilequeue.set_async_compile(True)
        assert compilequeue.shutdown(timeout=5.0)
        kernel = native.get_native_kernel(program)
        assert not kernel.pending and kernel.cfn is None
        snap, counters, fallback = run_native(program)
        assert not fallback

    @needs_cc
    def test_reset_queue_revives_after_shutdown(self):
        assert compilequeue.shutdown(timeout=5.0)
        compilequeue.reset_queue()
        program = simdize(build_fig1(trip=113), 16,
                          SimdOptions(policy="zero", reuse="sp")).program
        compilequeue.set_async_compile(True)
        kernel = native.get_native_kernel(program)
        assert kernel.pending
        assert compilequeue.drain(timeout=60.0)
        assert kernel.cfn is not None

    @needs_cc
    def test_interpreter_exit_is_clean_with_inflight_async(self, tmp_path):
        """Exiting mid-async-compile must not spray 'Exception ignored'
        teardown noise: the atexit hook drains the daemon worker
        deterministically before module globals are torn down."""
        import os
        import subprocess
        import sys
        import textwrap

        root = Path(__file__).resolve().parent.parent
        code = textwrap.dedent("""
            from repro.lang import compile_source
            from repro.machine import native
            from repro.simdize import SimdOptions, simdize

            src = ("int a[256]; int b[256]; int c[256]; "
                   "for (i = 0; i < 150; i++) { a[i] = b[i+1] + c[i+2]; }")
            program = simdize(compile_source(src), 16, SimdOptions()).program
            kernel = native.get_native_kernel(program)
            print("queued:", kernel.pending)
            # exit immediately: no drain, the compile may be in flight
        """)
        env = dict(os.environ,
                   PYTHONPATH=str(root / "src"),
                   REPRO_NATIVE_ASYNC="1",
                   REPRO_CACHE_DIR=str(tmp_path / "cache"))
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, env=env,
                              cwd=str(root), timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "queued:" in proc.stdout
        assert "Exception ignored" not in proc.stderr, proc.stderr
        assert "Traceback" not in proc.stderr, proc.stderr
