"""The fault-injection harness itself: grammar, determinism, kinds.

``repro.faults`` is the instrument the resilience tests
(``test_resilience.py``) probe the recovery paths with, so its own
semantics are pinned first: the ``REPRO_FAULT`` grammar, the
zero-cost-when-unset discipline, the seeded decision streams, and the
``once`` token.
"""

import pytest

from repro import faults
from repro.errors import FaultInjected, SimdalError


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    """Every test starts with no faults armed and a fresh parse."""
    monkeypatch.delenv("REPRO_FAULT", raising=False)
    faults.reload()
    yield
    faults.reload()


def _arm(monkeypatch, spec: str) -> None:
    monkeypatch.setenv("REPRO_FAULT", spec)
    faults.reload()


class TestGrammar:
    def test_unset_is_inactive(self):
        assert not faults.active()
        faults.fault("compile")  # must be a no-op
        assert faults.mangle("cache", b"data") == b"data"

    def test_empty_specs_are_skipped(self, monkeypatch):
        _arm(monkeypatch, " , ,")
        assert not faults.active()

    def test_full_spec_parses(self, monkeypatch):
        _arm(monkeypatch, "worker:kill:0.5:42,compile:raise")
        assert faults.active()

    @pytest.mark.parametrize("bad", [
        "bogus",                   # no kind at all
        "compile:raise:1:2:3",     # too many fields
        "teleport:raise",          # unknown phase
        "compile:explode",         # unknown kind
        "compile:raise:many",      # bad probability
        "compile:raise:0.5:soon",  # bad seed
    ])
    def test_bad_specs_raise(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_FAULT", bad)
        faults.reload()
        with pytest.raises(SimdalError):
            faults.active()

    def test_reload_rereads_environment(self, monkeypatch):
        assert not faults.active()
        _arm(monkeypatch, "compile:raise")
        assert faults.active()


class TestKinds:
    def test_raise_fires_with_phase(self, monkeypatch):
        _arm(monkeypatch, "compile:raise")
        with pytest.raises(FaultInjected) as err:
            faults.fault("compile")
        assert err.value.phase == "compile"
        assert isinstance(err.value, SimdalError)

    def test_only_the_armed_phase_fires(self, monkeypatch):
        _arm(monkeypatch, "compile:raise")
        faults.fault("execute")
        faults.fault("worker")

    def test_kill_is_noop_in_main_process(self, monkeypatch):
        # os._exit would end the test run; the gate must hold here.
        _arm(monkeypatch, "worker:kill")
        faults.fault("worker")

    def test_corrupt_is_not_handled_by_fault(self, monkeypatch):
        _arm(monkeypatch, "cache:corrupt")
        faults.fault("cache")  # corrupt only acts through mangle()

    def test_mangle_corrupts_armed_phase_only(self, monkeypatch):
        _arm(monkeypatch, "cache:corrupt")
        data = b"0123456789abcdef"
        mangled = faults.mangle("cache", data)
        assert mangled != data
        assert len(mangled) < len(data)
        assert faults.mangle("compile", data) == data

    def test_timeout_sleeps_the_configured_time(self, monkeypatch):
        import time

        _arm(monkeypatch, "execute:timeout")
        monkeypatch.setenv("REPRO_FAULT_SLEEP", "0.05")
        start = time.perf_counter()
        faults.fault("execute")
        assert time.perf_counter() - start >= 0.05


class TestDecisionStreams:
    def test_probability_zero_never_fires(self, monkeypatch):
        _arm(monkeypatch, "compile:raise:0")
        for _ in range(50):
            faults.fault("compile")

    def test_seeded_stream_is_deterministic(self, monkeypatch):
        def pattern():
            fired = []
            for _ in range(30):
                try:
                    faults.fault("compile")
                    fired.append(False)
                except FaultInjected:
                    fired.append(True)
            return fired

        _arm(monkeypatch, "compile:raise:0.5:7")
        first = pattern()
        faults.reload()  # fresh parse = fresh stream, same seed
        second = pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_once_fires_exactly_once(self, monkeypatch):
        _arm(monkeypatch, "worker:raise:once")
        with pytest.raises(FaultInjected):
            faults.fault("worker")
        for _ in range(10):
            faults.fault("worker")
