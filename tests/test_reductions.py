"""Tests for reduction vectorization (extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IRError, PolicyError
from repro.ir import LoopBuilder, Reduction, Ref
from repro.ir.types import ADD, AND, AVG, MAX, MIN, MUL, OR, SUB, XOR, INT8, INT16, INT32, op_identity
from repro.machine import ideal_scalar_ops
from repro.simdize import SimdOptions, simdize

from conftest import check_loop, sequential_memory


def sum_loop(trip=100, dtype="int32", op="add", index=0, length=128):
    lb = LoopBuilder(trip=trip)
    out = lb.array("out", dtype, 8)
    b = lb.array("b", dtype, length)
    c = lb.array("c", dtype, length)
    lb.reduce(out, index, op, b[1] + c[2])
    return lb.build()


class TestReductionIR:
    def test_str(self):
        loop = sum_loop()
        assert str(loop.statements[0]) == "out[0] += (b[i+1] + c[i+2]);"
        assert loop.has_reductions

    def test_non_assoc_op_rejected(self):
        lb = LoopBuilder(trip=10)
        out = lb.array("out", "int32", 4)
        b = lb.array("b", "int32", 32)
        lb.reduce(out, 0, SUB, b[0])
        with pytest.raises(IRError, match="associative"):
            lb.build()

    def test_target_index_bounds_checked(self):
        lb = LoopBuilder(trip=10)
        out = lb.array("out", "int32", 4)
        b = lb.array("b", "int32", 32)
        lb.reduce(out, 9, ADD, b[0])
        with pytest.raises(IRError, match="outside"):
            lb.build()

    def test_mixed_statement_kinds_rejected(self):
        lb = LoopBuilder(trip=10)
        out = lb.array("out", "int32", 4)
        a = lb.array("a", "int32", 32)
        b = lb.array("b", "int32", 32)
        lb.assign(a[0], b[0])
        lb.reduce(out, 0, ADD, b[1])
        with pytest.raises(IRError, match="mixing"):
            lb.build()

    def test_identities(self):
        assert op_identity(ADD, INT32) == 0
        assert op_identity(MUL, INT32) == 1
        assert op_identity(MIN, INT8) == 127
        assert op_identity(MAX, INT8) == -128
        assert op_identity(AND, INT16) == -1
        assert op_identity(OR, INT16) == 0
        assert op_identity(XOR, INT16) == 0
        with pytest.raises(IRError):
            op_identity(AVG, INT8)

    def test_ideal_scalar_count(self):
        loop = sum_loop(trip=100)
        # per iteration: 2 loads + 1 add + 1 accumulate; +2 fixed
        assert ideal_scalar_ops(loop, 100) == 402


class TestReductionExecution:
    def test_sum_exact_value(self):
        loop = sum_loop(trip=20, length=48)
        result = simdize(loop)
        space, mem = sequential_memory(loop)
        from repro.machine import run_vector

        run_vector(result.program, space, mem)
        # out[0] starts at 0 (sequential_memory writes index values)
        expected = 0 + sum((i + 1) + (i + 2) for i in range(20))
        assert space["out"].read_all(mem)[0] == expected
        # neighbouring elements preserved
        assert space["out"].read_all(mem)[1:] == list(range(1, 8))

    def test_initial_value_participates(self):
        loop = sum_loop(trip=8, length=32, index=3)
        result = simdize(loop)
        space, mem = sequential_memory(loop)
        space["out"].write_all(mem, [0, 0, 0, 1000, 0, 0, 0, 0])
        from repro.machine import run_vector

        run_vector(result.program, space, mem)
        expected = 1000 + sum((i + 1) + (i + 2) for i in range(8))
        assert space["out"].read_all(mem)[3] == expected

    @pytest.mark.parametrize("op", ["add", "mul", "min", "max", "and", "or", "xor"])
    def test_all_ops_verify(self, op):
        check_loop(sum_loop(trip=37, op=op), SimdOptions(reuse="sp", unroll=2))

    @pytest.mark.parametrize("trip", [1, 2, 3, 4, 7, 8, 16, 31, 100])
    def test_all_trip_residues(self, trip):
        check_loop(sum_loop(trip=trip, length=128), SimdOptions(reuse="pc"))

    def test_runtime_trip_no_guard_needed(self):
        lb = LoopBuilder(trip="n")
        out = lb.array("out", "int32", 4)
        b = lb.array("b", "int32", 256)
        lb.reduce(out, 0, ADD, b[5])
        loop = lb.build()
        result = simdize(loop)
        assert result.program.guard_min_trip is None
        for trip in (0, 1, 5, 100):
            check_loop(loop, SimdOptions(reuse="sp"), trip=trip)

    def test_runtime_alignment(self):
        lb = LoopBuilder(trip=60)
        out = lb.array("out", "int16", 8, align=None)
        b = lb.array("b", "int16", 128, align=None)
        lb.reduce(out, 2, MAX, b[3])
        check_loop(lb.build(), SimdOptions(policy="zero", reuse="sp"))

    def test_policy_restriction(self):
        with pytest.raises(PolicyError, match="zero-shift accumulator"):
            simdize(sum_loop(), options=SimdOptions(policy="lazy"))

    def test_multi_reduction_statements(self):
        lb = LoopBuilder(trip=50)
        s1 = lb.array("s1", "int32", 4)
        s2 = lb.array("s2", "int32", 4)
        b = lb.array("b", "int32", 96)
        c = lb.array("c", "int32", 96)
        lb.reduce(s1, 0, ADD, b[1] * c[2])   # dot product
        lb.reduce(s2, 1, MIN, b[3])
        check_loop(lb.build(), SimdOptions(reuse="sp", unroll=4))

    def test_reduction_with_iota(self):
        lb = LoopBuilder(trip=41)
        out = lb.array("out", "int32", 4)
        b = lb.array("b", "int32", 64)
        lb.reduce(out, 0, ADD, b[2] * lb.index_value())
        check_loop(lb.build(), SimdOptions(reuse="pc", unroll=2))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from([INT8, INT16, INT32]),
           st.sampled_from(["add", "mul", "min", "max", "xor"]),
           st.integers(1, 70), st.sampled_from([1, 2, 4]))
    def test_reduction_property(self, seed, dtype, op, trip, unroll):
        lb = LoopBuilder(trip=trip)
        out = lb.array("out", dtype.name, 8, align=(seed % 4) * dtype.size)
        b = lb.array("b", dtype.name, 96)
        c = lb.array("c", dtype.name, 96)
        lb.reduce(out, seed % 8, op, b[seed % 5] + c[(seed // 5) % 5])
        check_loop(lb.build(), SimdOptions(reuse="sp", unroll=unroll), seed=seed)

    def test_reduction_speedup(self):
        loop = sum_loop(trip=400, length=440)
        _, report = check_loop(loop, SimdOptions(reuse="sp", unroll=4))
        assert report.speedup > 1.5
