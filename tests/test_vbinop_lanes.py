"""Lane-boundary unit tests for the vector ALU (``vector.vbinop``).

``vbinop`` decodes each vector with one ``int.from_bytes`` and slices
lanes by shifting — the easy bugs are at lane boundaries: a carry from
``INT8_MAX + 1`` leaking into the neighbouring lane, sign-extension of
negative lanes, or saturation clamping at the wrong width.  Every
BinaryOp × DataType pair is exercised on vectors built from the
extreme values of the type, checked lane-by-lane against the scalar
``op.apply`` semantics.
"""

import pytest

from repro.ir.types import ALL_OPS, ALL_TYPES, ADD, AVG, MUL, SADD, SSUB, SUB
from repro.machine.vector import vbinop

V = 16


def boundary_lanes(dtype):
    """Adversarial lane values: extremes, around zero, alternating."""
    lo, hi = dtype.min_value, dtype.max_value
    base = [hi, lo, hi, lo, -1 if dtype.signed else hi, 1, 0, hi - 1]
    return [dtype.wrap(v) for v in base]


def pack(dtype, values):
    lanes = V // dtype.size
    vals = (values * lanes)[:lanes]
    return b"".join(dtype.to_bytes(v) for v in vals), vals


def unpack(dtype, data):
    return [
        dtype.from_bytes(data[k:k + dtype.size])
        for k in range(0, V, dtype.size)
    ]


@pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: op.name)
@pytest.mark.parametrize("dtype", ALL_TYPES, ids=lambda t: t.name)
def test_boundary_lanes_match_scalar_semantics(op, dtype):
    v1, lanes1 = pack(dtype, boundary_lanes(dtype))
    v2, lanes2 = pack(dtype, list(reversed(boundary_lanes(dtype))))
    out = vbinop(op, v1, v2, dtype, V)
    assert len(out) == V
    expected = [op.apply(a, b, dtype) for a, b in zip(lanes1, lanes2)]
    assert unpack(dtype, out) == expected


class TestCarryIsolation:
    """Overflow in one lane must never leak into its neighbour."""

    @pytest.mark.parametrize("dtype", ALL_TYPES, ids=lambda t: t.name)
    def test_max_plus_one_wraps_in_lane(self, dtype):
        v1, _ = pack(dtype, [dtype.max_value, 0])
        v2, _ = pack(dtype, [1, 0])
        out = unpack(dtype, vbinop(ADD, v1, v2, dtype, V))
        assert out[0] == dtype.wrap(dtype.max_value + 1)
        assert out[1] == 0  # the neighbour saw no carry

    @pytest.mark.parametrize("dtype", ALL_TYPES, ids=lambda t: t.name)
    def test_min_minus_one_wraps_in_lane(self, dtype):
        v1, _ = pack(dtype, [dtype.min_value, 0])
        v2, _ = pack(dtype, [1, 0])
        out = unpack(dtype, vbinop(SUB, v1, v2, dtype, V))
        assert out[0] == dtype.wrap(dtype.min_value - 1)
        assert out[1] == 0  # no borrow from the neighbour

    @pytest.mark.parametrize("dtype", ALL_TYPES, ids=lambda t: t.name)
    def test_mul_overflow_truncates_per_lane(self, dtype):
        v1, lanes1 = pack(dtype, [dtype.max_value, 3])
        v2, lanes2 = pack(dtype, [dtype.max_value, 5])
        out = unpack(dtype, vbinop(MUL, v1, v2, dtype, V))
        assert out[0] == dtype.wrap(dtype.max_value * dtype.max_value)
        assert out[1] == 15


class TestSaturationAndAverage:
    @pytest.mark.parametrize("dtype", ALL_TYPES, ids=lambda t: t.name)
    def test_saturating_add_clamps_at_max(self, dtype):
        v1, _ = pack(dtype, [dtype.max_value])
        v2, _ = pack(dtype, [dtype.max_value])
        out = unpack(dtype, vbinop(SADD, v1, v2, dtype, V))
        assert all(lane == dtype.max_value for lane in out)

    @pytest.mark.parametrize("dtype", ALL_TYPES, ids=lambda t: t.name)
    def test_saturating_sub_clamps_at_min(self, dtype):
        v1, _ = pack(dtype, [dtype.min_value])
        v2, _ = pack(dtype, [dtype.max_value])
        out = unpack(dtype, vbinop(SSUB, v1, v2, dtype, V))
        assert all(lane == dtype.min_value for lane in out)

    @pytest.mark.parametrize("dtype", ALL_TYPES, ids=lambda t: t.name)
    def test_average_of_extremes_does_not_overflow(self, dtype):
        # (max + max) would overflow the lane if averaged naively
        v1, _ = pack(dtype, [dtype.max_value])
        v2, _ = pack(dtype, [dtype.max_value])
        out = unpack(dtype, vbinop(AVG, v1, v2, dtype, V))
        assert all(lane == dtype.max_value for lane in out)
        expected = AVG.apply(dtype.min_value, dtype.max_value, dtype)
        v2b, _ = pack(dtype, [dtype.min_value])
        out = unpack(dtype, vbinop(AVG, v1, v2b, dtype, V))
        assert all(lane == expected for lane in out)
