"""Execution-backend registry and bytes/numpy engine parity.

The byte interpreter is the semantic oracle; the batched NumPy backend
must reproduce its final memory image *and* its operation counters
exactly — the cost model counts operations of the program, not of the
engine (DESIGN.md §5).  These tests pin the registry contract and the
parity on hand-picked deterministic cases; ``test_differential.py``
extends the parity property to random loops.
"""

import random

import pytest

from repro.errors import MachineError
from repro.ir import LoopBuilder
from repro.machine import (
    BACKEND_CHOICES,
    BytesBackend,
    ExecutionBackend,
    RunBindings,
    default_backend_name,
    get_backend,
    numpy_available,
)
from repro.simdize import SimdOptions, fill_random, make_space, simdize

from conftest import build_fig1

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy not installed")


class TestRegistry:
    def test_bytes_backend(self):
        engine = get_backend("bytes")
        assert isinstance(engine, BytesBackend)
        assert engine.name == "bytes"
        assert isinstance(engine, ExecutionBackend)

    @needs_numpy
    def test_numpy_backend(self):
        engine = get_backend("numpy")
        assert engine.name == "numpy"
        assert isinstance(engine, ExecutionBackend)

    @needs_numpy
    def test_jit_backend(self):
        engine = get_backend("jit")
        assert engine.name == "jit"
        assert isinstance(engine, ExecutionBackend)

    def test_auto_resolution(self):
        assert default_backend_name() in ("bytes", "numpy")
        assert get_backend("auto").name == default_backend_name()
        assert get_backend().name == default_backend_name()

    def test_unknown_backend_rejected(self):
        with pytest.raises(MachineError, match="unknown execution backend"):
            get_backend("cuda")
        assert set(BACKEND_CHOICES) == {"auto", "bytes", "numpy", "jit",
                                        "native"}

    def test_without_numpy_auto_falls_back(self, monkeypatch):
        import repro.machine.backend as backend_mod

        monkeypatch.setattr(backend_mod, "numpy_available", lambda: False)
        assert backend_mod.default_backend_name() == "bytes"
        assert backend_mod.get_backend("auto").name == "bytes"
        with pytest.raises(MachineError, match="needs numpy"):
            backend_mod.get_backend("numpy")
        with pytest.raises(MachineError, match="needs numpy"):
            backend_mod.get_backend("jit")


def run_both(loop, options=None, V=16, seed=0, trip=None, residues=None):
    """Run one simdized loop under every engine; assert exact parity."""
    result = simdize(loop, V, options or SimdOptions())
    rand = random.Random(seed)
    space = make_space(loop, V, rand, residues)
    base = space.make_memory()
    fill_random(space, base, rand)
    bindings = RunBindings(trip=trip)

    outcomes = {}
    for name in ("bytes", "numpy", "jit"):
        mem = base.clone()
        run = get_backend(name).run(result.program, space, mem, bindings)
        outcomes[name] = (mem.snapshot(), run.counters.as_dict(),
                          run.trip, run.used_fallback)
    b = outcomes["bytes"]
    for name in ("numpy", "jit"):
        n = outcomes[name]
        assert b[0] == n[0], f"memory images differ (bytes vs {name})"
        assert b[1] == n[1], f"counters differ (bytes vs {name}): {b[1]} vs {n[1]}"
        assert b[2:] == n[2:]
    return outcomes["bytes"]


@needs_numpy
class TestEngineParity:
    @pytest.mark.parametrize("policy", ["zero", "eager", "lazy", "dominant"])
    @pytest.mark.parametrize("unroll", [1, 3])
    def test_fig1_all_policies(self, policy, unroll):
        options = SimdOptions(policy=policy, reuse="sp", unroll=unroll)
        run_both(build_fig1(trip=77), options, seed=3)

    def test_no_reuse_and_pc(self):
        for reuse in ("none", "pc", "sp+pc"):
            run_both(build_fig1(trip=50), SimdOptions(reuse=reuse))

    def test_runtime_alignment(self):
        lb = LoopBuilder(trip=60)
        a = lb.array("a", "int16", 128, align=None)
        b = lb.array("b", "int16", 128, align=None)
        lb.assign(a[2], b[5])
        run_both(lb.build(), SimdOptions(policy="zero", reuse="sp"),
                 residues={"a": 4, "b": 10}, seed=7)

    def test_runtime_trip_guard_fallback(self):
        """Trip below the guard runs the scalar fallback on both engines."""
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int32", 64)
        b = lb.array("b", "int32", 64)
        lb.assign(a[1], b[2])
        loop = lb.build()
        _, _, trip, used_fallback = run_both(
            loop, SimdOptions(policy="zero"), trip=7)
        assert trip == 7 and used_fallback

    def test_runtime_trip_vector_path(self):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int32", 256, align=None)
        b = lb.array("b", "int32", 256, align=None)
        lb.assign(a[1], b[2] + b[6])
        _, _, trip, used_fallback = run_both(
            lb.build(), SimdOptions(policy="zero", reuse="sp"),
            trip=131, residues={"a": 8, "b": 0})
        assert trip == 131 and not used_fallback

    @pytest.mark.parametrize("op", ["add", "mul", "min", "max"])
    def test_reduction_loop(self, op):
        """Reduction self-cycles batch as exact lane-wise folds — the
        numpy backend must match the oracle *without* falling back."""
        lb = LoopBuilder(trip=90)
        out = lb.array("out", "int32", 8)
        b = lb.array("b", "int32", 128)
        c = lb.array("c", "int32", 128)
        lb.reduce(out, 0, op, b[1] + c[2])
        _, _, _, used_fallback = run_both(lb.build(), seed=11)
        assert used_fallback is False

    def test_colliding_windows_batch(self):
        """A stored array also loaded (anti-dependence) batches via
        snapshot-served loads — no per-iteration fallback."""
        lb = LoopBuilder(trip=85)
        a = lb.array("a", "int32", 160)
        b = lb.array("b", "int32", 160)
        lb.assign(a[0], a[3] + b[1])
        _, _, _, used_fallback = run_both(lb.build(), seed=13)
        assert used_fallback is False

    def test_same_element_rewrite_batches(self):
        """a[i] = f(a[i], …): load and store share every window."""
        lb = LoopBuilder(trip=64)
        a = lb.array("a", "int8", 96)
        b = lb.array("b", "int8", 96)
        lb.assign(a[2], a[2].avg(b[1]))
        _, _, _, used_fallback = run_both(lb.build(), seed=17)
        assert used_fallback is False

    def test_iota_loop(self):
        lb = LoopBuilder(trip=70)
        a = lb.array("a", "int32", 128)
        lb.assign(a[1], lb.index_value())
        run_both(lb.build(), SimdOptions(policy="zero"))

    @pytest.mark.parametrize("dtype", ["int8", "int16", "int32"])
    def test_dtypes(self, dtype):
        lb = LoopBuilder(trip=55)
        a = lb.array("a", dtype, 160)
        b = lb.array("b", dtype, 160)
        c = lb.array("c", dtype, 160)
        lb.assign(a[3], b[1] + c[6])
        run_both(lb.build(), SimdOptions(reuse="sp", unroll=2), seed=5)

    @pytest.mark.parametrize("backend", ["numpy", "jit"])
    def test_figure_sweep_never_falls_back(self, backend):
        """No Figure 11/12 sweep configuration may take the batched
        engines' per-iteration path (they are all batchable now)."""
        from repro.bench import figure_configs
        from repro.bench.runner import _cached_simdize
        from repro.bench.synth import synthesize
        from repro.simdize.verify import fill_random as fill

        engine = get_backend(backend)
        for label, config in figure_configs(False, count=1, trip=101):
            syn = synthesize(config.params, config.seed, config.V)
            result = _cached_simdize(syn.loop, config.V, config.options)
            rand = random.Random(config.seed ^ 0x5EED)
            space = make_space(syn.loop, config.V, rand, syn.base_residues)
            mem = space.make_memory()
            fill(space, mem, rand)
            trip = config.params.trip if syn.loop.runtime_upper else None
            run = engine.run(result.program, space, mem,
                             RunBindings(trip=trip))
            assert run.used_fallback is False, f"{label} fell back"
