"""Tests reproducing the paper's expository figures, register by register.

Each test rebuilds a figure's scenario on the virtual machine and
checks the exact lane contents or instruction behaviour the figure
depicts (section numbers refer to the paper).
"""

from repro.ir import figure1_loop
from repro.machine import ArraySpace, from_lanes, lanes, run_vector, vshiftpair
from repro.ir.types import INT32
from repro.simdize import SimdOptions, simdize

from conftest import sequential_memory


def b_array_memory():
    """16-byte-aligned int32 array b with b[k] == k (Figure 2a layout)."""
    from repro.ir import ArrayDecl

    space = ArraySpace(16)
    space.place(ArrayDecl("b", INT32, 32, align=0))
    mem = space.make_memory()
    space["b"].write_all(mem, range(32))
    return space, mem


class TestFigure2:
    """Loading from misaligned addresses with vload + vshiftpair."""

    def test_2b_single_misaligned_load(self):
        space, mem = b_array_memory()
        b = space["b"]
        # vload b[1] truncates to the 16-byte line holding b[0..3]
        v0 = mem.vload(b.addr(1), 16)
        assert lanes(v0, INT32) == [0, 1, 2, 3]
        # vload b[4] gives the next line; vshiftpair selects b[1..4]
        v1 = mem.vload(b.addr(4), 16)
        assert lanes(vshiftpair(v0, v1, 4, 16), INT32) == [1, 2, 3, 4]

    def test_2c_reuse_across_consecutive_vectors(self):
        space, mem = b_array_memory()
        b = space["b"]
        vecs = [mem.vload(b.addr(4 * k), 16) for k in range(3)]
        # consecutive shifted vectors share one load per step
        assert lanes(vshiftpair(vecs[0], vecs[1], 4, 16), INT32) == [1, 2, 3, 4]
        assert lanes(vshiftpair(vecs[1], vecs[2], 4, 16), INT32) == [5, 6, 7, 8]


class TestFigure3:
    """The invalid simdization: adding unshifted streams is wrong."""

    def test_unshifted_add_computes_wrong_values(self):
        loop = figure1_loop(trip=16, length=48)
        space, mem = sequential_memory(loop)
        b, c = space["b"], space["c"]
        vb = mem.vload(b.addr(1), 16)   # b[0..3], offset 4
        vc = mem.vload(c.addr(2), 16)   # c[0..3], offset 8
        from repro.machine import vbinop
        from repro.ir.types import ADD

        got = lanes(vbinop(ADD, vb, vc, INT32, 16), INT32)
        # Figure 3d: yields b[0]+c[0..3]-wise sums, NOT b[1]+c[2]
        assert got == [0, 2, 4, 6]
        assert got[0] != 1 + 2


class TestFigure4:
    """The valid zero-shift simdization, stream offsets 4, 8 -> 0 -> 12."""

    def test_register_streams(self):
        loop = figure1_loop(trip=100)
        result = simdize(loop, options=SimdOptions(
            policy="zero", reuse="none", memnorm=False, cse=False))
        space, mem = sequential_memory(loop)
        run_vector(result.program, space, mem)
        a = space["a"].read_all(mem)
        # a[i+3] = (i+1) + (i+2)
        assert a[3:103] == [2 * i + 3 for i in range(100)]

    def test_stream_offsets_of_figure4(self):
        from repro.align import KnownOffset, ref_offset

        loop = figure1_loop()
        stmt = loop.statements[0]
        b_ref, c_ref = stmt.loads()
        assert ref_offset(b_ref, 16) == KnownOffset(4)
        assert ref_offset(c_ref, 16) == KnownOffset(8)
        assert ref_offset(stmt.target, 16) == KnownOffset(12)


class TestFigure5:
    """Eager-shift: both loads go straight to the store alignment 12."""

    def test_eager_shift_targets(self):
        from repro.align import KnownOffset
        from repro.reorg import RShiftStream, apply_policy, build_loop_graph

        graph = apply_policy(build_loop_graph(figure1_loop(), 16), "eager")
        shifts = graph.statements[0].shift_nodes()
        assert len(shifts) == 2
        assert all(s.to == KnownOffset(12) for s in shifts)

    def test_eager_execution(self):
        loop = figure1_loop(trip=100)
        result = simdize(loop, options=SimdOptions(policy="eager", reuse="sp"))
        space, mem = sequential_memory(loop)
        run_vector(result.program, space, mem)
        assert space["a"].read_all(mem)[3:103] == [2 * i + 3 for i in range(100)]


class TestFigure8:
    """Prologue/epilogue partial stores via load-splice-store."""

    def test_prologue_preserves_prefix_bytes(self):
        loop = figure1_loop(trip=100)
        result = simdize(loop)
        space, mem = sequential_memory(loop)
        sentinel = [7777] * 3
        a = space["a"]
        for k, v in enumerate(sentinel):
            a.store(mem, k, v)
        run_vector(result.program, space, mem)
        assert a.read_all(mem)[:3] == sentinel

    def test_epilogue_preserves_suffix_bytes(self):
        loop = figure1_loop(trip=100)
        result = simdize(loop)
        space, mem = sequential_memory(loop)
        a = space["a"]
        for k in range(103, 128):
            a.store(mem, k, 8888)
        run_vector(result.program, space, mem)
        values = a.read_all(mem)
        assert all(v == 8888 for v in values[103:128])
        assert values[102] == 2 * 99 + 3


class TestHeadlineClaims:
    """Abstract-level claims measured on this reproduction."""

    def test_near_peak_speedup_with_most_refs_misaligned(self):
        # "75% or more of the static memory references are misaligned":
        # figure1 has 3/3 misaligned; speedup must be a real speedup.
        from repro.align import misaligned_fraction

        loop = figure1_loop(trip=400, length=440)
        assert misaligned_fraction(loop, 16) == 1.0
        from conftest import check_loop

        _, report = check_loop(loop, SimdOptions(policy="dominant", reuse="sp", unroll=4))
        assert report.speedup > 1.5

    def test_peeling_cannot_align_figure1(self):
        from repro.baselines import peeling_applicable

        assert not peeling_applicable(figure1_loop(), 16)
