"""Tests for loop-counter-as-value vectorization (iota extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.align import KnownOffset
from repro.ir import INT8, INT16, INT32, LoopBuilder, LoopIndex
from repro.lang import compile_source
from repro.machine import run_vector
from repro.reorg import RIota, build_loop_graph
from repro.simdize import SimdOptions, simdize
from repro.vir import VIotaE, displace

from conftest import check_loop, sequential_memory


def iota_loop(trip=40, dtype="int32", offset=1, length=None):
    lb = LoopBuilder(trip=trip)
    a = lb.array("a", dtype, length or trip + 16)
    lb.assign(a[offset], lb.index_value())
    return lb.build()


class TestIotaNodes:
    def test_builder_and_ir(self):
        loop = iota_loop()
        assert any(isinstance(n, LoopIndex) for n in loop.statements[0].expr.walk())
        assert str(loop.statements[0]) == "a[i+1] = i;"

    def test_graph_node_offset_is_zero(self):
        graph = build_loop_graph(iota_loop(), 16)
        iotas = [n for n in graph.statements[0].store.walk() if isinstance(n, RIota)]
        assert len(iotas) == 1
        assert iotas[0].offset(16) == KnownOffset(0)

    def test_viota_displacement(self):
        expr = VIotaE(0, INT32)
        assert displace(expr, 4) == VIotaE(4, INT32)
        assert displace(expr, -4) == VIotaE(-4, INT32)

    def test_mini_c_counter_value(self):
        loop = compile_source(
            "int a[64]; for (i = 0; i < 40; i++) { a[i+1] = i * 2; }")
        assert any(isinstance(n, LoopIndex) for n in loop.statements[0].expr.walk())


class TestIotaExecution:
    def test_exact_values(self):
        loop = iota_loop(trip=20, length=48)
        result = simdize(loop)
        space, mem = sequential_memory(loop)
        run_vector(result.program, space, mem)
        a = space["a"].read_all(mem)
        assert a[1:21] == list(range(20))
        assert a[0] == 0 and a[21] == 21  # boundaries preserved

    def test_int8_wraps(self):
        loop = iota_loop(trip=300, dtype="int8")
        result = simdize(loop, options=SimdOptions(reuse="sp"))
        space, mem = sequential_memory(loop)
        run_vector(result.program, space, mem)
        a = space["a"].read_all(mem)
        assert a[1 + 200] == INT8.wrap(200)

    @pytest.mark.parametrize("policy", ["zero", "eager", "lazy", "dominant"])
    def test_all_policies(self, policy):
        lb = LoopBuilder(trip=50)
        a = lb.array("a", "int32", 80)
        b = lb.array("b", "int32", 80)
        lb.assign(a[3], b[1] + lb.index_value())
        check_loop(lb.build(), SimdOptions(policy=policy, reuse="sp"))

    def test_iota_shifted_by_misaligned_store(self):
        # store offset 12 forces a shift of the iota stream itself
        loop = iota_loop(offset=3)
        result = simdize(loop, options=SimdOptions(policy="eager", reuse="none",
                                                   cse=False, memnorm=False))
        assert result.shift_count == 1
        check_loop(loop, SimdOptions(policy="eager"))

    def test_runtime_trip_and_alignment(self):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int16", 300, align=None)
        lb.assign(a[2], lb.index_value() * 3 + 1)
        for trip in (4, 13, 100, 255):
            check_loop(lb.build(), SimdOptions(policy="zero", reuse="pc", unroll=2),
                       trip=trip, seed=trip)

    def test_iota_participates_in_pc_chains(self):
        # i*splat used under a shift: PC must carry it like a load stream
        lb = LoopBuilder(trip=60)
        a = lb.array("a", "int32", 96)
        b = lb.array("b", "int32", 96)
        lb.assign(a[1], b[2] + lb.index_value())
        result = simdize(lb.build(), options=SimdOptions(policy="zero", reuse="pc"))
        check_loop(lb.build(), SimdOptions(policy="zero", reuse="pc"))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from([INT8, INT16, INT32]),
           st.integers(13, 80), st.sampled_from([1, 2, 4]),
           st.sampled_from(["none", "sp", "pc"]))
    def test_iota_property(self, seed, dtype, trip, unroll, reuse):
        lb = LoopBuilder(trip=trip)
        a = lb.array("a", dtype.name, trip + 24,
                     align=(seed % 4) * dtype.size)
        b = lb.array("b", dtype.name, trip + 24)
        lb.assign(a[seed % 6], b[(seed // 7) % 6] * lb.index_value()
                  + lb.index_value())
        check_loop(lb.build(), SimdOptions(reuse=reuse, unroll=unroll), seed=seed)
